"""The run-level telemetry hook tying the observability pieces together.

``ExperimentSpec.observability`` (an
:class:`~repro.obs.config.ObservabilityConfig`) makes the runner attach
one :class:`Telemetry` hook to the run.  On ``bind`` it registers the
standard instrument set on ``ctx.obs`` and stands up whichever sinks
the config asks for — periodic sampler, event-loop profiler, Chrome
trace.  On ``finalize`` it tears them down, writes any requested files
and distills everything into a plain-data :class:`ObsReport` that rides
on the :class:`~repro.experiments.spec.ExperimentResult` (picklable, so
the parallel sweep runner can ship it across processes).
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING, Dict, List, Optional

from repro.metrics.timeseries import ColumnarSeries
from repro.obs.chrome import ChromeTraceSink
from repro.obs.config import ObservabilityConfig
from repro.obs.export import series_to_jsonl, write_text
from repro.obs.instruments import register_run_instruments
from repro.obs.profiler import EventLoopProfiler
from repro.obs.sampler import PeriodicSampler

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.context import SimContext

__all__ = ["Telemetry", "ObsReport"]


class ObsReport:
    """Plain-data telemetry outcome of one run.

    Holds only built-in containers and :class:`ColumnarSeries` (itself
    lists and dicts), never live simulation objects.
    """

    def __init__(
        self,
        series: Optional[ColumnarSeries],
        samples_taken: int,
        n_instruments: int,
        profile: Optional[Dict[str, object]],
        profile_text: Optional[str],
        chrome_trace_path: Optional[str],
        chrome_trace_events: int,
        written: List[str],
        meta: Optional[Dict[str, object]] = None,
    ) -> None:
        self.series = series
        self.samples_taken = samples_taken
        self.n_instruments = n_instruments
        self.profile = profile
        self.profile_text = profile_text
        self.chrome_trace_path = chrome_trace_path
        self.chrome_trace_events = chrome_trace_events
        self.written = written
        #: Run metadata (spec hash, seed, protocol, git revision,
        #: wall-clock duration...) stamped by the runner via
        #: :func:`repro.obs.store.stamp_result_meta`, so a stored series
        #: is self-describing.  None until stamped.
        self.meta = meta

    def summary(self) -> str:
        parts = [f"{self.n_instruments} instruments"]
        if self.meta is not None:
            parts.insert(
                0,
                f"run {str(self.meta.get('spec_hash', '?'))[:12]} "
                f"seed={self.meta.get('seed')} "
                f"git={self.meta.get('git_revision') or '?'}",
            )
        if self.series is not None:
            parts.append(
                f"{self.samples_taken} samples x {len(self.series.columns)} columns"
            )
        if self.profile is not None:
            parts.append(f"{self.profile['total_events']} events profiled")
        if self.chrome_trace_path is not None:
            parts.append(
                f"chrome trace: {self.chrome_trace_path} "
                f"({self.chrome_trace_events} events)"
            )
        for path in self.written:
            parts.append(f"wrote {path}")
        return "telemetry: " + "; ".join(parts)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"ObsReport({self.summary()})"


class Telemetry:
    """Instrumentation hook wiring ``repro.obs`` into one run."""

    def __init__(self, config: Optional[ObservabilityConfig] = None) -> None:
        self.config = config if config is not None else ObservabilityConfig()
        self.sampler: Optional[PeriodicSampler] = None
        self.profiler: Optional[EventLoopProfiler] = None
        self.chrome: Optional[ChromeTraceSink] = None
        self.report: Optional[ObsReport] = None
        self._ctx = None

    # ------------------------------------------------------------------
    # Hook interface
    # ------------------------------------------------------------------
    def bind(self, ctx: "SimContext") -> "Telemetry":
        if self._ctx is not None:
            raise RuntimeError("Telemetry hook is already bound to a run")
        self._ctx = ctx
        register_run_instruments(ctx, self.config)
        cfg = self.config
        if cfg.sample_period is not None:
            self.sampler = PeriodicSampler(cfg.sample_period, cfg.burn_in)
            self.sampler.bind(ctx)
        if cfg.profile:
            self.profiler = EventLoopProfiler(
                heartbeat_wall_seconds=cfg.heartbeat_wall_seconds
            )
            self.profiler.bind(ctx)
        if cfg.chrome_trace is not None:
            self.chrome = ChromeTraceSink(cfg.chrome_trace)
            self.chrome.bind(ctx)
        return self

    def finalize(self, ctx: "SimContext") -> None:
        if self.sampler is not None:
            self.sampler.finalize(ctx)
        if self.chrome is not None:
            chrome_path = self.chrome.path
            if chrome_path is not None:
                os.makedirs(
                    os.path.dirname(os.path.abspath(chrome_path)), exist_ok=True
                )
            self.chrome.finalize(ctx)
        written: List[str] = []
        if self.config.out_dir is not None:
            written = self._write_outputs(self.config.out_dir, ctx)
        self.report = ObsReport(
            series=self.sampler.series if self.sampler is not None else None,
            samples_taken=self.sampler.samples_taken if self.sampler is not None else 0,
            n_instruments=len(ctx.obs),
            profile=self.profiler.to_dict() if self.profiler is not None else None,
            profile_text=self.profiler.report() if self.profiler is not None else None,
            chrome_trace_path=self.chrome.path if self.chrome is not None else None,
            chrome_trace_events=len(self.chrome) if self.chrome is not None else 0,
            written=written,
        )

    # ------------------------------------------------------------------
    # Exports
    # ------------------------------------------------------------------
    def _write_outputs(self, out_dir: str, ctx: "SimContext") -> List[str]:
        os.makedirs(out_dir, exist_ok=True)
        written: List[str] = []
        if self.sampler is not None:
            written.append(
                series_to_jsonl(self.sampler.series, os.path.join(out_dir, "series.jsonl"))
            )
        if self.profiler is not None:
            written.append(
                write_text(self.profiler.report(), os.path.join(out_dir, "profile.txt"))
            )
        written.append(
            write_text(self._summary_text(ctx), os.path.join(out_dir, "summary.txt"))
        )
        return written

    def _summary_text(self, ctx: "SimContext") -> str:
        collector = ctx.collector
        lines = [
            "run summary",
            f"  sim time:        {ctx.env.now:.6f} s",
            f"  events:          {ctx.env.events_processed}",
            f"  flows:           {collector.n_completed}/{collector.n_flows} completed",
            f"  data delivered:  {collector.data_pkts_delivered} pkts "
            f"({collector.payload_bytes_delivered} payload bytes)",
            f"  retransmissions: {collector.data_pkts_retransmitted}",
            f"  control pkts:    {collector.control_pkts_sent}",
            f"  drops by hop:    {dict(sorted(ctx.fabric.drops_by_hop.items()))}",
            f"  instruments:     {len(ctx.obs)}",
        ]
        if self.sampler is not None:
            lines.append(f"  samples:         {self.sampler.samples_taken}")
        return "\n".join(lines)

    # ------------------------------------------------------------------
    @staticmethod
    def report_from_hooks(hooks) -> Optional[ObsReport]:
        """The first finalized Telemetry report among ``hooks``, if any."""
        for hook in hooks:
            if isinstance(hook, Telemetry) and hook.report is not None:
                return hook.report
        return None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Telemetry({self.config!r})"
