"""Chrome ``trace_event`` export.

A :class:`ChromeTraceSink` listens to the run (collector observer plus a
chained fabric drop hook, the same seam :class:`repro.trace.PacketTracer`
uses) and accumulates Chrome trace-event dicts:

* one ``"X"`` *complete* span per flow (arrival → completion; unfinished
  flows are closed at finalize time), grouped under pid 1 with one
  thread row per source host;
* ``"i"`` *instant* events for drops (by hop), RTS control packets, and
  retransmissions, grouped under pid 2 with one thread row per category;
* ``"M"`` *metadata* events naming the process/thread rows.

``write()`` emits the JSON-object form ``{"traceEvents": [...]}``, which
Perfetto and ``chrome://tracing`` both load.  Timestamps are sim-time
microseconds (the unit the format mandates).

:func:`validate_chrome_trace` is the schema check used by tests and CI:
the file must parse as JSON and every event must carry ``ph``, ``ts``
and ``pid``.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Tuple

from repro.net.packet import Flow, Packet, PacketType

__all__ = ["ChromeTraceError", "ChromeTraceSink", "validate_chrome_trace"]


class ChromeTraceError(ValueError):
    """A trace file failed schema validation.

    Carries the zero-based ``index`` of the first offending event and
    the ``event`` object itself (both ``None`` for file-level problems
    like unparseable JSON), so callers — ``scripts/check_chrome_trace.py``
    in particular — can print exactly what broke.
    """

    def __init__(self, message: str, index: Optional[int] = None, event=None) -> None:
        super().__init__(message)
        self.index = index
        self.event = event

_PID_FLOWS = 1
_PID_FABRIC = 2

#: Fabric-process thread rows (tid) for instant events.
_TID_DROPS = 1
_TID_RTS = 2
_TID_RETX = 3


def _us(t: float) -> float:
    return t * 1e6


class ChromeTraceSink:
    """Accumulates Chrome trace events from one simulation run."""

    def __init__(self, path: Optional[str] = None) -> None:
        self.path = path
        self.events: List[dict] = []
        self._open_flows: Dict[int, Tuple[Flow, float]] = {}
        self._env = None
        self._chained_drop_hook = None
        self._seen_src_tids: set = set()

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def bind(self, ctx) -> "ChromeTraceSink":
        """Attach to a run: stack on the collector and tap fabric drops."""
        if self._env is not None:
            raise RuntimeError("ChromeTraceSink is already attached to a run")
        self._env = ctx.env
        ctx.collector.add_observer(self)
        self._chained_drop_hook = ctx.fabric.drop_hook
        ctx.fabric.drop_hook = self._on_drop
        self._metadata(_PID_FLOWS, None, "process_name", "flows")
        self._metadata(_PID_FABRIC, None, "process_name", "fabric")
        self._metadata(_PID_FABRIC, _TID_DROPS, "thread_name", "drops")
        self._metadata(_PID_FABRIC, _TID_RTS, "thread_name", "rts")
        self._metadata(_PID_FABRIC, _TID_RETX, "thread_name", "retransmissions")
        return self

    def finalize(self, ctx) -> None:
        """Close spans for unfinished flows and write the file if asked."""
        now = ctx.env.now
        for fid in sorted(self._open_flows):
            flow, start = self._open_flows[fid]
            self._span(flow, start, now, finished=False)
        self._open_flows.clear()
        if self.path is not None:
            self.write(self.path)

    # ------------------------------------------------------------------
    # Observer interface (called by the collector)
    # ------------------------------------------------------------------
    def flow_arrived(self, flow: Flow, now: float) -> None:
        self._open_flows[flow.fid] = (flow, now)
        if flow.src not in self._seen_src_tids:
            self._seen_src_tids.add(flow.src)
            self._metadata(_PID_FLOWS, flow.src, "thread_name", f"src h{flow.src}")

    def flow_completed(self, flow: Flow, now: float) -> None:
        opened = self._open_flows.pop(flow.fid, None)
        start = opened[1] if opened is not None else flow.arrival
        self._span(flow, start, now, finished=True)

    def data_sent(self, pkt: Packet, first_time: bool) -> None:
        if not first_time:
            self._instant(
                "retx",
                _TID_RETX,
                fid=pkt.flow.fid if pkt.flow is not None else None,
                seq=pkt.seq,
            )

    def data_delivered(self, pkt: Packet) -> None:
        pass

    def data_duplicate(self, pkt: Packet) -> None:
        pass

    def control_sent(self, pkt: Packet) -> None:
        if pkt.ptype == PacketType.RTS:
            self._instant(
                "rts",
                _TID_RTS,
                fid=pkt.flow.fid if pkt.flow is not None else None,
                src=pkt.src,
                dst=pkt.dst,
            )

    def _on_drop(self, pkt: Packet, hop_index: int) -> None:
        self._instant(
            f"drop hop{hop_index}",
            _TID_DROPS,
            fid=pkt.flow.fid if pkt.flow is not None else None,
            seq=pkt.seq,
            hop=hop_index,
        )
        if self._chained_drop_hook is not None:
            self._chained_drop_hook(pkt, hop_index)

    # ------------------------------------------------------------------
    # Event construction
    # ------------------------------------------------------------------
    def _span(self, flow: Flow, start: float, end: float, finished: bool) -> None:
        self.events.append(
            {
                "name": f"flow {flow.fid}",
                "cat": "flow",
                "ph": "X",
                "ts": _us(start),
                "dur": _us(max(end - start, 0.0)),
                "pid": _PID_FLOWS,
                "tid": flow.src,
                "args": {
                    "fid": flow.fid,
                    "src": flow.src,
                    "dst": flow.dst,
                    "bytes": flow.size_bytes,
                    "finished": finished,
                },
            }
        )

    def _instant(self, name: str, tid: int, **args) -> None:
        self.events.append(
            {
                "name": name,
                "cat": "fabric",
                "ph": "i",
                "ts": _us(self._env.now if self._env is not None else 0.0),
                "pid": _PID_FABRIC,
                "tid": tid,
                "s": "t",
                "args": {k: v for k, v in args.items() if v is not None},
            }
        )

    def _metadata(self, pid: int, tid: Optional[int], name: str, value: str) -> None:
        event = {
            "name": name,
            "ph": "M",
            "ts": 0,
            "pid": pid,
            "args": {"name": value},
        }
        if tid is not None:
            event["tid"] = tid
        self.events.append(event)

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def to_json(self) -> dict:
        return {"traceEvents": list(self.events)}

    def write(self, path: str) -> str:
        with open(path, "w") as fh:
            json.dump(self.to_json(), fh)
        return path

    def __len__(self) -> int:
        return len(self.events)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"ChromeTraceSink({len(self.events)} events, path={self.path!r})"


def validate_chrome_trace(path: str) -> List[dict]:
    """Load ``path`` and check trace-event schema requirements.

    Returns the event list on success; raises :class:`ChromeTraceError`
    (a ``ValueError``, carrying the first offending event and its
    index) otherwise.  Accepts both the JSON-object form
    (``{"traceEvents": [...]}``) and the bare-array form.
    """
    with open(path) as fh:
        try:
            doc = json.load(fh)
        except json.JSONDecodeError as exc:
            raise ChromeTraceError(f"{path}: not valid JSON: {exc}") from exc
    if isinstance(doc, dict):
        events = doc.get("traceEvents")
        if not isinstance(events, list):
            raise ChromeTraceError(f"{path}: missing 'traceEvents' array")
    elif isinstance(doc, list):
        events = doc
    else:
        raise ChromeTraceError(f"{path}: top level must be an object or array")
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            raise ChromeTraceError(
                f"{path}: event {i} is not an object", index=i, event=event
            )
        for field in ("ph", "ts", "pid"):
            if field not in event:
                raise ChromeTraceError(
                    f"{path}: event {i} missing required {field!r}",
                    index=i,
                    event=event,
                )
    return events
