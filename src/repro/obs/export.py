"""Flat-file exporters for telemetry data.

JSONL for time series (one row object per line, NaN cells omitted so
every line is strict JSON), plain text for run summaries.  These write
whatever a :class:`~repro.metrics.timeseries.ColumnarSeries` or a
telemetry report hands them — no simulation types involved, so they are
safe to call from analysis scripts too.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.metrics.timeseries import ColumnarSeries

__all__ = ["series_to_jsonl", "write_text"]


def series_to_jsonl(series: "ColumnarSeries", path: str) -> str:
    """Write one JSON object per sample row: ``{"t": ..., <col>: ...}``.

    NaN cells (columns registered after a row was taken) are omitted
    from their rows, keeping every line strict JSON.
    """
    import json

    _ensure_parent(path)
    with open(path, "w") as fh:
        for t, row in series.rows():
            record = {"t": t}
            record.update(row)
            fh.write(json.dumps(record) + "\n")
    return path


def write_text(text: str, path: str) -> str:
    _ensure_parent(path)
    with open(path, "w") as fh:
        fh.write(text)
        if not text.endswith("\n"):
            fh.write("\n")
    return path


def _ensure_parent(path: str) -> None:
    parent = os.path.dirname(os.path.abspath(path))
    if parent:
        os.makedirs(parent, exist_ok=True)
