"""Standard instrument registration for a simulation run.

:func:`register_run_instruments` walks a bound
:class:`~repro.sim.context.SimContext` and registers the canonical
gauge set against its registry:

* collector gauges — ``flows.active``, ``flows.completed``, data-plane
  packet counters, ``pkts.pending`` (the Fig. 7 backlog signal);
* per-port gauges — ``port.qlen_bytes{hop=,port=}``,
  ``port.qlen_pkts{...}`` and the high-water marks;
* per-link utilization — ``link.util{hop=,port=}``, a rate gauge over
  ``bytes_sent`` deltas between consecutive snapshots;
* per-hop drop totals — ``fabric.drops{hop=}``;
* dataplane stage ledgers — run-level ``dataplane.<stage>`` totals over
  every generic-engine port (classified / marked / admitted /
  dropped_incoming / evicted / scheduled), plus per-port
  ``dataplane.marked{hop=,port=}`` when port sampling is on.  Fused
  reference queues carry no ledgers, so these only appear for runs on
  the generic engine (e.g. DCTCP, or ``SimTuning(fused_dataplane=False)``);
* protocol instruments — each agent's :meth:`register_instruments`
  (a no-op on the base class) plus shared state such as the Fastpass
  arbiter, both duck-typed so this module never imports protocols.

Everything here is a pull-based :class:`~repro.obs.registry.Gauge`:
registration costs one dict insert, and nothing is evaluated until a
sampler snapshots the registry.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.port import Port
    from repro.obs.config import ObservabilityConfig
    from repro.obs.registry import InstrumentRegistry
    from repro.sim.context import SimContext

__all__ = ["register_run_instruments"]


def register_run_instruments(
    ctx: "SimContext", config: Optional["ObservabilityConfig"] = None
) -> "InstrumentRegistry":
    """Register the standard gauge set for ``ctx`` on ``ctx.obs``."""
    from repro.obs.config import ObservabilityConfig

    if config is None:
        config = ObservabilityConfig()
    registry = ctx.obs
    _register_collector(registry, ctx.collector)
    if config.sample_ports or config.sample_links:
        for port in ctx.fabric.all_ports():
            if config.sample_ports:
                _register_port(registry, port)
            if config.sample_links:
                _register_link_util(registry, ctx, port)
    for hop in sorted(ctx.fabric.drops_by_hop):
        registry.gauge(
            "fabric.drops",
            lambda h=hop: ctx.fabric.drops_by_hop.get(h, 0),
            hop=hop,
        )
    _register_dataplane(registry, ctx, sample_ports=config.sample_ports)
    if ctx.faults is not None:
        _register_faults(registry, ctx)
    if config.sample_protocols:
        for host in ctx.fabric.hosts:
            agent = host.agent
            register = getattr(agent, "register_instruments", None)
            if register is not None:
                register(registry)
        shared_register = getattr(ctx.shared, "register_instruments", None)
        if shared_register is not None:
            shared_register(registry)
    return registry


def _register_dataplane(
    registry: "InstrumentRegistry", ctx: "SimContext", *, sample_ports: bool
) -> None:
    """Stage-ledger gauges for generic-engine (:class:`ProgramQueue`)
    ports; a no-op when every port runs a fused reference queue."""
    engine_ports = [
        port
        for port in ctx.fabric.all_ports()
        if getattr(port.queue, "state", None) is not None
    ]
    if not engine_ports:
        return
    states = [port.queue.state for port in engine_ports]
    for stage in (
        "classified",
        "marked",
        "admitted",
        "dropped_incoming",
        "evicted",
        "scheduled",
    ):
        registry.gauge(
            f"dataplane.{stage}",
            lambda s=stage: sum(getattr(st, s) for st in states),
        )
    if sample_ports:
        for port in engine_ports:
            registry.gauge(
                "dataplane.marked",
                lambda st=port.queue.state: st.marked,
                hop=port.hop_index,
                port=port.name,
            )


def _register_faults(registry: "InstrumentRegistry", ctx: "SimContext") -> None:
    """Fault-layer gauges: per-hop injected drops from the fabric's
    separate fault ledger plus the injector's own counters
    (``fault.drops{reason=}``, ``fault.links_down``, ...)."""
    fabric = ctx.fabric
    for hop in sorted(getattr(fabric, "fault_drops_by_hop", {})):
        registry.gauge(
            "fault.drops_by_hop",
            lambda h=hop: fabric.fault_drops_by_hop.get(h, 0),
            hop=hop,
        )
    register = getattr(ctx.faults, "register_instruments", None)
    if register is not None:
        register(registry)


def _register_collector(registry: "InstrumentRegistry", collector) -> None:
    registry.gauge(
        "flows.active", lambda: collector.n_flows - collector.n_completed
    )
    registry.gauge("flows.completed", lambda: collector.n_completed)
    registry.gauge("pkts.injected", lambda: collector.data_pkts_injected)
    registry.gauge("pkts.delivered", lambda: collector.data_pkts_delivered)
    registry.gauge("pkts.retransmitted", lambda: collector.data_pkts_retransmitted)
    registry.gauge("pkts.pending", lambda: collector.pkts_pending)
    registry.gauge("control.pkts", lambda: collector.control_pkts_sent)
    registry.gauge("jobs.seen", lambda: collector.n_jobs_seen)
    registry.gauge("jobs.drained", lambda: collector.n_jobs_drained)


def _register_port(registry: "InstrumentRegistry", port: "Port") -> None:
    labels = {"hop": port.hop_index, "port": port.name}
    registry.gauge("port.qlen_bytes", lambda: port.queue.bytes_queued, **labels)
    registry.gauge("port.qlen_pkts", lambda: len(port.queue), **labels)
    registry.gauge("port.qlen_max_bytes", lambda: port.max_qlen_bytes, **labels)
    registry.gauge("port.qlen_max_pkts", lambda: port.max_qlen_pkts, **labels)


def _register_link_util(
    registry: "InstrumentRegistry", ctx: "SimContext", port: "Port"
) -> None:
    # Utilization over the window since the previous snapshot: delta of
    # bytes serialized divided by what the link could have carried.  The
    # closure keeps its own (bytes, time) anchor, so the first reading
    # covers start-of-run -> first sample.
    prev = {"bytes": port.bytes_sent, "t": ctx.env.now}

    def util() -> float:
        now = ctx.env.now
        dt = now - prev["t"]
        sent = port.bytes_sent
        if dt <= 0:
            return 0.0
        frac = (sent - prev["bytes"]) * 8.0 / (port.rate_bps * dt)
        prev["bytes"] = sent
        prev["t"] = now
        return frac

    registry.gauge("link.util", util, hop=port.hop_index, port=port.name)
