"""Named instruments: counters, gauges and histograms with label sets.

One :class:`InstrumentRegistry` lives on every run's
:class:`~repro.sim.context.SimContext` (``ctx.obs``).  Components
register instruments against it under dotted names plus a label set —
``port.qlen_bytes{hop=4,port=tor0.down.h5}``,
``phost.tokens.outstanding{src=h12}`` — and samplers/exporters consume
them uniformly without knowing what produced them.

The overhead contract: *registration is free until something reads*.
Gauges wrap a callable that is only evaluated when a sink snapshots the
registry, so a run with instruments registered but no sampler attached
does zero extra work on the hot path.  Counters are one attribute
increment; histograms one ``frexp`` plus a dict bump — both are meant
for cold paths (drops, violations) or for explicitly opt-in profiling.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Optional

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Instrument",
    "InstrumentRegistry",
    "instrument_key",
]


def instrument_key(name: str, labels: Dict[str, object]) -> str:
    """Canonical ``name{k=v,...}`` form; labels sorted by key."""
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


class Instrument:
    """Common shape of every registered instrument."""

    kind = "instrument"
    __slots__ = ("name", "labels", "key")

    def __init__(self, name: str, labels: Dict[str, object]) -> None:
        self.name = name
        self.labels = dict(labels)
        self.key = instrument_key(name, labels)

    def read(self) -> float:  # pragma: no cover - abstract
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}({self.key})"


class Counter(Instrument):
    """Monotonic event count; incremented by the instrumented code."""

    kind = "counter"
    __slots__ = ("value",)

    def __init__(self, name: str, labels: Dict[str, object]) -> None:
        super().__init__(name, labels)
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n

    def read(self) -> float:
        return float(self.value)


class Gauge(Instrument):
    """A pull-based value: ``fn()`` is evaluated only at snapshot time."""

    kind = "gauge"
    __slots__ = ("fn",)

    def __init__(self, name: str, labels: Dict[str, object], fn: Callable[[], float]) -> None:
        super().__init__(name, labels)
        self.fn = fn

    def read(self) -> float:
        return float(self.fn())


class Histogram(Instrument):
    """Log2-bucketed histogram of observed values.

    Bucket ``e`` holds values ``v`` with ``2**(e-1) <= v < 2**e``
    (``frexp`` exponent); zero and negatives land in a dedicated bucket.
    Coarse on purpose: good enough to rank event handlers and spot
    multi-modal timings without picking bucket edges per metric.
    """

    kind = "histogram"
    __slots__ = ("buckets", "count", "total", "min", "max")

    def __init__(self, name: str, labels: Dict[str, object]) -> None:
        super().__init__(name, labels)
        self.buckets: Dict[Optional[int], int] = {}
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        bucket: Optional[int]
        if value > 0.0:
            bucket = math.frexp(value)[1]
        else:
            bucket = None
        self.buckets[bucket] = self.buckets.get(bucket, 0) + 1
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def read(self) -> float:
        """Snapshot value of a histogram is its observation count."""
        return float(self.count)

    def to_dict(self) -> Dict[str, object]:
        return {
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": None if self.count == 0 else self.min,
            "max": None if self.count == 0 else self.max,
            "buckets": {
                ("<=0" if e is None else f"2^{e}"): n
                for e, n in sorted(
                    self.buckets.items(), key=lambda kv: (-1000 if kv[0] is None else kv[0])
                )
            },
        }


class InstrumentRegistry:
    """All instruments of one run, keyed by canonical name+labels.

    ``counter``/``gauge``/``histogram`` are get-or-create: asking twice
    for the same key returns the same object (so instrumented code never
    needs to coordinate), but asking for an existing key with a
    *different* instrument kind is a naming bug and raises.  Gauges are
    the exception — re-registering replaces the callable, because a
    component rebuilt mid-run (e.g. a sampler attached late) must be
    able to repoint its gauges at live objects.
    """

    def __init__(self) -> None:
        self._instruments: Dict[str, Instrument] = {}

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def counter(self, name: str, **labels: object) -> Counter:
        return self._get_or_create(Counter, name, labels)

    def gauge(self, name: str, fn: Callable[[], float], **labels: object) -> Gauge:
        key = instrument_key(name, labels)
        existing = self._instruments.get(key)
        if existing is not None:
            if not isinstance(existing, Gauge):
                raise ValueError(
                    f"instrument {key!r} already registered as {existing.kind}"
                )
            existing.fn = fn
            return existing
        gauge = Gauge(name, labels, fn)
        self._instruments[key] = gauge
        return gauge

    def histogram(self, name: str, **labels: object) -> Histogram:
        return self._get_or_create(Histogram, name, labels)

    def _get_or_create(self, cls, name: str, labels: Dict[str, object]):
        key = instrument_key(name, labels)
        existing = self._instruments.get(key)
        if existing is not None:
            if not isinstance(existing, cls):
                raise ValueError(
                    f"instrument {key!r} already registered as {existing.kind}"
                )
            return existing
        instrument = cls(name, labels)
        self._instruments[key] = instrument
        return instrument

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def get(self, name: str, **labels: object) -> Optional[Instrument]:
        return self._instruments.get(instrument_key(name, labels))

    def instruments(self) -> List[Instrument]:
        """All instruments, sorted by canonical key."""
        return [self._instruments[k] for k in sorted(self._instruments)]

    def with_prefix(self, prefix: str) -> List[Instrument]:
        return [i for i in self.instruments() if i.name.startswith(prefix)]

    def snapshot(self) -> Dict[str, float]:
        """Evaluate every counter and gauge; histograms report counts.

        This is the sampler's entry point: one call yields one row of
        the columnar time series.
        """
        return {key: self._instruments[key].read() for key in sorted(self._instruments)}

    def __len__(self) -> int:
        return len(self._instruments)

    def __contains__(self, key: str) -> bool:
        return key in self._instruments

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        kinds: Dict[str, int] = {}
        for i in self._instruments.values():
            kinds[i.kind] = kinds.get(i.kind, 0) + 1
        inner = ", ".join(f"{k}={v}" for k, v in sorted(kinds.items()))
        return f"InstrumentRegistry({len(self)} instruments: {inner})"
