"""Periodic registry snapshots into a columnar time series.

A :class:`PeriodicSampler` is an instrumentation hook: bound to a run's
:class:`~repro.sim.context.SimContext` it schedules a self-rescheduling
sim-time timer that snapshots every counter and gauge in the run's
instrument registry (``ctx.obs``) into a
:class:`~repro.metrics.timeseries.ColumnarSeries` — queue depths, link
utilization, active flows, token state, whatever was registered.

Scheduling contract (exercised in ``tests/obs/test_sampler.py``):

* the first sample fires at ``max(now, burn_in)`` — attaching mid-run
  simply starts sampling from the current time;
* a period longer than the run yields at most the terminal sample taken
  in :meth:`finalize` (never a crash);
* a burn-in beyond the end of the run yields an empty, well-formed
  series (the terminal sample respects burn-in too);
* :meth:`finalize` always cancels the pending timer, so no dangling
  event survives the run.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.metrics.timeseries import ColumnarSeries
from repro.sim.engine import EventLoop

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.registry import InstrumentRegistry
    from repro.sim.context import SimContext

__all__ = ["PeriodicSampler"]


class PeriodicSampler:
    """Self-rescheduling sim-time sampler over an instrument registry."""

    def __init__(
        self,
        period: float,
        burn_in: float = 0.0,
        registry: Optional["InstrumentRegistry"] = None,
    ) -> None:
        if period <= 0:
            raise ValueError("sample period must be positive")
        if burn_in < 0:
            raise ValueError("burn-in must be non-negative")
        self.period = period
        self.burn_in = burn_in
        self.registry = registry  # None: use ctx.obs at bind time
        self.series = ColumnarSeries()
        self.samples_taken = 0
        self._env = None
        self._timer: Optional[list] = None

    # ------------------------------------------------------------------
    # Hook wiring
    # ------------------------------------------------------------------
    def bind(self, ctx: "SimContext") -> "PeriodicSampler":
        self._env = ctx.env
        if self.registry is None:
            self.registry = ctx.obs
        first = max(ctx.env.now, self.burn_in)
        self._timer = ctx.env.schedule_at(first, self._tick)
        return self

    def finalize(self, ctx: "SimContext") -> None:
        """Cancel the timer and take a terminal sample (post burn-in)."""
        self.stop()
        if self._env is not None and self._env.now >= self.burn_in:
            if not self.series.times or self.series.times[-1] != self._env.now:
                self.sample()

    def stop(self) -> None:
        EventLoop.cancel(self._timer)
        self._timer = None

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------
    def _tick(self) -> None:
        self.sample()
        self._timer = self._env.schedule(self.period, self._tick)

    def sample(self) -> None:
        """Snapshot the registry into one series row, timestamped now."""
        self.series.append(self._env.now, self.registry.snapshot())
        self.samples_taken += 1

    # ------------------------------------------------------------------
    @property
    def active(self) -> bool:
        """True while the next tick is scheduled."""
        return EventLoop.is_pending(self._timer)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"PeriodicSampler(period={self.period:g}, burn_in={self.burn_in:g}, "
            f"samples={self.samples_taken})"
        )
