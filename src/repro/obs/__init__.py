"""repro.obs — run-wide observability for the simulator.

The division of labor among the three instrumentation packages:

* ``repro.validate`` answers *"is the simulation correct?"* — invariant
  auditors that must never change results;
* ``repro.trace`` answers *"what happened to this packet/flow?"* —
  a bounded ring buffer of discrete events for debugging;
* ``repro.obs`` (this package) answers *"what is the run doing, and how
  fast?"* — continuous signals: an instrument registry every component
  can publish to, periodic samplers producing time series, an
  event-loop profiler, and exporters (JSONL, Chrome trace, text
  summaries).

Entry points: put an :class:`ObservabilityConfig` on
``ExperimentSpec.observability`` (or pass ``--obs`` flags on the CLI)
and read the resulting :class:`ObsReport` off the experiment result.
See ``docs/OBSERVABILITY.md``.
"""

from repro.obs.chrome import ChromeTraceError, ChromeTraceSink, validate_chrome_trace
from repro.obs.config import ObservabilityConfig
from repro.obs.export import series_to_jsonl, write_text
from repro.obs.instruments import register_run_instruments
from repro.obs.profiler import EventLoopProfiler, Heartbeat
from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    Instrument,
    InstrumentRegistry,
    instrument_key,
)
from repro.obs.report import (
    DEFAULT_THRESHOLDS,
    MetricDelta,
    RunDiff,
    Threshold,
    diff_entries,
    render_dashboard,
    validate_dashboard,
)
from repro.obs.sampler import PeriodicSampler
from repro.obs.store import (
    LedgerCollisionError,
    LedgerEntry,
    RunLedger,
    family_hash,
    result_metrics,
    run_meta,
    spec_hash,
    stamp_result_meta,
)
from repro.obs.telemetry import ObsReport, Telemetry

__all__ = [
    "ChromeTraceError",
    "ChromeTraceSink",
    "Counter",
    "DEFAULT_THRESHOLDS",
    "EventLoopProfiler",
    "Gauge",
    "Heartbeat",
    "Histogram",
    "Instrument",
    "InstrumentRegistry",
    "LedgerCollisionError",
    "LedgerEntry",
    "MetricDelta",
    "ObsReport",
    "ObservabilityConfig",
    "PeriodicSampler",
    "RunDiff",
    "RunLedger",
    "Telemetry",
    "Threshold",
    "diff_entries",
    "family_hash",
    "instrument_key",
    "register_run_instruments",
    "render_dashboard",
    "result_metrics",
    "run_meta",
    "series_to_jsonl",
    "spec_hash",
    "stamp_result_meta",
    "validate_chrome_trace",
    "validate_dashboard",
    "write_text",
]
