"""repro.obs — run-wide observability for the simulator.

The division of labor among the three instrumentation packages:

* ``repro.validate`` answers *"is the simulation correct?"* — invariant
  auditors that must never change results;
* ``repro.trace`` answers *"what happened to this packet/flow?"* —
  a bounded ring buffer of discrete events for debugging;
* ``repro.obs`` (this package) answers *"what is the run doing, and how
  fast?"* — continuous signals: an instrument registry every component
  can publish to, periodic samplers producing time series, an
  event-loop profiler, and exporters (JSONL, Chrome trace, text
  summaries).

Entry points: put an :class:`ObservabilityConfig` on
``ExperimentSpec.observability`` (or pass ``--obs`` flags on the CLI)
and read the resulting :class:`ObsReport` off the experiment result.
See ``docs/OBSERVABILITY.md``.
"""

from repro.obs.chrome import ChromeTraceSink, validate_chrome_trace
from repro.obs.config import ObservabilityConfig
from repro.obs.export import series_to_jsonl, write_text
from repro.obs.instruments import register_run_instruments
from repro.obs.profiler import EventLoopProfiler, Heartbeat
from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    Instrument,
    InstrumentRegistry,
    instrument_key,
)
from repro.obs.sampler import PeriodicSampler
from repro.obs.telemetry import ObsReport, Telemetry

__all__ = [
    "ChromeTraceSink",
    "Counter",
    "EventLoopProfiler",
    "Gauge",
    "Heartbeat",
    "Histogram",
    "Instrument",
    "InstrumentRegistry",
    "ObsReport",
    "ObservabilityConfig",
    "PeriodicSampler",
    "Telemetry",
    "instrument_key",
    "register_run_instruments",
    "series_to_jsonl",
    "validate_chrome_trace",
    "write_text",
]
