"""Cross-run regression diffs and the static HTML dashboard.

Consumes :class:`repro.obs.store.RunLedger` entries — never live
simulation objects — so everything here re-renders from the ledger
alone, with no re-simulation.

Two halves:

* :func:`diff_entries` — per-metric deltas between two ledger entries
  under explicit :class:`Threshold`\\ s.  The default set mirrors the
  ``scripts/bench.py --check`` gate: wall clock may drift up to 25%
  (and is *advisory* — machines differ), but exact pins
  (``events_processed``) must be byte-identical whenever the two
  entries share a spec hash.  Seed-to-seed comparisons (same family,
  different spec hash) only enforce the statistical thresholds.
* :func:`render_dashboard` — a single self-contained HTML file with
  inline SVG: slowdown curves per workload, per-port queue-depth
  heatmaps from stored ColumnarSeries, figure acceptance tables
  (figR/figT...), the bench events/s trajectory, and the per-family
  regression diffs.  :func:`validate_dashboard` is the CI check: every
  referenced artifact exists, every panel and table is non-empty.

Colors follow the repository's fixed categorical assignment (protocol →
slot, never re-painted when a filter changes the series count) using a
CVD-validated palette; magnitude (queue depth) uses a single-hue
sequential ramp.  Both light and dark surfaces are styled.
"""

from __future__ import annotations

import html
import json
import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.obs.store import LedgerEntry, RunLedger

__all__ = [
    "Threshold",
    "MetricDelta",
    "RunDiff",
    "DEFAULT_THRESHOLDS",
    "diff_entries",
    "render_dashboard",
    "validate_dashboard",
]


# ----------------------------------------------------------------------
# Regression diff
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class Threshold:
    """Tolerance for one metric when comparing candidate vs baseline.

    ``rel``/``abs_`` bound how far the candidate may move in the *worse*
    direction (``higher_is_worse``) before the delta counts as a
    regression; improvements never gate.  ``exact`` metrics must not
    drift at all, but only when ``same_spec_only`` is satisfied (event
    counts are pinned per spec, not across seeds).  ``advisory`` rows
    are reported and highlighted but never fail a gate (wall clock).
    """

    metric: str
    rel: Optional[float] = None
    abs_: Optional[float] = None
    higher_is_worse: bool = True
    exact: bool = False
    same_spec_only: bool = False
    advisory: bool = False


#: Mirrors scripts/bench.py --check: 25% wall tolerance (advisory here),
#: exact events_processed pin for same-spec comparisons, and bounded
#: drift on the headline statistics for cross-seed comparisons.
DEFAULT_THRESHOLDS: Tuple[Threshold, ...] = (
    Threshold("mean_slowdown", rel=0.25),
    Threshold("p99_slowdown", rel=0.50),
    Threshold("nfct", rel=0.25),
    Threshold("completion_rate", abs_=0.02, higher_is_worse=False),
    Threshold("goodput_gbps_per_host", rel=0.25, higher_is_worse=False),
    Threshold("drop_rate", abs_=0.02),
    Threshold("duration", rel=0.25),
    Threshold("events_processed", exact=True, same_spec_only=True),
    Threshold("wall_seconds", rel=0.25, advisory=True),
)


@dataclass(frozen=True)
class MetricDelta:
    """One compared metric between baseline and candidate."""

    metric: str
    baseline: Optional[float]
    candidate: Optional[float]
    delta: Optional[float]
    rel_delta: Optional[float]
    regressed: bool
    advisory: bool
    note: str = ""


@dataclass
class RunDiff:
    """All compared metrics between two ledger entries."""

    baseline: LedgerEntry
    candidate: LedgerEntry
    rows: List[MetricDelta] = field(default_factory=list)

    @property
    def same_spec(self) -> bool:
        return self.baseline.spec_hash == self.candidate.spec_hash

    @property
    def regressions(self) -> List[MetricDelta]:
        return [r for r in self.rows if r.regressed and not r.advisory]

    @property
    def ok(self) -> bool:
        return not self.regressions

    def summary(self) -> str:
        lines = [
            f"diff {self.baseline.key} -> {self.candidate.key} "
            f"({'same spec' if self.same_spec else 'cross-spec/seed'}): "
            f"{'OK' if self.ok else 'REGRESSED'} "
            f"({len(self.regressions)} regressions)"
        ]
        for row in self.rows:
            verdict = "ok"
            if row.regressed:
                verdict = "ADVISORY" if row.advisory else "REGRESSED"
            rel = "" if row.rel_delta is None else f" ({row.rel_delta:+.1%})"
            lines.append(
                f"  [{verdict:>9s}] {row.metric}: "
                f"{_fmt(row.baseline)} -> {_fmt(row.candidate)}{rel}"
                + (f"  {row.note}" if row.note else "")
            )
        return "\n".join(lines)


def _metric_value(entry: LedgerEntry, metric: str) -> Optional[float]:
    value = entry.metrics.get(metric)
    if value is None or isinstance(value, (dict, list, str)):
        return None
    value = float(value)
    return None if math.isnan(value) else value


def diff_entries(
    baseline: LedgerEntry,
    candidate: LedgerEntry,
    thresholds: Sequence[Threshold] = DEFAULT_THRESHOLDS,
) -> RunDiff:
    """Per-metric deltas of ``candidate`` against ``baseline``."""
    diff = RunDiff(baseline=baseline, candidate=candidate)
    same_spec = diff.same_spec
    for th in thresholds:
        a = _metric_value(baseline, th.metric)
        b = _metric_value(candidate, th.metric)
        if a is None or b is None:
            diff.rows.append(
                MetricDelta(th.metric, a, b, None, None, False, th.advisory, "missing")
            )
            continue
        delta = b - a
        rel = delta / abs(a) if a else None
        regressed = False
        note = ""
        if th.exact:
            if th.same_spec_only and not same_spec:
                note = "not pinned across specs"
            elif delta != 0:
                regressed = True
                note = "exact pin drifted"
        else:
            worse = delta if th.higher_is_worse else -delta
            if th.abs_ is not None and worse > th.abs_:
                regressed = True
                note = f"moved {worse:+.4g} (> {th.abs_:g} abs)"
            elif th.rel is not None and a and worse / abs(a) > th.rel:
                regressed = True
                note = f"moved {worse / abs(a):+.1%} (> {th.rel:.0%})"
        diff.rows.append(
            MetricDelta(th.metric, a, b, delta, rel, regressed, th.advisory, note)
        )
    return diff


# ----------------------------------------------------------------------
# Formatting / palette
# ----------------------------------------------------------------------

def _fmt(value: Any) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        if value != value:
            return "nan"
        if value == 0:
            return "0"
        if abs(value) >= 10000 or abs(value) < 0.001:
            return f"{value:.3g}"
        if abs(value) >= 100:
            return f"{value:,.0f}"
        return f"{value:.3f}"
    if isinstance(value, int) and abs(value) >= 10000:
        return f"{value:,d}"
    return str(value)


def _esc(value: Any) -> str:
    return html.escape(str(value))


#: Fixed categorical slot per protocol — color follows the entity, so a
#: dashboard with only two protocols still paints them their own hues.
_PROTOCOL_SLOTS = {"phost": 1, "pfabric": 2, "fastpass": 3, "dctcp": 4}
_MAX_SLOTS = 8

#: Validated categorical palette (light / dark steps of the same hues).
_SERIES_LIGHT = [
    "#2a78d6", "#eb6834", "#1baf7a", "#eda100",
    "#e87ba4", "#008300", "#4a3aa7", "#e34948",
]
_SERIES_DARK = [
    "#3987e5", "#d95926", "#199e70", "#c98500",
    "#d55181", "#008300", "#9085e9", "#e66767",
]

#: Single-hue sequential ramp (blue, light→dark) for magnitude.
_SEQ_RAMP = [
    "#cde2fb", "#b7d3f6", "#9ec5f4", "#86b6ef", "#6da7ec", "#5598e7",
    "#3987e5", "#2a78d6", "#256abf", "#1c5cab", "#184f95", "#104281",
    "#0d366b",
]


def _slot_for(protocol: str, assigned: Dict[str, int]) -> int:
    if protocol in _PROTOCOL_SLOTS:
        return _PROTOCOL_SLOTS[protocol]
    if protocol not in assigned:
        used = set(_PROTOCOL_SLOTS.values()) | set(assigned.values())
        free = [s for s in range(1, _MAX_SLOTS + 1) if s not in used]
        assigned[protocol] = free[0] if free else _MAX_SLOTS
    return assigned[protocol]


# ----------------------------------------------------------------------
# SVG panels
# ----------------------------------------------------------------------

def _ticks(lo: float, hi: float, n: int = 4) -> List[float]:
    if hi <= lo:
        return [lo]
    step = (hi - lo) / n
    return [lo + i * step for i in range(n + 1)]


def _line_panel(
    panel_id: str,
    series: List[Tuple[str, int, List[Tuple[float, float]]]],
    x_label: str,
    y_label: str,
    width: int = 520,
    height: int = 250,
) -> Tuple[str, int]:
    """One-axis SVG line/point chart; returns ``(html, n_points)``."""
    ml, mr, mt, mb = 56, 96, 12, 36
    pw, ph = width - ml - mr, height - mt - mb
    pts = [p for _, _, ps in series for p in ps if math.isfinite(p[0]) and math.isfinite(p[1])]
    if not pts:
        return "", 0
    xs = [p[0] for p in pts]
    ys = [p[1] for p in pts]
    xlo, xhi = min(xs), max(xs)
    ylo, yhi = min(ys), max(ys)
    if xhi == xlo:
        xlo, xhi = xlo - 0.5, xhi + 0.5
    if yhi == ylo:
        ylo, yhi = ylo - max(abs(ylo) * 0.1, 0.5), yhi + max(abs(yhi) * 0.1, 0.5)
    else:
        pad = (yhi - ylo) * 0.08
        ylo, yhi = ylo - pad, yhi + pad

    def sx(x: float) -> float:
        return ml + (x - xlo) / (xhi - xlo) * pw

    def sy(y: float) -> float:
        return mt + ph - (y - ylo) / (yhi - ylo) * ph

    parts = [
        f'<svg class="panel" data-points="{len(pts)}" id="{_esc(panel_id)}" '
        f'viewBox="0 0 {width} {height}" width="{width}" height="{height}" '
        f'role="img" aria-label="{_esc(y_label)} vs {_esc(x_label)}">'
    ]
    for ty in _ticks(ylo, yhi):
        y = sy(ty)
        parts.append(
            f'<line class="grid" x1="{ml}" y1="{y:.1f}" x2="{ml + pw}" y2="{y:.1f}"/>'
            f'<text class="tick" x="{ml - 6}" y="{y + 3:.1f}" text-anchor="end">{_fmt(ty)}</text>'
        )
    for tx in _ticks(xlo, xhi):
        x = sx(tx)
        parts.append(
            f'<text class="tick" x="{x:.1f}" y="{mt + ph + 16}" text-anchor="middle">{_fmt(tx)}</text>'
        )
    parts.append(
        f'<line class="axis" x1="{ml}" y1="{mt + ph}" x2="{ml + pw}" y2="{mt + ph}"/>'
        f'<text class="axis-label" x="{ml + pw / 2:.0f}" y="{height - 4}" '
        f'text-anchor="middle">{_esc(x_label)}</text>'
        f'<text class="axis-label" transform="rotate(-90)" x="{-(mt + ph / 2):.0f}" '
        f'y="12" text-anchor="middle">{_esc(y_label)}</text>'
    )
    for name, slot, ps in series:
        good = sorted(
            (p for p in ps if math.isfinite(p[0]) and math.isfinite(p[1])),
            key=lambda p: p[0],
        )
        if not good:
            continue
        coords = " ".join(f"{sx(x):.1f},{sy(y):.1f}" for x, y in good)
        if len(good) > 1:
            parts.append(f'<polyline class="line s{slot}" points="{coords}"/>')
        for x, y in good:
            parts.append(
                f'<circle class="dot s{slot}" cx="{sx(x):.1f}" cy="{sy(y):.1f}" r="4">'
                f"<title>{_esc(name)}: {x_label}={_fmt(x)}, {y_label}={_fmt(y)}</title>"
                f"</circle>"
            )
        lx, ly = good[-1]
        parts.append(
            f'<text class="dlabel" x="{sx(lx) + 8:.1f}" y="{sy(ly) + 3:.1f}">{_esc(name)}</text>'
        )
    parts.append("</svg>")
    legend = "".join(
        f'<span class="chip"><span class="swatch s{slot}"></span>{_esc(name)}</span>'
        for name, slot, _ in series
    )
    return f'<div class="legend">{legend}</div>' + "".join(parts), len(pts)


def _heatmap_panel(
    panel_id: str,
    series,
    column_prefix: str = "port.qlen_bytes{",
    max_rows: int = 16,
    max_bins: int = 48,
) -> Tuple[str, int, str]:
    """Per-port queue-depth heatmap from a ColumnarSeries.

    Returns ``(html, n_cells, note)``; the note records any row cap so a
    truncated view never silently claims full coverage.
    """
    cols = [
        name
        for name in series.names()
        if name.startswith(column_prefix) and "max" not in name
    ]
    if not cols or not series.times:
        return "", 0, ""

    def peak(name: str) -> float:
        vals = [v for v in series.columns[name] if not math.isnan(v)]
        return max(vals) if vals else 0.0

    ranked = sorted(cols, key=lambda c: (-peak(c), c))
    note = ""
    if len(ranked) > max_rows:
        note = f"showing the {max_rows} deepest of {len(ranked)} ports"
        ranked = ranked[:max_rows]
    times = series.times
    n_bins = min(max_bins, len(times))
    vmax = max((peak(c) for c in ranked), default=0.0)
    cell_w, cell_h, ml, mt = 11, 13, 190, 6
    width = ml + n_bins * cell_w + 10
    height = mt + len(ranked) * cell_h + 30
    parts = []
    n_cells = 0
    for r, name in enumerate(ranked):
        label = name[len(column_prefix):].rstrip("}")
        y = mt + r * cell_h
        parts.append(
            f'<text class="tick" x="{ml - 6}" y="{y + cell_h - 3}" '
            f'text-anchor="end">{_esc(label[:28])}</text>'
        )
        col = series.columns[name]
        for b in range(n_bins):
            lo = b * len(times) // n_bins
            hi = max(lo + 1, (b + 1) * len(times) // n_bins)
            vals = [col[i] for i in range(lo, hi) if not math.isnan(col[i])]
            if not vals:
                continue
            v = max(vals)  # queue depth: the bin's high-water mark
            n_cells += 1
            if v <= 0 or vmax <= 0:
                fill = "var(--surface-2)"
            else:
                idx = min(len(_SEQ_RAMP) - 1, int(v / vmax * (len(_SEQ_RAMP) - 1)))
                fill = _SEQ_RAMP[idx]
            t0 = times[lo]
            parts.append(
                f'<rect x="{ml + b * cell_w}" y="{y}" width="{cell_w - 1}" '
                f'height="{cell_h - 1}" fill="{fill}">'
                f"<title>{_esc(label)} @ t={t0 * 1e3:.3f}ms: {_fmt(v)} B</title></rect>"
            )
    parts.append(
        f'<text class="tick" x="{ml}" y="{height - 14}">t={times[0] * 1e3:.2f}ms</text>'
        f'<text class="tick" x="{width - 8}" y="{height - 14}" text-anchor="end">'
        f"t={times[-1] * 1e3:.2f}ms</text>"
        f'<text class="axis-label" x="{ml}" y="{height - 2}">queue depth 0 → {_fmt(vmax)} B '
        f"(light → dark)</text>"
    )
    svg = (
        f'<svg class="panel" data-points="{n_cells}" id="{_esc(panel_id)}" '
        f'viewBox="0 0 {width} {height}" width="{width}" height="{height}" '
        f'role="img" aria-label="per-port queue depth heatmap">' + "".join(parts) + "</svg>"
    )
    if n_cells == 0:
        return "", 0, ""
    return svg, n_cells, note


def _html_table(columns: List[str], rows: List[List[Any]], *, classes: str = "") -> str:
    head = "".join(f"<th>{_esc(c)}</th>" for c in columns)
    body = []
    for row in rows:
        cells = "".join(
            cell if isinstance(cell, _Raw) else f"<td>{_esc(_fmt(cell))}</td>"
            for cell in row
        )
        body.append(f"<tr>{cells}</tr>")
    return (
        f'<table class="{classes}" data-rows="{len(rows)}">'
        f"<thead><tr>{head}</tr></thead><tbody>{''.join(body)}</tbody></table>"
    )


class _Raw(str):
    """Pre-rendered table cell (already HTML)."""


# ----------------------------------------------------------------------
# Dashboard
# ----------------------------------------------------------------------

_CSS = """
:root {
  color-scheme: light;
  --surface-1: #fcfcfb; --surface-2: #f0efec;
  --text-primary: #0b0b0b; --text-secondary: #52514e; --text-muted: #8a887f;
  --grid: #e4e2dc; --axis: #b5b2a7;
  --good: #008300; --bad: #e34948;
  @SERIES_LIGHT@
}
@media (prefers-color-scheme: dark) {
  :root {
    color-scheme: dark;
    --surface-1: #1a1a19; --surface-2: #383835;
    --text-primary: #ffffff; --text-secondary: #c3c2b7; --text-muted: #8a887f;
    --grid: #33322f; --axis: #52514e;
    --good: #3dbd3d; --bad: #e66767;
    @SERIES_DARK@
  }
}
body { background: var(--surface-1); color: var(--text-primary);
  font: 14px/1.45 system-ui, sans-serif; margin: 24px auto; max-width: 1080px;
  padding: 0 16px; }
h1 { font-size: 20px; } h2 { font-size: 16px; margin-top: 32px; }
h3 { font-size: 13px; color: var(--text-secondary); font-weight: 600; }
.sub { color: var(--text-secondary); }
.tiles { display: flex; gap: 12px; flex-wrap: wrap; margin: 16px 0; }
.tile { background: var(--surface-2); border-radius: 8px; padding: 10px 16px; }
.tile .v { font-size: 22px; font-weight: 650; }
.tile .k { font-size: 11px; color: var(--text-secondary); text-transform: uppercase;
  letter-spacing: 0.04em; }
table { border-collapse: collapse; margin: 8px 0 16px; font-size: 12.5px; }
th { text-align: left; color: var(--text-secondary); font-weight: 600; }
th, td { padding: 4px 10px 4px 0; border-bottom: 1px solid var(--grid); }
svg.panel { display: block; margin: 4px 0 20px; max-width: 100%; }
svg text { fill: var(--text-secondary); font: 10.5px system-ui, sans-serif; }
svg .axis-label { fill: var(--text-muted); font-size: 10px; }
svg .dlabel { fill: var(--text-secondary); font-weight: 600; }
svg .grid { stroke: var(--grid); stroke-width: 1; }
svg .axis { stroke: var(--axis); stroke-width: 1; }
svg .line { fill: none; stroke-width: 2; }
svg .dot { stroke: var(--surface-1); stroke-width: 2; }
.legend { display: flex; gap: 14px; flex-wrap: wrap; margin: 10px 0 2px;
  font-size: 12px; color: var(--text-secondary); }
.swatch { display: inline-block; width: 10px; height: 10px; border-radius: 2px;
  margin-right: 5px; }
.verdict-ok { color: var(--good); font-weight: 650; }
.verdict-bad { color: var(--bad); font-weight: 650; }
.note { color: var(--text-muted); font-size: 12px; }
pre { background: var(--surface-2); padding: 10px; border-radius: 6px;
  overflow-x: auto; font-size: 11.5px; }
code { font-size: 12px; }
""".replace(
    "@SERIES_LIGHT@",
    "\n  ".join(f"--series-{i + 1}: {c};" for i, c in enumerate(_SERIES_LIGHT)),
).replace(
    "@SERIES_DARK@",
    "\n    ".join(f"--series-{i + 1}: {c};" for i, c in enumerate(_SERIES_DARK)),
)

_SERIES_CSS = "\n".join(
    f"svg .s{i + 1} {{ stroke: var(--series-{i + 1}); }}\n"
    f"svg circle.s{i + 1} {{ fill: var(--series-{i + 1}); }}\n"
    f".swatch.s{i + 1} {{ background: var(--series-{i + 1}); }}"
    for i in range(_MAX_SLOTS)
)


def _runs_table(entries: List[LedgerEntry]) -> str:
    rows = []
    for e in entries:
        m, x = e.meta, e.metrics
        audit = e.audit
        if audit is None:
            audit_cell = _Raw('<td class="note">-</td>')
        elif audit.get("ok"):
            audit_cell = _Raw('<td><span class="verdict-ok">✓ pass</span></td>')
        else:
            audit_cell = _Raw('<td><span class="verdict-bad">✗ fail</span></td>')
        rows.append(
            [
                _Raw(f"<td><code>{_esc(e.key)}</code></td>"),
                m.get("protocol"),
                m.get("workload"),
                m.get("load"),
                m.get("seed"),
                x.get("mean_slowdown"),
                x.get("p99_slowdown"),
                x.get("drops_total"),
                x.get("events_processed"),
                audit_cell,
                m.get("git_revision") or "-",
            ]
        )
    return _html_table(
        ["key", "protocol", "workload", "load", "seed", "mean slowdown",
         "p99 slowdown", "drops", "events", "audit", "git"],
        rows,
    )


def _slowdown_section(entries: List[LedgerEntry]) -> Tuple[str, int]:
    by_workload: Dict[str, Dict[str, List[Tuple[float, float]]]] = {}
    for e in entries:
        wl = e.meta.get("workload", "?")
        proto = e.meta.get("protocol", "?")
        load = e.meta.get("load")
        slow = _metric_value(e, "mean_slowdown")
        if load is None or slow is None:
            continue
        by_workload.setdefault(wl, {}).setdefault(proto, []).append((float(load), slow))
    assigned: Dict[str, int] = {}
    chunks, total = [], 0
    for wl in sorted(by_workload):
        series = [
            (proto, _slot_for(proto, assigned), sorted(pts))
            for proto, pts in sorted(by_workload[wl].items())
        ]
        svg, n = _line_panel(f"slowdown-{wl}", series, "load", "mean slowdown")
        if n:
            chunks.append(f"<h3>{_esc(wl)}</h3>{svg}")
            total += n
    return "".join(chunks), total


def _heatmap_section(ledger: RunLedger, entries: List[LedgerEntry], max_heatmaps: int) -> Tuple[str, List[str]]:
    chunks: List[str] = []
    notes: List[str] = []
    with_series = [e for e in entries if e.has_series]
    if len(with_series) > max_heatmaps:
        notes.append(
            f"heatmaps limited to the {max_heatmaps} most recent of "
            f"{len(with_series)} runs with stored series"
        )
        with_series = with_series[-max_heatmaps:]
    for e in with_series:
        series = e.load_series()
        svg, n, note = _heatmap_panel(f"heatmap-{e.key.replace('/', '-')}", series)
        if not n:
            continue
        m = e.meta
        title = (
            f"{m.get('protocol')}/{m.get('workload')} load={m.get('load')} "
            f"seed={m.get('seed')} — <code>{_esc(e.key)}</code>"
        )
        chunks.append(f"<h3>{title}</h3>")
        if note:
            chunks.append(f'<p class="note">{_esc(note)}</p>')
        chunks.append(svg)
    return "".join(chunks), notes


def _figures_section(ledger: RunLedger, figures_dir: Optional[str]) -> str:
    chunks = []
    for name, doc in ledger.figures().items():
        cols = doc.get("columns", [])
        rows = [[row.get(c) for c in cols] for row in doc.get("rows", [])]
        if not rows:
            continue
        chunks.append(f"<h3>{_esc(name)} — {_esc(doc.get('title', ''))}</h3>")
        chunks.append(_html_table(cols, rows))
        for note in doc.get("notes", []):
            chunks.append(f'<p class="note">{_esc(note)}</p>')
    if figures_dir:
        for path in sorted(Path(figures_dir).glob("fig*.txt")):
            chunks.append(f"<h3>{_esc(path.name)}</h3><pre>{_esc(path.read_text())}</pre>")
    return "".join(chunks)


def _bench_section(ledger: RunLedger) -> Tuple[str, int]:
    reports = ledger.bench_reports()
    if len(reports) < 1:
        return "", 0
    per_proto: Dict[str, List[Tuple[float, float]]] = {}
    for i, rep in enumerate(reports):
        for name, row in rep.get("instances", {}).items():
            if not name.startswith("fig3-") or "events_per_sec" not in row:
                continue
            per_proto.setdefault(name[len("fig3-"):], []).append(
                (float(i + 1), float(row["events_per_sec"]))
            )
    if not per_proto:
        return "", 0
    assigned: Dict[str, int] = {}
    series = [
        (proto, _slot_for(proto, assigned), pts)
        for proto, pts in sorted(per_proto.items())
    ]
    svg, n = _line_panel("bench-trajectory", series, "bench run #", "events/s (fig3)")
    return svg, n


def _diff_section(ledger: RunLedger) -> str:
    chunks = []
    for family, members in sorted(ledger.families().items()):
        if len(members) < 2:
            continue
        baseline, candidate = members[-2], members[-1]
        diff = diff_entries(baseline, candidate)
        verdict = (
            '<span class="verdict-ok">✓ no unexpected regressions</span>'
            if diff.ok
            else f'<span class="verdict-bad">✗ {len(diff.regressions)} regressions</span>'
        )
        rows = []
        for r in diff.rows:
            if r.regressed:
                flag = "advisory" if r.advisory else "✗ regressed"
                cls = "note" if r.advisory else "verdict-bad"
            else:
                flag, cls = "✓ ok", "verdict-ok"
            rows.append(
                [
                    r.metric,
                    r.baseline,
                    r.candidate,
                    "-" if r.rel_delta is None else f"{r.rel_delta:+.2%}",
                    _Raw(f'<td><span class="{cls}">{_esc(flag)}</span></td>'),
                    r.note,
                ]
            )
        b, c = baseline.meta, candidate.meta
        chunks.append(
            f"<h3>{_esc(b.get('protocol'))}/{_esc(b.get('workload'))} "
            f"load={_esc(b.get('load'))}: seed {_esc(b.get('seed'))} → "
            f"seed {_esc(c.get('seed'))} {verdict}</h3>"
            f'<p class="note">baseline <code>{_esc(baseline.key)}</code> vs '
            f"candidate <code>{_esc(candidate.key)}</code>"
            f"{'' if diff.same_spec else ' (cross-seed: exact pins not enforced)'}</p>"
        )
        chunks.append(
            _html_table(
                ["metric", "baseline", "candidate", "rel Δ", "verdict", "note"], rows
            )
        )
    return "".join(chunks)


def _artifact_section(entries: List[LedgerEntry]) -> str:
    items = []
    for e in entries:
        for artifact in e.artifacts:
            items.append(
                f'<li><code data-artifact="{_esc(artifact)}">{_esc(artifact)}</code>'
                f' <span class="note">({_esc(e.key)})</span></li>'
            )
    if not items:
        return '<p class="note">no run artifacts recorded</p>'
    return f"<ul>{''.join(items)}</ul>"


def render_dashboard(
    ledger: RunLedger,
    out_path,
    *,
    title: str = "pHost repro — run ledger dashboard",
    figures_dir: Optional[str] = None,
    max_heatmaps: int = 4,
) -> Path:
    """Render the whole ledger into one static HTML file."""
    out_path = Path(out_path)
    entries = ledger.entries()
    slowdown_html, _ = _slowdown_section(entries)
    heatmap_html, heatmap_notes = _heatmap_section(ledger, entries, max_heatmaps)
    figures_html = _figures_section(ledger, figures_dir)
    bench_html, _ = _bench_section(ledger)
    diff_html = _diff_section(ledger)

    git = next(
        (e.meta.get("git_revision") for e in reversed(entries) if e.meta.get("git_revision")),
        None,
    )
    audits = [e for e in entries if e.audit is not None]
    audits_ok = sum(1 for e in audits if e.audit.get("ok"))
    tiles = [
        ("runs", str(len(entries))),
        ("protocols", str(len({e.meta.get("protocol") for e in entries}) if entries else 0)),
        ("audited", f"{audits_ok}/{len(audits)}" if audits else "0"),
        ("git", git or "?"),
    ]
    tiles_html = "".join(
        f'<div class="tile"><div class="v">{_esc(v)}</div>'
        f'<div class="k">{_esc(k)}</div></div>'
        for k, v in tiles
    )

    sections = [
        f"<h1>{_esc(title)}</h1>",
        f'<p class="sub">regenerated from the ledger at <code>{_esc(str(ledger.root))}</code> '
        f"— no re-simulation; see docs/OBSERVABILITY.md</p>",
        f'<div class="tiles">{tiles_html}</div>',
        "<h2>Runs</h2>",
        _runs_table(entries) if entries else '<p class="note">ledger is empty</p>',
    ]
    if slowdown_html:
        sections += ["<h2>Slowdown curves</h2>", slowdown_html]
    if heatmap_html:
        sections.append("<h2>Per-port queue depth</h2>")
        for note in heatmap_notes:
            sections.append(f'<p class="note">{_esc(note)}</p>')
        sections.append(heatmap_html)
    if figures_html:
        sections += ["<h2>Figure acceptance tables</h2>", figures_html]
    if bench_html:
        sections += ["<h2>Bench trajectory</h2>", bench_html]
    if diff_html:
        sections += ["<h2>Cross-run regression diffs</h2>", diff_html]
    sections += ["<h2>Artifacts</h2>", _artifact_section(entries)]

    doc = (
        "<!DOCTYPE html>\n<html lang=\"en\"><head><meta charset=\"utf-8\">"
        f"<title>{_esc(title)}</title>"
        f"<style>{_CSS}\n{_SERIES_CSS}</style></head>\n"
        f"<body>{''.join(sections)}</body></html>\n"
    )
    out_path.parent.mkdir(parents=True, exist_ok=True)
    out_path.write_text(doc)
    return out_path


# ----------------------------------------------------------------------
# Dashboard validation (the CI gate)
# ----------------------------------------------------------------------

def validate_dashboard(path, base_dir=None) -> List[str]:
    """Problems with a rendered dashboard (empty list = valid).

    Checks what CI gates on: the file exists and is non-trivial, every
    ``data-points``/``data-rows`` panel is non-empty, at least one panel
    or table rendered at all, and every ``data-artifact`` path resolves
    (relative paths against ``base_dir``, default the current
    directory).
    """
    import re

    path = Path(path)
    problems: List[str] = []
    if not path.is_file():
        return [f"{path}: dashboard file does not exist"]
    text = path.read_text()
    panels = re.findall(r'data-points="(\d+)"', text)
    tables = re.findall(r'data-rows="(\d+)"', text)
    if not panels and not tables:
        problems.append(f"{path}: no panels or tables rendered")
    for i, n in enumerate(panels):
        if int(n) == 0:
            problems.append(f"{path}: panel {i} is empty (data-points=0)")
    for i, n in enumerate(tables):
        if int(n) == 0:
            problems.append(f"{path}: table {i} is empty (data-rows=0)")
    base = Path(base_dir) if base_dir is not None else Path.cwd()
    for artifact in re.findall(r'data-artifact="([^"]+)"', text):
        artifact = html.unescape(artifact)
        candidate = Path(artifact)
        if not candidate.is_absolute():
            candidate = base / candidate
        if not candidate.exists():
            problems.append(f"{path}: referenced artifact missing: {artifact}")
    return problems
