"""Observability configuration carried on an ``ExperimentSpec``.

A single frozen dataclass describes everything `repro.obs` should do
for one run: whether to sample, how often, where to write exports,
whether to profile the event loop, and whether to emit a Chrome trace.
``ExperimentSpec.observability`` holds one (or ``None`` for a bare
run); the runner turns it into a bound :class:`repro.obs.Telemetry`
hook.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = ["ObservabilityConfig"]

#: Default sampling period: 100 µs ≈ 8 sim-RTTs on the paper topology,
#: fine enough to resolve an incast epoch without drowning tiny runs.
DEFAULT_SAMPLE_PERIOD = 100e-6


@dataclass(frozen=True)
class ObservabilityConfig:
    """What telemetry to collect for one experiment run.

    Attributes:
        sample_period: Sim-time seconds between registry snapshots.
            ``None`` disables the periodic sampler entirely (the
            registry still exists and instruments still register —
            that's the near-zero-overhead baseline the overhead guard
            test pins down).
        burn_in: Sim-time seconds to skip before the first sample.
        out_dir: Directory for JSONL series / summary / profile dumps
            (created on demand).  ``None`` keeps everything in memory.
        profile: Install the event-loop profiler.
        chrome_trace: Path for a Chrome ``trace_event`` JSON file;
            ``None`` disables the trace sink.
        heartbeat_wall_seconds: Wall-clock interval between progress
            heartbeats while profiling (``None`` disables them).
        sample_ports: Register per-port queue-depth/high-water gauges.
        sample_links: Register per-link utilization gauges.
        sample_protocols: Ask transport agents (and shared state such
            as the Fastpass arbiter) to register their own instruments.
    """

    sample_period: Optional[float] = DEFAULT_SAMPLE_PERIOD
    burn_in: float = 0.0
    out_dir: Optional[str] = None
    profile: bool = False
    chrome_trace: Optional[str] = None
    heartbeat_wall_seconds: Optional[float] = None
    sample_ports: bool = True
    sample_links: bool = True
    sample_protocols: bool = True

    def __post_init__(self) -> None:
        if self.sample_period is not None and self.sample_period <= 0:
            raise ValueError("sample_period must be positive (or None to disable)")
        if self.burn_in < 0:
            raise ValueError("burn_in must be non-negative")
        if self.heartbeat_wall_seconds is not None and self.heartbeat_wall_seconds < 0:
            raise ValueError("heartbeat_wall_seconds must be non-negative")
