"""Content-addressed on-disk run ledger (the results store).

Every simulation run is a pure function of its spec, so its outputs can
be cached and compared under a stable key: ``(spec_hash, run_digest)``.
``spec_hash`` fingerprints *what was asked for* (a canonical JSON form
of the :class:`~repro.experiments.spec.ExperimentSpec`, minus fields
that never change behaviour — instruments, observability, label);
``run_digest`` fingerprints *what happened* (the order-independent
:func:`repro.validate.run_digest`).  Two runs with the same key are the
same run; the same spec hash with a different digest is a behavioural
change worth a regression diff.

One :class:`RunLedger` owns a directory tree::

    <root>/runs/<spec_hash:16>/<run_digest:16>/entry.json   # metadata + metrics
                                              series.json  # ColumnarSeries (optional)
                                              audit.json   # AuditReport (optional)
    <root>/bench/<seq>.json                                 # scripts/bench.py reports
    <root>/figures/<name>.json                              # FigureResult tables

``entry.json`` is strict sorted-keys JSON (NaN encoded as ``null``), so
entries diff cleanly and the round trip is byte-identical — asserted in
``tests/obs/test_store.py``.  Writing to the ledger happens strictly
*after* a run finishes; it can never perturb digests or event counts.

See ``docs/OBSERVABILITY.md`` (§ "The run ledger") for the schema and
``repro.obs.report`` / ``scripts/report.py`` for the dashboard and
regression-diff consumers.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import math
import os
import subprocess
import time
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional

from repro.metrics.timeseries import ColumnarSeries

__all__ = [
    "SCHEMA_VERSION",
    "LedgerCollisionError",
    "LedgerEntry",
    "RunLedger",
    "spec_payload",
    "spec_hash",
    "family_hash",
    "git_revision",
    "series_to_dict",
    "series_from_dict",
    "serialize_series",
    "deserialize_series",
    "result_metrics",
    "run_meta",
    "stamp_result_meta",
]

#: Bumped when entry.json's layout changes incompatibly.
SCHEMA_VERSION = 1

#: Spec fields excluded from the hash: they configure *observation* of a
#: run (or free-form tagging), never its behaviour — the overhead
#: contract in tests/obs/test_overhead.py pins that down.
_HASH_EXCLUDED_FIELDS = ("instruments", "observability", "label")

#: Directory names are the first 16 hex chars of each hash; the full
#: hashes live in entry.json.
_KEY_CHARS = 16


class LedgerCollisionError(RuntimeError):
    """Same ``(spec_hash, run_digest)`` key, different stored content."""


# ----------------------------------------------------------------------
# Canonical spec serialization and hashing
# ----------------------------------------------------------------------

def _canon(obj: Any) -> Any:
    """A deterministic, JSON-able view of a spec field value.

    Dataclasses recurse field-by-field; callables contribute their
    qualified name only (bound addresses in ``repr`` are not stable
    across processes).  Floats go through ``repr`` — exact shortest
    round-trip decimal, the same convention the run digests use.
    """
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, float):
        return repr(obj)
    if isinstance(obj, (list, tuple)):
        return [_canon(x) for x in obj]
    if isinstance(obj, dict):
        return {str(k): _canon(v) for k, v in sorted(obj.items(), key=lambda kv: str(kv[0]))}
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        out: Dict[str, Any] = {"__type__": type(obj).__name__}
        for f in dataclasses.fields(obj):
            out[f.name] = _canon(getattr(obj, f.name))
        return out
    if callable(obj):
        name = getattr(obj, "__qualname__", None) or type(obj).__name__
        return f"<callable {name}>"
    return f"<{type(obj).__name__} {obj!r}>"


def spec_payload(spec: Any, *, exclude: Iterable[str] = _HASH_EXCLUDED_FIELDS) -> Dict[str, Any]:
    """Canonical dict form of an :class:`ExperimentSpec` (hash input)."""
    excluded = set(exclude)
    payload: Dict[str, Any] = {}
    for f in dataclasses.fields(spec):
        if f.name in excluded:
            continue
        payload[f.name] = _canon(getattr(spec, f.name))
    return payload


def _hash_payload(payload: Dict[str, Any]) -> str:
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def spec_hash(spec: Any) -> str:
    """Stable sha256 of the behavioural spec fields."""
    return _hash_payload(spec_payload(spec))


def family_hash(spec: Any) -> str:
    """Like :func:`spec_hash` but seed-blind.

    Entries sharing a family are "the same experiment at different
    seeds" — the natural pairing for cross-run regression diffs where
    exact pins (event counts) do not apply but metric drift should stay
    inside seed noise.
    """
    payload = spec_payload(spec)
    payload.pop("seed", None)
    return _hash_payload(payload)


_GIT_REV_CACHE: Dict[str, Optional[str]] = {}


def git_revision(cwd: Optional[str] = None) -> Optional[str]:
    """Short git revision of ``cwd`` (cached per directory; None if unknown)."""
    key = cwd or os.getcwd()
    if key not in _GIT_REV_CACHE:
        try:
            out = subprocess.run(
                ["git", "rev-parse", "--short", "HEAD"],
                cwd=key,
                capture_output=True,
                text=True,
                timeout=5,
            )
            rev = out.stdout.strip() if out.returncode == 0 else None
        except (OSError, subprocess.SubprocessError):
            rev = None
        _GIT_REV_CACHE[key] = rev or None
    return _GIT_REV_CACHE[key]


# ----------------------------------------------------------------------
# ColumnarSeries persistence (byte-identical round trip)
# ----------------------------------------------------------------------

def series_to_dict(series: ColumnarSeries) -> Dict[str, Any]:
    """Strict-JSON dict form: NaN cells become ``null``."""
    return {
        "schema": "columnar-series/v1",
        "times": list(series.times),
        "columns": {
            name: [None if math.isnan(v) else v for v in col]
            for name, col in series.columns.items()
        },
    }


def series_from_dict(doc: Dict[str, Any]) -> ColumnarSeries:
    if doc.get("schema") != "columnar-series/v1":
        raise ValueError(f"not a columnar-series document: {doc.get('schema')!r}")
    series = ColumnarSeries()
    series.times = [float(t) for t in doc["times"]]
    n = len(series.times)
    for name, col in doc["columns"].items():
        if len(col) != n:
            raise ValueError(
                f"column {name!r} has {len(col)} cells for {n} rows"
            )
        series.columns[name] = [math.nan if v is None else float(v) for v in col]
    return series


def serialize_series(series: ColumnarSeries) -> str:
    """Canonical JSON text (sorted keys) — the stored byte form."""
    return json.dumps(series_to_dict(series), sort_keys=True, separators=(",", ":"))


def deserialize_series(text: str) -> ColumnarSeries:
    return series_from_dict(json.loads(text))


# ----------------------------------------------------------------------
# Result metadata and metrics extraction
# ----------------------------------------------------------------------

def _jsonable(value: Any) -> Any:
    """NaN/inf → None so every stored number is strict JSON."""
    if isinstance(value, float) and not math.isfinite(value):
        return None
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    return value


def run_meta(
    spec: Any,
    *,
    run_digest: Optional[str] = None,
    wall_seconds: Optional[float] = None,
    duration: Optional[float] = None,
    events_processed: Optional[int] = None,
) -> Dict[str, Any]:
    """Self-describing metadata block for one run of ``spec``."""
    meta: Dict[str, Any] = {
        "schema_version": SCHEMA_VERSION,
        "spec_hash": spec_hash(spec),
        "family_hash": family_hash(spec),
        "protocol": spec.protocol,
        "workload": spec.workload,
        "load": spec.load,
        "seed": spec.seed,
        "label": spec.label,
        "git_revision": git_revision(),
        "created_unix": time.time(),
    }
    if run_digest is not None:
        meta["run_digest"] = run_digest
    if wall_seconds is not None:
        meta["wall_seconds"] = wall_seconds
    if duration is not None:
        meta["duration"] = duration
    if events_processed is not None:
        meta["events_processed"] = events_processed
    return meta


def stamp_result_meta(result: Any) -> Dict[str, Any]:
    """Stamp ``result.telemetry`` (an ObsReport) with run metadata.

    Called by the runner after the result is assembled, so the stored
    series is self-describing even before it reaches a ledger.  Returns
    the metadata dict (and is a no-op on results without telemetry).
    """
    meta = run_meta(
        result.spec,
        wall_seconds=result.wall_seconds,
        duration=result.duration,
        events_processed=result.events_processed,
    )
    if result.telemetry is not None:
        result.telemetry.meta = meta
    return meta


def result_metrics(result: Any) -> Dict[str, Any]:
    """The comparable per-run metric set stored in ``entry.json``."""
    metrics: Dict[str, Any] = {
        "mean_slowdown": result.mean_slowdown(),
        "p99_slowdown": result.tail_slowdown(99),
        "nfct": result.nfct(),
        "n_flows": result.n_flows,
        "n_completed": result.n_completed,
        "completion_rate": result.completion_rate,
        "goodput_gbps_per_host": result.goodput_gbps_per_host,
        "payload_bytes_delivered": result.payload_bytes_delivered,
        "data_pkts_injected": result.data_pkts_injected,
        "retransmissions": result.data_pkts_retransmitted,
        "control_pkts_sent": result.control_pkts_sent,
        "control_bytes_sent": result.control_bytes_sent,
        "drop_rate": result.drops.drop_rate,
        "drops_total": result.drops.total_drops,
        "drops_by_hop": {str(k): v for k, v in sorted(result.drops.by_hop.items())},
        "fault_drops": result.fault_drops,
        "duration": result.duration,
        "wall_seconds": result.wall_seconds,
        "events_processed": result.events_processed,
    }
    jobs = result.job_records()
    if jobs:
        metrics["jobs"] = {
            "n_jobs": len(jobs),
            "completion_rate": result.job_completion_rate(),
            "mean_jct": result.mean_jct(),
        }
    return _jsonable(metrics)


# ----------------------------------------------------------------------
# The ledger
# ----------------------------------------------------------------------

class LedgerEntry:
    """One stored run: key, directory, loaded ``entry.json`` document."""

    def __init__(self, path: Path, doc: Dict[str, Any]) -> None:
        self.path = Path(path)
        self.doc = doc

    # -- identity ------------------------------------------------------
    @property
    def meta(self) -> Dict[str, Any]:
        return self.doc.get("meta", {})

    @property
    def spec_hash(self) -> str:
        return self.meta["spec_hash"]

    @property
    def family_hash(self) -> str:
        return self.meta.get("family_hash", self.spec_hash)

    @property
    def run_digest(self) -> str:
        return self.meta["run_digest"]

    @property
    def key(self) -> str:
        return f"{self.spec_hash[:_KEY_CHARS]}/{self.run_digest[:_KEY_CHARS]}"

    # -- content -------------------------------------------------------
    @property
    def spec(self) -> Dict[str, Any]:
        return self.doc.get("spec", {})

    @property
    def metrics(self) -> Dict[str, Any]:
        return self.doc.get("metrics", {})

    @property
    def audit(self) -> Optional[Dict[str, Any]]:
        return self.doc.get("audit")

    @property
    def artifacts(self) -> List[str]:
        return list(self.doc.get("artifacts", []))

    @property
    def series_path(self) -> Path:
        return self.path / "series.json"

    @property
    def has_series(self) -> bool:
        return self.series_path.exists()

    def load_series(self) -> Optional[ColumnarSeries]:
        if not self.has_series:
            return None
        return deserialize_series(self.series_path.read_text())

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        m = self.meta
        return (
            f"LedgerEntry({self.key} {m.get('protocol')}/{m.get('workload')}"
            f" seed={m.get('seed')})"
        )


class RunLedger:
    """Content-addressed store of run results under one root directory."""

    def __init__(self, root) -> None:
        self.root = Path(root)

    # -- layout --------------------------------------------------------
    @property
    def runs_dir(self) -> Path:
        return self.root / "runs"

    @property
    def bench_dir(self) -> Path:
        return self.root / "bench"

    @property
    def figures_dir(self) -> Path:
        return self.root / "figures"

    def entry_dir(self, spec_hash_: str, run_digest_: str) -> Path:
        return self.runs_dir / spec_hash_[:_KEY_CHARS] / run_digest_[:_KEY_CHARS]

    # -- writing runs --------------------------------------------------
    def put(
        self,
        result: Any,
        *,
        digest: Optional[str] = None,
        artifacts: Iterable[str] = (),
    ) -> LedgerEntry:
        """Persist one :class:`ExperimentResult`; idempotent per key.

        An existing entry under the same key must carry the identical
        spec payload — anything else is a :class:`LedgerCollisionError`
        (the key is content-addressed; mismatched content under one key
        means a hashing bug or a corrupted store, never something to
        silently overwrite).
        """
        if digest is None:
            from repro.validate import run_digest as compute_digest

            digest = compute_digest(result)
        spec = result.spec
        sh = spec_hash(spec)
        payload = spec_payload(spec)
        entry_dir = self.entry_dir(sh, digest)
        entry_path = entry_dir / "entry.json"

        artifact_list = [str(a) for a in artifacts]
        telemetry = result.telemetry
        telemetry_doc: Optional[Dict[str, Any]] = None
        if telemetry is not None:
            telemetry_doc = {
                "samples_taken": telemetry.samples_taken,
                "n_instruments": telemetry.n_instruments,
                "chrome_trace_path": telemetry.chrome_trace_path,
                "chrome_trace_events": telemetry.chrome_trace_events,
                "written": list(telemetry.written),
            }
            if telemetry.chrome_trace_path:
                artifact_list.append(telemetry.chrome_trace_path)
            artifact_list.extend(telemetry.written)

        doc: Dict[str, Any] = {
            "schema": f"run-ledger-entry/v{SCHEMA_VERSION}",
            "meta": _jsonable(
                run_meta(
                    spec,
                    run_digest=digest,
                    wall_seconds=result.wall_seconds,
                    duration=result.duration,
                    events_processed=result.events_processed,
                )
            ),
            "spec": payload,
            "metrics": result_metrics(result),
            "artifacts": sorted(set(artifact_list)),
        }
        if result.audit is not None:
            doc["audit"] = _jsonable(result.audit.to_dict())
        if telemetry_doc is not None:
            doc["telemetry"] = telemetry_doc

        if entry_path.exists():
            existing = json.loads(entry_path.read_text())
            ex_meta = existing.get("meta", {})
            if (
                existing.get("spec") != payload
                or ex_meta.get("spec_hash") != sh
                or ex_meta.get("run_digest") != digest
            ):
                raise LedgerCollisionError(
                    f"ledger key {sh[:_KEY_CHARS]}/{digest[:_KEY_CHARS]} already "
                    f"holds a different spec — content-addressing violated "
                    f"(stored spec_hash={ex_meta.get('spec_hash', '?')[:_KEY_CHARS]})"
                )
            return LedgerEntry(entry_dir, existing)

        entry_dir.mkdir(parents=True, exist_ok=True)
        if telemetry is not None and telemetry.series is not None:
            (entry_dir / "series.json").write_text(serialize_series(telemetry.series))
        if result.audit is not None:
            (entry_dir / "audit.json").write_text(
                json.dumps(_jsonable(result.audit.to_dict()), indent=2, sort_keys=True)
                + "\n"
            )
        entry_path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
        return LedgerEntry(entry_dir, doc)

    # -- reading runs --------------------------------------------------
    def entries(self) -> List[LedgerEntry]:
        """All stored runs, oldest first (by created timestamp)."""
        out: List[LedgerEntry] = []
        if not self.runs_dir.is_dir():
            return out
        for entry_path in sorted(self.runs_dir.glob("*/*/entry.json")):
            out.append(LedgerEntry(entry_path.parent, json.loads(entry_path.read_text())))
        out.sort(key=lambda e: (e.meta.get("created_unix", 0.0), e.key))
        return out

    def get(self, key: str) -> LedgerEntry:
        """Resolve ``<spec_hash_prefix>/<digest_prefix>`` to an entry."""
        try:
            spec_part, digest_part = key.split("/", 1)
        except ValueError:
            raise KeyError(
                f"ledger key must look like <spec_hash>/<run_digest>, got {key!r}"
            ) from None
        matches = [
            e
            for e in self.entries()
            if e.spec_hash.startswith(spec_part) and e.run_digest.startswith(digest_part)
        ]
        if not matches:
            raise KeyError(f"no ledger entry matching {key!r} under {self.root}")
        if len(matches) > 1:
            raise KeyError(f"ambiguous ledger key {key!r}: {len(matches)} matches")
        return matches[0]

    def families(self) -> Dict[str, List[LedgerEntry]]:
        """Entries grouped by seed-blind family hash (oldest first)."""
        out: Dict[str, List[LedgerEntry]] = {}
        for entry in self.entries():
            out.setdefault(entry.family_hash, []).append(entry)
        return out

    # -- bench reports -------------------------------------------------
    def put_bench(self, report: Dict[str, Any]) -> Path:
        """Append one ``scripts/bench.py`` report; returns its path."""
        self.bench_dir.mkdir(parents=True, exist_ok=True)
        existing = sorted(self.bench_dir.glob("*.json"))
        seq = 1
        if existing:
            seq = int(existing[-1].stem) + 1
        path = self.bench_dir / f"{seq:06d}.json"
        path.write_text(json.dumps(_jsonable(report), indent=2, sort_keys=True) + "\n")
        return path

    def bench_reports(self) -> List[Dict[str, Any]]:
        """All stored bench reports, oldest first."""
        if not self.bench_dir.is_dir():
            return []
        return [
            json.loads(p.read_text()) for p in sorted(self.bench_dir.glob("*.json"))
        ]

    def latest_bench(self, scale: Optional[str] = None) -> Optional[Dict[str, Any]]:
        """Most recent bench report (optionally restricted to a scale)."""
        for report in reversed(self.bench_reports()):
            if scale is None or report.get("scale") == scale:
                return report
        return None

    # -- figure tables -------------------------------------------------
    def put_figure(self, figure: Any) -> Path:
        """Persist a :class:`FigureResult` table under ``figures/``."""
        self.figures_dir.mkdir(parents=True, exist_ok=True)
        doc = {
            "schema": "figure-table/v1",
            "figure": figure.figure,
            "title": figure.title,
            "columns": list(figure.columns),
            "rows": _jsonable([dict(r) for r in figure.rows]),
            "notes": list(figure.notes),
            "git_revision": git_revision(),
            "created_unix": time.time(),
        }
        safe = figure.figure.replace("/", "_").replace(":", "_")
        path = self.figures_dir / f"{safe}.json"
        path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
        return path

    def figures(self) -> Dict[str, Dict[str, Any]]:
        """Stored figure tables keyed by figure name, sorted."""
        if not self.figures_dir.is_dir():
            return {}
        out: Dict[str, Dict[str, Any]] = {}
        for path in sorted(self.figures_dir.glob("*.json")):
            doc = json.loads(path.read_text())
            out[doc.get("figure", path.stem)] = doc
        return out

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"RunLedger({str(self.root)!r}, {len(self.entries())} entries)"
