"""Event-loop dispatch profiling and wall-clock heartbeats.

An :class:`EventLoopProfiler` installs into an
:class:`~repro.sim.engine.EventLoop` (``env.set_profiler``) and is fed
one callback per dispatched event: the loop switches to an instrumented
twin of its hot loop only while a profiler is installed, so the
unprofiled path pays nothing.

Per event type (callback ``__qualname__``) it records the dispatch
count, cumulative and maximum wall-clock self-time, and a log2
histogram of the *simulated* times at which the handler fired — enough
to rank hot handlers (token grant ticks, packet departures) and to see
when in the run each handler class was active.  The per-type counts sum
to exactly the loop's dispatched-event total, which the test suite
asserts.

A wall-clock heartbeat (events/sec, sim-seconds/sec, ETA against the
run's ``until`` horizon) can be emitted on a wall-time interval for
long runs; the default sink writes one line to stderr.
"""

from __future__ import annotations

import sys
import time
from typing import Callable, Dict, List, Optional

from repro.obs.registry import Histogram

__all__ = ["EventLoopProfiler", "Heartbeat"]

#: Heartbeat wall-clock checks happen once per this many events, so the
#: per-event cost of an armed heartbeat is one modulo on a counter.
_HEARTBEAT_CHECK_EVERY = 256

# Cell indices for the per-type stats list.
_COUNT, _SELF, _MAX, _FIRST, _LAST, _WHEEL = range(6)


class Heartbeat:
    """One progress report of a profiled run."""

    __slots__ = (
        "wall_elapsed",
        "sim_now",
        "events_total",
        "events_per_sec",
        "sim_seconds_per_sec",
        "eta_seconds",
    )

    def __init__(
        self,
        wall_elapsed: float,
        sim_now: float,
        events_total: int,
        events_per_sec: float,
        sim_seconds_per_sec: float,
        eta_seconds: Optional[float],
    ) -> None:
        self.wall_elapsed = wall_elapsed
        self.sim_now = sim_now
        self.events_total = events_total
        self.events_per_sec = events_per_sec
        self.sim_seconds_per_sec = sim_seconds_per_sec
        self.eta_seconds = eta_seconds

    def __str__(self) -> str:
        eta = "?" if self.eta_seconds is None else f"{self.eta_seconds:.1f}s"
        return (
            f"[obs] t_sim={self.sim_now:.6f}s events={self.events_total} "
            f"({self.events_per_sec:,.0f} ev/s, "
            f"{self.sim_seconds_per_sec:.3g} sim-s/s, ETA {eta})"
        )


def _print_heartbeat(hb: Heartbeat) -> None:
    print(str(hb), file=sys.stderr)


class EventLoopProfiler:
    """Per-event-type dispatch statistics for one event loop."""

    def __init__(
        self,
        heartbeat_wall_seconds: Optional[float] = None,
        on_heartbeat: Optional[Callable[[Heartbeat], None]] = None,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        if heartbeat_wall_seconds is not None and heartbeat_wall_seconds < 0:
            raise ValueError("heartbeat interval must be non-negative")
        # key -> [count, self_seconds, max_seconds, first_sim, last_sim]
        self._cells: Dict[str, List[float]] = {}
        self._sim_hists: Dict[str, Histogram] = {}
        self.total_events = 0
        #: Dispatches whose entry travelled through the timing wheel
        #: (recovery/pacing timers) rather than straight onto the heap.
        self.timer_wheel_events = 0
        self.wall_self_seconds = 0.0
        self.heartbeats_emitted = 0
        self._hb_interval = heartbeat_wall_seconds
        self._on_heartbeat = on_heartbeat or _print_heartbeat
        self._clock = clock
        self._until: Optional[float] = None
        self._env = None  # loop we are installed in (wheel stats source)
        self._hb_wall = clock()
        self._hb_events = 0
        self._hb_sim = 0.0

    # ------------------------------------------------------------------
    # EventLoop integration
    # ------------------------------------------------------------------
    def bind(self, ctx) -> "EventLoopProfiler":
        """Instrumentation-hook entry point: install into the run's loop."""
        ctx.env.set_profiler(self)
        return self

    def run_started(self, env, until: Optional[float]) -> None:
        """Called by the loop at the top of each profiled ``run()``."""
        self._until = until
        self._env = env
        self._hb_wall = self._clock()
        self._hb_events = self.total_events
        self._hb_sim = env.now

    def on_event(
        self, fn, when: float, wall_dt: float, via_wheel: bool = False
    ) -> None:
        """One dispatched callback: ``fn`` fired at sim time ``when``
        and took ``wall_dt`` wall-clock seconds.  ``via_wheel`` marks
        dispatches whose entry was parked in the timing wheel first."""
        key = getattr(fn, "__qualname__", None) or repr(fn)
        cell = self._cells.get(key)
        if cell is None:
            cell = [0, 0.0, 0.0, when, when, 0]
            self._cells[key] = cell
            self._sim_hists[key] = Histogram("profile.sim_time", {"event": key})
        cell[_COUNT] += 1
        cell[_SELF] += wall_dt
        if wall_dt > cell[_MAX]:
            cell[_MAX] = wall_dt
        cell[_LAST] = when
        if via_wheel:
            cell[_WHEEL] += 1
            self.timer_wheel_events += 1
        self._sim_hists[key].observe(when)
        self.total_events += 1
        self.wall_self_seconds += wall_dt
        if (
            self._hb_interval is not None
            and self.total_events % _HEARTBEAT_CHECK_EVERY == 0
        ):
            self._heartbeat_check(when)

    # ------------------------------------------------------------------
    # Heartbeat
    # ------------------------------------------------------------------
    def set_heartbeat(
        self,
        wall_seconds: Optional[float],
        on_heartbeat: Optional[Callable[[Heartbeat], None]] = None,
    ) -> None:
        """(Re-)arm the wall-clock heartbeat after construction.

        Lets a sweep driver redirect an already-installed profiler's
        heartbeats (e.g. into a progress queue) without replacing it.
        ``None`` disarms; a ``None`` callback keeps the current sink.
        """
        if wall_seconds is not None and wall_seconds < 0:
            raise ValueError("heartbeat interval must be non-negative")
        self._hb_interval = wall_seconds
        if on_heartbeat is not None:
            self._on_heartbeat = on_heartbeat

    def _heartbeat_check(self, sim_now: float) -> None:
        wall = self._clock()
        elapsed = wall - self._hb_wall
        if elapsed < self._hb_interval:
            return
        d_events = self.total_events - self._hb_events
        d_sim = sim_now - self._hb_sim
        ev_rate = d_events / elapsed if elapsed > 0 else 0.0
        sim_rate = d_sim / elapsed if elapsed > 0 else 0.0
        eta = None
        if self._until is not None and sim_rate > 0:
            eta = max(self._until - sim_now, 0.0) / sim_rate
        self.heartbeats_emitted += 1
        self._on_heartbeat(
            Heartbeat(elapsed, sim_now, self.total_events, ev_rate, sim_rate, eta)
        )
        self._hb_wall = wall
        self._hb_events = self.total_events
        self._hb_sim = sim_now

    # ------------------------------------------------------------------
    # Reports
    # ------------------------------------------------------------------
    def by_type(self) -> Dict[str, Dict[str, float]]:
        """Per-event-type stats, keyed by callback qualname."""
        out: Dict[str, Dict[str, float]] = {}
        for key, cell in self._cells.items():
            count = int(cell[_COUNT])
            out[key] = {
                "count": count,
                "self_seconds": cell[_SELF],
                "mean_seconds": cell[_SELF] / count if count else 0.0,
                "max_seconds": cell[_MAX],
                "first_sim_time": cell[_FIRST],
                "last_sim_time": cell[_LAST],
                "wheel_count": int(cell[_WHEEL]),
            }
        return out

    def timer_wheel(self) -> Dict[str, object]:
        """Timer-wheel event-class breakdown.

        Combines the loop-side lifetime counters (scheduled / cancelled
        / poured / parked, plus the ``timers_to_heap`` fallback count
        for timers due too soon or too far out for the wheel) with the
        number of profiled dispatches that actually travelled through
        the wheel.
        """
        out: Dict[str, object] = {"events_dispatched": self.timer_wheel_events}
        env = self._env
        if env is not None:
            out.update(env.wheel.stats())
            out["timers_to_heap"] = env.timers_to_heap
            out["enabled"] = env.timer_wheel_enabled
        return out

    def sim_time_histogram(self, event_type: str) -> Optional[Histogram]:
        return self._sim_hists.get(event_type)

    def ranked(self) -> List[Dict[str, float]]:
        """Event types sorted by cumulative wall self-time, hottest first."""
        rows = [dict(stats, event=key) for key, stats in self.by_type().items()]
        rows.sort(key=lambda r: r["self_seconds"], reverse=True)
        return rows

    def hotspots(self, top: int = 5) -> List[Dict[str, float]]:
        """The ``top`` hottest event types with their self-time share.

        Each row is a :meth:`ranked` row plus ``share`` — the fraction
        of *all* profiled handler self-time spent in that type — so a
        reader can tell at a glance whether the run is dominated by a
        few handlers (optimize those) or spread thin (optimize the
        dispatch loop itself).  ``mean_seconds`` is the per-event cost.
        """
        total = self.wall_self_seconds
        rows = self.ranked()[:top]
        for row in rows:
            row["share"] = row["self_seconds"] / total if total > 0 else 0.0
        return rows

    def report(self, top: int = 20, hotspot_top: int = 5) -> str:
        """Plain-text table of the hottest event types, headed by a
        one-line-per-handler hotspot summary (share of total self-time
        and per-event cost)."""
        wheel = self.timer_wheel()
        lines = [
            f"event-loop profile: {self.total_events} events, "
            f"{self.wall_self_seconds * 1e3:.1f} ms handler self-time",
            f"timer wheel: {wheel['events_dispatched']} dispatches via wheel, "
            f"{wheel.get('scheduled', 0)} parked / "
            f"{wheel.get('cancelled', 0)} cancelled / "
            f"{wheel.get('poured', 0)} poured, "
            f"{wheel.get('timers_to_heap', 0)} straight to heap",
        ]
        for i, row in enumerate(self.hotspots(hotspot_top), start=1):
            lines.append(
                f"hotspot #{i}: {row['event']}  "
                f"{row['share']:.1%} of self-time "
                f"({row['mean_seconds'] * 1e6:.2f} us/event x "
                f"{row['count']:,d} events)"
            )
        lines.append(
            f"{'event type':44s} {'count':>10s} {'self ms':>9s} "
            f"{'mean us':>9s} {'max us':>8s}"
        )
        for row in self.ranked()[:top]:
            lines.append(
                f"{str(row['event'])[:44]:44s} {row['count']:>10d} "
                f"{row['self_seconds'] * 1e3:>9.2f} "
                f"{row['mean_seconds'] * 1e6:>9.2f} "
                f"{row['max_seconds'] * 1e6:>8.1f}"
            )
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, object]:
        return {
            "total_events": self.total_events,
            "wall_self_seconds": self.wall_self_seconds,
            "heartbeats": self.heartbeats_emitted,
            "timer_wheel": self.timer_wheel(),
            "by_type": self.by_type(),
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"EventLoopProfiler(events={self.total_events}, "
            f"types={len(self._cells)})"
        )
