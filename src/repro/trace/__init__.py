"""Observability: packet/flow tracing and queue monitoring.

Research simulators live or die by their debuggability.  This package
provides opt-in instrumentation that hooks the fabric without touching
the protocol code:

* :mod:`repro.trace.events` — typed trace records (packet sent /
  delivered / dropped, token granted, flow lifecycle).
* :mod:`repro.trace.tracer` — a ring-buffer tracer that taps a fabric's
  ports and a collector's callbacks; per-flow timelines on demand.
* :mod:`repro.trace.queues` — periodic queue-occupancy sampling across
  chosen ports (used to study where queueing actually happens —
  paper §2.3's claim that the core stays empty).
"""

from repro.trace.events import TraceEvent, TraceKind
from repro.trace.tracer import PacketTracer
from repro.trace.queues import QueueMonitor, QueueSample

__all__ = [
    "TraceEvent",
    "TraceKind",
    "PacketTracer",
    "QueueMonitor",
    "QueueSample",
]
