"""Queue-occupancy monitoring.

Samples the byte occupancy of selected ports on a fixed period.  The
paper's §2.3 argument — spraying plus full bisection keeps queueing out
of the core and pushes all contention to the receiver's last hop — is
directly observable with this monitor (see
``tests/trace/test_queue_monitor.py`` for the experiment).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from repro.net.port import Port
from repro.net.topology import Fabric
from repro.sim.engine import EventLoop

__all__ = ["QueueSample", "QueueMonitor"]


@dataclass(frozen=True)
class QueueSample:
    """Occupancy of one port at one instant."""

    time: float
    port_name: str
    hop_index: int
    bytes_queued: int
    pkts_queued: int


class QueueMonitor:
    """Periodic sampler over a set of ports."""

    def __init__(self, env: EventLoop, ports: Iterable[Port], period: float) -> None:
        if period <= 0:
            raise ValueError("period must be positive")
        self.env = env
        self.ports: List[Port] = list(ports)
        if not self.ports:
            raise ValueError("need at least one port to monitor")
        self.period = period
        self.samples: List[QueueSample] = []
        self._timer: Optional[list] = None

    @classmethod
    def over_fabric(cls, fabric: Fabric, period: float) -> "QueueMonitor":
        """Monitor every port in the fabric (hosts, ToRs, cores)."""
        ports: List[Port] = [h.port for h in fabric.hosts]
        for switch in list(fabric.tors) + list(fabric.cores):
            ports.extend(switch.ports)
        return cls(fabric.env, ports, period)

    # ------------------------------------------------------------------
    def start(self) -> None:
        self._timer = self.env.schedule(self.period, self._tick)

    def stop(self) -> None:
        EventLoop.cancel(self._timer)
        self._timer = None

    def _tick(self) -> None:
        self.sample()
        self._timer = self.env.schedule(self.period, self._tick)

    def sample(self) -> None:
        now = self.env.now
        for port in self.ports:
            queued = len(port.queue)
            if queued == 0:
                continue  # empty queues are implicit; keeps memory bounded
            self.samples.append(
                QueueSample(now, port.name, port.hop_index, port.queue.bytes_queued, queued)
            )

    # ------------------------------------------------------------------
    def peak_bytes_by_hop(self) -> Dict[int, int]:
        """Max observed occupancy per hop class (1=NIC .. 4=ToR down)."""
        peaks: Dict[int, int] = {}
        for s in self.samples:
            if s.bytes_queued > peaks.get(s.hop_index, 0):
                peaks[s.hop_index] = s.bytes_queued
        return peaks

    def mean_bytes_by_hop(self) -> Dict[int, float]:
        """Mean occupancy per hop class over *non-empty* samples."""
        sums: Dict[int, int] = {}
        counts: Dict[int, int] = {}
        for s in self.samples:
            sums[s.hop_index] = sums.get(s.hop_index, 0) + s.bytes_queued
            counts[s.hop_index] = counts.get(s.hop_index, 0) + 1
        return {h: sums[h] / counts[h] for h in sums}
