"""Typed trace records."""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Optional

__all__ = ["TraceKind", "TraceEvent"]


class TraceKind(Enum):
    """What happened."""

    FLOW_ARRIVED = "flow_arrived"
    FLOW_COMPLETED = "flow_completed"
    DATA_SENT = "data_sent"
    DATA_DELIVERED = "data_delivered"
    DATA_DUPLICATE = "data_duplicate"
    CONTROL_SENT = "control_sent"
    PACKET_DROPPED = "packet_dropped"


@dataclass(frozen=True)
class TraceEvent:
    """One instrumented occurrence.

    ``detail`` carries kind-specific context: the hop index for drops,
    "retx" for retransmitted sends, the control packet type name for
    control sends.
    """

    time: float
    kind: TraceKind
    fid: Optional[int]
    seq: Optional[int] = None
    src: Optional[int] = None
    dst: Optional[int] = None
    detail: str = ""

    def __str__(self) -> str:
        parts = [f"{self.time * 1e6:10.3f}us", self.kind.value]
        if self.fid is not None:
            parts.append(f"flow={self.fid}")
        if self.seq is not None:
            parts.append(f"seq={self.seq}")
        if self.src is not None and self.dst is not None:
            parts.append(f"{self.src}->{self.dst}")
        if self.detail:
            parts.append(f"[{self.detail}]")
        return " ".join(parts)
