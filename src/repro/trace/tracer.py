"""Ring-buffer packet/flow tracer.

Attach a :class:`PacketTracer` to a (collector, fabric) pair and every
instrumented event lands in a bounded deque.  Filters keep overhead and
memory in check on long runs: trace one flow, one host pair, or one
event kind.  Typical use::

    tracer = PacketTracer(capacity=50_000, fids={42})
    tracer.attach(collector, fabric)
    ... run simulation ...
    print(tracer.timeline(42))
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Iterable, List, Optional, Set

from repro.metrics.collector import MetricsCollector
from repro.net.packet import Flow, Packet
from repro.net.topology import Fabric
from repro.trace.events import TraceEvent, TraceKind

__all__ = ["PacketTracer"]


class PacketTracer:
    """Collects :class:`TraceEvent` records from a running simulation."""

    def __init__(
        self,
        capacity: int = 100_000,
        fids: Optional[Iterable[int]] = None,
        kinds: Optional[Iterable[TraceKind]] = None,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.events: Deque[TraceEvent] = deque(maxlen=capacity)
        self.fid_filter: Optional[Set[int]] = set(fids) if fids is not None else None
        self.kind_filter: Optional[Set[TraceKind]] = (
            set(kinds) if kinds is not None else None
        )
        self.dropped_by_filter = 0
        self._env = None
        self._chained_drop_hook = None

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def attach(self, collector: MetricsCollector, fabric: Fabric) -> "PacketTracer":
        """Stack this tracer onto the collector's observer list and tap
        the fabric's drop hook (chaining any hook already present).

        Observers are additive — a tracer coexists with auditors and
        telemetry sinks on one run.  Attaching the *same* tracer twice
        is still rejected (it would double-record every event)."""
        if self._env is not None:
            raise RuntimeError("tracer is already attached to a run")
        collector.add_observer(self)
        self._env = fabric.env
        self._chained_drop_hook = fabric.drop_hook
        fabric.drop_hook = self._on_drop
        return self

    def bind(self, ctx) -> "PacketTracer":
        """Instrumentation-hook entry point: attach to a run's
        :class:`~repro.sim.context.SimContext` (the preferred wiring —
        pass the tracer in ``ExperimentSpec.instruments`` and
        ``build_simulation`` calls this)."""
        return self.attach(ctx.collector, ctx.fabric)

    # ------------------------------------------------------------------
    # Observer interface (called by the collector)
    # ------------------------------------------------------------------
    def flow_arrived(self, flow: Flow, now: float) -> None:
        self._record(
            TraceKind.FLOW_ARRIVED, now, flow.fid, None, flow.src, flow.dst,
            detail=f"{flow.size_bytes}B",
        )

    def flow_completed(self, flow: Flow, now: float) -> None:
        self._record(TraceKind.FLOW_COMPLETED, now, flow.fid, None, flow.src, flow.dst)

    def data_sent(self, pkt: Packet, first_time: bool) -> None:
        self._record_pkt(TraceKind.DATA_SENT, pkt, detail="" if first_time else "retx")

    def data_delivered(self, pkt: Packet) -> None:
        self._record_pkt(TraceKind.DATA_DELIVERED, pkt)

    def data_duplicate(self, pkt: Packet) -> None:
        self._record_pkt(TraceKind.DATA_DUPLICATE, pkt)

    def control_sent(self, pkt: Packet) -> None:
        self._record_pkt(TraceKind.CONTROL_SENT, pkt, detail=pkt.ptype.name)

    def _on_drop(self, pkt: Packet, hop_index: int) -> None:
        self._record_pkt(TraceKind.PACKET_DROPPED, pkt, detail=f"hop{hop_index}")
        if self._chained_drop_hook is not None:
            self._chained_drop_hook(pkt, hop_index)

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def _now(self) -> float:
        return self._env.now if self._env is not None else 0.0

    def _record_pkt(self, kind: TraceKind, pkt: Packet, detail: str = "") -> None:
        fid = pkt.flow.fid if pkt.flow is not None else None
        self._record(kind, self._now(), fid, pkt.seq, pkt.src, pkt.dst, detail)

    def _record(
        self,
        kind: TraceKind,
        now: float,
        fid: Optional[int],
        seq: Optional[int],
        src: Optional[int],
        dst: Optional[int],
        detail: str = "",
    ) -> None:
        if self.kind_filter is not None and kind not in self.kind_filter:
            self.dropped_by_filter += 1
            return
        if self.fid_filter is not None and fid not in self.fid_filter:
            self.dropped_by_filter += 1
            return
        self.events.append(TraceEvent(now, kind, fid, seq, src, dst, detail))

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def of_kind(self, kind: TraceKind) -> List[TraceEvent]:
        return [e for e in self.events if e.kind == kind]

    def of_flow(self, fid: int) -> List[TraceEvent]:
        return [e for e in self.events if e.fid == fid]

    def timeline(self, fid: int) -> str:
        """Human-readable per-flow event timeline."""
        lines = [str(e) for e in self.of_flow(fid)]
        header = f"--- flow {fid}: {len(lines)} events ---"
        return "\n".join([header] + lines)

    def __len__(self) -> int:
        return len(self.events)
