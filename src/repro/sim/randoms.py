"""Deterministic randomness for simulations.

Every stochastic component takes a :class:`SeededRng` (or a stream
derived from one) rather than touching the global ``random`` module, so
a simulation is a pure function of its spec + seed.  Named substreams
keep independent concerns (arrival process, flow sizes, packet
spraying, ...) decoupled: adding draws to one stream does not perturb
the others, which keeps experiments comparable across code changes.
"""

from __future__ import annotations

import random
import zlib
from typing import Dict, Optional, Sequence, TypeVar

__all__ = ["SeededRng"]

T = TypeVar("T")


def _resolve_randbelow(rng: random.Random):
    """Fastest available ``[0, n)`` draw for this interpreter.

    CPython's ``random.Random`` keeps the rejection-sampling core in the
    private ``_randbelow`` method; aliasing it skips two wrapper frames
    per call, which matters on the per-packet spraying path.  The method
    is an implementation detail, though, so interpreters (or future
    CPythons) may not have it — in that case fall back to the public
    ``randrange``, which consumes the *identical* underlying stream:
    for n > 0, ``randrange(n)`` performs exactly one ``_randbelow(n)``
    draw, so digests do not move, only wrapper overhead returns.
    """
    fast = getattr(rng, "_randbelow", None)
    if callable(fast):
        return fast
    return rng.randrange


class SeededRng:
    """A seeded random source with derivable named substreams."""

    __slots__ = ("seed", "_rng", "_streams", "randbelow")

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._rng = random.Random(self.seed)
        self._streams: Dict[str, "SeededRng"] = {}
        # Hot-path alias: per-packet spraying uses it (see
        # net/routing.py).  Resolved defensively — see
        # :func:`_resolve_randbelow` for the draw-stream argument.
        self.randbelow = _resolve_randbelow(self._rng)

    def stream(self, name: str) -> "SeededRng":
        """Return (creating if needed) an independent named substream.

        The substream's seed is derived deterministically from this
        stream's seed and the name — via a stable digest, not ``hash()``,
        which Python salts per process and would break cross-process
        reproducibility.
        """
        existing = self._streams.get(name)
        if existing is not None:
            return existing
        digest = zlib.crc32(name.encode("utf-8"))
        derived = SeededRng((self.seed * 0x9E3779B1 + digest) & 0x7FFFFFFFFFFFFFFF)
        self._streams[name] = derived
        return derived

    # ------------------------------------------------------------------
    # Draws (thin, explicit wrappers over random.Random)
    # ------------------------------------------------------------------
    def uniform(self, a: float = 0.0, b: float = 1.0) -> float:
        return self._rng.uniform(a, b)

    def random(self) -> float:
        return self._rng.random()

    def expovariate(self, rate: float) -> float:
        """Exponential inter-arrival sample with the given rate (1/s)."""
        return self._rng.expovariate(rate)

    def randint(self, a: int, b: int) -> int:
        """Uniform integer in the inclusive range [a, b]."""
        return self._rng.randint(a, b)

    def randrange(self, n: int) -> int:
        """Uniform integer in [0, n)."""
        return self._rng.randrange(n)

    def choice(self, seq: Sequence[T]) -> T:
        return self._rng.choice(seq)

    def shuffle(self, seq: list) -> None:
        self._rng.shuffle(seq)

    def sample(self, population: Sequence[T], k: int) -> list:
        """k distinct elements drawn without replacement."""
        return self._rng.sample(population, k)

    def other_than(self, n: int, excluded: int) -> int:
        """Uniform integer in [0, n) that is not ``excluded``."""
        if n < 2:
            raise ValueError("need at least two values to exclude one")
        value = self._rng.randrange(n - 1)
        return value if value < excluded else value + 1

    def derangement_permutation(self, n: int, max_tries: Optional[int] = None) -> list:
        """A random permutation of range(n) with no fixed points.

        Used by the permutation traffic matrix, where a host must never
        be matched with itself.  Rejection sampling: the probability a
        random permutation is a derangement is ~1/e, so a handful of
        tries suffice.
        """
        if n < 2:
            raise ValueError("derangement needs n >= 2")
        tries = max_tries if max_tries is not None else 1000
        perm = list(range(n))
        for _ in range(tries):
            self._rng.shuffle(perm)
            if all(perm[i] != i for i in range(n)):
                return list(perm)
        raise RuntimeError("failed to sample a derangement")  # pragma: no cover

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"SeededRng(seed={self.seed})"
