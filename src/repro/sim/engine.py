"""Event loop for the packet-level simulator.

The loop is deliberately minimal and fast: events are stored in a binary
heap as small lists ``[time, seq, callback, args, loop]``.  Cancellation
is O(1) — the callback slot is nulled out and the entry is skipped when
it reaches the top of the heap.  The live-event count is maintained
incrementally, so :meth:`EventLoop.pending_count` is O(1), and the heap
is compacted in place once cancelled entries outnumber live ones (long
pHost runs cancel a timer per token, which would otherwise leave the
heap dominated by dead entries).  The monotone ``seq`` counter makes
event ordering deterministic for equal timestamps (FIFO among ties),
which in turn makes whole simulations reproducible for a fixed seed.

Times are floats in **seconds**.  At datacenter scale (nanoseconds to
milliseconds) float64 has far more resolution than we need.
"""

from __future__ import annotations

import heapq
from time import perf_counter
from typing import Any, Callable, List, Optional

__all__ = ["EventLoop", "SimulationError"]

# Indices inside an event entry.  The callback slot is nulled for
# cancellation; the loop backref lets the static cancel() keep the
# owning loop's live/cancelled counters exact.  The backref is never
# compared: heap ordering is fully decided by (time, seq) since seq is
# unique per loop.
_FN = 2
_LOOP = 4

#: Compaction only kicks in past this many dead entries — below it the
#: rebuild costs more than lazily popping the corpses.
_COMPACT_MIN = 64


class SimulationError(RuntimeError):
    """Raised when the simulation is used inconsistently.

    Examples: scheduling an event in the past, or running a loop that
    was already exhausted with ``strict=True``.
    """


class EventLoop:
    """A discrete-event scheduler.

    Typical usage::

        loop = EventLoop()
        loop.schedule(1e-6, handler, arg1, arg2)
        loop.run()

    Attributes:
        now: Current simulation time in seconds.  Monotonically
            non-decreasing while the loop runs.
        events_processed: Number of callbacks actually executed (skipped
            cancelled entries are not counted).
    """

    __slots__ = (
        "now",
        "events_processed",
        "_heap",
        "_seq",
        "_stopped",
        "_live",
        "_cancelled",
        "_clock_watcher",
        "_profiler",
    )

    def __init__(self) -> None:
        self.now: float = 0.0
        self.events_processed: int = 0
        self._heap: List[list] = []
        self._seq: int = 0
        self._stopped: bool = False
        self._live: int = 0  # scheduled, not yet fired or cancelled
        self._cancelled: int = 0  # cancelled entries still in the heap
        self._clock_watcher: Optional[Callable[[float, float], None]] = None
        self._profiler: Optional[Any] = None

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule_at(self, when: float, fn: Callable[..., Any], *args: Any) -> list:
        """Schedule ``fn(*args)`` at absolute time ``when``.

        Returns an opaque handle usable with :meth:`cancel`.
        """
        if when < self.now:
            raise SimulationError(
                f"cannot schedule event in the past: {when} < now={self.now}"
            )
        self._seq += 1
        entry = [when, self._seq, fn, args, self]
        heapq.heappush(self._heap, entry)
        self._live += 1
        return entry

    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any) -> list:
        """Schedule ``fn(*args)`` after a relative ``delay`` seconds."""
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        return self.schedule_at(self.now + delay, fn, *args)

    @staticmethod
    def cancel(entry: Optional[list]) -> None:
        """Cancel a previously scheduled event.

        Safe to call with ``None`` or with an entry that already fired
        (firing nulls the callback slot as well).
        """
        if entry is None or entry[_FN] is None:
            return
        entry[_FN] = None
        loop: "EventLoop" = entry[_LOOP]
        loop._live -= 1
        loop._cancelled += 1
        if loop._cancelled > _COMPACT_MIN and loop._cancelled * 2 > len(loop._heap):
            loop._compact()

    def _compact(self) -> None:
        """Drop cancelled entries and re-heapify, in place.

        In place matters: :meth:`run` holds a local alias to the heap
        list while callbacks (which may cancel and trigger compaction)
        are executing.
        """
        heap = self._heap
        heap[:] = [e for e in heap if e[_FN] is not None]
        heapq.heapify(heap)
        self._cancelled = 0

    @staticmethod
    def is_pending(entry: Optional[list]) -> bool:
        """True if the handle refers to an event that has not fired."""
        return entry is not None and entry[_FN] is not None

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def peek_time(self) -> Optional[float]:
        """Time of the next live event, or None if the heap is empty."""
        heap = self._heap
        while heap and heap[0][_FN] is None:
            heapq.heappop(heap)
            self._cancelled -= 1
        return heap[0][0] if heap else None

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> int:
        """Run events in time order.

        Args:
            until: Stop once the next event's time exceeds this value
                (the clock is still advanced to ``until``).  ``None``
                runs until the heap drains or :meth:`stop` is called.
            max_events: Safety valve; stop after this many callbacks.

        Returns:
            Number of callbacks executed by this call.
        """
        if self._profiler is not None:
            return self._run_profiled(until, max_events)
        heap = self._heap
        pop = heapq.heappop
        executed = 0
        self._stopped = False
        while heap:
            if self._stopped:
                break
            if max_events is not None and executed >= max_events:
                break
            entry = heap[0]
            fn = entry[_FN]
            if fn is None:  # cancelled — drop silently
                pop(heap)
                self._cancelled -= 1
                continue
            when = entry[0]
            if until is not None and when > until:
                self.now = until
                break
            pop(heap)
            if when < self.now and self._clock_watcher is not None:
                # Only reachable by smuggling an entry into the heap
                # behind schedule_at()'s past-time guard.
                self._clock_watcher(self.now, when)
            self.now = when
            entry[_FN] = None  # mark as fired (makes cancel-after-fire a no-op)
            self._live -= 1
            fn(*entry[3])
            executed += 1
        else:
            if until is not None and until > self.now:
                self.now = until
        self.events_processed += executed
        return executed

    def _run_profiled(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> int:
        """Instrumented twin of :meth:`run`.

        A separate copy so the unprofiled hot loop pays nothing for the
        profiler seam.  Kept line-for-line parallel with :meth:`run`;
        the only additions are the ``perf_counter`` bracket around the
        callback and the ``on_event`` report.
        """
        profiler = self._profiler
        profiler.run_started(self, until)
        heap = self._heap
        pop = heapq.heappop
        executed = 0
        self._stopped = False
        while heap:
            if self._stopped:
                break
            if max_events is not None and executed >= max_events:
                break
            entry = heap[0]
            fn = entry[_FN]
            if fn is None:  # cancelled — drop silently
                pop(heap)
                self._cancelled -= 1
                continue
            when = entry[0]
            if until is not None and when > until:
                self.now = until
                break
            pop(heap)
            if when < self.now and self._clock_watcher is not None:
                self._clock_watcher(self.now, when)
            self.now = when
            entry[_FN] = None  # mark as fired (makes cancel-after-fire a no-op)
            self._live -= 1
            t0 = perf_counter()
            fn(*entry[3])
            profiler.on_event(fn, when, perf_counter() - t0)
            executed += 1
        else:
            if until is not None and until > self.now:
                self.now = until
        self.events_processed += executed
        return executed

    def set_profiler(self, profiler: Optional[Any]) -> None:
        """Install (or remove, with ``None``) an event-loop profiler.

        The profiler must expose ``run_started(loop, until)`` and
        ``on_event(fn, when, wall_dt)`` — see
        :class:`repro.obs.EventLoopProfiler`.  While one is installed,
        :meth:`run` dispatches through an instrumented twin loop; the
        ordinary path is untouched otherwise.
        """
        self._profiler = profiler

    def stop(self) -> None:
        """Request that :meth:`run` return after the current callback."""
        self._stopped = True

    def pending_count(self) -> int:
        """Number of live (non-cancelled) events still queued. O(1)."""
        return self._live

    def set_clock_watcher(
        self, fn: Optional[Callable[[float, float], None]]
    ) -> None:
        """Install ``fn(now, when)``, called if an event stamped before
        the current clock is about to execute (the clock still advances
        to the event's time afterwards, preserving legacy behaviour).

        ``schedule_at`` already rejects past times, so this only fires
        for entries injected into the heap directly — it exists for the
        :class:`repro.validate.CausalityAuditor`, and costs one
        almost-always-false comparison per event.
        """
        self._clock_watcher = fn

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"EventLoop(now={self.now:.9f}, pending={self._live}, "
            f"processed={self.events_processed})"
        )
