"""Event loop for the packet-level simulator.

The loop is deliberately minimal and fast: events are stored in a binary
heap as small lists ``[time, seq, callback, args]``.  Cancellation is
O(1) — the callback slot is nulled out and the entry is skipped when it
reaches the top of the heap.  The monotone ``seq`` counter makes event
ordering deterministic for equal timestamps (FIFO among ties), which in
turn makes whole simulations reproducible for a fixed seed.

Times are floats in **seconds**.  At datacenter scale (nanoseconds to
milliseconds) float64 has far more resolution than we need.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional

__all__ = ["EventLoop", "SimulationError"]

# Index of the callback inside an event entry; used for cancellation.
_FN = 2


class SimulationError(RuntimeError):
    """Raised when the simulation is used inconsistently.

    Examples: scheduling an event in the past, or running a loop that
    was already exhausted with ``strict=True``.
    """


class EventLoop:
    """A discrete-event scheduler.

    Typical usage::

        loop = EventLoop()
        loop.schedule(1e-6, handler, arg1, arg2)
        loop.run()

    Attributes:
        now: Current simulation time in seconds.  Monotonically
            non-decreasing while the loop runs.
        events_processed: Number of callbacks actually executed (skipped
            cancelled entries are not counted).
    """

    __slots__ = ("now", "events_processed", "_heap", "_seq", "_stopped")

    def __init__(self) -> None:
        self.now: float = 0.0
        self.events_processed: int = 0
        self._heap: List[list] = []
        self._seq: int = 0
        self._stopped: bool = False

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule_at(self, when: float, fn: Callable[..., Any], *args: Any) -> list:
        """Schedule ``fn(*args)`` at absolute time ``when``.

        Returns an opaque handle usable with :meth:`cancel`.
        """
        if when < self.now:
            raise SimulationError(
                f"cannot schedule event in the past: {when} < now={self.now}"
            )
        self._seq += 1
        entry = [when, self._seq, fn, args]
        heapq.heappush(self._heap, entry)
        return entry

    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any) -> list:
        """Schedule ``fn(*args)`` after a relative ``delay`` seconds."""
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        return self.schedule_at(self.now + delay, fn, *args)

    @staticmethod
    def cancel(entry: Optional[list]) -> None:
        """Cancel a previously scheduled event.

        Safe to call with ``None`` or with an entry that already fired
        (firing nulls the callback slot as well).
        """
        if entry is not None:
            entry[_FN] = None

    @staticmethod
    def is_pending(entry: Optional[list]) -> bool:
        """True if the handle refers to an event that has not fired."""
        return entry is not None and entry[_FN] is not None

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def peek_time(self) -> Optional[float]:
        """Time of the next live event, or None if the heap is empty."""
        heap = self._heap
        while heap and heap[0][_FN] is None:
            heapq.heappop(heap)
        return heap[0][0] if heap else None

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> int:
        """Run events in time order.

        Args:
            until: Stop once the next event's time exceeds this value
                (the clock is still advanced to ``until``).  ``None``
                runs until the heap drains or :meth:`stop` is called.
            max_events: Safety valve; stop after this many callbacks.

        Returns:
            Number of callbacks executed by this call.
        """
        heap = self._heap
        pop = heapq.heappop
        executed = 0
        self._stopped = False
        while heap:
            if self._stopped:
                break
            if max_events is not None and executed >= max_events:
                break
            entry = heap[0]
            fn = entry[_FN]
            if fn is None:  # cancelled — drop silently
                pop(heap)
                continue
            when = entry[0]
            if until is not None and when > until:
                self.now = until
                break
            pop(heap)
            self.now = when
            entry[_FN] = None  # mark as fired (makes cancel-after-fire a no-op)
            fn(*entry[3])
            executed += 1
        else:
            if until is not None and until > self.now:
                self.now = until
        self.events_processed += executed
        return executed

    def stop(self) -> None:
        """Request that :meth:`run` return after the current callback."""
        self._stopped = True

    def pending_count(self) -> int:
        """Number of live (non-cancelled) events still queued. O(n)."""
        return sum(1 for e in self._heap if e[_FN] is not None)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"EventLoop(now={self.now:.9f}, pending={len(self._heap)}, "
            f"processed={self.events_processed})"
        )
