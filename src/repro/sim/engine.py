"""Event loop for the packet-level simulator.

The loop is deliberately minimal and fast: events are stored in a binary
heap as small lists ``[time, seq, callback, args, owner]``.  Cancellation
is O(1) — the callback slot is nulled out and the entry is skipped when
it reaches the top of the heap.  The live-event count is maintained
incrementally, so :meth:`EventLoop.pending_count` is O(1), and the heap
is compacted in place once cancelled entries outnumber live ones.  The
monotone ``seq`` counter makes event ordering deterministic for equal
timestamps (FIFO among ties), which in turn makes whole simulations
reproducible for a fixed seed.

High-volume cancellable *timers* (pHost token-expiry recovery checks,
pFabric retransmission timeouts) go through :meth:`schedule_timer`,
which parks them in a hierarchical :class:`repro.sim.wheel.TimerWheel`
instead of the heap: O(1) schedule and cancel, corpses swept in place,
no compaction churn.  The wheel pours due timers back into the heap
carrying the sequence number they drew at schedule time, so the global
``(time, seq)`` dispatch order — and therefore every run digest — is
byte-identical to a pure-heap run.  ``timer_wheel_enabled = False`` is
the escape hatch that routes timers straight to the heap.

The loop also exposes :meth:`try_advance` — the seam that lets a busy
:class:`repro.net.port.Port` chain back-to-back departures inline
without a scheduler round-trip, provided nothing else fires first.

Times are floats in **seconds**.  At datacenter scale (nanoseconds to
milliseconds) float64 has far more resolution than we need.
"""

from __future__ import annotations

import heapq
from time import perf_counter
from typing import Any, Callable, List, Optional

from repro.sim.wheel import TimerWheel

__all__ = ["EventLoop", "SimulationError"]

# Indices inside an event entry.  The callback slot is nulled for
# cancellation; the owner backref (the loop, or the timer wheel while an
# entry is parked there) lets the static cancel() keep the owning
# container's live/cancelled counters exact.  The backref is never
# compared: heap ordering is fully decided by (time, seq) since seq is
# unique per loop.
_FN = 2
_OWNER = 4

#: Compaction only kicks in past this many dead entries — below it the
#: rebuild costs more than lazily popping the corpses.
_COMPACT_MIN = 64


class SimulationError(RuntimeError):
    """Raised when the simulation is used inconsistently.

    Examples: scheduling an event in the past, or running a loop that
    was already exhausted with ``strict=True``.
    """


class EventLoop:
    """A discrete-event scheduler.

    Typical usage::

        loop = EventLoop()
        loop.schedule(1e-6, handler, arg1, arg2)
        loop.run()

    Attributes:
        now: Current simulation time in seconds.  Monotonically
            non-decreasing while the loop runs.
        events_processed: Number of callbacks actually executed (skipped
            cancelled entries are not counted; an inline port drain via
            :meth:`try_advance` counts as the one event it replaced).
        wheel: The hierarchical timer wheel backing
            :meth:`schedule_timer`.
        timer_wheel_enabled: When False, :meth:`schedule_timer` degrades
            to plain heap scheduling (the pure-heap escape hatch).
        drain_enabled: When False, :meth:`try_advance` always refuses,
            forcing every port departure through the scheduler.
        batch_dispatch: When True (the default), :meth:`run` drains all
            events tied at the head timestamp in one ``(time, seq)``-
            sorted sweep, skipping the per-event heap/limit/watcher
            checks inside the tie.  Dispatch order is identical either
            way; ``batches`` / ``batched_events`` count the sweeps.
        batches/batched_events: How many same-timestamp sweeps ran and
            how many events they covered beyond the first of each tie.
    """

    __slots__ = (
        "now",
        "events_processed",
        "wheel",
        "timer_wheel_enabled",
        "drain_enabled",
        "batch_dispatch",
        "timers_to_heap",
        "batches",
        "batched_events",
        "_heap",
        "_seq",
        "_stopped",
        "_live",
        "_cancelled",
        "_clock_watcher",
        "_profiler",
        "_drive",
        "_until",
        "_no_drain",
    )

    def __init__(self, timer_resolution: float = 1e-6) -> None:
        self.now: float = 0.0
        self.events_processed: int = 0
        self.wheel = TimerWheel(self, timer_resolution)
        self.timer_wheel_enabled: bool = True
        self.drain_enabled: bool = True
        self.batch_dispatch: bool = True
        self.timers_to_heap: int = 0  # schedule_timer calls the wheel declined
        self.batches: int = 0  # same-timestamp sweeps that swept > 1 event
        self.batched_events: int = 0  # events dispatched inside sweeps
        self._heap: List[list] = []
        self._seq: int = 0
        self._stopped: bool = False
        self._live: int = 0  # scheduled, not yet fired or cancelled (heap only)
        self._cancelled: int = 0  # cancelled entries still in the heap
        self._clock_watcher: Optional[Callable[[float, float], None]] = None
        self._profiler: Optional[Any] = None
        self._drive: Optional[Callable[..., int]] = None  # compiled run()
        self._until: Optional[float] = None  # active run() horizon
        self._no_drain: bool = True  # try_advance only allowed inside run()

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule_at(self, when: float, fn: Callable[..., Any], *args: Any) -> list:
        """Schedule ``fn(*args)`` at absolute time ``when``.

        Returns an opaque handle usable with :meth:`cancel`.
        """
        if when < self.now:
            raise SimulationError(
                f"cannot schedule event in the past: {when} < now={self.now}"
            )
        self._seq += 1
        entry = [when, self._seq, fn, args, self]
        heapq.heappush(self._heap, entry)
        self._live += 1
        return entry

    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any) -> list:
        """Schedule ``fn(*args)`` after a relative ``delay`` seconds."""
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        return self.schedule_at(self.now + delay, fn, *args)

    def schedule_timer_at(
        self, when: float, fn: Callable[..., Any], *args: Any
    ) -> list:
        """Schedule a *timer* at absolute time ``when``.

        Semantically identical to :meth:`schedule_at` (same handle,
        same :meth:`cancel`), but routed through the timing wheel when
        possible: use it for high-volume timers that are usually
        cancelled or re-armed before firing.  Timers due within one
        wheel tick or beyond the wheel horizon fall back to the heap.
        """
        if when < self.now:
            raise SimulationError(
                f"cannot schedule timer in the past: {when} < now={self.now}"
            )
        if self.timer_wheel_enabled:
            entry = self.wheel.schedule(when, fn, args)
            if entry is not None:
                return entry
            self.timers_to_heap += 1
        self._seq += 1
        entry = [when, self._seq, fn, args, self]
        heapq.heappush(self._heap, entry)
        self._live += 1
        return entry

    def schedule_timer(self, delay: float, fn: Callable[..., Any], *args: Any) -> list:
        """Schedule a timer ``delay`` seconds from now (see
        :meth:`schedule_timer_at`)."""
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        return self.schedule_timer_at(self.now + delay, fn, *args)

    @staticmethod
    def cancel(entry: Optional[list]) -> None:
        """Cancel a previously scheduled event or timer.

        Safe to call with ``None`` or with an entry that already fired
        (firing nulls the callback slot as well).  Accounting is
        dispatched to the entry's owner — the loop for heap entries, the
        timer wheel for parked timers — so each container's
        live/cancelled counters stay exact.
        """
        if entry is None or entry[_FN] is None:
            return
        entry[_FN] = None
        entry[_OWNER]._entry_cancelled(entry)

    def _entry_cancelled(self, entry: list) -> None:
        self._live -= 1
        self._cancelled += 1
        if self._cancelled > _COMPACT_MIN and self._cancelled * 2 > len(self._heap):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries and re-heapify, in place.

        In place matters: :meth:`run` holds a local alias to the heap
        list while callbacks (which may cancel and trigger compaction)
        are executing.
        """
        heap = self._heap
        heap[:] = [e for e in heap if e[_FN] is not None]
        heapq.heapify(heap)
        self._cancelled = 0

    @staticmethod
    def is_pending(entry: Optional[list]) -> bool:
        """True if the handle refers to an event that has not fired."""
        return entry is not None and entry[_FN] is not None

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def peek_time(self) -> Optional[float]:
        """Time of the next live event, or None if nothing is pending."""
        heap = self._heap
        wheel = self.wheel
        while True:
            while heap and heap[0][_FN] is None:
                heapq.heappop(heap)
                self._cancelled -= 1
            if wheel._live and (not heap or heap[0][0] >= wheel.next_hint):
                if heap:
                    wheel.advance(heap[0][0], heap)
                else:
                    wheel.advance_until_poured(heap)
                continue
            return heap[0][0] if heap else None

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> int:
        """Run events in time order.

        Args:
            until: Stop once the next event's time exceeds this value
                (the clock is still advanced to ``until``).  ``None``
                runs until the heap drains or :meth:`stop` is called.
            max_events: Safety valve; stop after this many callbacks.

        Returns:
            Number of callbacks executed by this call (inline port
            drains are not re-counted here; they are folded into
            ``events_processed`` as they happen).
        """
        if self._profiler is not None:
            return self._run_profiled(until, max_events)
        if self._drive is not None:
            # Compiled backend: an extension function with the exact
            # semantics of the loop below (the determinism suite holds
            # the two byte-identical).  It maintains now / _live /
            # _cancelled / events_processed on this object at every
            # callback boundary, so re-entrant paths (cancel,
            # try_advance, schedule) behave identically.
            return self._drive(self, until, max_events)
        heap = self._heap
        wheel = self.wheel
        pop = heapq.heappop
        batch = self.batch_dispatch
        executed = 0
        self._stopped = False
        self._until = until
        # Inline draining is only sound mid-run (the drained event must
        # be indistinguishable from a scheduled one) and never under
        # max_events, which meters individual dispatches.
        self._no_drain = (max_events is not None) or not self.drain_enabled
        # Sentinels keep the per-event checks to one comparison each.
        limit = until if until is not None else float("inf")
        budget = -1 if max_events is None else max(max_events, 0)
        try:
            while True:
                if self._stopped:
                    break
                if executed == budget:
                    break
                if wheel._live and (not heap or heap[0][0] >= wheel.next_hint):
                    # Due timers pour into the heap with their original
                    # seq, landing exactly where a direct schedule would
                    # have put them.
                    if heap:
                        wheel.advance(heap[0][0], heap)
                    else:
                        wheel.advance_until_poured(heap)
                    continue
                if not heap:
                    if until is not None and until > self.now:
                        self.now = until
                    break
                entry = heap[0]
                fn = entry[_FN]
                if fn is None:  # cancelled — drop silently
                    pop(heap)
                    self._cancelled -= 1
                    continue
                when = entry[0]
                if when > limit:
                    self.now = until
                    break
                pop(heap)
                # Mark as fired *before* any observer can run: a cancel()
                # issued from the clock watcher (or any re-entrant path)
                # must see a dead entry, not double-count a corpse that
                # is no longer in the heap.
                entry[_FN] = None
                self._live -= 1
                if when < self.now and self._clock_watcher is not None:
                    # Only reachable by smuggling an entry into the heap
                    # behind schedule_at()'s past-time guard.
                    self._clock_watcher(self.now, when)
                self.now = when
                fn(*entry[3])
                executed += 1
                if not batch:
                    continue
                # Same-timestamp sweep: every further event tied at
                # ``when`` runs here without re-checking heap-emptiness,
                # the ``until`` limit, or the clock watcher — the head
                # time cannot move backwards, ``now`` already equals
                # ``when``, and ties can never trip the watcher.  The
                # wheel check must stay: a callback may park a timer
                # whose pour is due at ``when`` itself (e.g. the run's
                # first wheel timer, scheduled one tick out from a
                # cursor that is still behind), and that timer's seq
                # orders it *between* heap ties.  Stop/budget checks
                # stay per-event so metering is identical either way.
                swept = 0
                while heap:
                    if self._stopped or executed == budget:
                        break
                    if wheel._live and when >= wheel.next_hint:
                        break  # outer loop pours, then resumes the tie
                    head = heap[0]
                    if head[0] != when:
                        break
                    fn = head[_FN]
                    pop(heap)
                    if fn is None:  # cancelled mid-batch
                        self._cancelled -= 1
                        continue
                    head[_FN] = None
                    self._live -= 1
                    fn(*head[3])
                    executed += 1
                    swept += 1
                if swept:
                    self.batches += 1
                    self.batched_events += swept
        finally:
            self._no_drain = True
            self._until = None
        self.events_processed += executed
        return executed

    def try_advance(self, t: float) -> bool:
        """Advance the clock to ``t`` iff no other event fires first.

        The inline-drain seam for fused ports: when a busy port has its
        next packet ready at serialization-done time ``t``, and nothing
        else in the simulation is due at or before ``t``, the port may
        skip scheduling the intermediate event and continue inline.  On
        success the clock moves to ``t`` and ``events_processed`` is
        credited with the one event the drain replaced, keeping the
        counter identical with draining on or off.

        Refuses (returns False) outside :meth:`run`, after :meth:`stop`,
        past the run's ``until`` horizon, under a profiler (which meters
        individual dispatches), or when any heap event or wheel timer is
        due at or before ``t``.
        """
        if self._no_drain or self._stopped or t < self.now:
            return False
        until = self._until
        if until is not None and t > until:
            return False
        heap = self._heap
        while heap and heap[0][_FN] is None:
            heapq.heappop(heap)
            self._cancelled -= 1
        if self.wheel._live and self.wheel.next_hint <= t:
            return False
        if heap and heap[0][0] <= t:
            return False
        self.now = t
        self.events_processed += 1
        return True

    def _run_profiled(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> int:
        """Instrumented twin of :meth:`run`.

        A separate copy so the unprofiled hot loop pays nothing for the
        profiler seam.  Kept line-for-line parallel with :meth:`run`;
        the only differences are the ``perf_counter`` bracket around the
        callback, the ``on_event`` report, and inline draining staying
        disabled (``_no_drain``) so every dispatch is individually
        metered.
        """
        profiler = self._profiler
        profiler.run_started(self, until)
        heap = self._heap
        wheel = self.wheel
        pop = heapq.heappop
        executed = 0
        self._stopped = False
        self._until = until
        limit = until if until is not None else float("inf")
        budget = -1 if max_events is None else max(max_events, 0)
        try:
            while True:
                if self._stopped:
                    break
                if executed == budget:
                    break
                if wheel._live and (not heap or heap[0][0] >= wheel.next_hint):
                    if heap:
                        wheel.advance(heap[0][0], heap)
                    else:
                        wheel.advance_until_poured(heap)
                    continue
                if not heap:
                    if until is not None and until > self.now:
                        self.now = until
                    break
                entry = heap[0]
                fn = entry[_FN]
                if fn is None:  # cancelled — drop silently
                    pop(heap)
                    self._cancelled -= 1
                    continue
                when = entry[0]
                if when > limit:
                    self.now = until
                    break
                pop(heap)
                entry[_FN] = None  # fired: see the ordering note in run()
                self._live -= 1
                if when < self.now and self._clock_watcher is not None:
                    self._clock_watcher(self.now, when)
                self.now = when
                t0 = perf_counter()
                fn(*entry[3])
                # Six-cell entries came through the timing wheel (they
                # carry a trailing tick); four-cell ones were scheduled
                # straight onto the heap.
                profiler.on_event(fn, when, perf_counter() - t0, len(entry) == 6)
                executed += 1
        finally:
            self._until = None
        self.events_processed += executed
        return executed

    def set_profiler(self, profiler: Optional[Any]) -> None:
        """Install (or remove, with ``None``) an event-loop profiler.

        The profiler must expose ``run_started(loop, until)`` and
        ``on_event(fn, when, wall_dt, via_wheel)`` — see
        :class:`repro.obs.EventLoopProfiler`.  While one is installed,
        :meth:`run` dispatches through an instrumented twin loop; the
        ordinary path is untouched otherwise.
        """
        self._profiler = profiler

    @property
    def profiler(self) -> Optional[Any]:
        """The installed event-loop profiler, if any."""
        return self._profiler

    def set_drive(self, drive: Optional[Callable[..., int]]) -> None:
        """Install (or remove, with ``None``) a compiled ``run()`` twin.

        ``drive(loop, until, max_events)`` must execute events with the
        exact semantics of the pure loop — same dispatch order, same
        counter updates, same ``finally`` discipline — and return the
        number of callbacks executed.  Installed by
        :func:`repro.sim.backend.apply_backend` when the compiled
        backend is selected; profiled runs always use the pure
        instrumented twin regardless.
        """
        self._drive = drive

    def stop(self) -> None:
        """Request that :meth:`run` return after the current callback."""
        self._stopped = True

    def pending_count(self) -> int:
        """Live (non-cancelled) events still queued, heap + wheel. O(1)."""
        return self._live + self.wheel._live

    def set_clock_watcher(
        self, fn: Optional[Callable[[float, float], None]]
    ) -> None:
        """Install ``fn(now, when)``, called if an event stamped before
        the current clock is about to execute (the clock still advances
        to the event's time afterwards, preserving legacy behaviour).

        ``schedule_at`` already rejects past times, so this only fires
        for entries injected into the heap directly — it exists for the
        :class:`repro.validate.CausalityAuditor`, and costs one
        almost-always-false comparison per event.
        """
        self._clock_watcher = fn

    def configure_wheel(self, resolution: float) -> None:
        """Replace the timer wheel (e.g. with a different resolution).

        Only valid while no timers are parked — call it at build time,
        before the simulation schedules anything through the wheel.
        """
        if self.wheel._live or self.wheel._cancelled:
            raise SimulationError("cannot reconfigure a wheel holding timers")
        self.wheel = TimerWheel(self, resolution)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"EventLoop(now={self.now:.9f}, pending={self.pending_count()}, "
            f"processed={self.events_processed})"
        )
