"""The simulation context — one object owning a run's moving parts.

Every experiment assembles the same pieces: an event loop, a seeded RNG,
a fabric, a metrics collector, a resolved protocol configuration and
(for centrally-scheduled transports) protocol-shared state.  Before this
module existed that 6-tuple was threaded positionally through every
factory and driver; :class:`SimContext` replaces the tuple with a single
spine that

* protocol factories receive (``config_factory(ctx)``,
  ``shared_factory(ctx)``, ``agent_factory(host, ctx)`` — see
  :class:`repro.protocols.base.ProtocolSpec`);
* every :class:`~repro.protocols.base.TransportAgent` stores as
  ``self.ctx``;
* instrumentation hooks (e.g. :class:`repro.trace.PacketTracer`) bind
  to, instead of being hand-wired to a (collector, fabric) pair.

Future capabilities (observability hooks, fault injection, batched or
parallel execution) extend this one object instead of widening five
call chains.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, List, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (sim <- net/metrics)
    from repro.metrics.collector import MetricsCollector
    from repro.net.topology import Fabric
    from repro.sim.engine import EventLoop
    from repro.sim.randoms import SeededRng

__all__ = ["SimContext"]


class SimContext:
    """Owns one simulation run's shared components.

    Built in two phases by :func:`repro.experiments.runner.build_simulation`:
    the substrate fields (``env``, ``rng``, ``fabric``, ``collector``)
    are set at construction; ``config`` and ``shared`` are filled in by
    the protocol's factories, which receive the partially-built context
    (they only read the substrate fields).
    """

    __slots__ = (
        "env",
        "rng",
        "fabric",
        "collector",
        "config",
        "shared",
        "hooks",
        "obs",
        "tuning",
        "pool",
        "faults",
        "dataplane",
    )

    def __init__(
        self,
        env: "EventLoop",
        rng: "SeededRng",
        fabric: "Fabric",
        collector: "MetricsCollector",
        config: Any = None,
        shared: Any = None,
        hooks: Optional[List[Any]] = None,
        tuning: Any = None,
    ) -> None:
        self.env = env
        self.rng = rng
        self.fabric = fabric
        self.collector = collector
        #: Hot-path switches for this run (see :mod:`repro.sim.tuning`).
        from repro.sim.tuning import SimTuning

        self.tuning = tuning if tuning is not None else SimTuning()
        #: The run's packet freelist.  Created with the context and never
        #: replaced (agents cache the reference); the runner flips
        #: ``pool.enabled`` per the tuning and the attached hooks.
        from repro.net.pool import PacketPool

        self.pool = PacketPool(enabled=self.tuning.packet_pool)
        #: Resolved protocol configuration (e.g. a ``PHostConfig`` with
        #: absolute times computed for this topology).
        self.config = config
        #: Protocol-shared state (e.g. the Fastpass arbiter); None for
        #: fully-decentralized transports.
        self.shared = shared
        #: Instrumentation hooks bound to this run (see :meth:`add_hook`).
        self.hooks: List[Any] = list(hooks) if hooks else []
        #: The run's instrument registry (see :mod:`repro.obs`).  Always
        #: present; registration is near-free and nothing is evaluated
        #: until a sink (sampler/exporter) snapshots it.  Imported
        #: lazily to keep ``sim`` free of package-level cycles.
        from repro.obs.registry import InstrumentRegistry

        self.obs = InstrumentRegistry()
        #: The run's bound :class:`repro.faults.FaultInjector`, set by
        #: the injector itself when the runner installs one for a
        #: non-empty fault plan; None in fault-free runs.  Agents may
        #: consult this to arm fault-only recovery timers without
        #: perturbing fault-free event streams.
        self.faults: Any = None
        #: The run's :class:`repro.dataplane.DataplaneBinding` (which
        #: switch/NIC programs the fabric executes, and whether they
        #: were compiled to the fused queue classes).  Set by
        #: ``build_simulation``; None for hand-wired fabrics.
        self.dataplane: Any = None

    # ------------------------------------------------------------------
    # Instrumentation
    # ------------------------------------------------------------------
    def add_hook(self, hook: Any) -> Any:
        """Bind an instrumentation hook to this run and track it.

        A hook exposing ``bind(ctx)`` is bound that way (the preferred
        interface); otherwise a legacy ``attach(collector, fabric)``
        signature is used.  Returns the hook for chaining.
        """
        bind = getattr(hook, "bind", None)
        if bind is not None:
            bind(self)
        else:
            hook.attach(self.collector, self.fabric)
        self.hooks.append(hook)
        return hook

    def hooks_of_type(self, cls: type) -> List[Any]:
        """The bound hooks that are instances of ``cls``."""
        return [h for h in self.hooks if isinstance(h, cls)]

    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time (convenience passthrough)."""
        return self.env.now

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        proto = type(self.config).__name__ if self.config is not None else "?"
        return (
            f"SimContext(now={self.env.now:.9f}, hosts={len(self.fabric.hosts)}, "
            f"config={proto}, hooks={len(self.hooks)})"
        )
