"""Hierarchical timing wheel for high-volume cancellable timers.

Protocol timers (pHost token-expiry recovery checks, pFabric
retransmission timeouts, Fastpass recheck timers) are scheduled by the
thousand, re-armed or cancelled long before they fire, and all live a
bounded distance in the future.  Keeping them in the event loop's binary
heap means O(log n) pushes, corpse entries after every cancel, and
periodic compaction churn.  A timing wheel gives O(1) schedule and
cancel: timers hash into a slot by expiration tick, cancelled entries
are simply swept when the cursor passes their slot, and only events
beyond the wheel's horizon fall back to the heap (the long tail the heap
is actually good at).

Design (classic hierarchical wheel, as in Varghese & Lauck and the
Linux kernel timer wheel):

* ``LEVELS`` levels of ``SLOTS`` slots each; level ``l`` covers ticks at
  granularity ``SLOTS**l``.  A timer lands in the lowest level whose
  window reaches its expiration tick; when the cursor crosses a level
  boundary, that level's due slot *cascades* down.
* The wheel never fires callbacks itself.  :meth:`advance` pours due
  entries into the owning :class:`~repro.sim.engine.EventLoop`'s heap,
  carrying the ``seq`` they drew at schedule time, so the loop's global
  ``(time, seq)`` order — and therefore every simulation digest — is
  exactly what a pure-heap run produces.  Pouring an entry *early* is
  always safe (the heap re-sorts it); only a late pour could reorder
  events, and the cursor arithmetic below is built around that asymmetry.
* Entries share the event-loop's list layout ``[when, seq, fn, args,
  owner]`` (plus a cached expiration tick), so ``EventLoop.cancel`` and
  ``EventLoop.is_pending`` work on wheel-parked timers unchanged —
  cancellation nulls the callback slot and dispatches to the owner for
  the per-container live/cancelled accounting.

Float/tick mapping: ticks are ``floor(when / resolution)`` computed with
a one-ulp correction (``tick -= 1`` if ``tick * resolution > when``) so
the same monotone mapping is used on the schedule and advance sides.
The correction may undershoot the true floor by one tick, which is why
:meth:`advance` always advances one tick *past* its target — harmless
(early pour) and it guarantees the loop's pour condition makes progress.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional, Tuple

__all__ = ["TimerWheel"]

_FN = 2  # callback slot inside an entry; nulled on cancel/fire
_TICK = 5  # cached expiration tick (wheel entries only)


class TimerWheel:
    """Hierarchical timing wheel pouring due timers into a heap.

    The wheel is owned by exactly one :class:`repro.sim.engine.EventLoop`
    (``loop``); it draws event sequence numbers from the loop so poured
    entries interleave deterministically with directly-scheduled ones.
    """

    SLOT_BITS = 8
    SLOTS = 1 << SLOT_BITS  # 256 slots per level
    LEVELS = 3  # horizon: 256**3 ticks (~16.7 s at 1 us resolution)

    __slots__ = (
        "resolution",
        "next_hint",
        "scheduled_total",
        "cancelled_total",
        "poured_total",
        "_loop",
        "_levels",
        "_counts",
        "_tick",
        "_live",
        "_cancelled",
    )

    def __init__(self, loop, resolution: float = 1e-6) -> None:
        if resolution <= 0.0:
            raise ValueError("wheel resolution must be positive")
        self.resolution = resolution
        self._loop = loop
        self._levels: List[List[list]] = [
            [[] for _ in range(self.SLOTS)] for _ in range(self.LEVELS)
        ]
        self._counts = [0] * self.LEVELS  # entries (live + corpses) per level
        self._tick = 0  # cursor: every slot <= _tick has been poured
        self._live = 0
        self._cancelled = 0
        #: Lower bound on the earliest live wheel timer's fire time.  The
        #: event loop pours whenever the heap head reaches this, so a
        #: conservative (too-small) hint costs a no-op pour, never a
        #: reordering.
        self.next_hint = resolution
        self.scheduled_total = 0
        self.cancelled_total = 0
        self.poured_total = 0

    # ------------------------------------------------------------------
    # Scheduling / cancellation
    # ------------------------------------------------------------------
    def schedule(
        self, when: float, fn: Callable[..., Any], args: Tuple[Any, ...]
    ) -> Optional[list]:
        """Park ``fn(*args)`` at absolute time ``when``.

        Returns the entry handle (compatible with ``EventLoop.cancel``),
        or ``None`` when the timer is due within the current tick or
        beyond the wheel horizon — those belong on the heap.
        """
        res = self.resolution
        tick = int(when / res)
        if tick * res > when:  # one-ulp float correction: keep tick*res <= when
            tick -= 1
        cursor = self._tick
        if tick - cursor < 1 or (tick >> 16) - (cursor >> 16) >= 256:
            return None
        loop = self._loop
        loop._seq += 1
        entry = [when, loop._seq, fn, args, self, tick]
        self._place(entry, tick)
        self._live += 1
        self.scheduled_total += 1
        if when < self.next_hint:
            self.next_hint = when
        return entry

    def _entry_cancelled(self, entry: list) -> None:
        """Owner-side accounting for ``EventLoop.cancel`` (fn already
        nulled).  The corpse stays in its slot and is swept, O(1), when
        the cursor passes it."""
        self._live -= 1
        self._cancelled += 1
        self.cancelled_total += 1

    def _place(self, entry: list, tick: int) -> None:
        cursor = self._tick
        if tick - cursor < 256:  # includes ticks at/behind the cursor (cascade)
            level, idx = 0, tick & 255
        elif (tick >> 8) - (cursor >> 8) < 256:
            level, idx = 1, (tick >> 8) & 255
        else:  # schedule() guarantees the level-2 window reaches this tick
            level, idx = 2, (tick >> 16) & 255
        self._levels[level][idx].append(entry)
        self._counts[level] += 1

    # ------------------------------------------------------------------
    # Advancing / pouring
    # ------------------------------------------------------------------
    def advance(self, t: float, heap: list) -> None:
        """Pour every timer due at or before time ``t`` into ``heap``.

        Advances one tick past ``t``'s (corrected) floor: pouring early
        is harmless and the overshoot guarantees ``next_hint`` ends up
        strictly above ``t``, so the caller's pour loop terminates.
        """
        res = self.resolution
        tick = int(t / res)
        if tick * res > t:
            tick -= 1
        self._advance_ticks(tick + 1, heap)

    def advance_until_poured(self, heap: list) -> None:
        """With an empty heap and live timers, pour the earliest batch.

        Walks the cursor window by window; the per-level occupancy
        counts make empty stretches O(1) boundary jumps.
        """
        while self._live and not heap:
            self._advance_ticks(self._tick + 256, heap)

    def _advance_ticks(self, target: int, heap: list) -> None:
        tick = self._tick
        if target <= tick:
            return
        counts = self._counts
        lvl0 = self._levels[0]
        loop = self._loop
        push = heapq.heappush
        while tick < target:
            if counts[0]:
                tick += 1
                if not tick & 255:
                    self._tick = tick  # cascade placement is cursor-relative
                    if not tick & 65535 and counts[2]:
                        self._cascade(2, (tick >> 16) & 255)
                    if counts[1]:
                        self._cascade(1, (tick >> 8) & 255)
                slot = lvl0[tick & 255]
                if slot:
                    counts[0] -= len(slot)
                    poured = 0
                    for e in slot:
                        if e[_FN] is None:  # cancelled corpse: sweep
                            self._cancelled -= 1
                        else:
                            e[4] = loop  # ownership moves to the heap
                            push(heap, e)
                            poured += 1
                    del slot[:]
                    if poured:
                        self._live -= poured
                        loop._live += poured
                        self.poured_total += poured
                continue
            # Level 0 empty: jump straight to the next cascade boundary.
            if counts[1]:
                nxt = ((tick >> 8) + 1) << 8
            elif counts[2]:
                nxt = ((tick >> 16) + 1) << 16
            else:  # wheel fully empty
                tick = target
                break
            if nxt > target:
                # No cascade boundary inside this window: jump to the
                # target directly.  (When the target IS the boundary we
                # must fall through and cascade — skipping it would
                # strand outer-level entries forever when the cursor is
                # advanced in exactly boundary-aligned windows, as
                # advance_until_poured does on an empty heap.)
                tick = target
                break
            tick = nxt
            self._tick = tick
            if not tick & 65535 and counts[2]:
                self._cascade(2, (tick >> 16) & 255)
            if counts[1]:
                self._cascade(1, (tick >> 8) & 255)
        self._tick = tick
        self.next_hint = (tick + 1) * self.resolution

    def _cascade(self, level: int, idx: int) -> None:
        slot = self._levels[level][idx]
        if not slot:
            return
        self._counts[level] -= len(slot)
        for e in slot:
            if e[_FN] is None:  # corpse: _live was decremented at cancel time
                self._cancelled -= 1
            else:
                self._place(e, e[_TICK])
        del slot[:]

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def pending_count(self) -> int:
        """Live (non-cancelled) timers currently parked in the wheel."""
        return self._live

    def stats(self) -> dict:
        """Lifetime counters, for the profiler's timer-wheel breakdown."""
        return {
            "resolution": self.resolution,
            "scheduled": self.scheduled_total,
            "cancelled": self.cancelled_total,
            "poured": self.poured_total,
            "parked": self._live,
            "corpses": self._cancelled,
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"TimerWheel(res={self.resolution:g}, parked={self._live}, "
            f"corpses={self._cancelled}, poured={self.poured_total})"
        )
