"""Inner-loop backend selection (``SimTuning.backend``).

The simulator always *behaves* like the pure-Python reference; this
module decides which machine code runs it.  Three spellings:

* ``"pure"`` (default) — the inlined loop in
  :class:`repro.sim.engine.EventLoop` and the hand-optimized queue
  classes in :mod:`repro.net.queues`.  The digest-pinned reference.
* ``"compiled"`` — the optional accelerated extension, resolved in
  order: the hand-written C core ``repro.sim._hotcore``, then a
  mypyc/Cython build of :mod:`repro.sim.hotpath`
  (``repro.sim._hotpath_compiled``).  Both are produced by
  ``scripts/build_backend.py``.  When neither imports, the run falls
  back to pure with a **visible** ``RuntimeWarning`` — asking for the
  compiled backend is a statement of intent, and silently not getting
  it would poison benchmark comparisons.
* ``"auto"`` — compiled if available, pure otherwise, silently.

A selected compiled backend contributes up to two pieces, each
independently optional so partial builds still help:

* ``drive(loop, until, max_events)`` — a compiled twin of
  ``EventLoop.run`` (installed via ``EventLoop.set_drive``);
* a ``PriorityQueue``-compatible class, swapped in for exactly
  :class:`repro.net.queues.PriorityQueue` instances at fabric build
  time (subclasses — e.g. tapped or marking queues — keep their Python
  implementation, since compiled code cannot honor overrides).

Every backend is digest-inert by contract; the parity suite runs the
full 4-protocol × 2-seed digest matrix on both when a compiled
extension is importable.
"""

from __future__ import annotations

import warnings
from typing import Any, Callable, Dict, Optional

__all__ = [
    "Backend",
    "resolve_backend",
    "compiled_available",
    "backend_info",
]


class Backend:
    """One resolved inner-loop implementation."""

    __slots__ = ("name", "source", "drive", "priority_queue")

    def __init__(
        self,
        name: str,
        source: Optional[str] = None,
        drive: Optional[Callable[..., int]] = None,
        priority_queue: Optional[type] = None,
    ) -> None:
        self.name = name
        #: Module that provided the implementation (None for pure).
        self.source = source
        self.drive = drive
        self.priority_queue = priority_queue

    def apply(self, env: Any) -> None:
        """Install this backend's dispatch loop into an event loop."""
        if self.drive is not None:
            env.set_drive(self.drive)

    def wrap_queue_factory(
        self, factory: Callable[[int], Any]
    ) -> Callable[[int], Any]:
        """Swap exact ``PriorityQueue`` products for the backend's
        compiled queue (build-time seam; other queue types pass
        through untouched)."""
        pq = self.priority_queue
        if pq is None:
            return factory
        from repro.net.queues import PriorityQueue

        def wrapped(capacity_bytes: int) -> Any:
            q = factory(capacity_bytes)
            if type(q) is PriorityQueue:
                return pq(q.capacity_bytes, q.n_bands)
            return q

        return wrapped

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Backend({self.name!r}, source={self.source!r})"


_PURE = Backend("pure")
_cached_compiled: Optional[Backend] = None
_warned = False


def _load_compiled() -> Optional[Backend]:
    """Resolve the best available compiled extension (cached)."""
    global _cached_compiled
    if _cached_compiled is not None:
        return _cached_compiled
    try:
        from repro.sim import _hotcore  # type: ignore[attr-defined]
    except ImportError:
        pass
    else:
        _cached_compiled = Backend(
            "compiled",
            source="repro.sim._hotcore",
            drive=getattr(_hotcore, "drive", None),
            priority_queue=getattr(_hotcore, "CPriorityQueue", None),
        )
        return _cached_compiled
    try:
        from repro.sim import _hotpath_compiled  # type: ignore[attr-defined]
    except ImportError:
        return None
    _cached_compiled = Backend(
        "compiled",
        source="repro.sim._hotpath_compiled",
        drive=getattr(_hotpath_compiled, "drive", None),
        priority_queue=getattr(_hotpath_compiled, "HotPriorityQueue", None),
    )
    return _cached_compiled


def compiled_available() -> bool:
    """True when a compiled extension imports."""
    return _load_compiled() is not None


def resolve_backend(name: str) -> Backend:
    """Map a ``SimTuning.backend`` value to a :class:`Backend`.

    ``"compiled"`` without a built extension warns (once per process)
    and returns pure — loudly degraded, never silently different.
    """
    if name == "pure":
        return _PURE
    if name in ("compiled", "auto"):
        backend = _load_compiled()
        if backend is not None:
            return backend
        if name == "compiled":
            global _warned
            if not _warned:
                _warned = True
                warnings.warn(
                    "SimTuning.backend='compiled' requested but no compiled "
                    "extension is importable (repro.sim._hotcore / "
                    "_hotpath_compiled); falling back to the pure backend. "
                    "Build one with: python scripts/build_backend.py",
                    RuntimeWarning,
                    stacklevel=2,
                )
        return _PURE
    raise ValueError(
        f"unknown backend {name!r}; choose 'pure', 'compiled', or 'auto'"
    )


def backend_info() -> Dict[str, Any]:
    """What the compiled backend resolves to right now (for bench/CLI)."""
    backend = _load_compiled()
    return {
        "compiled_available": backend is not None,
        "source": backend.source if backend is not None else None,
        "has_drive": backend is not None and backend.drive is not None,
        "has_priority_queue": (
            backend is not None and backend.priority_queue is not None
        ),
    }
