/* Compiled inner-loop core for the repro simulator.
 *
 * Statement-for-statement C twin of the two hottest code paths:
 *
 *   drive(loop, until, max_events)
 *       == repro.sim.engine.EventLoop.run (incl. the same-timestamp
 *          batch sweep).  The Python reference lives in
 *          repro/sim/hotpath.py: when debugging, diff against it.
 *   CPriorityQueue(capacity_bytes, n_bands=8)
 *       == repro.net.queues.PriorityQueue (strict-priority bands over
 *          one shared byte budget, drop-tail, low-band hint; push
 *          returns the shared _NO_DROP sentinel).
 *
 * Semantics contract: the parity suite (tests/sim/test_backend_parity.py)
 * holds full-run digests byte-identical between this module and the
 * pure loop, so every state update here must mirror the reference
 * exactly — including which Python objects (not values) land in
 * loop.now, and the precise order of _live/_cancelled/now updates
 * around each callback, which re-entrant paths (cancel, try_advance,
 * schedule) observe mid-flight.
 *
 * Event entries are the engine's small lists [when, seq, fn, args,
 * owner(, tick)].  Heap order is fully decided by (when, seq): seq is
 * unique per loop, so comparisons never reach the callback slot, and a
 * double/int64 compare here matches CPython's numeric rich compare on
 * the mixed int/float times exactly (times are finite and |seq| << 2^53
 * never matters since seq is compared as an integer).
 *
 * Built by scripts/build_backend.py; selected via SimTuning.backend
 * ("compiled" / "auto") through repro.sim.backend.
 */

#define PY_SSIZE_T_CLEAN
#include <Python.h>
#include <structmember.h> /* T_LONGLONG / T_PYSSIZET / READONLY */
#include <stddef.h>
#include <math.h>

/* ------------------------------------------------------------------ */
/* Interned attribute names / imported sentinels                       */
/* ------------------------------------------------------------------ */

static PyObject *s__heap, *s_wheel, *s__clock_watcher, *s_batch_dispatch,
    *s__stopped, *s__until, *s__no_drain, *s_drain_enabled, *s_now,
    *s__live, *s__cancelled, *s_batches, *s_batched_events,
    *s_events_processed, *s_next_hint, *s_advance, *s_advance_until_poured,
    *s_size, *s_priority;

static PyObject *no_drop = NULL; /* repro.net.queues._NO_DROP */

/* ------------------------------------------------------------------ */
/* Small attribute helpers                                             */
/* ------------------------------------------------------------------ */

/* Truthiness of o.<name>; -1 on error. */
static int
attr_truth(PyObject *o, PyObject *name)
{
    PyObject *v = PyObject_GetAttr(o, name);
    if (v == NULL)
        return -1;
    int t = PyObject_IsTrue(v);
    Py_DECREF(v);
    return t;
}

/* o.<name> as double; on error returns -1.0 with exception set. */
static double
attr_double(PyObject *o, PyObject *name, int *err)
{
    PyObject *v = PyObject_GetAttr(o, name);
    if (v == NULL) {
        *err = 1;
        return -1.0;
    }
    double d = PyFloat_AsDouble(v);
    Py_DECREF(v);
    if (d == -1.0 && PyErr_Occurred()) {
        *err = 1;
        return -1.0;
    }
    return d;
}

/* o.<name> += delta (integer attribute); -1 on error. */
static int
attr_add_ll(PyObject *o, PyObject *name, long long delta)
{
    PyObject *v = PyObject_GetAttr(o, name);
    if (v == NULL)
        return -1;
    long long cur = PyLong_AsLongLong(v);
    Py_DECREF(v);
    if (cur == -1 && PyErr_Occurred())
        return -1;
    PyObject *nv = PyLong_FromLongLong(cur + delta);
    if (nv == NULL)
        return -1;
    int rc = PyObject_SetAttr(o, name, nv);
    Py_DECREF(nv);
    return rc;
}

/* (when, seq) key of an event entry; -1 on error. */
static int
entry_key(PyObject *entry, double *when, long long *seq)
{
    PyObject *w = PyList_GET_ITEM(entry, 0);
    if (PyFloat_CheckExact(w)) {
        *when = PyFloat_AS_DOUBLE(w);
    }
    else {
        *when = PyFloat_AsDouble(w);
        if (*when == -1.0 && PyErr_Occurred())
            return -1;
    }
    *seq = PyLong_AsLongLong(PyList_GET_ITEM(entry, 1));
    if (*seq == -1 && PyErr_Occurred())
        return -1;
    return 0;
}

/* a < b in (when, seq) order */
#define KEY_LT(wa, sa, wb, sb) ((wa) < (wb) || ((wa) == (wb) && (sa) < (sb)))

/* ------------------------------------------------------------------ */
/* Heap primitives (ordering-identical to heapq on the entry lists)    */
/* ------------------------------------------------------------------ */

/* Pop the minimum entry; returns a new reference, NULL on error.
 * The heap must be non-empty. */
static PyObject *
heap_pop_min(PyObject *heap)
{
    Py_ssize_t n = PyList_GET_SIZE(heap);
    PyObject *last = PyList_GET_ITEM(heap, n - 1);
    Py_INCREF(last);
    if (PyList_SetSlice(heap, n - 1, n, NULL) < 0) {
        Py_DECREF(last);
        return NULL;
    }
    if (n == 1)
        return last; /* heap is now empty */
    PyObject *out = PyList_GET_ITEM(heap, 0);
    Py_INCREF(out);
    double lw;
    long long ls;
    if (entry_key(last, &lw, &ls) < 0) {
        /* Restore shape: drop our copy of last back at the root. */
        PyList_SetItem(heap, 0, last); /* steals last; decrefs out copy */
        Py_DECREF(out);
        return NULL;
    }
    Py_ssize_t size = n - 1;
    Py_ssize_t pos = 0;
    for (;;) {
        Py_ssize_t child = 2 * pos + 1;
        if (child >= size)
            break;
        PyObject *c_entry = PyList_GET_ITEM(heap, child);
        double cw;
        long long cs;
        if (entry_key(c_entry, &cw, &cs) < 0)
            goto key_fail;
        Py_ssize_t right = child + 1;
        if (right < size) {
            PyObject *r_entry = PyList_GET_ITEM(heap, right);
            double rw;
            long long rs;
            if (entry_key(r_entry, &rw, &rs) < 0)
                goto key_fail;
            if (KEY_LT(rw, rs, cw, cs)) {
                child = right;
                c_entry = r_entry;
                cw = rw;
                cs = rs;
            }
        }
        if (KEY_LT(lw, ls, cw, cs))
            break;
        Py_INCREF(c_entry);
        PyList_SetItem(heap, pos, c_entry); /* decrefs stale occupant */
        pos = child;
    }
    PyList_SetItem(heap, pos, last); /* steals our ref to last */
    return out;

key_fail:
    PyList_SetItem(heap, pos, last);
    Py_DECREF(out);
    return NULL;
}

/* Push an entry (sift up); 0 on success. */
static int
heap_push(PyObject *heap, PyObject *entry)
{
    if (PyList_Append(heap, entry) < 0)
        return -1;
    Py_ssize_t pos = PyList_GET_SIZE(heap) - 1;
    double ew;
    long long es;
    if (entry_key(entry, &ew, &es) < 0)
        return -1;
    Py_INCREF(entry); /* our floating copy while sifting */
    while (pos > 0) {
        Py_ssize_t parent_pos = (pos - 1) >> 1;
        PyObject *parent = PyList_GET_ITEM(heap, parent_pos);
        double pw;
        long long ps;
        if (entry_key(parent, &pw, &ps) < 0) {
            Py_DECREF(entry);
            return -1;
        }
        if (!KEY_LT(ew, es, pw, ps))
            break;
        Py_INCREF(parent);
        PyList_SetItem(heap, pos, parent);
        pos = parent_pos;
    }
    PyList_SetItem(heap, pos, entry); /* steals our floating copy */
    return 0;
}

/* ------------------------------------------------------------------ */
/* drive(loop, until, max_events)                                      */
/* ------------------------------------------------------------------ */

static PyObject *
drive(PyObject *Py_UNUSED(module), PyObject *args)
{
    PyObject *loop, *until, *max_events;
    if (!PyArg_ParseTuple(args, "OOO:drive", &loop, &until, &max_events))
        return NULL;

    PyObject *heap = PyObject_GetAttr(loop, s__heap);
    if (heap == NULL)
        return NULL;
    if (!PyList_CheckExact(heap)) {
        Py_DECREF(heap);
        PyErr_SetString(PyExc_TypeError, "loop._heap must be a list");
        return NULL;
    }
    PyObject *wheel = PyObject_GetAttr(loop, s_wheel);
    if (wheel == NULL) {
        Py_DECREF(heap);
        return NULL;
    }
    PyObject *watcher = PyObject_GetAttr(loop, s__clock_watcher);
    if (watcher == NULL)
        goto early_fail;
    int batch = attr_truth(loop, s_batch_dispatch);
    if (batch < 0)
        goto early_fail;

    int failed = 0;
    long long executed = 0;

    if (PyObject_SetAttr(loop, s__stopped, Py_False) < 0)
        goto early_fail;
    if (PyObject_SetAttr(loop, s__until, until) < 0)
        goto early_fail;
    {
        int drain_on = attr_truth(loop, s_drain_enabled);
        if (drain_on < 0)
            goto early_fail;
        int no_drain = (max_events != Py_None) || !drain_on;
        if (PyObject_SetAttr(loop, s__no_drain,
                             no_drain ? Py_True : Py_False) < 0)
            goto early_fail;
    }
    double limit = INFINITY;
    if (until != Py_None) {
        limit = PyFloat_AsDouble(until);
        if (limit == -1.0 && PyErr_Occurred())
            goto fail;
    }
    long long budget = -1;
    if (max_events != Py_None) {
        budget = PyLong_AsLongLong(max_events);
        if (budget == -1 && PyErr_Occurred())
            goto fail;
        if (budget < 0)
            budget = 0;
    }

    for (;;) {
        int stopped = attr_truth(loop, s__stopped);
        if (stopped < 0)
            goto fail;
        if (stopped)
            break;
        if (executed == budget)
            break;

        /* Timer-wheel pour (cold; method calls into the Python wheel). */
        int wlive = attr_truth(wheel, s__live);
        if (wlive < 0)
            goto fail;
        if (wlive) {
            int pour = 0;
            if (PyList_GET_SIZE(heap) == 0) {
                pour = 1;
            }
            else {
                double hw;
                long long hs;
                if (entry_key(PyList_GET_ITEM(heap, 0), &hw, &hs) < 0)
                    goto fail;
                int err = 0;
                double hint = attr_double(wheel, s_next_hint, &err);
                if (err)
                    goto fail;
                if (hw >= hint)
                    pour = 2;
            }
            if (pour) {
                PyObject *r;
                if (pour == 1) {
                    r = PyObject_CallMethodObjArgs(
                        wheel, s_advance_until_poured, heap, NULL);
                }
                else {
                    PyObject *t = PyList_GET_ITEM(PyList_GET_ITEM(heap, 0), 0);
                    r = PyObject_CallMethodObjArgs(wheel, s_advance, t, heap,
                                                   NULL);
                }
                if (r == NULL)
                    goto fail;
                Py_DECREF(r);
                continue;
            }
        }

        if (PyList_GET_SIZE(heap) == 0) {
            if (until != Py_None) {
                int err = 0;
                double nownow = attr_double(loop, s_now, &err);
                if (err)
                    goto fail;
                if (limit > nownow &&
                    PyObject_SetAttr(loop, s_now, until) < 0)
                    goto fail;
            }
            break;
        }

        PyObject *entry = PyList_GET_ITEM(heap, 0); /* borrowed */
        PyObject *fn = PyList_GET_ITEM(entry, 2);   /* borrowed */
        if (fn == Py_None) { /* cancelled — drop silently */
            PyObject *dead = heap_pop_min(heap);
            if (dead == NULL)
                goto fail;
            Py_DECREF(dead);
            if (attr_add_ll(loop, s__cancelled, -1) < 0)
                goto fail;
            continue;
        }
        double when;
        long long seq;
        if (entry_key(entry, &when, &seq) < 0)
            goto fail;
        if (when > limit) {
            if (PyObject_SetAttr(loop, s_now, until) < 0)
                goto fail;
            break;
        }
        PyObject *popped = heap_pop_min(heap); /* own ref (== entry) */
        if (popped == NULL)
            goto fail;
        Py_INCREF(fn);
        /* Mark as fired *before* any observer can run (see run()). */
        Py_INCREF(Py_None);
        PyList_SetItem(popped, 2, Py_None); /* decrefs list's fn ref */
        if (attr_add_ll(loop, s__live, -1) < 0) {
            Py_DECREF(fn);
            Py_DECREF(popped);
            goto fail;
        }
        PyObject *when_obj = PyList_GET_ITEM(popped, 0); /* borrowed */
        if (watcher != Py_None) {
            PyObject *now_obj = PyObject_GetAttr(loop, s_now);
            if (now_obj == NULL) {
                Py_DECREF(fn);
                Py_DECREF(popped);
                goto fail;
            }
            double nownow = PyFloat_AsDouble(now_obj);
            if (nownow == -1.0 && PyErr_Occurred()) {
                Py_DECREF(now_obj);
                Py_DECREF(fn);
                Py_DECREF(popped);
                goto fail;
            }
            if (when < nownow) {
                PyObject *r = PyObject_CallFunctionObjArgs(
                    watcher, now_obj, when_obj, NULL);
                if (r == NULL) {
                    Py_DECREF(now_obj);
                    Py_DECREF(fn);
                    Py_DECREF(popped);
                    goto fail;
                }
                Py_DECREF(r);
            }
            Py_DECREF(now_obj);
        }
        if (PyObject_SetAttr(loop, s_now, when_obj) < 0) {
            Py_DECREF(fn);
            Py_DECREF(popped);
            goto fail;
        }
        {
            PyObject *cbargs = PyList_GET_ITEM(popped, 3); /* tuple */
            Py_INCREF(cbargs);
            PyObject *res = PyObject_CallObject(fn, cbargs);
            Py_DECREF(cbargs);
            Py_DECREF(fn);
            Py_DECREF(popped);
            if (res == NULL)
                goto fail;
            Py_DECREF(res);
        }
        executed++;

        if (!batch)
            continue;

        /* Same-timestamp sweep — see the commentary in EventLoop.run. */
        long long swept = 0;
        for (;;) {
            if (PyList_GET_SIZE(heap) == 0)
                break;
            int stopped2 = attr_truth(loop, s__stopped);
            if (stopped2 < 0)
                goto fail;
            if (stopped2 || executed == budget)
                break;
            int wlive2 = attr_truth(wheel, s__live);
            if (wlive2 < 0)
                goto fail;
            if (wlive2) {
                int err = 0;
                double hint = attr_double(wheel, s_next_hint, &err);
                if (err)
                    goto fail;
                if (when >= hint)
                    break; /* outer loop pours, then resumes the tie */
            }
            PyObject *head = PyList_GET_ITEM(heap, 0);
            double hw;
            long long hs;
            if (entry_key(head, &hw, &hs) < 0)
                goto fail;
            if (hw != when)
                break;
            PyObject *hfn = PyList_GET_ITEM(head, 2);
            PyObject *hpopped = heap_pop_min(heap);
            if (hpopped == NULL)
                goto fail;
            if (hfn == Py_None) { /* cancelled mid-batch */
                Py_DECREF(hpopped);
                if (attr_add_ll(loop, s__cancelled, -1) < 0)
                    goto fail;
                continue;
            }
            Py_INCREF(hfn);
            Py_INCREF(Py_None);
            PyList_SetItem(hpopped, 2, Py_None);
            if (attr_add_ll(loop, s__live, -1) < 0) {
                Py_DECREF(hfn);
                Py_DECREF(hpopped);
                goto fail;
            }
            PyObject *hargs = PyList_GET_ITEM(hpopped, 3);
            Py_INCREF(hargs);
            PyObject *hres = PyObject_CallObject(hfn, hargs);
            Py_DECREF(hargs);
            Py_DECREF(hfn);
            Py_DECREF(hpopped);
            if (hres == NULL)
                goto fail;
            Py_DECREF(hres);
            executed++;
            swept++;
        }
        if (swept) {
            if (attr_add_ll(loop, s_batches, 1) < 0 ||
                attr_add_ll(loop, s_batched_events, swept) < 0)
                goto fail;
        }
    }
    goto done;

fail:
    failed = 1;
done:
    /* The reference loop's `finally:` — runs on success and error. */
    if (PyObject_SetAttr(loop, s__no_drain, Py_True) < 0)
        failed = 1;
    if (PyObject_SetAttr(loop, s__until, Py_None) < 0)
        failed = 1;
    Py_DECREF(heap);
    Py_DECREF(wheel);
    Py_DECREF(watcher);
    if (failed)
        return NULL;
    if (attr_add_ll(loop, s_events_processed, executed) < 0)
        return NULL;
    return PyLong_FromLongLong(executed);

early_fail:
    Py_DECREF(heap);
    Py_XDECREF(wheel);
    return NULL;
}

/* ------------------------------------------------------------------ */
/* CPriorityQueue                                                      */
/* ------------------------------------------------------------------ */

typedef struct {
    PyObject **buf;
    Py_ssize_t cap;
    Py_ssize_t head;
    Py_ssize_t count;
} Ring;

typedef struct {
    PyObject_HEAD
    long long capacity_bytes;
    long long bytes_queued;
    Py_ssize_t pkts_queued;
    int n_bands;
    int lo;
    Ring *bands;
} CPQObject;

static int
ring_append(Ring *r, PyObject *item)
{
    if (r->head + r->count == r->cap) {
        if (r->head > 0) {
            memmove(r->buf, r->buf + r->head, r->count * sizeof(PyObject *));
            r->head = 0;
        }
        else {
            Py_ssize_t ncap = r->cap ? r->cap * 2 : 8;
            PyObject **nbuf =
                PyMem_Realloc(r->buf, ncap * sizeof(PyObject *));
            if (nbuf == NULL) {
                PyErr_NoMemory();
                return -1;
            }
            r->buf = nbuf;
            r->cap = ncap;
        }
    }
    Py_INCREF(item);
    r->buf[r->head + r->count] = item;
    r->count++;
    return 0;
}

/* Transfers the reference to the caller. */
static PyObject *
ring_popleft(Ring *r)
{
    PyObject *item = r->buf[r->head];
    r->head++;
    r->count--;
    if (r->count == 0)
        r->head = 0;
    return item;
}

static int
cpq_init(CPQObject *self, PyObject *args, PyObject *kwds)
{
    static char *kwlist[] = {"capacity_bytes", "n_bands", NULL};
    long long capacity;
    int n_bands = 8;
    if (!PyArg_ParseTupleAndKeywords(args, kwds, "L|i:CPriorityQueue",
                                     kwlist, &capacity, &n_bands))
        return -1;
    if (n_bands < 1) {
        PyErr_SetString(PyExc_ValueError, "need at least one priority band");
        return -1;
    }
    self->capacity_bytes = capacity;
    self->bytes_queued = 0;
    self->pkts_queued = 0;
    self->n_bands = n_bands;
    self->lo = 0;
    self->bands = PyMem_Calloc((size_t)n_bands, sizeof(Ring));
    if (self->bands == NULL) {
        PyErr_NoMemory();
        return -1;
    }
    return 0;
}

static int
cpq_traverse(CPQObject *self, visitproc visit, void *arg)
{
    if (self->bands != NULL) {
        for (int b = 0; b < self->n_bands; b++) {
            Ring *r = &self->bands[b];
            for (Py_ssize_t i = 0; i < r->count; i++)
                Py_VISIT(r->buf[r->head + i]);
        }
    }
    return 0;
}

static int
cpq_clear(CPQObject *self)
{
    if (self->bands != NULL) {
        for (int b = 0; b < self->n_bands; b++) {
            Ring *r = &self->bands[b];
            for (Py_ssize_t i = 0; i < r->count; i++)
                Py_CLEAR(r->buf[r->head + i]);
            r->count = 0;
            r->head = 0;
        }
    }
    self->pkts_queued = 0;
    self->bytes_queued = 0;
    return 0;
}

static void
cpq_dealloc(CPQObject *self)
{
    PyObject_GC_UnTrack(self);
    cpq_clear(self);
    if (self->bands != NULL) {
        for (int b = 0; b < self->n_bands; b++)
            PyMem_Free(self->bands[b].buf);
        PyMem_Free(self->bands);
    }
    Py_TYPE(self)->tp_free((PyObject *)self);
}

static PyObject *
cpq_push(CPQObject *self, PyObject *pkt)
{
    PyObject *size_obj = PyObject_GetAttr(pkt, s_size);
    if (size_obj == NULL)
        return NULL;
    long long size = PyLong_AsLongLong(size_obj);
    Py_DECREF(size_obj);
    if (size == -1 && PyErr_Occurred())
        return NULL;
    if (self->bytes_queued + size > self->capacity_bytes) {
        /* drop-tail: a fresh (mutable) list, matching the reference */
        PyObject *dropped = PyList_New(1);
        if (dropped == NULL)
            return NULL;
        Py_INCREF(pkt);
        PyList_SET_ITEM(dropped, 0, pkt);
        return dropped;
    }
    PyObject *prio_obj = PyObject_GetAttr(pkt, s_priority);
    if (prio_obj == NULL)
        return NULL;
    long long band = PyLong_AsLongLong(prio_obj);
    Py_DECREF(prio_obj);
    if (band == -1 && PyErr_Occurred())
        return NULL;
    if (band < 0)
        band = 0;
    else if (band >= self->n_bands)
        band = self->n_bands - 1;
    if (ring_append(&self->bands[band], pkt) < 0)
        return NULL;
    if ((int)band < self->lo)
        self->lo = (int)band;
    self->bytes_queued += size;
    self->pkts_queued++;
    Py_INCREF(no_drop);
    return no_drop;
}

static PyObject *
cpq_pop(CPQObject *self, PyObject *Py_UNUSED(ignored))
{
    if (self->pkts_queued == 0)
        Py_RETURN_NONE;
    int i = self->lo;
    while (self->bands[i].count == 0)
        i++;
    self->lo = i;
    PyObject *pkt = ring_popleft(&self->bands[i]); /* we own the ref */
    PyObject *size_obj = PyObject_GetAttr(pkt, s_size);
    if (size_obj == NULL) {
        Py_DECREF(pkt);
        return NULL;
    }
    long long size = PyLong_AsLongLong(size_obj);
    Py_DECREF(size_obj);
    if (size == -1 && PyErr_Occurred()) {
        Py_DECREF(pkt);
        return NULL;
    }
    self->bytes_queued -= size;
    self->pkts_queued--;
    return pkt;
}

static PyObject *
cpq_peek(CPQObject *self, PyObject *Py_UNUSED(ignored))
{
    for (int b = 0; b < self->n_bands; b++) {
        Ring *r = &self->bands[b];
        if (r->count) {
            PyObject *item = r->buf[r->head];
            Py_INCREF(item);
            return item;
        }
    }
    Py_RETURN_NONE;
}

static Py_ssize_t
cpq_len(CPQObject *self)
{
    return self->pkts_queued;
}

static int
cpq_bool(CPQObject *self)
{
    return self->pkts_queued > 0;
}

static PyObject *
cpq_get_n_bands(CPQObject *self, void *Py_UNUSED(closure))
{
    return PyLong_FromLong(self->n_bands);
}

static PyObject *
cpq_get_bands(CPQObject *self, void *Py_UNUSED(closure))
{
    PyObject *out = PyList_New(self->n_bands);
    if (out == NULL)
        return NULL;
    for (int b = 0; b < self->n_bands; b++) {
        Ring *r = &self->bands[b];
        PyObject *band = PyList_New(r->count);
        if (band == NULL) {
            Py_DECREF(out);
            return NULL;
        }
        for (Py_ssize_t i = 0; i < r->count; i++) {
            PyObject *item = r->buf[r->head + i];
            Py_INCREF(item);
            PyList_SET_ITEM(band, i, item);
        }
        PyList_SET_ITEM(out, b, band);
    }
    return out;
}

static PyObject *
cpq_repr(CPQObject *self)
{
    return PyUnicode_FromFormat("CPriorityQueue(%lld/%lldB, %zd pkts)",
                                self->bytes_queued, self->capacity_bytes,
                                self->pkts_queued);
}

static PyMemberDef cpq_members[] = {
    {"capacity_bytes", T_LONGLONG, offsetof(CPQObject, capacity_bytes),
     READONLY, "shared byte budget"},
    {"bytes_queued", T_LONGLONG, offsetof(CPQObject, bytes_queued), READONLY,
     "bytes currently buffered"},
    {"pkts_queued", T_PYSSIZET, offsetof(CPQObject, pkts_queued), READONLY,
     "packets currently buffered"},
    {NULL},
};

static PyGetSetDef cpq_getset[] = {
    {"n_bands", (getter)cpq_get_n_bands, NULL, "number of priority bands",
     NULL},
    {"bands", (getter)cpq_get_bands, NULL,
     "band contents as lists (copies, oldest first)", NULL},
    {NULL},
};

static PyMethodDef cpq_methods[] = {
    {"push", (PyCFunction)cpq_push, METH_O,
     "Enqueue; returns dropped packets (drop-tail: incoming only)."},
    {"pop", (PyCFunction)cpq_pop, METH_NOARGS,
     "Dequeue strict-priority FIFO; None when empty."},
    {"peek", (PyCFunction)cpq_peek, METH_NOARGS,
     "Next packet to serialize without removing it; None when empty."},
    {NULL},
};

static PySequenceMethods cpq_as_sequence = {
    .sq_length = (lenfunc)cpq_len,
};

static PyNumberMethods cpq_as_number = {
    .nb_bool = (inquiry)cpq_bool,
};

static PyTypeObject CPQType = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro.sim._hotcore.CPriorityQueue",
    .tp_basicsize = sizeof(CPQObject),
    .tp_dealloc = (destructor)cpq_dealloc,
    .tp_repr = (reprfunc)cpq_repr,
    .tp_as_sequence = &cpq_as_sequence,
    .tp_as_number = &cpq_as_number,
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC,
    .tp_doc = "C twin of repro.net.queues.PriorityQueue",
    .tp_traverse = (traverseproc)cpq_traverse,
    .tp_clear = (inquiry)cpq_clear,
    .tp_methods = cpq_methods,
    .tp_members = cpq_members,
    .tp_getset = cpq_getset,
    .tp_init = (initproc)cpq_init,
    .tp_new = PyType_GenericNew,
};

/* ------------------------------------------------------------------ */
/* Module-level heap helpers (parity tests)                            */
/* ------------------------------------------------------------------ */

static PyObject *
mod_hpush(PyObject *Py_UNUSED(module), PyObject *args)
{
    PyObject *heap, *entry;
    if (!PyArg_ParseTuple(args, "O!O!:hpush", &PyList_Type, &heap,
                          &PyList_Type, &entry))
        return NULL;
    if (heap_push(heap, entry) < 0)
        return NULL;
    Py_RETURN_NONE;
}

static PyObject *
mod_hpop(PyObject *Py_UNUSED(module), PyObject *args)
{
    PyObject *heap;
    if (!PyArg_ParseTuple(args, "O!:hpop", &PyList_Type, &heap))
        return NULL;
    if (PyList_GET_SIZE(heap) == 0) {
        PyErr_SetString(PyExc_IndexError, "pop from empty heap");
        return NULL;
    }
    return heap_pop_min(heap);
}

static PyMethodDef hotcore_methods[] = {
    {"drive", drive, METH_VARARGS,
     "drive(loop, until, max_events) -> int\n"
     "Compiled twin of EventLoop.run; see repro/sim/hotpath.py."},
    {"hpush", mod_hpush, METH_VARARGS, "heap push on (time, seq) entries"},
    {"hpop", mod_hpop, METH_VARARGS, "heap pop-min on (time, seq) entries"},
    {NULL},
};

static struct PyModuleDef hotcore_module = {
    PyModuleDef_HEAD_INIT,
    .m_name = "repro.sim._hotcore",
    .m_doc = "Compiled inner-loop core (dispatch loop + priority queue).",
    .m_size = -1,
    .m_methods = hotcore_methods,
};

PyMODINIT_FUNC
PyInit__hotcore(void)
{
#define INTERN(var, text)                                                  \
    do {                                                                   \
        var = PyUnicode_InternFromString(text);                            \
        if (var == NULL)                                                   \
            return NULL;                                                   \
    } while (0)
    INTERN(s__heap, "_heap");
    INTERN(s_wheel, "wheel");
    INTERN(s__clock_watcher, "_clock_watcher");
    INTERN(s_batch_dispatch, "batch_dispatch");
    INTERN(s__stopped, "_stopped");
    INTERN(s__until, "_until");
    INTERN(s__no_drain, "_no_drain");
    INTERN(s_drain_enabled, "drain_enabled");
    INTERN(s_now, "now");
    INTERN(s__live, "_live");
    INTERN(s__cancelled, "_cancelled");
    INTERN(s_batches, "batches");
    INTERN(s_batched_events, "batched_events");
    INTERN(s_events_processed, "events_processed");
    INTERN(s_next_hint, "next_hint");
    INTERN(s_advance, "advance");
    INTERN(s_advance_until_poured, "advance_until_poured");
    INTERN(s_size, "size");
    INTERN(s_priority, "priority");
#undef INTERN

    /* The shared no-drop sentinel must be the same object the pure
     * queues return, so `dropped is _NO_DROP` style checks agree. */
    PyObject *queues = PyImport_ImportModule("repro.net.queues");
    if (queues == NULL)
        return NULL;
    no_drop = PyObject_GetAttrString(queues, "_NO_DROP");
    Py_DECREF(queues);
    if (no_drop == NULL)
        return NULL;

    if (PyType_Ready(&CPQType) < 0)
        return NULL;
    PyObject *m = PyModule_Create(&hotcore_module);
    if (m == NULL)
        return NULL;
    Py_INCREF(&CPQType);
    if (PyModule_AddObject(m, "CPriorityQueue", (PyObject *)&CPQType) < 0) {
        Py_DECREF(&CPQType);
        Py_DECREF(m);
        return NULL;
    }
    return m;
}
