"""Hot-path tuning knobs for one simulation run.

Every optimization in the per-packet hot path — the hierarchical timer
wheel, fused per-hop port events, inline back-to-back drains, and packet
pooling — is behaviour-preserving by construction: a run's digest
(:func:`repro.validate.digest.run_digest`) is byte-identical with any
combination of these knobs.  They exist as knobs anyway, for three
reasons:

* the determinism suite proves the byte-identity claim by running the
  same spec with everything on and everything off;
* benchmarking needs an honest baseline (``SimTuning.baseline()``);
* if an optimization is ever suspected in a bug hunt, it can be switched
  off in isolation without touching code.

The default (everything on) is what experiments should use.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["SimTuning"]


@dataclass(frozen=True)
class SimTuning:
    """Per-run switches for the hot-path optimizations.

    Attributes:
        timer_wheel: Route :meth:`~repro.sim.engine.EventLoop.schedule_timer`
            through the hierarchical timing wheel instead of the heap.
        fused_ports: Ports fuse serialization-done and propagation-
            arrival into one reused heap entry per hop.
        inline_drain: Busy ports may chain back-to-back departures
            inline via :meth:`~repro.sim.engine.EventLoop.try_advance`
            (only meaningful when ``fused_ports`` is on).
        packet_pool: Recycle :class:`~repro.net.packet.Packet` objects
            through a freelist once they are delivered.
        fused_dataplane: Let reference dataplane programs compile to
            their hand-optimized queue classes
            (:class:`~repro.net.queues.PriorityQueue` /
            :class:`~repro.net.queues.PFabricQueue`) instead of running
            on the generic :class:`~repro.dataplane.ProgramQueue`
            engine.  Digest-inert like every other knob; turn off to
            exercise the match-action reference semantics (with full
            per-stage ledgers) on any protocol.
        batch_dispatch: Drain every heap event sharing the head
            timestamp in one ``(time, seq)``-sorted sweep, amortizing
            the per-event loop checks across the batch (see
            :meth:`~repro.sim.engine.EventLoop.run`).
        backend: Which inner-loop implementation drives the run.
            ``"pure"`` is the digest-pinned CPython reference;
            ``"compiled"`` selects the optional accelerated extension
            (built by ``scripts/build_backend.py``) and falls back to
            pure — with a visible warning — when no extension imports;
            ``"auto"`` uses the extension if present, silently.
        wheel_resolution: Timer-wheel tick in seconds.
        shards: Partition the fabric into per-rack shards that run
            concurrently under conservative synchronization (see
            :mod:`repro.sim.shard`).  ``"off"`` (default) is the
            single-process reference path; ``"auto"`` picks
            ``min(n_racks, cpus, 8)``; an integer requests that many
            shards (clamped to the rack count).  Digest-inert like
            every other knob: sharded runs are byte-identical to
            serial ones on supported specs, and unsupported specs fall
            back to serial with a warning.
        shard_transport: How shard workers execute. ``"auto"`` uses
            worker processes when the platform supports fork and the
            current process may spawn children, else the in-process
            round-robin executor; ``"inprocess"`` / ``"processes"``
            force one or the other.  Both executors are byte-identical.
    """

    timer_wheel: bool = True
    fused_ports: bool = True
    inline_drain: bool = True
    packet_pool: bool = True
    fused_dataplane: bool = True
    batch_dispatch: bool = True
    backend: str = "pure"
    wheel_resolution: float = 1e-6
    shards: object = "off"
    shard_transport: str = "auto"

    def __post_init__(self) -> None:
        if self.backend not in ("pure", "compiled", "auto"):
            raise ValueError(
                f"unknown backend {self.backend!r}; "
                "choose 'pure', 'compiled', or 'auto'"
            )
        shards = self.shards
        if isinstance(shards, bool) or not (
            shards in ("off", "auto")
            or (isinstance(shards, int) and shards >= 1)
        ):
            raise ValueError(
                f"shards must be 'off', 'auto', or a positive int, got {shards!r}"
            )
        if self.shard_transport not in ("auto", "inprocess", "processes"):
            raise ValueError(
                f"unknown shard_transport {self.shard_transport!r}; "
                "choose 'auto', 'inprocess', or 'processes'"
            )

    @classmethod
    def baseline(cls) -> "SimTuning":
        """Everything off — the pre-optimization execution path."""
        return cls(
            timer_wheel=False,
            fused_ports=False,
            inline_drain=False,
            packet_pool=False,
            batch_dispatch=False,
        )
