"""The carved-out inner loop, in compilable form.

This module isolates the two hottest algorithms of the simulator — the
event-dispatch loop of :class:`repro.sim.engine.EventLoop` and the
strict-priority port queue of :class:`repro.net.queues.PriorityQueue` —
as self-contained, statically-typed code with no dynamic dispatch of
its own: every function is a flat loop over local variables, ints,
floats, and lists, which is exactly the shape ``mypyc`` (or Cython's
pure-Python mode) compiles well.

Three roles, one source:

* **reference twin** — ``drive()`` and :class:`HotPriorityQueue` are
  semantically *identical* to the inlined loop in ``EventLoop.run`` and
  to ``PriorityQueue``; the parity tests hold them byte-identical on
  full run digests and randomized queue workloads.  Any change to the
  engine hot loop must land here too (and vice versa) or the suite
  fails.
* **compile target** — ``scripts/build_backend.py`` compiles this file
  with mypyc (Cython fallback) into ``repro.sim._hotpath_compiled``;
  the backend selector picks it up when the hand-written C extension
  (``repro.sim._hotcore``) is unavailable.
* **specification for the C core** — ``_hotcore.c`` implements these
  functions statement for statement; when debugging the C path, diff
  against this file.

The timing-wheel cascade stays in :mod:`repro.sim.wheel` and is called
out-of-line from ``drive()``: pours are rare (amortized over hundreds
of dispatches), so compiling the cascade buys nothing, and keeping one
implementation avoids drift in its cursor arithmetic.
"""

from __future__ import annotations

from typing import Any, List, Optional

from repro.net.queues import _NO_DROP

__all__ = ["drive", "HotPriorityQueue", "heap_push", "heap_pop_min"]

_FN = 2  # callback slot inside an event entry (see repro.sim.engine)

_INF = float("inf")


# ----------------------------------------------------------------------
# Heap primitives
# ----------------------------------------------------------------------
def heap_push(heap: List[list], entry: list) -> None:
    """Sift an entry into the event heap, comparing ``(time, seq)``.

    Identical ordering to ``heapq.heappush`` on the entry lists — seq
    is unique per loop, so list comparison never reaches the callback
    slot — but expressed with explicit float/int key loads so a
    compiler emits unboxed comparisons.
    """
    heap.append(entry)
    pos = len(heap) - 1
    # Entry times may be int or float (schedule_at accepts both); keep
    # these unannotated so a compiler boxes the comparison correctly.
    when = entry[0]
    seq = entry[1]
    while pos > 0:
        parent_pos = (pos - 1) >> 1
        parent = heap[parent_pos]
        p_when = parent[0]
        if when > p_when or (when == p_when and seq > parent[1]):
            break
        heap[pos] = parent
        pos = parent_pos
    heap[pos] = entry


def heap_pop_min(heap: List[list]) -> list:
    """Pop the earliest entry (min ``(time, seq)``); heap must be
    non-empty.  Ordering-identical to ``heapq.heappop``."""
    last = heap.pop()
    if not heap:
        return last
    out = heap[0]
    # Sift the displaced tail element down from the root.
    pos = 0
    size = len(heap)
    when = last[0]
    seq = last[1]
    while True:
        child = 2 * pos + 1
        if child >= size:
            break
        right = child + 1
        if right < size:
            c_entry = heap[child]
            r_entry = heap[right]
            c_when = c_entry[0]
            r_when = r_entry[0]
            if r_when < c_when or (r_when == c_when and r_entry[1] < c_entry[1]):
                child = right
        c_entry = heap[child]
        c_when = c_entry[0]
        if when < c_when or (when == c_when and seq < c_entry[1]):
            break
        heap[pos] = c_entry
        pos = child
    heap[pos] = last
    return out


# ----------------------------------------------------------------------
# Event dispatch
# ----------------------------------------------------------------------
def drive(loop: Any, until: Optional[float], max_events: Optional[int]) -> int:
    """Execute events with the exact semantics of ``EventLoop.run``.

    Statement-for-statement twin of the inlined pure loop (including
    the same-timestamp batch sweep and its wheel re-check); maintains
    ``now`` / ``_live`` / ``_cancelled`` / ``events_processed`` on the
    loop object at every callback boundary so re-entrant paths
    (``cancel``, ``try_advance``, ``schedule``) observe identical
    state.  Installed via ``EventLoop.set_drive`` by the backend
    selector; the parity suite holds full-run digests byte-identical
    against the inlined loop.
    """
    heap: List[list] = loop._heap
    wheel = loop.wheel
    batch: bool = loop.batch_dispatch
    watcher = loop._clock_watcher
    executed = 0
    loop._stopped = False
    loop._until = until
    loop._no_drain = (max_events is not None) or not loop.drain_enabled
    limit: float = until if until is not None else _INF
    budget: int = -1 if max_events is None else max(max_events, 0)
    try:
        while True:
            if loop._stopped:
                break
            if executed == budget:
                break
            if wheel._live and (not heap or heap[0][0] >= wheel.next_hint):
                if heap:
                    wheel.advance(heap[0][0], heap)
                else:
                    wheel.advance_until_poured(heap)
                continue
            if not heap:
                if until is not None and until > loop.now:
                    loop.now = until
                break
            entry = heap[0]
            fn = entry[_FN]
            if fn is None:  # cancelled — drop silently
                heap_pop_min(heap)
                loop._cancelled -= 1
                continue
            when = entry[0]
            if when > limit:
                loop.now = until
                break
            heap_pop_min(heap)
            entry[_FN] = None  # fired: see the ordering note in run()
            loop._live -= 1
            if when < loop.now and watcher is not None:
                watcher(loop.now, when)
            loop.now = when
            fn(*entry[3])
            executed += 1
            if not batch:
                continue
            swept = 0
            while heap:
                if loop._stopped or executed == budget:
                    break
                if wheel._live and when >= wheel.next_hint:
                    break  # outer loop pours, then resumes the tie
                head = heap[0]
                if head[0] != when:
                    break
                fn = head[_FN]
                heap_pop_min(heap)
                if fn is None:  # cancelled mid-batch
                    loop._cancelled -= 1
                    continue
                head[_FN] = None
                loop._live -= 1
                fn(*head[3])
                executed += 1
                swept += 1
            if swept:
                loop.batches += 1
                loop.batched_events += swept
    finally:
        loop._no_drain = True
        loop._until = None
    loop.events_processed += executed
    return executed


# ----------------------------------------------------------------------
# Strict-priority port queue
# ----------------------------------------------------------------------
class HotPriorityQueue:
    """Typed twin of :class:`repro.net.queues.PriorityQueue`.

    Same contract, attribute for attribute (``push`` returns the shared
    no-drop sentinel or ``[pkt]``; ``pop`` is strict-priority FIFO with
    the low-band hint), implemented over per-band lists with explicit
    head cursors instead of deques — the layout both mypyc and the C
    core want.  Heads are compacted once they pass half the band, so
    amortized pop cost matches the deque version.
    """

    __slots__ = (
        "capacity_bytes",
        "bytes_queued",
        "pkts_queued",
        "_n_bands",
        "_lo",
        "_bands",
        "_heads",
    )

    def __init__(self, capacity_bytes: int, n_bands: int = 8) -> None:
        if n_bands < 1:
            raise ValueError("need at least one priority band")
        self.capacity_bytes = capacity_bytes
        self._n_bands = n_bands
        self._bands: List[List[Any]] = [[] for _ in range(n_bands)]
        self._heads: List[int] = [0] * n_bands
        self.bytes_queued = 0
        self.pkts_queued = 0
        self._lo = 0

    @property
    def n_bands(self) -> int:
        return self._n_bands

    @property
    def bands(self) -> List[List[Any]]:
        """Live band contents (copies), mirroring ``PriorityQueue.bands``."""
        return [band[head:] for band, head in zip(self._bands, self._heads)]

    def push(self, pkt: Any) -> List[Any]:
        size: int = pkt.size
        if self.bytes_queued + size > self.capacity_bytes:
            return [pkt]
        band: int = pkt.priority
        if band < 0:
            band = 0
        elif band >= self._n_bands:
            band = self._n_bands - 1
        self._bands[band].append(pkt)
        if band < self._lo:
            self._lo = band
        self.bytes_queued += size
        self.pkts_queued += 1
        return _NO_DROP

    def pop(self) -> Optional[Any]:
        if not self.pkts_queued:
            return None
        bands = self._bands
        heads = self._heads
        i = self._lo
        while heads[i] >= len(bands[i]):
            i += 1
        self._lo = i
        band = bands[i]
        head = heads[i]
        pkt = band[head]
        band[head] = None  # release the reference immediately
        head += 1
        if head * 2 >= len(band) and head > 8:
            del band[:head]
            head = 0
        heads[i] = head
        self.bytes_queued -= pkt.size
        self.pkts_queued -= 1
        return pkt

    def peek(self) -> Optional[Any]:
        if not self.pkts_queued:
            return None
        bands = self._bands
        heads = self._heads
        for i in range(self._n_bands):
            if heads[i] < len(bands[i]):
                return bands[i][heads[i]]
        return None

    def __len__(self) -> int:
        return self.pkts_queued

    def __bool__(self) -> bool:
        return self.pkts_queued > 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"HotPriorityQueue({self.bytes_queued}/{self.capacity_bytes}B, "
            f"{self.pkts_queued} pkts)"
        )
