"""Sharded per-rack parallel simulation with conservative sync.

The fabric is partitioned into per-rack logical processes: each shard
owns a contiguous range of racks (those racks' hosts + ToRs) plus a
replica of the core layer, and runs its own event loop.  Packets that
leave a shard's ToR uplinks are intercepted at the scheduling boundary
and relayed — locally (both racks in the same shard) or over a message
queue to the owning shard.  A conservative null-message protocol keeps
every shard inside the horizon it has been granted:

* **lookahead** — every cross-shard effect is at least one inter-rack
  propagation delay in the future (``TopologyConfig.propagation_delay``;
  serialization completes *before* the departure event fires, so
  propagation alone is a sound floor).  Fastpass arbiter traffic rides
  the same machinery with ``ctrl_latency`` as its lookahead, which the
  support gate requires to be >= the propagation floor.
* **global window** — a coordinator collects every shard's next event
  time plus the timestamps of messages still in flight, takes the
  minimum ``m``, and grants the window ``[.., m + lookahead)``.  Every
  shard runs all events strictly below the horizon; messages emitted in
  round ``k`` are delivered at the start of round ``k+1`` (their effect
  times are provably >= the round-``k`` horizon).

**Determinism.**  The merged run must be *byte-identical* to the
single-process run (``repro.validate.digest.run_digest``).  The serial
engine breaks ties at equal timestamps by allocation order (a global
monotone sequence number); shards cannot share a counter without
serializing, so :class:`LineageEventLoop` replaces the integer with a
*lineage key* that reconstructs the serial allocation order from local
information:

``(t_alloc, parent_key, intra, root, shard, lseq)``

* ``t_alloc`` — simulated time the event was scheduled (= the parent
  event's execution time; ``-1.0`` for pre-run roots).
* ``parent_key`` — the scheduling event's own key (shared by
  reference, O(1)).  Roots use ``()``.
* ``intra`` — 1, 2, 3... for the parent's first, second, third
  ``schedule`` call.
* ``root`` — the pre-run root counter the lineage descends from; every
  shard counts *all* roots (skipping foreign ones via
  :meth:`LineageEventLoop.skip_root`) so the numbering is global.
* ``shard`` / ``lseq`` — owning shard and a shard-local allocation
  counter; gives uniqueness and, for same-shard keys, the exact serial
  sub-order.

Two events tie only at equal times, where comparing ``t_alloc`` then
recursing into parent keys reproduces the serial order exactly: the
serial engine orders equal-time events by allocation order, allocation
order follows the parents' execution order, and induction bottoms out
at differing allocation times, a shared parent (``intra`` decides), or
the pre-run roots (``root`` decides).  Chains are deliberately *not*
truncated: parent keys are shared by reference (one tuple per event,
O(1) to allocate), and lineages in lockstep — synchronized transfers
whose ancestors keep pairwise-equal timestamps for hundreds of
generations, routine in incast traffic with quantized packet sizes —
genuinely need the deep walk; any bounded summary mis-orders them.
Retention is the live events' ancestor closure, which tracks the
backlog (busy-period/ACK-clock depth), not total run length.

**Termination.**  Shards cannot stop at the Nth completion the way the
serial loop does (no shard sees all completions), so they overrun: the
coordinator detects global completion, computes the serial stop point
``S`` (the max completion's ``(time, key)`` pair) and every shard rolls
back the side effects of events executed after ``S`` using a per-round
journal of counter deltas.  Flow arrivals and completions are provably
never post-``S`` (every flow completes, and a flow's arrival precedes
its completion), so only packet/drop counters ever roll back.

Entry point: :func:`run_sharded`, called by
``repro.experiments.runner.run_experiment`` when ``tuning.shards`` is
not ``"off"``.  Unsupported specs return ``None`` (with a warning) and
the runner falls through to the byte-identical serial path.
"""

from __future__ import annotations

import math
import os
import sys
import threading
import time
import warnings
from bisect import bisect_right
from dataclasses import dataclass, replace
from heapq import heappop, heappush
from typing import Any, Dict, List, Optional, Tuple

from repro.net.packet import Flow, Packet, PacketType
from repro.sim.engine import EventLoop, SimulationError
from repro.sim.randoms import SeededRng
from repro.sim.tuning import SimTuning
from repro.validate.base import AuditReport, Auditor, InvariantCheck

__all__ = [
    "ShardPlan",
    "ShardRunStats",
    "ShardStat",
    "LineageEventLoop",
    "run_sharded",
    "next_window",
    "canonical_merge",
    "shard_width_hint",
]

#: ``t_alloc`` sentinel for pre-run roots; below any simulated time.
_ROOT_T = -1.0

#: Collector counters journaled for post-stop rollback.  Everything the
#: digest / result reads that a post-``S`` overrun event can touch.
_COUNTER_ATTRS = frozenset({
    "data_pkts_injected",
    "data_pkts_retransmitted",
    "data_pkts_delivered",
    "data_pkts_duplicate",
    "payload_bytes_delivered",
    "control_pkts_sent",
    "control_bytes_sent",
    "pkts_arrived",
})

#: Protocols whose agents are host-local (or centrally scheduled with a
#: latency the lookahead covers); anything else falls back to serial.
_SUPPORTED_PROTOCOLS = frozenset({"phost", "pfabric", "fastpass", "ideal", "dctcp"})

_WORKER_TIMEOUT_S = 600.0

#: Stack reservation for the threads that run shard event loops.
#: Lineage-key comparisons recurse one C level per lockstep generation
#: (tuple rich-compare), and synchronized incast chains reach thousands
#: of generations — far past the default recursion limit and, for the
#: default 8 MiB thread stack, past the stack itself.  The reservation
#: is virtual address space; only pages actually touched materialize.
_DEEP_STACK_BYTES = 1 << 29  # 512 MiB
_DEEP_RECURSION_LIMIT = 1_000_000


def _call_deep(fn, *args):
    """Run ``fn(*args)`` on a large-stack thread with a raised
    recursion limit, so arbitrarily deep lineage-key comparisons
    (heap sifts, journal-vs-cut checks, message sorts) cannot blow the
    interpreter's recursion guard.  ``sys.setrecursionlimit`` is
    process-global, so the caller's limit is restored on exit; the
    calling thread just blocks in ``join`` meanwhile."""
    out: List[Any] = []
    err: List[BaseException] = []

    def body() -> None:
        try:
            out.append(fn(*args))
        except BaseException as exc:  # relayed to the caller below
            err.append(exc)

    old_limit = sys.getrecursionlimit()
    old_stack = threading.stack_size(_DEEP_STACK_BYTES)
    sys.setrecursionlimit(max(old_limit, _DEEP_RECURSION_LIMIT))
    try:
        thread = threading.Thread(target=body, name="shard-deep")
        thread.start()
        thread.join()
    finally:
        threading.stack_size(old_stack)
        sys.setrecursionlimit(old_limit)
    if err:
        raise err[0]
    return out[0]


# ======================================================================
# Partitioning
# ======================================================================

@dataclass(frozen=True)
class ShardPlan:
    """Static rack -> shard assignment (contiguous, balanced ranges)."""

    n_shards: int
    n_racks: int
    hosts_per_rack: int
    rack_ranges: Tuple[Tuple[int, int], ...]  # per shard: [lo, hi)
    shard_of_rack: Tuple[int, ...]

    @classmethod
    def build(cls, topo, n_shards: int) -> "ShardPlan":
        n_racks = topo.n_racks
        n_shards = max(1, min(n_shards, n_racks))
        base, extra = divmod(n_racks, n_shards)
        ranges: List[Tuple[int, int]] = []
        of_rack: List[int] = []
        lo = 0
        for sid in range(n_shards):
            hi = lo + base + (1 if sid < extra else 0)
            ranges.append((lo, hi))
            of_rack.extend([sid] * (hi - lo))
            lo = hi
        return cls(n_shards, n_racks, topo.hosts_per_rack, tuple(ranges), tuple(of_rack))

    def shard_of_host(self, host_id: int) -> int:
        return self.shard_of_rack[host_id // self.hosts_per_rack]

    def racks_of(self, sid: int) -> range:
        lo, hi = self.rack_ranges[sid]
        return range(lo, hi)


@dataclass(frozen=True)
class ShardStat:
    """Per-shard execution facts (plain data; survives pickling)."""

    sid: int
    racks: Tuple[int, int]
    events_processed: int
    rolled_back: int
    wall_seconds: float


@dataclass(frozen=True)
class ShardRunStats:
    """How a sharded run executed; ``ExperimentResult.shard_stats``."""

    n_shards: int
    transport: str
    rounds: int
    cross_shard_msgs: int
    cut: bool  # True = stopped at the Nth completion (vs the time guard)
    shards: Tuple[ShardStat, ...]


def _available_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except (AttributeError, OSError):  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def resolve_shard_count(tuning: SimTuning, topo) -> int:
    """Number of shards for this run ("auto" caps at racks/CPUs/8)."""
    shards = tuning.shards
    if shards == "auto":
        return max(1, min(topo.n_racks, _available_cpus(), 8))
    return max(1, min(int(shards), topo.n_racks))


def shard_width_hint(spec) -> int:
    """How many workers one run of ``spec`` will occupy (>= 1).

    Used by ``run_experiments_parallel`` to divide its process budget
    when cross-run and in-run parallelism compose.
    """
    tuning = spec.tuning if spec.tuning is not None else SimTuning()
    if tuning.shards == "off":
        return 1
    try:
        topo = spec.with_topology_buffer()
        if _unsupported_reason(spec) is not None:
            return 1
        return resolve_shard_count(tuning, topo)
    except Exception:
        return 1


# ======================================================================
# Conservative-sync core (pure; property-tested in isolation)
# ======================================================================

def next_window(t_nexts, held_whens, lookahead: float, guard: float) -> Optional[float]:
    """Next horizon ``W`` to grant, or None to stop on the guard.

    ``t_nexts`` are each shard's next pending event time (inf when
    idle); ``held_whens`` the timestamps of cross-shard messages not
    yet delivered.  Any event or message at the global minimum ``m``
    can execute without ever seeing a cross-shard effect earlier than
    ``m + lookahead``, so granting ``W = m + lookahead`` is safe and
    always makes progress (the ``m`` event itself runs).
    """
    cand = min(
        min(t_nexts, default=math.inf),
        min(held_whens, default=math.inf),
    )
    if cand == math.inf or cand > guard:
        return None
    return cand + lookahead


def canonical_merge(streams):
    """Merge per-shard ``(when, key, ...)`` streams into the global
    order — plain sort by ``(when, key)``, the same order one shared
    heap would produce.  Exposed for the shard-parity property tests."""
    merged = [item for stream in streams for item in stream]
    merged.sort(key=lambda item: (item[0], item[1]))
    return merged


# ======================================================================
# Lineage-keyed event loop
# ======================================================================

class LineageEventLoop(EventLoop):
    """EventLoop whose tie-break keys reconstruct serial allocation order.

    Heap entries are ``[when, key, fn, args, owner]`` — the same layout
    as the base class with the integer sequence number replaced by a
    lineage key (see module docstring), so ``EventLoop.cancel`` /
    ``is_pending`` and heap compaction work unchanged.

    ``router`` maps ``id(target_object)`` to a boundary handler; a
    ``schedule_at`` whose function is a bound method of a routed object
    is diverted (the handler ships or relays it) and returns an inert
    already-dead entry.
    """

    __slots__ = (
        "shard_id",
        "router",
        "_lseq",
        "_rc",
        "_sealed",
        "_dispatching",
        "_intra",
        "_cur_parent",
        "_cur_rc",
        "_cur_pair",
    )

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.shard_id = 0
        self.router: Dict[int, Any] = {}
        self._lseq = 0
        self._rc = 0
        self._sealed = False
        self._dispatching = False
        self._intra = 0
        self._cur_parent: Tuple = ()
        self._cur_rc = 0
        self._cur_pair: Optional[Tuple[float, Tuple]] = None

    # -- key allocation -------------------------------------------------
    def _alloc_key(self) -> Tuple:
        self._lseq += 1
        if self._dispatching:
            self._intra += 1
            return (
                self.now, self._cur_parent, self._intra,
                self._cur_rc, self.shard_id, self._lseq,
            )
        if self._sealed:
            raise SimulationError(
                "event scheduled outside dispatch after seal_roots(); "
                "root numbering would diverge across shards"
            )
        self._rc += 1
        return (_ROOT_T, (), self._rc, self._rc, self.shard_id, self._lseq)

    def skip_root(self) -> None:
        """Account for a root another shard schedules (keeps the global
        root counter aligned without materializing the event)."""
        if self._sealed:
            raise SimulationError("skip_root() after seal_roots()")
        self._rc += 1

    def seal_roots(self) -> None:
        """End the setup phase; further non-dispatch scheduling raises."""
        self._sealed = True

    # -- scheduling -----------------------------------------------------
    def schedule_at(self, when: float, fn, *args):
        if when < self.now:
            raise SimulationError(
                f"cannot schedule event in the past: {when} < now={self.now}"
            )
        if self.router:
            target = getattr(fn, "__self__", None)
            if target is not None:
                handler = self.router.get(id(target))
                if handler is not None and handler(when, fn, args):
                    # Diverted at the shard boundary; hand back an inert
                    # dead entry (cancel / is_pending treat it as done).
                    return [when, (), None, (), self]
        key = self._alloc_key()
        entry = [when, key, fn, args, self]
        heappush(self._heap, entry)
        self._live += 1
        return entry

    def schedule_timer_at(self, when: float, fn, *args):
        # The timer wheel is forced off under sharding (wheel slots
        # would bypass lineage keying); timers share the keyed heap.
        return self.schedule_at(when, fn, *args)

    # -- windowed execution --------------------------------------------
    def run_window(self, stop_before: float, hard_cap: float) -> int:
        """Run every event with ``t < stop_before and t <= hard_cap``.

        ``stop_before`` is the granted conservative horizon (exclusive:
        ties at the horizon wait for the next round, when any same-time
        cross-shard message will have been delivered); ``hard_cap`` is
        the run's time guard (inclusive, matching the serial
        ``run(until=guard)`` semantics).
        """
        heap = self._heap
        executed = 0
        while heap:
            entry = heap[0]
            if entry[2] is None:  # cancelled head
                heappop(heap)
                self._cancelled -= 1
                continue
            when = entry[0]
            if when >= stop_before or when > hard_cap:
                break
            heappop(heap)
            self._live -= 1
            if when < self.now and self._clock_watcher is not None:
                self._clock_watcher(self.now, when)
            self.now = when
            key = entry[1]
            self._cur_parent = key
            self._cur_rc = key[3]
            self._cur_pair = (when, key)
            self._intra = 0
            self._dispatching = True
            try:
                entry[2](*entry[3])
            finally:
                self._dispatching = False
            executed += 1
        self.events_processed += executed
        return executed

    def next_time(self) -> float:
        """Earliest pending event time (inf when idle)."""
        heap = self._heap
        while heap and heap[0][2] is None:
            heappop(heap)
            self._cancelled -= 1
        return heap[0][0] if heap else math.inf

    def current_pair(self) -> Optional[Tuple[float, Tuple]]:
        """(time, key) of the event being dispatched; None outside."""
        return self._cur_pair if self._dispatching else None

    def inject(self, when: float, key: Tuple, fn, args: Tuple) -> None:
        """Insert a relayed event with a key minted by its sender."""
        heappush(self._heap, [when, key, fn, args, self])
        self._live += 1


# ======================================================================
# Journaling subclasses (rollback support)
# ======================================================================

class _ShardCollector:
    """MetricsCollector that journals counter deltas by (time, key).

    Built lazily as a real subclass (import cycle: metrics imports
    nothing from sim, but constructing here keeps this module's imports
    light).  See :func:`_make_collector`.
    """


def _make_collector():
    from repro.metrics.collector import MetricsCollector

    class ShardCollector(MetricsCollector):
        _journal: Optional[list] = None
        _env: Optional[LineageEventLoop] = None
        _completions: Optional[list] = None

        def __setattr__(self, name, value):
            if name in _COUNTER_ATTRS:
                journal = self._journal
                if journal is not None:
                    pair = self._env.current_pair()
                    if pair is not None:
                        journal.append(
                            ("attr", pair, name, value - self.__dict__.get(name, 0))
                        )
            object.__setattr__(self, name, value)

        def flow_completed(self, flow, now):
            first = flow.finish is None
            super().flow_completed(flow, now)
            if first and flow.finish is not None and self._completions is not None:
                self._completions.append(
                    (flow.fid, flow.finish, self._env.current_pair())
                )

    return ShardCollector()


def _make_fabric_cls():
    from repro.net.topology import Fabric

    class ShardFabric(Fabric):
        _journal: Optional[list] = None
        _env: Optional[LineageEventLoop] = None
        #: Set by the boundary handler while evaluating a fault verdict,
        #: so the drop is journaled at its *arrival* (time, key) — where
        #: the serial run ledgers it — not the departure event's.
        _pair_override: Optional[Tuple[float, Tuple]] = None

        def _journal_pair(self):
            if self._journal is None:
                return None
            if self._pair_override is not None:
                return self._pair_override
            return self._env.current_pair()

        def _record_drop(self, pkt, hop_index):
            pair = self._journal_pair()
            if pair is not None:
                self._journal.append(("drop", pair, hop_index))
            super()._record_drop(pkt, hop_index)

        def record_fault_drop(self, pkt, hop_index, reason="fault"):
            pair = self._journal_pair()
            if pair is not None:
                self._journal.append(("fdrop", pair, hop_index, reason))
            super().record_fault_drop(pkt, hop_index, reason)

    return ShardFabric


class _LinkStateTimeline:
    """Up/down state of one boundary link as a function of time.

    Replays the plan's scheduled toggles for the link (in scheduling
    order, suppressing no-op repeats exactly like
    ``FaultInjector._set_link_state``) into a step function, so the
    sender-side verdict can ask for the state at the packet's *arrival*
    time — the instant the serial run's receiving tap would test
    ``self.down``.  Toggle events sort before arrivals at the same
    timestamp (their root keys lead with ``-1.0``), so arrivals at
    exactly a transition see the post-transition state, as in serial.
    """

    def __init__(self, toggles):
        state = False
        self._times: List[float] = []
        self._states: List[bool] = []
        for when, flag in toggles:
            if flag == state:
                continue
            state = flag
            self._times.append(when)
            self._states.append(flag)

    def down_at(self, t: float) -> bool:
        i = bisect_right(self._times, t)
        return self._states[i - 1] if i else False


def _link_timelines(plan) -> Dict[str, _LinkStateTimeline]:
    """Per-link down/up timelines from a FaultPlan's LinkDown events.

    Host pauses never touch inter-rack uplinks (they expand to the
    host's NIC and its ToR-facing downlink), so only ``link_downs``
    matter at shard boundaries.
    """
    toggles: Dict[str, List[Tuple[float, bool]]] = {}
    for ev in plan.link_downs:
        entries = toggles.setdefault(ev.link, [])
        entries.append((ev.down_at, True))
        if ev.up_at != math.inf:
            entries.append((ev.up_at, False))
    out = {}
    for name, entries in toggles.items():
        entries.sort(key=lambda e: e[0])
        out[name] = _LinkStateTimeline(entries)
    return out


# ======================================================================
# Packet wire format (cross-shard relay)
# ======================================================================

def _pack_pkt(pkt: Packet) -> Tuple:
    return (
        int(pkt.ptype),
        pkt.flow.fid if pkt.flow is not None else None,
        pkt.seq, pkt.src, pkt.dst, pkt.size, pkt.priority, pkt.born,
        pkt.remaining, pkt.data_prio, pkt.expiry, pkt.ecn, pkt.hops,
        pkt.payload,
    )


def _unpack_pkt(packed: Tuple, flow_by_fid: Dict[int, Flow]) -> Packet:
    (ptv, fid, seq, src, dst, size, priority, born,
     remaining, data_prio, expiry, ecn, hops, payload) = packed
    flow = flow_by_fid.get(fid) if fid is not None else None
    pkt = Packet(PacketType(ptv), flow, seq, src, dst, size, priority, born)
    pkt.remaining = remaining
    pkt.data_prio = data_prio
    pkt.expiry = expiry
    pkt.ecn = ecn
    pkt.hops = hops
    pkt.payload = payload
    return pkt


# ======================================================================
# Per-shard runtime
# ======================================================================

class ShardRuntime:
    """One shard: its own event loop, fabric replica, and boundary."""

    def __init__(self, spec, plan: ShardPlan, sid: int) -> None:
        from repro.experiments.runner import (
            _default_time_guard,
            _generate_flows,
            build_simulation,
        )

        self.plan = plan
        self.sid = sid
        base = spec.tuning if spec.tuning is not None else SimTuning()
        # Knobs incompatible with lineage keying are forced off; all of
        # them are digest-inert (tests/sim/test_determinism.py), so the
        # merged run still matches the default serial digest.
        forced = replace(
            base,
            timer_wheel=False,
            fused_ports=False,
            inline_drain=False,
            packet_pool=False,
            batch_dispatch=False,
            backend="pure",
            shards="off",
        )
        # Fresh auditor instances per shard: originals stay unbound (so
        # in-process sharding can't double-bind them) and each shard
        # ships its summaries back for merging.
        clones = tuple(type(h)() for h in spec.instruments)
        spec2 = spec.variant(tuning=forced, instruments=clones)

        env = LineageEventLoop()
        env.shard_id = sid
        self.env = env
        self.ctx = build_simulation(
            spec2, env=env, collector=_make_collector(),
            fabric_cls=_make_fabric_cls(),
        )
        self.fabric = self.ctx.fabric
        self.collector = self.ctx.collector

        self.journal: List[Tuple] = []
        self.completions: List[Tuple] = []
        self.outbox: List[Tuple[int, Tuple]] = []
        self.msgs_out = 0
        self.wall = 0.0

        col = self.collector
        object.__setattr__(col, "_env", env)
        object.__setattr__(col, "_completions", self.completions)
        self.fabric._env = env
        # Shared deltas list; attached last so setup writes never journal.
        self.fabric._journal = self.journal
        object.__setattr__(col, "_journal", self.journal)

        flows = _generate_flows(spec2, self.fabric, SeededRng(spec.seed))
        flows.sort(key=lambda f: f.arrival)
        self.flow_by_fid = {f.fid: f for f in flows}
        col.total_pkts_offered = sum(f.n_pkts for f in flows)
        col.expected_flows = len(flows)
        for flow in flows:
            if plan.shard_of_host(flow.src) == sid:
                env.schedule_at(
                    flow.arrival, self.fabric.hosts[flow.src].agent.start_flow, flow
                )
            else:
                env.skip_root()
        env.seal_roots()
        self.guard = _default_time_guard(spec, flows)
        self._install_boundary(spec)

    # -- boundary wiring ------------------------------------------------
    def _install_boundary(self, spec) -> None:
        plan, sid, env = self.plan, self.sid, self.env
        inj = self.ctx.faults
        timelines = _link_timelines(spec.faults) if inj is not None else {}
        seen_cores = set()
        for rid in plan.racks_of(sid):
            tor = self.fabric.tors[rid]
            for port in tor.ports:
                if port.hop_index != 2:
                    continue
                peer = port.peer
                if inj is not None and port.name in inj.taps:
                    tap = peer  # _LinkTap wrapping the core switch
                    timeline = timelines.get(
                        port.name, _LinkStateTimeline(())
                    )
                    env.router[id(tap)] = self._tap_handler(tap, timeline)
                else:
                    if id(peer) not in seen_cores:
                        seen_cores.add(id(peer))
                        env.router[id(peer)] = self._core_handler(peer)
        self._install_fastpass_boundary()

    def _core_handler(self, core):
        def handler(when, fn, args) -> bool:
            if getattr(fn, "__name__", "") != "receive":
                return False
            key = self.env._alloc_key()
            self._emit(when, key, core, args[0])
            return True
        return handler

    def _tap_handler(self, tap, timeline: _LinkStateTimeline):
        inj = self.ctx.faults
        fabric = self.fabric

        def handler(when, fn, args) -> bool:
            if getattr(fn, "__name__", "") != "receive":
                return False
            pkt = args[0]
            # The serial run allocates one sequence number for this
            # schedule and ledgers any drop at the *arrival* event, so:
            # allocate the arrival key unconditionally and stamp the
            # verdict's side effects with the arrival pair.
            key = self.env._alloc_key()
            fabric._pair_override = (when, key)
            try:
                if timeline.down_at(when):
                    inj._ledger(pkt, tap, "link_down")
                    return True
                if inj.scripted_active and inj._match_scripted(pkt, tap):
                    inj._ledger(pkt, tap, "scripted")
                    return True
                model = tap.model
                if model is not None and model.lose(tap.rng):
                    inj._ledger(pkt, tap, "loss")
                    return True
                rate = tap.corrupt_rate
                if rate > 0.0 and tap.rng.random() < rate:
                    inj._record_corrupt(pkt, tap)
                    return True
            finally:
                fabric._pair_override = None
            tap.pkts_forwarded += 1
            if tap.forward_hook is not None:
                tap.forward_hook(pkt, tap)
            self._emit(when, key, tap.real, pkt)
            return True
        return handler

    def _emit(self, when: float, key: Tuple, core, pkt: Packet) -> None:
        dst_sid = self.plan.shard_of_host(pkt.dst)
        if dst_sid == self.sid:
            # Same shard, different rack: relay locally.  Must not wait
            # for the next round — the arrival can precede the horizon.
            self.env.inject(when, key, core.receive, (pkt,))
        else:
            self.outbox.append(
                (dst_sid, ("pkt", when, key, core.node_id, _pack_pkt(pkt)))
            )
            self.msgs_out += 1

    def _install_fastpass_boundary(self) -> None:
        try:
            from repro.protocols.fastpass.arbiter import FastpassArbiter
        except ImportError:  # pragma: no cover
            return
        shared = self.ctx.shared
        if not isinstance(shared, FastpassArbiter):
            return
        plan, sid, env = self.plan, self.sid, self.env
        owner = plan.shard_of_host(0)
        if sid != owner:
            def request_handler(when, fn, args) -> bool:
                if getattr(fn, "__name__", "") != "request":
                    raise SimulationError(
                        f"unexpected arbiter method at shard boundary: {fn}"
                    )
                flow, demand = args
                key = env._alloc_key()
                self.outbox.append(
                    (owner, ("arbreq", when, key, flow.fid, int(demand)))
                )
                self.msgs_out += 1
                return True
            env.router[id(shared)] = request_handler
            return
        # Owner shard: divert allocations bound for agents on hosts the
        # other shards own.
        for host in self.fabric.hosts:
            hid = host.node_id
            dst_sid = plan.shard_of_host(hid)
            if dst_sid == sid:
                continue
            agent = host.agent

            def onsched_handler(when, fn, args, _dst=dst_sid, _hid=hid) -> bool:
                if getattr(fn, "__name__", "") != "on_schedule":
                    raise SimulationError(
                        f"unexpected remote-agent method at shard boundary: {fn}"
                    )
                (allocations,) = args
                key = env._alloc_key()
                packed = tuple((slot, f.fid) for slot, f in allocations)
                self.outbox.append(
                    (_dst, ("onsched", when, key, _hid, packed))
                )
                self.msgs_out += 1
                return True
            env.router[id(agent)] = onsched_handler

    # -- round protocol -------------------------------------------------
    def _inject(self, msgs: List[Tuple]) -> None:
        msgs.sort(key=lambda m: (m[1], m[2]))
        hooks = [
            h for h in self.ctx.hooks
            if getattr(h, "boundary_ingress", None) is not None
        ]
        for msg in msgs:
            kind = msg[0]
            when, key = msg[1], msg[2]
            if kind == "pkt":
                pkt = _unpack_pkt(msg[4], self.flow_by_fid)
                core = self.fabric.cores[msg[3]]
                self.env.inject(when, key, core.receive, (pkt,))
                for hook in hooks:
                    hook.boundary_ingress(pkt)
            elif kind == "arbreq":
                flow = self.flow_by_fid[msg[3]]
                self.env.inject(
                    when, key, self.ctx.shared.request, (flow, msg[4])
                )
            elif kind == "onsched":
                agent = self.fabric.hosts[msg[3]].agent
                allocs = [(slot, self.flow_by_fid[fid]) for slot, fid in msg[4]]
                self.env.inject(when, key, agent.on_schedule, (allocs,))
            else:  # pragma: no cover - protocol error
                raise SimulationError(f"unknown cross-shard message kind {kind!r}")

    def begin_round(self, horizon: float, msgs: List[Tuple]) -> None:
        t0 = time.perf_counter()
        self.journal.clear()
        self._inject(msgs)
        self.env.run_window(horizon, self.guard)
        self.wall += time.perf_counter() - t0

    def report(self) -> Tuple[float, List[Tuple], List[Tuple]]:
        out, self.outbox = self.outbox, []
        comps = list(self.completions)
        self.completions.clear()
        return self.env.next_time(), out, comps

    # -- termination ----------------------------------------------------
    def _rollback(self, cut: Tuple[float, Tuple]) -> int:
        col, fab = self.collector, self.fabric
        n = 0
        for entry in self.journal:
            if entry[1] <= cut:
                continue
            n += 1
            kind = entry[0]
            if kind == "attr":
                col.__dict__[entry[2]] -= entry[3]
            elif kind == "drop":
                fab.drops_by_hop[entry[2]] -= 1
                fab.drops_total -= 1
            else:  # fdrop
                fab.fault_drops_by_hop[entry[2]] -= 1
                fab.fault_drops_total -= 1
                reason = entry[3]
                fab.fault_drops_by_reason[reason] -= 1
                if fab.fault_drops_by_reason[reason] == 0:
                    del fab.fault_drops_by_reason[reason]
        return n

    def finish(self, cut: Optional[Tuple[float, Tuple]]) -> Dict[str, Any]:
        from repro.experiments.runner import _finalize_hooks

        t0 = time.perf_counter()
        # Finalize on the quiescent (pre-rollback) state: auditors'
        # internal ledgers saw the overrun events too, so reconciling
        # against rolled-back counters would manufacture violations.
        _finalize_hooks(self.ctx)
        rolled = self._rollback(cut) if cut is not None else 0
        col, fab = self.collector, self.fabric
        self.wall += time.perf_counter() - t0
        return {
            "sid": self.sid,
            "counters": {name: getattr(col, name) for name in _COUNTER_ATTRS},
            "first_arrival": col.first_arrival,
            "last_completion": col.last_completion,
            "drops_by_hop": dict(fab.drops_by_hop),
            "drops_total": fab.drops_total,
            "fault_by_hop": dict(fab.fault_drops_by_hop),
            "fault_total": fab.fault_drops_total,
            "fault_by_reason": dict(fab.fault_drops_by_reason),
            "events": self.env.events_processed,
            "rolled_back": rolled,
            "msgs_out": self.msgs_out,
            "wall": self.wall,
            "audits": _summarize_auditors(self.ctx.hooks),
        }


# ======================================================================
# Audit merging
# ======================================================================

def _summarize_auditors(hooks) -> Optional[List[Dict[str, Any]]]:
    auditors = [h for h in hooks if isinstance(h, Auditor)]
    if not auditors:
        return None
    out = []
    for a in auditors:
        out.append({
            "name": a.name,
            "checks": [
                (name, c.description, c.checked, c.violation_count,
                 list(c.violations))
                for name, c in a.checks.items()
            ],
            "order": list(a._order),
            "context": dict(a.context),
        })
    return out


class _MergedAuditor:
    """Duck-typed Auditor built from per-shard summaries, so the
    parent's :class:`AuditReport` renders merged checks transparently."""

    def __init__(self, name: str, summaries: List[Dict[str, Any]]) -> None:
        self.name = name
        self.checks: Dict[str, InvariantCheck] = {}
        self._order: List = []
        self.context: Dict[str, Any] = {}
        for s in summaries:
            for cname, desc, checked, vcount, violations in s["checks"]:
                check = self.checks.get(cname)
                if check is None:
                    check = InvariantCheck(cname, desc)
                    self.checks[cname] = check
                check.checked += checked
                check.violation_count += vcount
                for v in violations:
                    if len(check.violations) < 20:
                        check.violations.append(v)
            self._order.extend(s["order"])
            for k, v in s["context"].items():
                prior = self.context.get(k)
                if isinstance(v, (int, float)) and isinstance(prior, (int, float)):
                    self.context[k] = prior + v
                elif prior is None:
                    self.context[k] = v
        self._order.sort(key=lambda v: v.time)

    @property
    def ok(self) -> bool:
        return all(c.violation_count == 0 for c in self.checks.values())

    @property
    def violations(self):
        return list(self._order)


def _merge_audits(finals: List[Dict[str, Any]]) -> Optional[AuditReport]:
    per_shard = [f["audits"] for f in finals]
    if not any(per_shard):
        return None
    by_name: Dict[str, List[Dict[str, Any]]] = {}
    order: List[str] = []
    for audits in per_shard:
        if not audits:
            continue
        for summary in audits:
            name = summary["name"]
            if name not in by_name:
                by_name[name] = []
                order.append(name)
            by_name[name].append(summary)
    return AuditReport([_MergedAuditor(n, by_name[n]) for n in order])


# ======================================================================
# Executors
# ======================================================================

class _LocalShard:
    """In-process handle (also the fallback inside daemonic workers)."""

    def __init__(self, spec, plan: ShardPlan, sid: int) -> None:
        self.rt = ShardRuntime(spec, plan, sid)
        self._pending: Optional[Tuple[float, List]] = None
        self._cut: Optional[Tuple] = None

    def recv_ready(self) -> float:
        return self.rt.env.next_time()

    def start_round(self, horizon: float, msgs: List[Tuple]) -> None:
        self._pending = (horizon, msgs)

    def collect(self):
        horizon, msgs = self._pending
        self.rt.begin_round(horizon, msgs)
        return self.rt.report()

    def send_stop(self, cut) -> None:
        self._cut = cut

    def recv_final(self) -> Dict[str, Any]:
        return self.rt.finish(self._cut)

    def shutdown(self) -> None:
        pass


class _KeyCodec:
    """Ships nested lineage keys over a pipe without recursive pickling.

    Lineage chains nest one tuple per generation; pickling them
    recursively overflows the interpreter recursion limit within a few
    hundred events of a port's busy chain.  Instead, each direction of
    a worker pipe carries one codec pair: the encoder walks a chain
    iteratively and sends only the frames the peer has not seen
    (id-interned, tuples kept alive so ids stay valid), and the decoder
    rebuilds them into an append-only table indexed by frame id — so a
    frame crosses the wire at most once and shared structure on the
    sender stays shared on the receiver.  Requires FIFO delivery and
    that every encoded payload is decoded exactly once, in order, which
    the single-threaded pipe protocol guarantees.
    """

    __slots__ = ("_ids", "_keep", "_table")

    def __init__(self) -> None:
        self._ids: Dict[int, int] = {}
        self._keep: List[Tuple] = []
        self._table: List[Tuple] = []

    def encode(self, key: Tuple) -> Tuple[int, List[Tuple]]:
        suffix = []
        cur = key
        ids = self._ids
        while cur != () and id(cur) not in ids:
            suffix.append(cur)
            cur = cur[1]
        ref = -1 if cur == () else ids[id(cur)]
        frames = []
        for tup in reversed(suffix):
            frames.append((tup[0], ref, tup[2], tup[3], tup[4], tup[5]))
            ref = len(self._keep)
            ids[id(tup)] = ref
            self._keep.append(tup)
        return (ref, frames)

    def decode(self, enc: Tuple[int, List[Tuple]]) -> Tuple:
        ref, frames = enc
        table = self._table
        for t, pref, intra, rc, sid, lseq in frames:
            parent = () if pref < 0 else table[pref]
            table.append((t, parent, intra, rc, sid, lseq))
        return () if ref < 0 else table[ref]


def _encode_msg(codec: _KeyCodec, msg: Tuple) -> Tuple:
    return (msg[0], msg[1], codec.encode(msg[2])) + msg[3:]


def _decode_msg(codec: _KeyCodec, msg: Tuple) -> Tuple:
    return (msg[0], msg[1], codec.decode(msg[2])) + msg[3:]


def _shard_worker(conn, spec, plan: ShardPlan, sid: int) -> None:
    # The whole worker life runs on a big-stack thread: every lineage
    # comparison (heap, sort, rollback) can recurse per generation.
    _call_deep(_shard_worker_main, conn, spec, plan, sid)


def _shard_worker_main(conn, spec, plan: ShardPlan, sid: int) -> None:
    try:
        rt = ShardRuntime(spec, plan, sid)
        enc = _KeyCodec()  # worker -> parent
        dec = _KeyCodec()  # parent -> worker
        conn.send(("ready", rt.env.next_time()))
        while True:
            msg = conn.recv()
            if msg[0] == "round":
                rt.begin_round(msg[1], [_decode_msg(dec, m) for m in msg[2]])
                t_next, out, comps = rt.report()
                conn.send((
                    "report", t_next,
                    [(dst, _encode_msg(enc, m)) for dst, m in out],
                    [(fid, fin, (w, enc.encode(k))) for fid, fin, (w, k) in comps],
                ))
            elif msg[0] == "stop":
                cut = msg[1]
                if cut is not None:
                    cut = (cut[0], dec.decode(cut[1]))
                conn.send(("final", rt.finish(cut)))
                return
            else:  # pragma: no cover - protocol error
                raise RuntimeError(f"unknown coordinator message {msg[0]!r}")
    except BaseException:  # pragma: no cover - exercised via fault paths
        import traceback

        try:
            conn.send(("error", traceback.format_exc()))
        except Exception:
            pass
    finally:
        conn.close()


class _ProcShard:
    """Forked-process handle; fork keeps spec objects un-pickled."""

    def __init__(self, spec, plan: ShardPlan, sid: int, mpctx) -> None:
        self.conn, child = mpctx.Pipe()
        self.proc = mpctx.Process(
            target=_shard_worker, args=(child, spec, plan, sid), daemon=True
        )
        self.proc.start()
        child.close()
        self._enc = _KeyCodec()  # parent -> worker
        self._dec = _KeyCodec()  # worker -> parent

    def _recv(self):
        if not self.conn.poll(_WORKER_TIMEOUT_S):
            raise RuntimeError(
                "shard worker unresponsive after "
                f"{_WORKER_TIMEOUT_S:.0f}s; aborting run"
            )
        msg = self.conn.recv()
        if msg[0] == "error":
            raise RuntimeError(f"shard worker failed:\n{msg[1]}")
        return msg

    def recv_ready(self) -> float:
        return self._recv()[1]

    def start_round(self, horizon: float, msgs: List[Tuple]) -> None:
        self.conn.send(
            ("round", horizon, [_encode_msg(self._enc, m) for m in msgs])
        )

    def collect(self):
        msg = self._recv()
        out = [(dst, _decode_msg(self._dec, m)) for dst, m in msg[2]]
        comps = [
            (fid, fin, (w, self._dec.decode(k))) for fid, fin, (w, k) in msg[3]
        ]
        return msg[1], out, comps

    def send_stop(self, cut) -> None:
        if cut is not None:
            cut = (cut[0], self._enc.encode(cut[1]))
        self.conn.send(("stop", cut))

    def recv_final(self) -> Dict[str, Any]:
        return self._recv()[1]

    def shutdown(self) -> None:
        try:
            self.conn.close()
        except Exception:
            pass
        if self.proc.is_alive():
            self.proc.terminate()
        self.proc.join(timeout=5.0)


def _drive(handles, expected: int, guard: float, lookahead: float):
    """The shared coordinator: one round loop for both transports, so
    in-process and multiprocess runs are byte-identical by construction."""
    t_nexts = [h.recv_ready() for h in handles]
    held: List[List[Tuple]] = [[] for _ in handles]
    completions: List[Tuple] = []
    rounds = 0
    msgs = 0
    while True:
        if expected > 0 and len(completions) >= expected:
            cut = max(c[2] for c in completions)
            break
        horizon = next_window(
            t_nexts, [m[1] for q in held for m in q], lookahead, guard
        )
        if horizon is None:
            cut = None
            break
        for handle, queue in zip(handles, held):
            handle.start_round(horizon, queue)
        held = [[] for _ in handles]
        for i, handle in enumerate(handles):
            t_next, outbox, comps = handle.collect()
            t_nexts[i] = t_next
            completions.extend(comps)
            for dst, msg in outbox:
                if msg[1] + 1e-12 < horizon:
                    raise SimulationError(
                        f"conservative-sync violation: message at t={msg[1]} "
                        f"inside granted horizon {horizon}"
                    )
                held[dst].append(msg)
                msgs += 1
        rounds += 1
    for handle in handles:
        handle.send_stop(cut)
    finals = [handle.recv_final() for handle in handles]
    return finals, completions, rounds, msgs, cut


# ======================================================================
# Support gate
# ======================================================================

def _fastpass_ctrl_latency(spec, topo) -> float:
    from repro.protocols.fastpass.config import FastpassConfig

    config = spec.protocol_config
    if config is None:
        if spec.protocol == "ideal":
            return 0.0  # ideal_config pins control_latency=0.0
        config = FastpassConfig()
    if hasattr(config, "resolve"):
        config = config.resolve(topo)
    return getattr(config, "ctrl_latency", 0.0)


def _unsupported_reason(spec) -> Optional[str]:
    """Why this spec must run serially (None = shardable)."""
    from repro.net.fattree import FatTreeConfig

    topo = spec.with_topology_buffer()
    if isinstance(topo, FatTreeConfig):
        return "fat-tree topologies are not partitioned yet"
    if spec.protocol not in _SUPPORTED_PROTOCOLS:
        return f"protocol {spec.protocol!r} has no shard support declaration"
    if spec.observability is not None:
        return "observability hooks cannot ship state across shards"
    if spec.stability_samples > 0:
        return "stability sampling needs the global in-flight view"
    for hook in spec.instruments:
        if not isinstance(hook, Auditor):
            return f"instrument {type(hook).__name__} is not a mergeable Auditor"
        try:
            type(hook)()
        except Exception:
            return f"instrument {type(hook).__name__} cannot be re-instantiated per shard"
    faults = spec.faults
    if faults is not None and not faults.is_empty():
        if spec.protocol in ("fastpass", "ideal"):
            return "fault plans on centrally-arbitrated protocols"
        for rule in faults.scripted:
            if rule.link is None:
                return "scripted drops without a link filter span shards"
    if spec.protocol in ("fastpass", "ideal"):
        if _fastpass_ctrl_latency(spec, topo) < topo.propagation_delay:
            return "arbiter control latency below the shard lookahead"
    return None


# ======================================================================
# Entry point
# ======================================================================

def _resolve_transport(tuning: SimTuning, n_shards: int) -> str:
    import multiprocessing as mp

    choice = tuning.shard_transport
    can_fork = "fork" in mp.get_all_start_methods()
    daemonic = mp.current_process().daemon
    if choice == "inprocess":
        return "inprocess"
    if choice == "processes":
        if not can_fork or daemonic:
            warnings.warn(
                "shard_transport='processes' unavailable here "
                "(no fork or already inside a daemonic worker); "
                "using the in-process executor",
                RuntimeWarning,
                stacklevel=3,
            )
            return "inprocess"
        return "processes"
    # auto
    if n_shards > 1 and can_fork and not daemonic:
        return "processes"
    return "inprocess"


def run_sharded(spec):
    """Run ``spec`` sharded per :class:`ShardPlan`; None = unsupported.

    The returned :class:`~repro.experiments.spec.ExperimentResult` is
    byte-identical (``run_digest``) to the serial run of the same spec.
    """
    reason = _unsupported_reason(spec)
    if reason is not None:
        warnings.warn(
            f"sharded execution unavailable ({reason}); running serially",
            RuntimeWarning,
            stacklevel=3,
        )
        return None
    # Coordinator-side lineage comparisons (completion-cut max, local
    # shard execution under the in-process transport) recurse just like
    # worker-side ones; run the whole coordination on a deep stack.
    return _call_deep(_run_sharded_impl, spec)


def _run_sharded_impl(spec):
    wall0 = time.perf_counter()
    tuning = spec.tuning if spec.tuning is not None else SimTuning()
    topo = spec.with_topology_buffer()
    n_shards = resolve_shard_count(tuning, topo)
    plan = ShardPlan.build(topo, n_shards)
    lookahead = topo.propagation_delay
    transport = _resolve_transport(tuning, plan.n_shards)

    # The parent regenerates the flow list itself (same seed, same
    # generator) for the result records and the termination target.
    from repro.experiments.runner import _default_time_guard, _generate_flows
    from repro.net.topology import Fabric

    env0 = EventLoop()
    env0.timer_wheel_enabled = False
    fab0 = Fabric(env0, topo, SeededRng(spec.seed))
    flows = _generate_flows(spec, fab0, SeededRng(spec.seed))
    flows.sort(key=lambda f: f.arrival)
    guard = _default_time_guard(spec, flows)

    handles: List[Any] = []
    try:
        if transport == "processes":
            import multiprocessing as mp

            mpctx = mp.get_context("fork")
            handles = [
                _ProcShard(spec, plan, sid, mpctx)
                for sid in range(plan.n_shards)
            ]
        else:
            handles = [
                _LocalShard(spec, plan, sid) for sid in range(plan.n_shards)
            ]
        finals, completions, rounds, msgs, cut = _drive(
            handles, len(flows), guard, lookahead
        )
    finally:
        for handle in handles:
            handle.shutdown()

    return _assemble(
        spec, topo, plan, fab0, flows, finals, completions,
        rounds, msgs, cut, transport, wall0,
    )


def _assemble(spec, topo, plan, fab0, flows, finals, completions,
              rounds, msgs, cut, transport, wall0):
    from repro.metrics.collector import MetricsCollector
    from repro.metrics.drops import DropStats
    from repro.metrics.records import records_from_flows
    from repro.metrics.throughput import per_host_goodput_gbps
    from repro.experiments.spec import ExperimentResult

    flow_by_fid = {f.fid: f for f in flows}
    for fid, finish, _pair in completions:
        flow_by_fid[fid].finish = finish
    records = records_from_flows(flows, fab0)

    counters = {name: 0 for name in _COUNTER_ATTRS}
    by_hop: Dict[int, int] = {1: 0, 2: 0, 3: 0, 4: 0}
    total_drops = 0
    fault_total = 0
    events = 0
    first_arrival = None
    last_completion = None
    for final in finals:
        for name, value in final["counters"].items():
            counters[name] += value
        for hop, n in final["drops_by_hop"].items():
            by_hop[hop] = by_hop.get(hop, 0) + n
        total_drops += final["drops_total"]
        fault_total += final["fault_total"]
        events += final["events"]
        if final["first_arrival"] is not None:
            if first_arrival is None or final["first_arrival"] < first_arrival:
                first_arrival = final["first_arrival"]
        if final["last_completion"] is not None:
            if last_completion is None or final["last_completion"] > last_completion:
                last_completion = final["last_completion"]

    shim = MetricsCollector()
    shim.payload_bytes_delivered = counters["payload_bytes_delivered"]
    shim.first_arrival = first_arrival
    shim.last_completion = last_completion
    duration = shim.duration()

    stats = ShardRunStats(
        n_shards=plan.n_shards,
        transport=transport,
        rounds=rounds,
        cross_shard_msgs=msgs,
        cut=cut is not None,
        shards=tuple(
            ShardStat(
                sid=final["sid"],
                racks=plan.rack_ranges[final["sid"]],
                events_processed=final["events"],
                rolled_back=final["rolled_back"],
                wall_seconds=final["wall"],
            )
            for final in finals
        ),
    )
    return ExperimentResult(
        spec=spec,
        records=records,
        drops=DropStats(
            by_hop=by_hop,
            total_drops=total_drops,
            pkts_injected=counters["data_pkts_injected"],
            pkts_retransmitted=counters["data_pkts_retransmitted"],
        ),
        duration=duration,
        n_flows=len(flows),
        n_completed=len(completions),
        payload_bytes_delivered=counters["payload_bytes_delivered"],
        data_pkts_injected=counters["data_pkts_injected"],
        data_pkts_retransmitted=counters["data_pkts_retransmitted"],
        control_pkts_sent=counters["control_pkts_sent"],
        control_bytes_sent=counters["control_bytes_sent"],
        goodput_gbps_per_host=per_host_goodput_gbps(shim, topo.n_hosts),
        stability=[],
        events_processed=events,
        wall_seconds=time.perf_counter() - wall0,
        fault_drops=fault_total,
        audit=_merge_audits(finals),
        telemetry=None,
        shard_stats=stats,
    )
