"""Discrete-event simulation engine (substrate S1).

This package is the foundation everything else runs on: a binary-heap
event loop with cancellable events (`EventLoop`), time/rate unit helpers
(`units`), deterministic seeded randomness (`randoms`), and the
`SimContext` spine that bundles one run's components (event loop, RNG,
fabric, collector, protocol config/shared state, instrumentation).
"""

from repro.sim.engine import EventLoop, SimulationError
from repro.sim.randoms import SeededRng
from repro.sim.context import SimContext
from repro.sim import units

__all__ = ["EventLoop", "SimulationError", "SeededRng", "SimContext", "units"]
