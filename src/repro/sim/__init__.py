"""Discrete-event simulation engine (substrate S1).

This package is the foundation everything else runs on: a binary-heap
event loop with cancellable events (`EventLoop`), time/rate unit helpers
(`units`), and deterministic seeded randomness (`randoms`).
"""

from repro.sim.engine import EventLoop, SimulationError
from repro.sim.randoms import SeededRng
from repro.sim import units

__all__ = ["EventLoop", "SimulationError", "SeededRng", "units"]
