"""Unit helpers and wire constants.

Everything internal is SI: seconds, bytes, bits/second.  These helpers
exist so the rest of the code reads like the paper ("10 Gbps access
links", "36 kB buffers", "1.5x MTU transmission time") instead of like
arithmetic.
"""

from __future__ import annotations

__all__ = [
    "GBPS",
    "MBPS",
    "KB",
    "MB",
    "GB",
    "MTU_BYTES",
    "HEADER_BYTES",
    "MSS_BYTES",
    "CONTROL_BYTES",
    "gbps",
    "usec",
    "nsec",
    "msec",
    "tx_time",
    "packets_for_bytes",
    "wire_bytes",
]

GBPS = 1e9
MBPS = 1e6

# Storage sizes follow the paper's usage (decimal k/M for buffers and
# flow sizes, as in "36kB buffers" and "1GB flows").
KB = 1000
MB = 1000 * 1000
GB = 1000 * 1000 * 1000

#: Maximum transmission unit on the wire, including headers.
MTU_BYTES = 1500
#: Header bytes per packet; also the size of every control packet
#: (RTS, token, ACK, Fastpass request/schedule) per the paper ("All
#: control packets in pHost are of 40 bytes").
HEADER_BYTES = 40
#: Maximum payload per data packet.
MSS_BYTES = MTU_BYTES - HEADER_BYTES
#: Size of a control packet on the wire.
CONTROL_BYTES = HEADER_BYTES


def gbps(x: float) -> float:
    """Convert gigabits/second to bits/second."""
    return x * GBPS


def usec(x: float) -> float:
    """Convert microseconds to seconds."""
    return x * 1e-6


def nsec(x: float) -> float:
    """Convert nanoseconds to seconds."""
    return x * 1e-9


def msec(x: float) -> float:
    """Convert milliseconds to seconds."""
    return x * 1e-3


def tx_time(size_bytes: float, rate_bps: float) -> float:
    """Serialization delay of ``size_bytes`` on a ``rate_bps`` link."""
    return size_bytes * 8.0 / rate_bps


def packets_for_bytes(size_bytes: int, mss: int = MSS_BYTES) -> int:
    """Number of data packets needed to carry ``size_bytes`` of payload.

    A zero-byte flow still occupies one (header-only) packet, matching
    how flow-oriented simulators treat degenerate flows.
    """
    if size_bytes <= 0:
        return 1
    return -(-size_bytes // mss)  # ceil division


def wire_bytes(payload_bytes: int, header: int = HEADER_BYTES) -> int:
    """Bytes a data packet occupies on the wire (payload + header)."""
    return payload_bytes + header
