"""DCTCP: ECN-threshold marking in the fabric, gentle window cuts at
the endpoint.  See :mod:`repro.protocols.dctcp.agent`."""

from repro.protocols.dctcp.agent import DCTCP_SPEC, DCTCPAgent
from repro.protocols.dctcp.config import DCTCPConfig

__all__ = ["DCTCP_SPEC", "DCTCPAgent", "DCTCPConfig"]
