"""DCTCP endpoint.

The first transport landed *after* the dataplane refactor, and the
proof that new protocol columns need only the two public registries:

* the switch side is :class:`repro.dataplane.DctcpEcnProgram` — the
  commodity pipeline plus ECN threshold marking — selected by name in
  this module's :class:`~repro.protocols.base.ProtocolSpec`
  (``switch_dataplane="dctcp"``); nothing inside ``repro.net`` or other
  protocols' packages changes;
* the endpoint below is plain window-based TCP machinery with DCTCP's
  estimator: the receiver echoes each data packet's ECN codepoint on
  its per-packet ACK, and the sender maintains
  ``alpha <- (1 - g) * alpha + g * F`` over observation windows of one
  cwnd of ACKs, cutting ``cwnd`` by ``alpha / 2`` when a window saw any
  marks and growing additively otherwise.

Deviations from the DCTCP paper, chosen to match this repository's
existing endpoints: per-packet ACKs (no delayed-ACK coalescing — the
pFabric/pHost endpoints ACK per packet too, so control overhead is
comparable across columns), slow start replaced by a fixed initial
window (as the pHost paper configures all its transports), and
timeout recovery via resend-all-unacked (the pFabric endpoint's rule)
with the window collapsed to ``min_cwnd``.
"""

from __future__ import annotations

from collections import deque
from math import ceil
from typing import Deque, Dict, Optional, Set

from repro.net.packet import Flow, Packet, PacketType
from repro.protocols.base import ProtocolSpec, TransportAgent
from repro.protocols.dctcp.config import DCTCPConfig
from repro.sim.engine import EventLoop

__all__ = ["DCTCPAgent", "DCTCP_SPEC"]

#: Commodity band for DCTCP data (ACKs ride band 0, so they are never
#: queued behind data — matching the other endpoints' control priority).
DATA_BAND = 1


class _SrcFlow:
    """Source-side window, estimator and retransmission state."""

    __slots__ = (
        "flow",
        "next_seq",
        "acked",
        "unacked_sent",
        "rtx",
        "rtx_set",
        "in_flight",
        "ever_sent",
        "rto_timer",
        "rto_scale",
        "done",
        "cwnd",
        "alpha",
        "window_acks",
        "window_marks",
    )

    def __init__(self, flow: Flow, config: DCTCPConfig) -> None:
        self.flow = flow
        self.next_seq = 0
        self.acked: Set[int] = set()
        self.unacked_sent: Set[int] = set()
        self.rtx: Deque[int] = deque()
        self.rtx_set: Set[int] = set()
        self.in_flight = 0
        self.ever_sent: Set[int] = set()
        self.rto_timer: Optional[list] = None
        self.rto_scale = 1.0
        self.done = False
        # DCTCP estimator state.
        self.cwnd = float(config.init_cwnd)
        self.alpha = config.init_alpha
        self.window_acks = 0   # ACKs seen in the current observation window
        self.window_marks = 0  # of which carried the echoed CE bit

    def remaining(self) -> int:
        return self.flow.n_pkts - len(self.acked)

    def next_to_send(self) -> Optional[int]:
        while self.rtx:
            seq = self.rtx.popleft()
            self.rtx_set.discard(seq)
            if seq not in self.acked:
                return seq
        if self.next_seq < self.flow.n_pkts:
            seq = self.next_seq
            self.next_seq += 1
            return seq
        return None


class _DstFlow:
    """Receiver-side reassembly state for one flow."""

    __slots__ = ("flow", "received")

    def __init__(self, flow: Flow) -> None:
        self.flow = flow
        self.received: Set[int] = set()


class DCTCPAgent(TransportAgent):
    """DCTCP endpoint for one host (source + receiver roles)."""

    def __init__(self, host, ctx) -> None:
        super().__init__(host, ctx)
        self.src_flows: Dict[int, _SrcFlow] = {}
        self.dst_flows: Dict[int, _DstFlow] = {}
        self.finished_rx: Set[int] = set()
        self.timeouts = 0
        self.ce_echoes = 0       # marked ACKs seen (sender side)
        self.ce_delivered = 0    # marked data packets seen (receiver side)

    def register_instruments(self, registry) -> None:
        """Estimator and window state as pull-based gauges."""
        host = f"h{self.host.node_id}"
        registry.gauge(
            "dctcp.flows.src_active", lambda: len(self.src_flows), host=host
        )
        registry.gauge(
            "dctcp.pkts.in_flight",
            lambda: sum(s.in_flight for s in self.src_flows.values()),
            src=host,
        )
        registry.gauge(
            "dctcp.cwnd.sum",
            lambda: sum(s.cwnd for s in self.src_flows.values()),
            src=host,
        )
        registry.gauge(
            "dctcp.alpha.max",
            lambda: max((s.alpha for s in self.src_flows.values()), default=0.0),
            src=host,
        )
        registry.gauge("dctcp.ecn.echoes", lambda: self.ce_echoes, host=host)
        registry.gauge("dctcp.ecn.delivered", lambda: self.ce_delivered, host=host)
        registry.gauge("dctcp.timeouts", lambda: self.timeouts, host=host)

    # ------------------------------------------------------------------
    # Source side
    # ------------------------------------------------------------------
    def start_flow(self, flow: Flow) -> None:
        if flow.fid in self.src_flows:
            raise ValueError(f"duplicate flow id {flow.fid}")
        self.collector.flow_arrived(flow, self.env.now)
        state = _SrcFlow(flow, self.config)
        self.src_flows[flow.fid] = state
        self._pump(state)

    def _pump(self, state: _SrcFlow) -> None:
        """Fill the window: push packets into the NIC queue."""
        while not state.done and state.in_flight < int(state.cwnd):
            seq = state.next_to_send()
            if seq is None:
                break
            self._send_data(state, seq)
        if state.rto_timer is None and state.unacked_sent and not state.done:
            self._arm_rto(state)

    def _send_data(self, state: _SrcFlow, seq: int) -> None:
        flow = state.flow
        now = self.env.now
        pkt = self.pool.data(
            flow, seq, flow.src, flow.dst, flow.wire_bytes_of(seq), DATA_BAND, now
        )
        first_time = seq not in state.ever_sent
        state.ever_sent.add(seq)
        state.unacked_sent.add(seq)
        state.in_flight += 1
        if flow.start_time is None:
            flow.start_time = now
        self.collector.data_sent(pkt, first_time)
        self.host.send(pkt)

    def _arm_rto(self, state: _SrcFlow) -> None:
        EventLoop.cancel(state.rto_timer)
        state.rto_timer = self.env.schedule_timer(
            self.config.rto * state.rto_scale, self._on_rto, state.flow.fid
        )

    def _on_rto(self, fid: int) -> None:
        state = self.src_flows.get(fid)
        if state is None or state.done:
            return
        state.rto_timer = None
        self.timeouts += 1
        # TCP-style collapse; alpha is preserved (the estimator outlives
        # the loss event) and the observation window restarts.
        state.cwnd = float(self.config.min_cwnd)
        state.window_acks = 0
        state.window_marks = 0
        lost = sorted(state.unacked_sent - state.rtx_set)
        for seq in lost:
            state.rtx.append(seq)
            state.rtx_set.add(seq)
        state.in_flight = 0
        state.rto_scale *= self.config.rto_backoff
        self._pump(state)
        if state.rto_timer is None and not state.done:
            self._arm_rto(state)

    def _update_estimator(self, state: _SrcFlow, marked: bool) -> None:
        """One ACK's worth of DCTCP bookkeeping (paper §3.3)."""
        state.window_acks += 1
        if marked:
            state.window_marks += 1
        if state.window_acks < max(int(ceil(state.cwnd)), 1):
            return
        # Observation window complete: fold the marked fraction into
        # alpha, then react once per window.
        frac = state.window_marks / state.window_acks
        g = self.config.gain
        state.alpha = (1.0 - g) * state.alpha + g * frac
        if state.window_marks:
            state.cwnd = max(
                float(self.config.min_cwnd), state.cwnd * (1.0 - state.alpha / 2.0)
            )
        else:
            state.cwnd += 1.0
        state.window_acks = 0
        state.window_marks = 0

    def _on_ack(self, pkt: Packet) -> None:
        state = self.src_flows.get(pkt.flow.fid)
        if state is None or state.done:
            return
        seq = pkt.seq
        if seq in state.acked:
            return
        marked = pkt.ecn != 0
        if marked:
            self.ce_echoes += 1
        self._update_estimator(state, marked)
        state.acked.add(seq)
        state.unacked_sent.discard(seq)
        if state.in_flight > 0:
            state.in_flight -= 1
        state.rto_scale = 1.0
        if len(state.acked) >= state.flow.n_pkts:
            state.done = True
            EventLoop.cancel(state.rto_timer)
            state.rto_timer = None
            del self.src_flows[pkt.flow.fid]
            return
        self._arm_rto(state)  # progress: restart the clock
        self._pump(state)

    # ------------------------------------------------------------------
    # Receiver side
    # ------------------------------------------------------------------
    def _on_data(self, pkt: Packet) -> None:
        flow = pkt.flow
        fid = flow.fid
        if pkt.ecn:
            self.ce_delivered += 1
        if fid in self.finished_rx:
            self.collector.data_duplicate(pkt)
            self._send_ack(pkt)  # keep ACKing so the source closes
            return
        state = self.dst_flows.get(fid)
        if state is None:
            state = _DstFlow(flow)
            self.dst_flows[fid] = state
        if pkt.seq not in state.received:
            state.received.add(pkt.seq)
            self.collector.data_delivered(pkt)
            if len(state.received) >= flow.n_pkts:
                self.collector.flow_completed(flow, self.env.now)
                self.finished_rx.add(fid)
                del self.dst_flows[fid]
        else:
            self.collector.data_duplicate(pkt)
        self._send_ack(pkt)

    def _send_ack(self, pkt: Packet) -> None:
        """Per-packet ACK echoing the data packet's ECN codepoint."""
        flow = pkt.flow
        ack = self.pool.control(
            PacketType.ACK, flow, pkt.seq, self.host.node_id, flow.src, self.env.now
        )
        ack.ecn = pkt.ecn
        self.collector.control_sent(ack)
        self.host.send(ack)

    # ------------------------------------------------------------------
    def on_packet(self, pkt: Packet) -> None:
        if pkt.ptype == PacketType.DATA:
            self._on_data(pkt)
        elif pkt.ptype == PacketType.ACK:
            self._on_ack(pkt)
        else:
            raise ValueError(f"DCTCP host received unexpected packet type: {pkt!r}")


def _dctcp_config_factory(ctx) -> DCTCPConfig:
    return DCTCPConfig.paper_default()


def _dctcp_agent_factory(host, ctx) -> DCTCPAgent:
    return DCTCPAgent(host, ctx)


DCTCP_SPEC = ProtocolSpec(
    name="dctcp",
    agent_factory=_dctcp_agent_factory,
    config_factory=_dctcp_config_factory,
    switch_dataplane="dctcp",
    host_dataplane="dctcp",
)
