"""DCTCP endpoint configuration.

Defaults follow the DCTCP paper (SIGCOMM 2010) scaled to this
simulator's fabric: estimation gain g = 1/16, sender reaction
``cwnd <- cwnd * (1 - alpha/2)``, and a marking threshold K far below
the 36 kB port buffers (the low threshold is the algorithm: mark early,
cut gently).  The window/RTO scaffolding matches the pFabric endpoint
(init_cwnd 12, RTO 45 us) so the comparison against the paper's three
protocols isolates the congestion-control difference, not the
retransmission machinery.

Note the marking threshold itself lives in the *dataplane program*
(:class:`repro.dataplane.DctcpEcnProgram`), not here: marking is switch
behaviour, and the endpoint only ever sees the echoed bit.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.units import usec

__all__ = ["DCTCPConfig"]


@dataclass
class DCTCPConfig:
    """Tunables of the DCTCP endpoint behaviour.

    Attributes:
        init_cwnd: Initial congestion window in packets.
        min_cwnd: Floor for multiplicative decrease, and the restart
            window after an RTO (DCTCP inherits TCP's collapse-on-
            timeout).
        gain: The alpha-EWMA gain g in
            ``alpha <- (1 - g) * alpha + g * F`` where F is the marked
            fraction of the last observation window (paper: 1/16).
        init_alpha: Starting congestion estimate; the paper initializes
            conservatively at 1 (first marks cut hard, then alpha
            decays as windows come back clean).
        rto: Retransmission timeout (seconds).
        rto_backoff: Multiplier applied to the RTO after consecutive
            timeouts of the same flow (1.0 disables backoff).
    """

    init_cwnd: int = 12
    min_cwnd: int = 1
    gain: float = 0.0625
    init_alpha: float = 1.0
    rto: float = usec(45)
    rto_backoff: float = 2.0

    def __post_init__(self) -> None:
        if self.init_cwnd < 1:
            raise ValueError("init_cwnd must be >= 1")
        if self.min_cwnd < 1 or self.min_cwnd > self.init_cwnd:
            raise ValueError("min_cwnd must be in [1, init_cwnd]")
        if not 0.0 < self.gain <= 1.0:
            raise ValueError("gain must be in (0, 1]")
        if not 0.0 <= self.init_alpha <= 1.0:
            raise ValueError("init_alpha must be in [0, 1]")
        if self.rto <= 0:
            raise ValueError("rto must be positive")
        if self.rto_backoff < 1.0:
            raise ValueError("rto_backoff must be >= 1.0")

    @classmethod
    def paper_default(cls) -> "DCTCPConfig":
        return cls()
