"""Transport protocols.

* :mod:`repro.protocols.base` — the agent interface every transport
  implements and the per-protocol wiring description.
* :mod:`repro.protocols.registry` — name -> protocol lookup used by the
  experiment runner ("phost", "pfabric", "fastpass").
* :mod:`repro.protocols.phost` — pHost, the paper's primary
  contribution.
* :mod:`repro.protocols.pfabric` / :mod:`repro.protocols.fastpass` — the
  two baselines the paper compares against.
* :mod:`repro.protocols.ideal` — an idealized centrally-scheduled
  upper-bound baseline used by the ablations.
"""

from repro.protocols.base import ProtocolSpec, TransportAgent
from repro.protocols.registry import available_protocols, get_protocol

__all__ = ["TransportAgent", "ProtocolSpec", "get_protocol", "available_protocols"]
