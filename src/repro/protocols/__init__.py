"""Transport protocols.

* :mod:`repro.protocols.base` — the agent interface every transport
  implements and the per-protocol wiring description.
* :mod:`repro.protocols.registry` — name -> protocol lookup used by the
  experiment runner ("phost", "pfabric", "fastpass").
* :mod:`repro.protocols.pfabric` / :mod:`repro.protocols.fastpass` — the
  two baselines the paper compares against.

pHost itself lives in :mod:`repro.core` (it is the paper's primary
contribution) and registers here like the baselines.
"""

from repro.protocols.base import ProtocolSpec, TransportAgent
from repro.protocols.registry import available_protocols, get_protocol

__all__ = ["TransportAgent", "ProtocolSpec", "get_protocol", "available_protocols"]
