"""Protocol registry: name -> :class:`~repro.protocols.base.ProtocolSpec`.

The experiment runner resolves protocols by name ("phost", "pfabric",
"fastpass"); external code can register additional transports with
:func:`register_protocol` (the runner will pick them up transparently).
"""

from __future__ import annotations

from typing import Dict, List

from repro.protocols.base import ProtocolSpec

__all__ = ["get_protocol", "register_protocol", "available_protocols"]

_REGISTRY: Dict[str, ProtocolSpec] = {}


def register_protocol(spec: ProtocolSpec) -> None:
    """Add (or replace) a protocol in the registry."""
    _REGISTRY[spec.name] = spec


def _ensure_builtins() -> None:
    if _REGISTRY:
        return
    # Imported lazily to avoid cycles at package import time.
    from repro.protocols.phost.agent import PHOST_SPEC
    from repro.protocols.dctcp.agent import DCTCP_SPEC
    from repro.protocols.fastpass.agent import FASTPASS_SPEC
    from repro.protocols.ideal import IDEAL_SPEC
    from repro.protocols.pfabric.agent import PFABRIC_SPEC

    for spec in (PHOST_SPEC, PFABRIC_SPEC, FASTPASS_SPEC, IDEAL_SPEC, DCTCP_SPEC):
        register_protocol(spec)


def get_protocol(name: str) -> ProtocolSpec:
    """Look a protocol up by name; raises ValueError for unknown names."""
    _ensure_builtins()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown protocol {name!r}; available: {sorted(_REGISTRY)}"
        ) from None


def available_protocols() -> List[str]:
    _ensure_builtins()
    return sorted(_REGISTRY)
