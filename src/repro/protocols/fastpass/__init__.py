"""Fastpass baseline (S7).

Fastpass (SIGCOMM 2014) keeps the fabric commodity and moves all
scheduling into a centralized *arbiter* that allocates timeslots to
(source, destination) pairs.  Following the pHost paper's evaluation
model: 40-byte control messages, an epoch of 8 MTU timeslots, zero
arbiter processing time, and perfect time synchronization — the
best case for Fastpass.  Control messages travel an out-of-band channel
with fabric-equivalent latency (DESIGN.md §2 records this).
"""

from repro.protocols.fastpass.config import FastpassConfig
from repro.protocols.fastpass.arbiter import FastpassArbiter
from repro.protocols.fastpass.agent import FastpassAgent, FASTPASS_SPEC

__all__ = ["FastpassConfig", "FastpassArbiter", "FastpassAgent", "FASTPASS_SPEC"]
