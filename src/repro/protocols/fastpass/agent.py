"""Fastpass endpoint.

Sources report demands to the arbiter on flow arrival and transmit only
in the timeslots the arbiter assigns (perfect sync: transmissions start
exactly at slot boundaries).  Receivers ACK every data packet (40 B,
highest priority); a source whose flow has un-ACKed packets after the
RTO re-requests that many slots from the arbiter — the loss-recovery
path, which in practice almost never fires because Fastpass's explicit
scheduling keeps queues empty.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Set, Tuple

from repro.net.packet import Flow, Packet, PacketType, control_packet
from repro.protocols.base import ProtocolSpec, TransportAgent
from repro.protocols.fastpass.arbiter import FastpassArbiter
from repro.protocols.fastpass.config import FastpassConfig
from repro.sim.engine import EventLoop

__all__ = ["FastpassAgent", "FASTPASS_SPEC"]

DATA_PRIO = 1  # control rides band 0


class _SrcFlow:
    """Source-side state for one Fastpass flow."""

    __slots__ = (
        "flow",
        "next_seq",
        "acked",
        "unacked_sent",
        "rtx",
        "rtx_set",
        "ever_sent",
        "recheck_timer",
        "done",
        "wasted_slots",
        "last_activity",
        "slots_pending",
    )

    def __init__(self, flow: Flow) -> None:
        self.flow = flow
        self.next_seq = 0
        self.acked: Set[int] = set()
        self.unacked_sent: Set[int] = set()
        self.rtx: Deque[int] = deque()
        self.rtx_set: Set[int] = set()
        self.ever_sent: Set[int] = set()
        self.recheck_timer: Optional[list] = None
        self.done = False
        self.wasted_slots = 0
        self.last_activity = 0.0  # last send or ACK; gates loss recovery
        self.slots_pending = 0  # allocated slots not yet fired

    def next_to_send(self) -> Optional[int]:
        while self.rtx:
            seq = self.rtx.popleft()
            self.rtx_set.discard(seq)
            if seq not in self.acked:
                return seq
        if self.next_seq < self.flow.n_pkts:
            seq = self.next_seq
            self.next_seq += 1
            return seq
        return None


class _DstFlow:
    __slots__ = ("flow", "received")

    def __init__(self, flow: Flow) -> None:
        self.flow = flow
        self.received: Set[int] = set()


class FastpassAgent(TransportAgent):
    """Fastpass endpoint for one host."""

    def __init__(self, host, ctx) -> None:
        super().__init__(host, ctx)
        if self.shared is None:
            raise ValueError("Fastpass agents need the shared arbiter")
        self.arbiter: FastpassArbiter = self.shared
        self.arbiter.register_agent(host.node_id, self)
        self.src_flows: Dict[int, _SrcFlow] = {}
        self.dst_flows: Dict[int, _DstFlow] = {}
        self.finished_rx: Set[int] = set()
        self.requests_retried = 0  # lost-REQUEST recoveries (fault runs)

    def register_instruments(self, registry) -> None:
        """Per-host flow state as pull-based gauges (the arbiter
        registers its own run-wide set via the shared-state path)."""
        host = f"h{self.host.node_id}"
        registry.gauge(
            "fastpass.flows.src_active", lambda: len(self.src_flows), host=host
        )

    # ------------------------------------------------------------------
    # Source side
    # ------------------------------------------------------------------
    def start_flow(self, flow: Flow) -> None:
        if flow.fid in self.src_flows:
            raise ValueError(f"duplicate flow id {flow.fid}")
        self.collector.flow_arrived(flow, self.env.now)
        state = _SrcFlow(flow)
        state.last_activity = self.env.now
        self.src_flows[flow.fid] = state
        self._send_request(flow, flow.n_pkts)
        if self.ctx.faults is not None:
            # Under fault injection the REQUEST itself can be lost (an
            # arbiter blackout), so the recovery watchdog must run from
            # flow start, not from the first transmitted slot.  Gated on
            # active faults because the extra timer events would change
            # fault-free event streams pinned by the golden digests.
            state.recheck_timer = self.env.schedule_timer(
                self.config.rto, self._recheck, flow.fid
            )

    def _send_request(self, flow: Flow, demand_pkts: int) -> None:
        # Counted as a control packet; carried out-of-band to the arbiter
        # with fabric-equivalent latency (see DESIGN.md).
        req = control_packet(
            PacketType.REQUEST, flow, demand_pkts, self.host.node_id, flow.dst, self.env.now
        )
        self.collector.control_sent(req)
        self.env.schedule(self.config.ctrl_latency, self.arbiter.request, flow, demand_pkts)

    def on_schedule(self, allocations: List[Tuple[float, Flow]]) -> None:
        """Arbiter allocation arrived (exactly at the epoch boundary)."""
        for slot_time, flow in allocations:
            state = self.src_flows.get(flow.fid)
            if state is not None:
                state.slots_pending += 1
            self.env.schedule_at(slot_time, self._send_slot, flow.fid)

    def _send_slot(self, fid: int) -> None:
        state = self.src_flows.get(fid)
        if state is None:
            return
        if state.slots_pending > 0:
            state.slots_pending -= 1
        if state.done:
            return
        seq = state.next_to_send()
        if seq is None:
            state.wasted_slots += 1
            return
        flow = state.flow
        now = self.env.now
        pkt = self.pool.data(
            flow, seq, flow.src, flow.dst, flow.wire_bytes_of(seq), DATA_PRIO, now
        )
        first_time = seq not in state.ever_sent
        state.ever_sent.add(seq)
        state.unacked_sent.add(seq)
        state.last_activity = now
        if flow.start_time is None:
            flow.start_time = now
        self.collector.data_sent(pkt, first_time)
        self.host.send(pkt)
        if state.recheck_timer is None:
            state.recheck_timer = self.env.schedule_timer(self.config.rto, self._recheck, fid)

    def _recheck(self, fid: int) -> None:
        """Loss recovery: re-request slots for still-unACKed packets."""
        state = self.src_flows.get(fid)
        if state is None or state.done:
            return
        state.recheck_timer = None
        fully_sent = state.next_seq >= state.flow.n_pkts and not state.rtx
        stale = self.env.now - state.last_activity >= self.config.rto - 1e-12
        if fully_sent and stale and state.unacked_sent:
            lost = sorted(state.unacked_sent - state.rtx_set)
            for seq in lost:
                state.rtx.append(seq)
                state.rtx_set.add(seq)
            state.unacked_sent.clear()
            if lost:
                self._send_request(state.flow, len(lost))
        elif (
            stale
            and not state.ever_sent
            and state.slots_pending == 0
            and fid not in self.arbiter.demands
        ):
            # Nothing ever went out, no allocation is pending, and the
            # arbiter has no record of us: the REQUEST was lost (e.g. to
            # an arbiter blackout).  Re-report the full demand.
            self.requests_retried += 1
            self._send_request(state.flow, state.flow.n_pkts - len(state.acked))
        state.recheck_timer = self.env.schedule_timer(self.config.rto, self._recheck, fid)

    def _on_ack(self, pkt: Packet) -> None:
        state = self.src_flows.get(pkt.flow.fid)
        if state is None or state.done:
            return
        seq = pkt.seq
        if seq in state.acked:
            return
        state.acked.add(seq)
        state.unacked_sent.discard(seq)
        state.last_activity = self.env.now
        if len(state.acked) >= state.flow.n_pkts:
            state.done = True
            EventLoop.cancel(state.recheck_timer)
            state.recheck_timer = None
            del self.src_flows[pkt.flow.fid]

    # ------------------------------------------------------------------
    # Receiver side
    # ------------------------------------------------------------------
    def _on_data(self, pkt: Packet) -> None:
        flow = pkt.flow
        fid = flow.fid
        if fid in self.finished_rx:
            self.collector.data_duplicate(pkt)
            self._send_ack(flow, pkt.seq)
            return
        state = self.dst_flows.get(fid)
        if state is None:
            state = _DstFlow(flow)
            self.dst_flows[fid] = state
        if pkt.seq not in state.received:
            state.received.add(pkt.seq)
            self.collector.data_delivered(pkt)
            if len(state.received) >= flow.n_pkts:
                self.collector.flow_completed(flow, self.env.now)
                self.finished_rx.add(fid)
                del self.dst_flows[fid]
        else:
            self.collector.data_duplicate(pkt)
        self._send_ack(flow, pkt.seq)

    def _send_ack(self, flow: Flow, seq: int) -> None:
        ack = self.pool.control(PacketType.ACK, flow, seq, self.host.node_id, flow.src, self.env.now)
        self.collector.control_sent(ack)
        self.host.send(ack)

    # ------------------------------------------------------------------
    def on_packet(self, pkt: Packet) -> None:
        if pkt.ptype == PacketType.DATA:
            self._on_data(pkt)
        elif pkt.ptype == PacketType.ACK:
            self._on_ack(pkt)
        else:
            raise ValueError(f"Fastpass host received unexpected packet type: {pkt!r}")


def _fastpass_config_factory(ctx) -> FastpassConfig:
    return FastpassConfig.paper_default().resolve(ctx.fabric.config)


def _fastpass_shared_factory(ctx) -> FastpassArbiter:
    return FastpassArbiter(ctx.env, ctx.fabric, ctx.collector, ctx.config)


def _fastpass_agent_factory(host, ctx) -> FastpassAgent:
    return FastpassAgent(host, ctx)


FASTPASS_SPEC = ProtocolSpec(
    name="fastpass",
    agent_factory=_fastpass_agent_factory,
    config_factory=_fastpass_config_factory,
    switch_dataplane="commodity",
    host_dataplane="commodity",
    shared_factory=_fastpass_shared_factory,
)
