"""The Fastpass centralized arbiter.

Time is slotted (one MTU transmission time per slot) and grouped into
epochs of ``epoch_pkts`` slots.  Just before each epoch begins —
exactly ``ctrl_latency`` early, so allocations reach the hosts at the
epoch boundary under perfect sync — the arbiter allocates each slot with
a greedy bipartite matching over the pending demands: flows are
considered in SRPT order (fewest remaining MTUs first) and a flow wins a
slot if both its source and its destination are still free in that slot.
A source therefore transmits at most one packet per slot and a
destination receives at most one — Fastpass's "zero queue" property.

Demands arrive via :meth:`request` (scheduled by agents ``ctrl_latency``
after they send the request).  The arbiter idles when no demand is
outstanding and wakes on the next request, so simulations drain
naturally.

Per the paper, arbiter processing time is zero and control messages are
40 bytes (counted in the collector's control totals, but carried
out-of-band — see DESIGN.md).
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

from repro.metrics.collector import MetricsCollector
from repro.net.packet import Flow
from repro.net.topology import Fabric
from repro.protocols.fastpass.config import FastpassConfig
from repro.sim.engine import EventLoop
from repro.sim.units import CONTROL_BYTES

__all__ = ["FastpassArbiter"]


class _ArbiterFlow:
    """Arbiter-side demand record for one flow."""

    __slots__ = ("flow", "remaining", "first_seen")

    def __init__(self, flow: Flow, first_seen: float) -> None:
        self.flow = flow
        self.remaining = 0
        self.first_seen = first_seen


class FastpassArbiter:
    """Global scheduler shared by all Fastpass agents."""

    def __init__(
        self,
        env: EventLoop,
        fabric: Fabric,
        collector: MetricsCollector,
        config: FastpassConfig,
    ) -> None:
        if config.epoch_time <= 0:
            raise ValueError("config must be resolved against a topology first")
        self.env = env
        self.fabric = fabric
        self.collector = collector
        self.config = config
        self.agents: Dict[int, object] = {}  # host id -> FastpassAgent
        self.demands: Dict[int, _ArbiterFlow] = {}
        self.requests_received = 0
        self.schedules_sent = 0
        self.slots_allocated = 0
        self._compute_timer: Optional[list] = None
        self._last_epoch_index = -1  # highest epoch already allocated
        # Fault-injection state (repro.faults arbiter blackouts): while
        # offline the arbiter loses incoming REQUESTs and lets epochs
        # elapse unallocated; sources recover via their RTO re-request.
        self.offline = False
        self.requests_lost = 0
        self.epochs_blacked_out = 0

    def register_agent(self, host_id: int, agent) -> None:
        self.agents[host_id] = agent

    # ------------------------------------------------------------------
    # Demand intake (arrives ctrl_latency after the host sent it)
    # ------------------------------------------------------------------
    def request(self, flow: Flow, demand_pkts: int) -> None:
        if demand_pkts <= 0:
            return
        if self.offline:
            self.requests_lost += 1
            return
        self.requests_received += 1
        self.collector.control_bytes_sent += CONTROL_BYTES
        record = self.demands.get(flow.fid)
        if record is None:
            record = _ArbiterFlow(flow, self.env.now)
            self.demands[flow.fid] = record
        record.remaining += demand_pkts
        self._schedule_next_compute()

    # ------------------------------------------------------------------
    # Epoch machinery
    # ------------------------------------------------------------------
    def _epoch_index_after(self, t: float) -> int:
        """Index of the first epoch whose start is at or after time t."""
        return max(math.ceil(t / self.config.epoch_time - 1e-9), 0)

    def _schedule_next_compute(self) -> None:
        if self._compute_timer is not None and EventLoop.is_pending(self._compute_timer):
            return
        if not any(r.remaining > 0 for r in self.demands.values()):
            return
        now = self.env.now
        # Allocations for epoch k are computed at k*epoch - ctrl_latency.
        k = self._epoch_index_after(now + self.config.ctrl_latency)
        if k <= self._last_epoch_index:
            k = self._last_epoch_index + 1
        compute_at = k * self.config.epoch_time - self.config.ctrl_latency
        if compute_at < now:  # numerical guard
            compute_at = now
        self._compute_timer = self.env.schedule_at(compute_at, self._compute_epoch, k)

    def set_offline(self, offline: bool) -> None:
        """Fault-layer entry point: start/end an arbiter blackout."""
        self.offline = offline
        if not offline:
            # Back online: pick up whatever demand survived the outage.
            self._schedule_next_compute()

    def _compute_epoch(self, epoch_index: int) -> None:
        self._compute_timer = None
        if self.offline:
            # The epoch elapses unserved; demands stay queued for the
            # first compute after the blackout lifts.
            self._last_epoch_index = epoch_index
            self.epochs_blacked_out += 1
            return
        if epoch_index <= self._last_epoch_index:
            # A same-timestamp race between request() and the pending
            # compute timer can schedule one epoch twice; allocate once.
            self._schedule_next_compute()
            return
        self._last_epoch_index = epoch_index
        epoch_start = epoch_index * self.config.epoch_time
        cfg = self.config
        active = [r for r in self.demands.values() if r.remaining > 0]
        per_src: Dict[int, List[Tuple[float, Flow]]] = {}
        if active:
            for slot in range(cfg.epoch_pkts):
                slot_time = epoch_start + slot * cfg.slot_time
                if cfg.allocation_policy == "srpt":
                    active.sort(key=lambda r: (r.remaining, r.first_seen, r.flow.fid))
                else:  # fifo
                    active.sort(key=lambda r: (r.first_seen, r.flow.fid))
                src_used = set()
                dst_used = set()
                for record in active:
                    if record.remaining <= 0:
                        continue
                    flow = record.flow
                    if flow.src in src_used or flow.dst in dst_used:
                        continue
                    src_used.add(flow.src)
                    dst_used.add(flow.dst)
                    record.remaining -= 1
                    self.slots_allocated += 1
                    per_src.setdefault(flow.src, []).append((slot_time, flow))
            # prune satisfied demands
            for record in list(self.demands.values()):
                if record.remaining <= 0:
                    del self.demands[record.flow.fid]
        # Deliver schedules: they land exactly at the epoch boundary.
        for src, allocs in per_src.items():
            agent = self.agents.get(src)
            if agent is None:  # pragma: no cover - config error
                raise RuntimeError(f"no Fastpass agent registered for host {src}")
            self.schedules_sent += 1
            self.collector.control_bytes_sent += CONTROL_BYTES
            self.env.schedule_at(epoch_start, agent.on_schedule, allocs)
        self._schedule_next_compute()

    # ------------------------------------------------------------------
    def pending_demand_pkts(self) -> int:
        return sum(r.remaining for r in self.demands.values())

    def register_instruments(self, registry) -> None:
        """Run-wide arbiter state as pull-based gauges (the shared-state
        half of :func:`repro.obs.register_run_instruments`)."""
        registry.gauge("fastpass.arbiter.demands", lambda: len(self.demands))
        registry.gauge(
            "fastpass.arbiter.pending_pkts", lambda: self.pending_demand_pkts()
        )
        registry.gauge(
            "fastpass.arbiter.requests", lambda: self.requests_received
        )
        registry.gauge(
            "fastpass.arbiter.slots_allocated", lambda: self.slots_allocated
        )
        registry.gauge(
            "fastpass.arbiter.requests_lost", lambda: self.requests_lost
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"FastpassArbiter(demands={len(self.demands)}, "
            f"slots={self.slots_allocated}, reqs={self.requests_received})"
        )
