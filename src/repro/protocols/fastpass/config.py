"""Fastpass configuration (paper §4.1: "40B control packets and an epoch
size of 8 packets", zero scheduler processing time, perfect sync)."""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from repro.net.topology import TopologyConfig
from repro.sim.units import CONTROL_BYTES, usec

__all__ = ["FastpassConfig"]


@dataclass
class FastpassConfig:
    """Tunables of the Fastpass model.

    Attributes:
        epoch_pkts: Timeslots per scheduling epoch (paper: 8).
        control_latency: One-way latency of arbiter control messages.
            ``None`` derives it from the topology: a worst-case 4-hop
            traversal of one 40 B packet (serialization + propagation).
        rto: Source-side timeout for re-requesting lost packets.
        allocation_policy: "srpt" (fewest remaining MTUs first — matches
            the FCT-minimizing comparison of the paper) or "fifo".
    """

    epoch_pkts: int = 8
    control_latency: Optional[float] = None
    rto: float = usec(45)
    allocation_policy: str = "srpt"

    # Resolved fields (absolute seconds), set by resolve().
    slot_time: float = 0.0
    epoch_time: float = 0.0
    ctrl_latency: float = 0.0

    def __post_init__(self) -> None:
        if self.epoch_pkts < 1:
            raise ValueError("epoch_pkts must be >= 1")
        if self.rto <= 0:
            raise ValueError("rto must be positive")
        if self.allocation_policy not in ("srpt", "fifo"):
            raise ValueError("allocation_policy must be 'srpt' or 'fifo'")

    def resolve(self, topo: TopologyConfig) -> "FastpassConfig":
        """Bind epoch/slot/control times to a concrete topology."""
        slot = topo.mtu_tx_time
        if self.control_latency is not None:
            ctrl = self.control_latency
        else:
            bits = CONTROL_BYTES * 8.0
            rates = [topo.access_bps, topo.core_bps, topo.core_bps, topo.access_bps]
            ctrl = sum(bits / r for r in rates) + topo.propagation_delay * len(rates)
        return replace(
            self,
            slot_time=slot,
            epoch_time=self.epoch_pkts * slot,
            ctrl_latency=ctrl,
        )

    @classmethod
    def paper_default(cls) -> "FastpassConfig":
        return cls()
