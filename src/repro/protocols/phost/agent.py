"""The per-host pHost agent: source + destination halves glued to a NIC.

Control packets (RTS / TOKEN / ACK) are *pushed* into the NIC's
highest-priority band; data packets are *pulled* by the NIC one at a
time, so the host re-decides what to send at every packet boundary —
the essence of pHost's end-host scheduling.
"""

from __future__ import annotations

from repro.protocols.phost.config import PHostConfig
from repro.protocols.phost.destination import PHostDestination
from repro.protocols.phost.policies import make_policy
from repro.protocols.phost.source import PHostSource
from repro.net.packet import Flow, Packet, PacketType
from repro.protocols.base import ProtocolSpec, TransportAgent

__all__ = ["PHostAgent", "PHOST_SPEC"]

#: Priority bands: 0 = control, 1 = short-flow data, 2 = long-flow data.
CONTROL_PRIO = 0
SHORT_PRIO = 1
LONG_PRIO = 2


class PHostAgent(TransportAgent):
    """pHost endpoint for one host."""

    def __init__(self, host, ctx) -> None:
        super().__init__(host, ctx)
        config: PHostConfig = self.config
        self.source = PHostSource(self, config, make_policy(config.spend_policy))
        self.destination = PHostDestination(self, config, make_policy(config.grant_policy))

    # ------------------------------------------------------------------
    # TransportAgent interface
    # ------------------------------------------------------------------
    def start_flow(self, flow: Flow) -> None:
        self.collector.flow_arrived(flow, self.env.now)
        self.source.start_flow(flow)

    def on_packet(self, pkt: Packet) -> None:
        ptype = pkt.ptype
        if ptype == PacketType.DATA:
            self.destination.on_data(pkt)
        elif ptype == PacketType.TOKEN:
            self.source.on_token(pkt)
        elif ptype == PacketType.RTS:
            self.destination.on_rts(pkt)
        elif ptype == PacketType.ACK:
            self.source.on_ack(pkt)
        else:
            raise ValueError(f"pHost host received unexpected packet type: {pkt!r}")

    def nic_pull(self):
        """NIC idle hook: per-packet send decision (Algorithm 1)."""
        return self.source.next_data_packet()

    # ------------------------------------------------------------------
    # Helpers shared by both halves
    # ------------------------------------------------------------------
    def send_control(self, pkt: Packet) -> None:
        pkt.priority = CONTROL_PRIO
        self.collector.control_sent(pkt)
        self.host.send(pkt)

    def kick_nic(self) -> None:
        self.host.port.kick()

    def register_instruments(self, registry) -> None:
        """pHost token/flow state as pull-based gauges (paper §4.3)."""
        host = f"h{self.host.node_id}"
        source, destination = self.source, self.destination
        registry.gauge(
            "phost.flows.src_active", lambda: len(source.flows), host=host
        )
        registry.gauge(
            "phost.flows.dst_pending",
            lambda: destination.pending_flow_count,
            host=host,
        )
        registry.gauge(
            "phost.tokens.outstanding",
            lambda: sum(len(s.tokens) for s in source.flows.values()),
            src=host,
        )
        registry.gauge(
            "phost.tokens.granted", lambda: destination.tokens_granted, dst=host
        )
        registry.gauge(
            "phost.tokens.expired", lambda: source.tokens_expired, src=host
        )

    def data_priority(self, flow: Flow) -> int:
        """Priority band for a flow's data packets (paper §2.2/§3.3:
        one of pHost's degrees of freedom).

        ``uniform_data_priority`` (the Fig. 11 configuration) overrides
        the policy; otherwise "size" gives short flows the better band,
        "deadline" gives it to urgent flows, "uniform" flattens bands.
        """
        if self.config.uniform_data_priority:
            return SHORT_PRIO
        policy = self.config.priority_policy
        if policy == "uniform":
            return SHORT_PRIO
        if policy == "deadline":
            deadline = flow.deadline
            if deadline is None:
                return LONG_PRIO
            urgent = deadline - self.env.now <= self.config.retx_timeout * 4
            return SHORT_PRIO if urgent else LONG_PRIO
        if flow.n_pkts <= self.config.short_threshold_pkts:
            return SHORT_PRIO
        return LONG_PRIO


def _phost_config_factory(ctx) -> PHostConfig:
    return PHostConfig.paper_default().resolve(ctx.fabric.config)


def _phost_agent_factory(host, ctx) -> PHostAgent:
    return PHostAgent(host, ctx)


PHOST_SPEC = ProtocolSpec(
    name="phost",
    agent_factory=_phost_agent_factory,
    config_factory=_phost_config_factory,
    switch_dataplane="commodity",
    host_dataplane="commodity",
)
