"""pHost — the paper's primary contribution (S5).

A fully decentralized, receiver-driven datacenter transport over a
commodity fabric:

* sources announce flows with a 40-byte RTS;
* destinations grant one *token* per MTU transmission time to the flow
  their scheduling policy picks; a token authorizes one specific data
  packet and expires 1.5 MTU-times after receipt;
* sources hold a small budget of *free tokens* per flow so short flows
  start at t=0;
* destinations *downgrade* sources that sit on tokens (a BDP's worth of
  unresponded tokens) and later re-issue tokens for missing packets,
  which doubles as the loss-recovery path;
* all control packets ride the highest priority band; data uses the
  remaining commodity priority levels.

The four degrees of freedom called out in §2.2 of the paper are
first-class here: grant policy, spend policy, priority policy and the
free-token budget — see :mod:`repro.protocols.phost.policies` and
:class:`repro.protocols.phost.config.PHostConfig`.
"""

from repro.protocols.phost.config import PHostConfig
from repro.protocols.phost.agent import PHOST_SPEC, PHostAgent
from repro.protocols.phost.policies import (
    EDFPolicy,
    FIFOPolicy,
    SRPTPolicy,
    TenantFairPolicy,
    make_policy,
    register_policy,
)

__all__ = [
    "PHostConfig",
    "PHostAgent",
    "PHOST_SPEC",
    "SRPTPolicy",
    "EDFPolicy",
    "FIFOPolicy",
    "TenantFairPolicy",
    "make_policy",
    "register_policy",
]
