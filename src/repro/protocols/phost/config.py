"""pHost configuration.

Defaults reproduce the paper's §4.1 settings: "we set the token expiry
time to be 1.5x, source downgrade time to be 8x and timeout to be 24x
MTU-sized packet transmission time (note that BDP for our topology is 8
packets). Moreover, we assign 8 free tokens to each flow."

Times expressed in *MTU transmission times* here are resolved against
the concrete topology by :meth:`PHostConfig.resolve`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from repro.net.topology import TopologyConfig

__all__ = ["PHostConfig"]


@dataclass
class PHostConfig:
    """Tunable knobs of the pHost protocol.

    Attributes:
        free_tokens: Per-flow budget of tokens usable without a grant
            (paper default 8 — akin to TCP's initial window).
        token_expiry_mtus: Token lifetime after receipt, in MTU
            transmission times (paper default 1.5).
        downgrade_threshold: Unresponded-token count after which the
            destination downgrades a flow (paper: "a BDP worth", 8).
        downgrade_mtus: How long a downgraded flow stays ineligible for
            tokens, in MTU times (paper default 8).
        retx_timeout_mtus: Destination-side timeout after which tokens
            for missing packets are re-issued, in MTU times (paper
            default 24, i.e. ~3x RTT).
        downgrade_stale_mtus: A flow is only downgraded when, on top of
            exceeding the unresponded-token threshold, no data from it
            has arrived for this long — the paper's "exceeds ... in
            succession" qualifier; a bare count would misfire on
            packets merely queued at the last hop.
        free_reissue_mtus: Staleness window before the destination
            reclaims *free-budget* packets it never saw.  Much longer
            than retx_timeout because free tokens never expire at the
            source — under SRPT backlog a source may legitimately sit
            on them.
        grant_policy / spend_policy: Scheduling policy names (see
            :func:`repro.protocols.phost.policies.make_policy`): "srpt", "edf",
            "fifo", "tenant_fair".
        priority_policy: How data packets map onto the commodity
            priority bands (degree of freedom 3, paper §2.2): "size"
            (short flows band 1, long band 2 — the paper's FCT
            configuration), "uniform" (everything band 1), or
            "deadline" (urgent flows band 1; used with EDF
            scheduling).
        short_flow_pkts: Flows at most this many packets ride the
            second-highest priority band; larger flows the third.
            ``None`` means "fits within the free-token budget".
        uniform_data_priority: Send all data at one priority band
            (used with the tenant-fair configuration of Fig. 11).
        rts_retry_mtus: Source-side RTS retransmit interval (robustness
            against lost RTS packets; large, rarely fires).
        token_rate_factor: Tokens issued per MTU time (1.0 = paper).
    """

    free_tokens: int = 8
    token_expiry_mtus: float = 1.5
    downgrade_threshold: int = 8
    downgrade_mtus: float = 8.0
    retx_timeout_mtus: float = 24.0
    downgrade_stale_mtus: float = 6.0
    free_reissue_mtus: float = 72.0
    grant_policy: str = "srpt"
    spend_policy: str = "srpt"
    priority_policy: str = "size"
    short_flow_pkts: Optional[int] = None
    uniform_data_priority: bool = False
    rts_retry_mtus: float = 72.0
    token_rate_factor: float = 1.0

    # Resolved absolute times (seconds); populated by resolve().
    mtu_time: float = field(default=0.0, repr=False)
    token_interval: float = field(default=0.0, repr=False)
    token_expiry: float = field(default=0.0, repr=False)
    downgrade_time: float = field(default=0.0, repr=False)
    downgrade_stale: float = field(default=0.0, repr=False)
    retx_timeout: float = field(default=0.0, repr=False)
    free_reissue: float = field(default=0.0, repr=False)
    rts_retry: float = field(default=0.0, repr=False)

    def __post_init__(self) -> None:
        if self.priority_policy not in ("size", "uniform", "deadline"):
            raise ValueError(
                "priority_policy must be 'size', 'uniform' or 'deadline'"
            )
        if self.free_tokens < 0:
            raise ValueError("free_tokens must be >= 0")
        if self.token_expiry_mtus <= 0:
            raise ValueError("token_expiry_mtus must be positive")
        if self.downgrade_threshold < 1:
            raise ValueError("downgrade_threshold must be >= 1")
        if self.retx_timeout_mtus <= 0 or self.downgrade_mtus < 0:
            raise ValueError("timeout parameters must be positive")
        if self.token_rate_factor <= 0:
            raise ValueError("token_rate_factor must be positive")

    def resolve(self, topo: TopologyConfig) -> "PHostConfig":
        """Return a copy with absolute times computed for ``topo``."""
        mtu = topo.mtu_tx_time
        return replace(
            self,
            mtu_time=mtu,
            token_interval=mtu / self.token_rate_factor,
            token_expiry=self.token_expiry_mtus * mtu,
            downgrade_time=self.downgrade_mtus * mtu,
            downgrade_stale=self.downgrade_stale_mtus * mtu,
            retx_timeout=self.retx_timeout_mtus * mtu,
            free_reissue=self.free_reissue_mtus * mtu,
            rts_retry=self.rts_retry_mtus * mtu,
        )

    @property
    def short_threshold_pkts(self) -> int:
        """Packet-count boundary between priority bands for data."""
        if self.short_flow_pkts is not None:
            return self.short_flow_pkts
        return max(self.free_tokens, 1)

    @classmethod
    def paper_default(cls) -> "PHostConfig":
        return cls()

    @classmethod
    def tenant_fair(cls) -> "PHostConfig":
        """The Figure 11 configuration: fairness between tenants, SRPT
        within a tenant, one data priority band, no free tokens."""
        return cls(
            grant_policy="tenant_fair",
            spend_policy="tenant_fair",
            uniform_data_priority=True,
            free_tokens=0,
        )

    @classmethod
    def deadline(cls) -> "PHostConfig":
        """EDF token scheduling for deadline-constrained traffic."""
        return cls(grant_policy="edf", spend_policy="edf")
