"""pHost destination (paper Algorithm 2).

The destination keeps a *PendingRTS* list and, once per MTU
transmission time, grants a token to the flow its grant policy picks.
Three mechanisms from §3.2/§3.4 are implemented here:

* **source downgrading** — a flow with a BDP's worth of unresponded
  tokens is marked ineligible for ``downgrade_time``; when the downgrade
  lapses the destination re-queues tokens for the packets still missing;
* **token re-issue on timeout** — a flow that has stopped making
  progress for ``retx_timeout`` gets tokens re-issued for missing
  packets (this is also the loss-recovery path, since tokens name
  specific packet ids);
* **implicit RTS** — state is created from the first data packet too,
  so a lost RTS costs latency, not correctness.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Optional, Set

from repro.protocols.phost.config import PHostConfig
from repro.protocols.phost.policies import SchedulingPolicy, TenantCounters
from repro.net.packet import Flow, Packet, PacketType
from repro.sim.engine import EventLoop

__all__ = ["PHostDestination", "DestFlowState"]


class DestFlowState:
    """Destination-side per-flow protocol state."""

    __slots__ = (
        "flow",
        "received",
        "next_new",
        "regrant",
        "regrant_set",
        "granted",
        "grant_time",
        "free_seqs",
        "outstanding",
        "downgrade_until",
        "downgrades",
        "complete",
        "last_progress",
        "reissue_armed",
    )

    def __init__(self, flow: Flow, free_tokens: int, now: float) -> None:
        self.flow = flow
        self.received: Set[int] = set()
        # Free tokens are implicit grants for the first packets.
        self.next_new = min(free_tokens, flow.n_pkts)
        self.regrant: Deque[int] = deque()
        self.regrant_set: Set[int] = set()
        self.granted: Set[int] = set(range(self.next_new))
        #: When each explicit token went out (regrant-expiry filtering).
        self.grant_time: Dict[int, float] = {}
        #: Seqs covered by the free budget (no expiry at the source).
        self.free_seqs: Set[int] = set(range(self.next_new))
        self.outstanding = 0
        self.downgrade_until = 0.0
        self.downgrades = 0
        self.complete = False
        self.last_progress = now
        self.reissue_armed = False

    # ------------------------------------------------------------------
    def eligible(self, now: float) -> bool:
        """May this flow be granted a token right now?"""
        if self.complete or now < self.downgrade_until:
            return False
        return bool(self.regrant) or self.next_new < self.flow.n_pkts

    def remaining_hint(self) -> int:
        """Packets still missing (the SRPT grant key)."""
        return self.flow.n_pkts - len(self.received)

    def missing(self) -> Set[int]:
        """Granted (incl. free) packets not received and not re-queued."""
        return self.granted - self.received - self.regrant_set

    def expired_missing(self, now: float, expiry_margin: float) -> Set[int]:
        """Missing packets whose token has demonstrably lapsed.

        Explicit grants count once ``grant_time + expiry_margin`` has
        passed (the token expired at the source and a data packet would
        long since have arrived).  Free-budget seqs have no expiry — the
        source may legitimately sit on them under SRPT backlog — so they
        are excluded here and only reclaimed by the (much longer)
        staleness-based reissue path.
        """
        out: Set[int] = set()
        for seq in self.granted:
            if seq in self.received or seq in self.regrant_set:
                continue
            granted_at = self.grant_time.get(seq)
            if granted_at is None:
                continue  # free-budget seq
            if now - granted_at >= expiry_margin:
                out.add(seq)
        return out

    def queue_regrants(self, seqs) -> int:
        added = 0
        for seq in sorted(seqs):
            if seq not in self.regrant_set and seq not in self.received:
                self.regrant.append(seq)
                self.regrant_set.add(seq)
                added += 1
        return added

    def next_grant_seq(self) -> Optional[int]:
        """Pop the next packet id to grant a token for."""
        while self.regrant:
            seq = self.regrant.popleft()
            self.regrant_set.discard(seq)
            if seq not in self.received:
                return seq
        if self.next_new < self.flow.n_pkts:
            seq = self.next_new
            self.next_new += 1
            return seq
        return None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"DestFlowState(fid={self.flow.fid}, recv={len(self.received)}/"
            f"{self.flow.n_pkts}, outstanding={self.outstanding})"
        )


class PHostDestination:
    """Destination half of a host's pHost agent."""

    def __init__(self, agent, config: PHostConfig, grant_policy: SchedulingPolicy) -> None:
        self.agent = agent
        self.env: EventLoop = agent.env
        self.pool = agent.pool
        self.config = config
        self.policy = grant_policy
        self.states: Dict[int, DestFlowState] = {}
        self.finished: Set[int] = set()
        self.tenant_received = TenantCounters()
        self.tokens_granted = 0
        self.duplicate_data = 0
        self._timer: Optional[list] = None
        self._next_grant_time = 0.0

    # ------------------------------------------------------------------
    # RTS handling
    # ------------------------------------------------------------------
    def on_rts(self, pkt: Packet) -> None:
        flow = pkt.flow
        if flow.fid in self.finished:
            self._send_ack(flow)  # ACK was lost; repeat it
            return
        state = self.states.get(flow.fid)
        if state is None:
            state = self._create_state(flow)
        else:
            # Duplicate RTS: the source believes it is stuck.  Re-queue
            # whatever is missing (cheap no-op when nothing is).
            if self._stale(state):
                state.queue_regrants(state.missing())
        self._maybe_start_timer()

    def _create_state(self, flow: Flow) -> DestFlowState:
        state = DestFlowState(flow, self.config.free_tokens, self.env.now)
        self.states[flow.fid] = state
        self._arm_reissue(state)
        return state

    # ------------------------------------------------------------------
    # Data handling
    # ------------------------------------------------------------------
    def on_data(self, pkt: Packet) -> None:
        flow = pkt.flow
        if flow.fid in self.finished:
            self.agent.collector.data_duplicate(pkt)
            return
        state = self.states.get(flow.fid)
        if state is None:
            state = self._create_state(flow)  # implicit RTS
        seq = pkt.seq
        if seq in state.received:
            self.duplicate_data += 1
            self.agent.collector.data_duplicate(pkt)
            return
        state.received.add(seq)
        state.regrant_set.discard(seq)
        state.grant_time.pop(seq, None)
        if state.outstanding > 0:
            state.outstanding -= 1
        state.last_progress = self.env.now
        self.tenant_received.add(flow.tenant)
        self.agent.collector.data_delivered(pkt)
        if len(state.received) >= flow.n_pkts:
            self._complete(state)
        else:
            self._maybe_start_timer()

    def _complete(self, state: DestFlowState) -> None:
        state.complete = True
        self.states.pop(state.flow.fid, None)
        self.finished.add(state.flow.fid)
        self.agent.collector.flow_completed(state.flow, self.env.now)
        self._send_ack(state.flow)

    def _send_ack(self, flow: Flow) -> None:
        ack = self.pool.control(
            PacketType.ACK, flow, flow.n_pkts, self.agent.host.node_id, flow.src, self.env.now
        )
        self.agent.send_control(ack)

    # ------------------------------------------------------------------
    # Token pacing (Algorithm 2, "idle": pick a flow, send a token)
    # ------------------------------------------------------------------
    def _maybe_start_timer(self) -> None:
        timer = self._timer
        if timer is not None and timer[2] is not None:  # inline is_pending
            return
        now = self.env.now
        # Inline of DestFlowState.eligible() over the (usually tiny)
        # state dict — this runs on every data arrival, so the method
        # call and generator frame are worth shaving.
        for s in self.states.values():
            if not s.complete and now >= s.downgrade_until and (
                s.regrant or s.next_new < s.flow.n_pkts
            ):
                break
        else:
            return
        when = max(now, self._next_grant_time)
        self._timer = self.env.schedule_at(when, self._grant_tick)

    def _grant_tick(self) -> None:
        self._timer = None
        now = self.env.now
        candidates = [s for s in self.states.values() if s.eligible(now)]
        while candidates:
            if len(candidates) == 1:  # overwhelmingly the common case
                state = candidates[0]
            else:
                state = self.policy.select(candidates, self.tenant_received)
            if (
                state.outstanding >= self.config.downgrade_threshold
                and now - state.last_progress >= self.config.downgrade_stale
            ):
                self._downgrade(state)
                candidates.remove(state)
                continue
            seq = state.next_grant_seq()
            if seq is None:
                candidates.remove(state)
                continue
            self._grant(state, seq)
            break
        self._maybe_start_timer()

    def _grant(self, state: DestFlowState, seq: int) -> None:
        now = self.env.now
        flow = state.flow
        token = self.pool.control(
            PacketType.TOKEN, flow, seq, self.agent.host.node_id, flow.src, now
        )
        token.data_prio = self.agent.data_priority(flow)
        state.granted.add(seq)
        state.grant_time[seq] = now
        state.outstanding += 1
        self.tokens_granted += 1
        self._next_grant_time = now + self.config.token_interval
        self.agent.send_control(token)
        self._arm_reissue(state)

    # ------------------------------------------------------------------
    # Downgrading (§3.2) and token re-issue / loss recovery (§3.4)
    # ------------------------------------------------------------------
    def _downgrade(self, state: DestFlowState) -> None:
        now = self.env.now
        state.downgrade_until = now + self.config.downgrade_time
        state.outstanding = 0
        state.downgrades += 1
        self.env.schedule_timer(self.config.downgrade_time, self._downgrade_expired, state.flow.fid)

    def _downgrade_expired(self, fid: int) -> None:
        state = self.states.get(fid)
        if state is None or state.complete:
            return
        # "After the timeout period, the destination resends tokens to
        # the source for the packets that were not received."  Only
        # grants that demonstrably lapsed are re-queued; free-budget
        # packets are reclaimed by the slower reissue path.
        state.queue_regrants(state.expired_missing(self.env.now, self.config.retx_timeout))
        state.last_progress = self.env.now
        self._maybe_start_timer()

    def _arm_reissue(self, state: DestFlowState) -> None:
        if state.reissue_armed or state.complete:
            return
        state.reissue_armed = True
        self.env.schedule_timer(self.config.retx_timeout, self._reissue_check, state.flow.fid)

    def _reissue_check(self, fid: int) -> None:
        state = self.states.get(fid)
        if state is None or state.complete:
            return
        now = self.env.now
        idle_for = now - state.last_progress
        if idle_for + 1e-12 >= self.config.retx_timeout:
            # Tier 1: re-queue explicit grants whose tokens lapsed.
            missing = state.expired_missing(now, self.config.retx_timeout)
            if idle_for + 1e-12 >= self.config.free_reissue:
                # Tier 2: the flow has been silent so long that even the
                # expiry-less free-budget packets are presumed lost.
                missing |= state.missing()
            if missing:
                state.queue_regrants(missing)
                self._maybe_start_timer()
            wait = self.config.retx_timeout
        else:
            wait = self.config.retx_timeout - idle_for
        self.env.schedule_timer(wait, self._reissue_check, fid)

    def _stale(self, state: DestFlowState) -> bool:
        return (self.env.now - state.last_progress) >= self.config.retx_timeout

    # ------------------------------------------------------------------
    @property
    def pending_flow_count(self) -> int:
        return len(self.states)
