"""pHost scheduling policies (paper §3.3 "Local Scheduling Problem").

The same policy objects drive both ends:

* at the **destination**, picking which pending flow receives the next
  token (grant side);
* at the **source**, picking which flow's token to spend next (spend
  side).

A policy ranks candidate flow states by a key; the smallest key wins.
Candidates expose ``flow`` (the :class:`repro.net.packet.Flow`) and
``remaining_hint()`` (packets still needed).  ``ctx`` supplies
host-level state — currently per-tenant packet counters for the
tenant-fair policy of §3.3/Fig. 11.

Policies:

* :class:`SRPTPolicy` — fewest remaining packets first; emulates
  Shortest Remaining Processing Time and is the paper's default for
  minimizing mean slowdown.
* :class:`EDFPolicy` — earliest deadline first, for deadline traffic.
* :class:`FIFOPolicy` — oldest flow first (baseline/ablation).
* :class:`TenantFairPolicy` — tenant with the fewest packets scheduled
  so far wins; SRPT breaks ties within the tenant.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Protocol, Sequence

__all__ = [
    "SchedulingPolicy",
    "SRPTPolicy",
    "EDFPolicy",
    "FIFOPolicy",
    "TenantFairPolicy",
    "make_policy",
    "register_policy",
    "available_policies",
    "TenantCounters",
]


class _Candidate(Protocol):  # pragma: no cover - typing aid
    flow: object

    def remaining_hint(self) -> int: ...


class TenantCounters:
    """Per-tenant packet counters held by a host endpoint."""

    __slots__ = ("counts",)

    def __init__(self) -> None:
        self.counts: Dict[int, int] = {}

    def add(self, tenant: int, n: int = 1) -> None:
        self.counts[tenant] = self.counts.get(tenant, 0) + n

    def get(self, tenant: int) -> int:
        return self.counts.get(tenant, 0)


class SchedulingPolicy:
    """Base: rank candidates, smallest key first."""

    name = "abstract"

    def key(self, state, ctx: Optional[TenantCounters]):  # pragma: no cover
        raise NotImplementedError

    def select(self, candidates: Sequence, ctx: Optional[TenantCounters] = None):
        """Return the best candidate, or None if there are none."""
        best = None
        best_key = None
        for state in candidates:
            k = self.key(state, ctx)
            if best_key is None or k < best_key:
                best_key = k
                best = state
        return best

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}()"


class SRPTPolicy(SchedulingPolicy):
    """Fewest remaining packets first; flow arrival breaks ties."""

    name = "srpt"

    def key(self, state, ctx=None):
        return (state.remaining_hint(), state.flow.arrival, state.flow.fid)


class EDFPolicy(SchedulingPolicy):
    """Earliest deadline first; deadline-less flows sort last (by SRPT)."""

    name = "edf"

    def key(self, state, ctx=None):
        deadline = state.flow.deadline
        if deadline is None:
            return (1, 0.0, state.remaining_hint(), state.flow.fid)
        return (0, deadline, state.remaining_hint(), state.flow.fid)


class FIFOPolicy(SchedulingPolicy):
    """Oldest flow first."""

    name = "fifo"

    def key(self, state, ctx=None):
        return (state.flow.arrival, state.flow.fid)


class TenantFairPolicy(SchedulingPolicy):
    """Fairness across tenants, SRPT within a tenant (paper §3.3).

    The destination "maintain[s] a counter for the number of packets
    received so far from each tenant and in each unit time assign[s] a
    token to a flow from the tenant with smaller count".
    """

    name = "tenant_fair"

    def key(self, state, ctx: Optional[TenantCounters] = None):
        count = ctx.get(state.flow.tenant) if ctx is not None else 0
        return (count, state.remaining_hint(), state.flow.arrival, state.flow.fid)


_POLICIES = {
    SRPTPolicy.name: SRPTPolicy,
    EDFPolicy.name: EDFPolicy,
    FIFOPolicy.name: FIFOPolicy,
    TenantFairPolicy.name: TenantFairPolicy,
}


def register_policy(policy_cls) -> None:
    """Register a custom :class:`SchedulingPolicy` subclass.

    After registration the policy is selectable by name in
    :class:`~repro.protocols.phost.config.PHostConfig` (``grant_policy`` /
    ``spend_policy``) — this is how downstream users plug their own
    scheduling objectives into pHost without touching the fabric
    (paper §3.3).
    """
    name = getattr(policy_cls, "name", None)
    if not name or name == "abstract":
        raise ValueError("policy class needs a non-abstract `name` attribute")
    _POLICIES[name] = policy_cls


def make_policy(name: str) -> SchedulingPolicy:
    """Instantiate a policy by its registry name."""
    try:
        return _POLICIES[name]()
    except KeyError:
        raise ValueError(
            f"unknown policy {name!r}; choose from {sorted(_POLICIES)}"
        ) from None


def available_policies() -> Iterable[str]:
    return sorted(_POLICIES)
