"""pHost source (paper Algorithm 1).

On flow arrival: send an RTS and seed the flow with free tokens.  When
the NIC goes idle, spend a token: granted tokens first (spend policy
picks the flow), free tokens otherwise.  Tokens expire; expired ones are
discarded at selection time.

Robustness beyond the happy path (paper §3.4 leaves these implicit):

* the RTS is retransmitted on a coarse timer while no token has ever
  arrived and the free budget is spent (lost-RTS recovery; note a lost
  RTS is already almost harmless because the destination also creates
  state from the first data packet);
* after the last packet has been sent once, an ACK-check timer
  retransmits the RTS if no ACK arrives, prompting the destination to
  either re-ACK (ACK was lost) or re-issue tokens (data was lost).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.protocols.phost.config import PHostConfig
from repro.protocols.phost.policies import SchedulingPolicy, TenantCounters
from repro.protocols.phost.tokens import SourceFlowState, Token
from repro.net.packet import Flow, Packet, PacketType

__all__ = ["PHostSource"]


class PHostSource:
    """Source half of a host's pHost agent."""

    def __init__(self, agent, config: PHostConfig, spend_policy: SchedulingPolicy) -> None:
        self.agent = agent
        self.env = agent.env
        self.pool = agent.pool
        self.config = config
        self.policy = spend_policy
        self.flows: Dict[int, SourceFlowState] = {}
        self.tenant_sent = TenantCounters()
        self.tokens_expired = 0  # observability: tokens that lapsed unused
        self.tokens_stale = 0    # tokens arriving after the flow finished
        # Ledger totals rolled over from flows retired by an ACK, so the
        # token balance stays auditable after per-flow state is dropped.
        self.tokens_received_retired = 0
        self.tokens_spent_retired = 0
        self.tokens_expired_retired = 0
        self.tokens_unspent_retired = 0

    # ------------------------------------------------------------------
    # Flow arrival (Algorithm 1, "new flow arrives")
    # ------------------------------------------------------------------
    def start_flow(self, flow: Flow) -> None:
        if flow.fid in self.flows:
            raise ValueError(f"duplicate flow id {flow.fid}")
        state = SourceFlowState(flow, self.config.free_tokens)
        self.flows[flow.fid] = state
        self._send_rts(state)
        if not state.has_free_token() or self.agent.ctx.faults is not None:
            # Arm the lost-RTS recovery timer.  Without a free budget
            # (e.g. tenant-fair config) grants are the only way forward,
            # so the timer is load-bearing even on a lossless fabric.
            # With free tokens it matters only when the fabric can lose
            # packets: if the RTS *and* every free-token data packet die,
            # the destination never learns the flow exists and nothing
            # else would ever fire again — so it is armed exactly when a
            # fault plan is active, keeping fault-free runs on the
            # golden event trajectory.
            self.env.schedule_timer(self.config.rts_retry, self._rts_check, flow.fid)
        self.agent.kick_nic()

    def _send_rts(self, state: SourceFlowState) -> None:
        flow = state.flow
        state.rts_sends += 1
        rts = self.pool.control(PacketType.RTS, flow, 0, flow.src, flow.dst, self.env.now)
        self.agent.send_control(rts)

    def _rts_check(self, fid: int) -> None:
        state = self.flows.get(fid)
        if state is None or state.done:
            return
        if state.got_token:
            return  # destination has state; reissue/ack paths take over
        if not state.has_free_token():
            self._send_rts(state)
        # Re-arm while no token has ever arrived, even if free budget
        # remains: the budget may drain to silence between checks.
        self.env.schedule_timer(self.config.rts_retry, self._rts_check, fid)

    # ------------------------------------------------------------------
    # Token receipt (Algorithm 1, "new token T received")
    # ------------------------------------------------------------------
    def on_token(self, pkt: Packet) -> None:
        state = self.flows.get(pkt.flow.fid)
        if state is None or state.done:
            self.tokens_stale += 1
            return  # stale token for a finished flow
        expiry = self.env.now + self.config.token_expiry
        state.add_token(Token(pkt.seq, pkt.data_prio, expiry))
        self.agent.kick_nic()

    # ------------------------------------------------------------------
    # ACK receipt — flow done
    # ------------------------------------------------------------------
    def on_ack(self, pkt: Packet) -> None:
        state = self.flows.pop(pkt.flow.fid, None)
        if state is not None:
            state.done = True
            self.tokens_received_retired += state.tokens_received
            self.tokens_spent_retired += state.tokens_spent
            self.tokens_expired_retired += state.tokens_expired_n
            self.tokens_unspent_retired += len(state.tokens)

    # ------------------------------------------------------------------
    # NIC pull (Algorithm 1, "idle": pick a token, send its packet)
    # ------------------------------------------------------------------
    def next_data_packet(self) -> Optional[Packet]:
        now = self.env.now
        candidates = []
        for state in self.flows.values():
            self.tokens_expired += state.prune_expired(now)
            if state.tokens or state.has_free_token():
                candidates.append(state)
        if not candidates:
            return None
        # Algorithm 1: free tokens live in the same ActiveTokens list as
        # granted ones; the spend policy picks across all of them.
        if len(candidates) == 1:  # overwhelmingly the common case
            state = candidates[0]
        else:
            state = self.policy.select(candidates, self.tenant_sent)
        if state.tokens:
            token = state.pop_token()
            return self._make_data(state, token.seq, token.priority)
        seq = state.take_free_seq()
        return self._make_data(state, seq, self.agent.data_priority(state.flow))

    def _make_data(self, state: SourceFlowState, seq: int, priority: int) -> Packet:
        now = self.env.now
        flow = state.flow
        pkt = self.pool.data(
            flow, seq, flow.src, flow.dst, flow.wire_bytes_of(seq), priority, now
        )
        first_time = seq not in state.sent
        state.sent.add(seq)
        self.tenant_sent.add(flow.tenant)
        if flow.start_time is None:
            flow.start_time = now
        self.agent.collector.data_sent(pkt, first_time)
        if state.all_sent() and not state.ack_check_scheduled:
            state.ack_check_scheduled = True
            self.env.schedule_timer(2 * self.config.retx_timeout, self._ack_check, flow.fid)
        return pkt

    def _ack_check(self, fid: int) -> None:
        state = self.flows.get(fid)
        if state is None or state.done:
            return
        # All packets went out at least once but no ACK: poke the
        # destination (it will re-ACK or re-grant missing packets).
        self._send_rts(state)
        self.env.schedule_timer(2 * self.config.retx_timeout, self._ack_check, fid)

    # ------------------------------------------------------------------
    @property
    def active_flow_count(self) -> int:
        return len(self.flows)
