"""Token bookkeeping at the pHost source.

A :class:`Token` is the source-side record of a destination grant: it
authorizes exactly one data packet (``seq``) at a given priority and
lapses at ``expiry`` (1.5 MTU transmission times after receipt, by
default).  :class:`SourceFlowState` tracks a flow's granted tokens, its
free-token budget and what has been sent.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional, Set

from repro.net.packet import Flow

__all__ = ["Token", "SourceFlowState"]


class Token:
    """One send credit for one specific packet of one flow."""

    __slots__ = ("seq", "priority", "expiry")

    def __init__(self, seq: int, priority: int, expiry: float) -> None:
        self.seq = seq
        self.priority = priority
        self.expiry = expiry

    def expired(self, now: float) -> bool:
        return now > self.expiry

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Token(seq={self.seq}, prio={self.priority}, expiry={self.expiry:.9f})"


class SourceFlowState:
    """Source-side per-flow protocol state."""

    __slots__ = (
        "flow",
        "tokens",
        "free_left",
        "next_free_seq",
        "sent",
        "done",
        "got_token",
        "rts_sends",
        "ack_check_scheduled",
        "tokens_received",
        "tokens_spent",
        "tokens_expired_n",
    )

    def __init__(self, flow: Flow, free_tokens: int) -> None:
        self.flow = flow
        # Receipt order == spend order == expiry order: tokens are
        # stamped now + token_expiry (a per-run constant) as they
        # arrive, so expiries are non-decreasing and pruning is a pure
        # head operation — which is why this is a deque, giving O(1)
        # spend and O(expired) pruning on the NIC-pull hot path.
        self.tokens: Deque[Token] = deque()
        self.free_left = min(free_tokens, flow.n_pkts)
        self.next_free_seq = 0
        self.sent: Set[int] = set()
        self.done = False
        self.got_token = False
        self.rts_sends = 0
        self.ack_check_scheduled = False
        # Token-ledger counters (audited: received == spent + expired +
        # still-held, see repro.validate.tokens).
        self.tokens_received = 0
        self.tokens_spent = 0
        self.tokens_expired_n = 0

    # ------------------------------------------------------------------
    def add_token(self, token: Token) -> None:
        self.tokens.append(token)
        self.got_token = True
        self.tokens_received += 1

    def prune_expired(self, now: float) -> int:
        """Drop lapsed tokens; returns how many were discarded.

        Tokens arrive in expiry order (see ``tokens`` above), so lapsed
        ones form a prefix and pruning pops from the head only.
        """
        tokens = self.tokens
        dropped = 0
        while tokens and tokens[0].expiry < now:
            tokens.popleft()
            dropped += 1
        if dropped:
            self.tokens_expired_n += dropped
        return dropped

    def has_granted_token(self, now: float) -> bool:
        self.prune_expired(now)
        return bool(self.tokens)

    def pop_token(self) -> Token:
        """Spend the oldest live token (FIFO among a flow's tokens)."""
        self.tokens_spent += 1
        return self.tokens.popleft()

    def has_free_token(self) -> bool:
        # Skip entitlements for packets already sent via re-granted
        # tokens, so the free path never double-sends a sequence.
        while (
            self.free_left > 0
            and self.next_free_seq < self.flow.n_pkts
            and self.next_free_seq in self.sent
        ):
            self.next_free_seq += 1
            self.free_left -= 1
        return self.free_left > 0 and self.next_free_seq < self.flow.n_pkts

    def take_free_seq(self) -> int:
        if not self.has_free_token():
            raise RuntimeError(f"flow {self.flow.fid}: no free token available")
        seq = self.next_free_seq
        self.next_free_seq += 1
        self.free_left -= 1
        return seq

    def has_any_token(self, now: float) -> bool:
        """Any spendable credit — granted (unexpired) or free.

        Mirrors Algorithm 1, where free tokens sit in the same
        ActiveTokens list as granted ones: the spend policy chooses
        across all of them.
        """
        self.prune_expired(now)
        return bool(self.tokens) or self.has_free_token()

    def remaining_hint(self) -> int:
        """Packets not yet sent at least once (the SRPT spend key)."""
        return self.flow.n_pkts - len(self.sent)

    def all_sent(self) -> bool:
        return len(self.sent) >= self.flow.n_pkts

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"SourceFlowState(fid={self.flow.fid}, tokens={len(self.tokens)}, "
            f"free={self.free_left}, sent={len(self.sent)}/{self.flow.n_pkts})"
        )
