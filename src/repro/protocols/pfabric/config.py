"""pFabric configuration (the settings the pHost paper uses in §4.1:
"an initial congestion window of 12 packets, an RTO of 45us")."""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.units import usec

__all__ = ["PFabricConfig"]


@dataclass
class PFabricConfig:
    """Tunables of the pFabric endpoint behaviour.

    Attributes:
        init_cwnd: Fixed send window in packets.  pFabric "starts at
            line rate"; the evaluated simulator caps in-flight packets
            at this window and otherwise relies on switch priorities.
        rto: Retransmission timeout (seconds).
        min_rto_backoff: Multiplier applied to the RTO after consecutive
            timeouts of the same flow (1.0 disables backoff; kept mild
            because pFabric's aggressiveness is the point).
        probe_after_timeouts: After this many consecutive RTOs a flow
            enters *probe mode* (pFabric §4.3): instead of blasting a
            window of retransmissions every RTO, it sends a single
            header-sized probe and waits for the probe-ACK before
            resuming — the protection against retransmission storms
            under pathological congestion.  0 disables probing.
    """

    init_cwnd: int = 12
    rto: float = usec(45)
    min_rto_backoff: float = 1.0
    probe_after_timeouts: int = 4

    def __post_init__(self) -> None:
        if self.init_cwnd < 1:
            raise ValueError("init_cwnd must be >= 1")
        if self.rto <= 0:
            raise ValueError("rto must be positive")
        if self.min_rto_backoff < 1.0:
            raise ValueError("min_rto_backoff must be >= 1.0")
        if self.probe_after_timeouts < 0:
            raise ValueError("probe_after_timeouts must be >= 0")

    @classmethod
    def paper_default(cls) -> "PFabricConfig":
        return cls()
