"""pFabric endpoint.

The transport half is deliberately simple — the clever part of pFabric
lives in :class:`repro.net.queues.PFabricQueue` (priority drop and
starvation-avoidance dequeue), which this agent relies on at every hop
*including its own NIC*.  The endpoint:

* pushes up to ``cwnd`` packets of each flow into the NIC queue, each
  stamped with the flow's remaining un-ACKed packet count (the priority
  the fabric schedules on — the paper's footnote 1);
* receives a 40-byte ACK per delivered data packet (ACKs are stamped
  remaining=0, so they are never dropped nor delayed behind data);
* on a 45 us RTO, counts all unacked packets as lost and re-pushes
  them, earliest first;
* after several consecutive RTOs enters *probe mode* (pFabric §4.3):
  one header-sized probe per RTO instead of a window of
  retransmissions, resuming on the probe-ACK — so a congestion
  pathology cannot trigger a retransmission storm.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Optional, Set

from repro.net.packet import Flow, Packet, PacketType
from repro.protocols.base import ProtocolSpec, TransportAgent, pfabric_queue_factory
from repro.protocols.pfabric.config import PFabricConfig
from repro.sim.engine import EventLoop

__all__ = ["PFabricAgent", "PFABRIC_SPEC"]

#: Sequence number used by probe packets (never a real data seq).
PROBE_SEQ = -1


class _SrcFlow:
    """Source-side window/retransmission state for one flow."""

    __slots__ = (
        "flow",
        "next_seq",
        "acked",
        "unacked_sent",
        "rtx",
        "rtx_set",
        "in_flight",
        "ever_sent",
        "rto_timer",
        "rto_scale",
        "consecutive_timeouts",
        "probing",
        "probes_sent",
        "done",
    )

    def __init__(self, flow: Flow) -> None:
        self.flow = flow
        self.next_seq = 0
        self.acked: Set[int] = set()
        self.unacked_sent: Set[int] = set()
        self.rtx: Deque[int] = deque()
        self.rtx_set: Set[int] = set()
        self.in_flight = 0
        self.ever_sent: Set[int] = set()
        self.rto_timer: Optional[list] = None
        self.rto_scale = 1.0
        self.consecutive_timeouts = 0
        self.probing = False
        self.probes_sent = 0
        self.done = False

    def remaining(self) -> int:
        """Un-ACKed packets — the pFabric priority value."""
        return self.flow.n_pkts - len(self.acked)

    def next_to_send(self) -> Optional[int]:
        while self.rtx:
            seq = self.rtx.popleft()
            self.rtx_set.discard(seq)
            if seq not in self.acked:
                return seq
        if self.next_seq < self.flow.n_pkts:
            seq = self.next_seq
            self.next_seq += 1
            return seq
        return None

    def has_sendable(self) -> bool:
        if any(seq not in self.acked for seq in self.rtx):
            return True
        return self.next_seq < self.flow.n_pkts


class _DstFlow:
    """Receiver-side reassembly state for one flow."""

    __slots__ = ("flow", "received")

    def __init__(self, flow: Flow) -> None:
        self.flow = flow
        self.received: Set[int] = set()


class PFabricAgent(TransportAgent):
    """pFabric endpoint for one host (source + receiver roles)."""

    def __init__(self, host, ctx) -> None:
        super().__init__(host, ctx)
        self.src_flows: Dict[int, _SrcFlow] = {}
        self.dst_flows: Dict[int, _DstFlow] = {}
        self.finished_rx: Set[int] = set()
        self.timeouts = 0

    def register_instruments(self, registry) -> None:
        """Window/timeout state as pull-based gauges."""
        host = f"h{self.host.node_id}"
        registry.gauge(
            "pfabric.flows.src_active", lambda: len(self.src_flows), host=host
        )
        registry.gauge(
            "pfabric.pkts.in_flight",
            lambda: sum(s.in_flight for s in self.src_flows.values()),
            src=host,
        )
        registry.gauge("pfabric.timeouts", lambda: self.timeouts, host=host)

    # ------------------------------------------------------------------
    # Source side
    # ------------------------------------------------------------------
    def start_flow(self, flow: Flow) -> None:
        if flow.fid in self.src_flows:
            raise ValueError(f"duplicate flow id {flow.fid}")
        self.collector.flow_arrived(flow, self.env.now)
        state = _SrcFlow(flow)
        self.src_flows[flow.fid] = state
        self._pump(state)

    def _pump(self, state: _SrcFlow) -> None:
        """Fill the window: push packets into the NIC priority queue."""
        while not state.done and state.in_flight < self.config.init_cwnd:
            seq = state.next_to_send()
            if seq is None:
                break
            self._send_data(state, seq)
        if state.rto_timer is None and state.unacked_sent and not state.done:
            self._arm_rto(state)

    def _send_data(self, state: _SrcFlow, seq: int) -> None:
        flow = state.flow
        now = self.env.now
        pkt = self.pool.data(
            flow, seq, flow.src, flow.dst, flow.wire_bytes_of(seq), 1, now
        )
        pkt.remaining = state.remaining()
        first_time = seq not in state.ever_sent
        state.ever_sent.add(seq)
        state.unacked_sent.add(seq)
        state.in_flight += 1
        if flow.start_time is None:
            flow.start_time = now
        self.collector.data_sent(pkt, first_time)
        self.host.send(pkt)

    def _arm_rto(self, state: _SrcFlow) -> None:
        EventLoop.cancel(state.rto_timer)
        state.rto_timer = self.env.schedule_timer(
            self.config.rto * state.rto_scale, self._on_rto, state.flow.fid
        )

    def _on_rto(self, fid: int) -> None:
        state = self.src_flows.get(fid)
        if state is None or state.done:
            return
        state.rto_timer = None
        self.timeouts += 1
        state.consecutive_timeouts += 1
        threshold = self.config.probe_after_timeouts
        if threshold and state.consecutive_timeouts >= threshold:
            # Probe mode (pFabric §4.3): stop blasting windows of
            # retransmissions; one tiny probe per RTO until the path
            # answers again.
            state.probing = True
            self._send_probe(state)
            self._arm_rto(state)
            return
        # Everything outstanding is presumed lost; resend earliest first.
        lost = sorted(state.unacked_sent - state.rtx_set)
        for seq in lost:
            state.rtx.append(seq)
            state.rtx_set.add(seq)
        state.in_flight = 0
        state.rto_scale *= self.config.min_rto_backoff
        self._pump(state)
        if state.rto_timer is None and not state.done:
            self._arm_rto(state)

    def _send_probe(self, state: _SrcFlow) -> None:
        flow = state.flow
        probe = self.pool.data(
            flow, PROBE_SEQ, flow.src, flow.dst, 40, 1, self.env.now  # header-only
        )
        probe.remaining = state.remaining()
        state.probes_sent += 1
        self.host.send(probe)

    def _on_ack(self, pkt: Packet) -> None:
        state = self.src_flows.get(pkt.flow.fid)
        if state is None or state.done:
            return
        seq = pkt.seq
        state.consecutive_timeouts = 0
        if seq == PROBE_SEQ:
            # The path is alive again: leave probe mode and resume with
            # a fresh round of retransmissions.
            if state.probing:
                state.probing = False
                lost = sorted(state.unacked_sent - state.rtx_set)
                for s in lost:
                    state.rtx.append(s)
                    state.rtx_set.add(s)
                state.in_flight = 0
                state.rto_scale = 1.0
                self._pump(state)
                self._arm_rto(state)
            return
        if seq in state.acked:
            return
        state.probing = False  # any data ACK proves the path is alive
        state.acked.add(seq)
        state.unacked_sent.discard(seq)
        if state.in_flight > 0:
            state.in_flight -= 1
        state.rto_scale = 1.0
        if len(state.acked) >= state.flow.n_pkts:
            state.done = True
            EventLoop.cancel(state.rto_timer)
            state.rto_timer = None
            del self.src_flows[pkt.flow.fid]
            return
        self._arm_rto(state)  # progress: restart the clock
        self._pump(state)

    # ------------------------------------------------------------------
    # Receiver side
    # ------------------------------------------------------------------
    def _on_data(self, pkt: Packet) -> None:
        flow = pkt.flow
        fid = flow.fid
        if pkt.seq == PROBE_SEQ:
            self._send_ack(flow, PROBE_SEQ)  # probe-ACK, no data implied
            return
        if fid in self.finished_rx:
            self.collector.data_duplicate(pkt)
            self._send_ack(flow, pkt.seq)  # keep ACKing so the source closes
            return
        state = self.dst_flows.get(fid)
        if state is None:
            state = _DstFlow(flow)
            self.dst_flows[fid] = state
        if pkt.seq not in state.received:
            state.received.add(pkt.seq)
            self.collector.data_delivered(pkt)
            if len(state.received) >= flow.n_pkts:
                self.collector.flow_completed(flow, self.env.now)
                self.finished_rx.add(fid)
                del self.dst_flows[fid]
        else:
            self.collector.data_duplicate(pkt)
        self._send_ack(flow, pkt.seq)

    def _send_ack(self, flow: Flow, seq: int) -> None:
        ack = self.pool.control(PacketType.ACK, flow, seq, self.host.node_id, flow.src, self.env.now)
        ack.remaining = 0  # top priority in pFabric queues
        self.collector.control_sent(ack)
        self.host.send(ack)

    # ------------------------------------------------------------------
    def on_packet(self, pkt: Packet) -> None:
        if pkt.ptype == PacketType.DATA:
            self._on_data(pkt)
        elif pkt.ptype == PacketType.ACK:
            self._on_ack(pkt)
        else:
            raise ValueError(f"pFabric host received unexpected packet type: {pkt!r}")


def _pfabric_config_factory(ctx) -> PFabricConfig:
    return PFabricConfig.paper_default()


def _pfabric_agent_factory(host, ctx) -> PFabricAgent:
    return PFabricAgent(host, ctx)


PFABRIC_SPEC = ProtocolSpec(
    name="pfabric",
    agent_factory=_pfabric_agent_factory,
    config_factory=_pfabric_config_factory,
    switch_queue_factory=pfabric_queue_factory,
    host_queue_factory=pfabric_queue_factory,
)
