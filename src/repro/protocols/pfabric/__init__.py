"""pFabric baseline (S6).

pFabric (SIGCOMM 2013) embeds the scheduling policy in the fabric:
every data packet carries the flow's remaining un-ACKed size; switches
keep tiny buffers, drop the least-urgent packet on overflow, and
transmit the oldest packet of the most-urgent flow.  Rate control is
minimal: a fixed window (initial cwnd 12) with a 45 us retransmission
timeout, per the configuration the pHost paper evaluates.
"""

from repro.protocols.pfabric.config import PFabricConfig
from repro.protocols.pfabric.agent import PFabricAgent, PFABRIC_SPEC

__all__ = ["PFabricConfig", "PFabricAgent", "PFABRIC_SPEC"]
