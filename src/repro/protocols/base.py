"""Transport-agent interface and protocol wiring description.

Each host runs one :class:`TransportAgent` that plays *both* roles —
source for the host's outgoing flows and destination for incoming ones
(the default traffic matrix is all-to-all, so every host does both).

A :class:`ProtocolSpec` tells the experiment runner how to assemble a
protocol: which queue discipline switches and NICs use, how to build the
shared context (Fastpass's arbiter), and how to build per-host agents.
All three factories receive the run's :class:`~repro.sim.context.SimContext`
(``config_factory(ctx)``, ``shared_factory(ctx)``,
``agent_factory(host, ctx)``), so adding a run-wide capability never
widens factory signatures again.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional

from repro.net.node import Host
from repro.net.packet import Flow, Packet
from repro.net.queues import PFabricQueue, PriorityQueue
from repro.sim.context import SimContext

__all__ = ["TransportAgent", "ProtocolSpec", "priority_queue_factory", "pfabric_queue_factory"]


def priority_queue_factory(capacity_bytes: int) -> PriorityQueue:
    """Commodity strict-priority queue (pHost, Fastpass)."""
    return PriorityQueue(capacity_bytes)


def pfabric_queue_factory(capacity_bytes: int) -> PFabricQueue:
    """pFabric's specialized priority-drop queue."""
    return PFabricQueue(capacity_bytes)


class TransportAgent:
    """Per-host protocol endpoint.

    Subclasses implement :meth:`start_flow` (source side, called when a
    flow arrives at this host), :meth:`on_packet` (anything delivered to
    this host) and optionally :meth:`nic_pull` (give the NIC the next
    data packet when it goes idle — the receiver-driven transports use
    this; push-based pFabric does not override it).

    The agent stores the run's :class:`~repro.sim.context.SimContext` as
    ``self.ctx``; ``env`` / ``fabric`` / ``collector`` / ``config`` /
    ``shared`` are bound as plain attributes at construction so agent
    bodies stay readable and hot paths avoid a double indirection.
    """

    def __init__(self, host: Host, ctx: SimContext) -> None:
        self.host = host
        self.ctx = ctx
        self.env = ctx.env
        self.fabric = ctx.fabric
        self.collector = ctx.collector
        self.config = ctx.config
        self.shared = ctx.shared
        # The run's packet freelist (stable object; only .enabled flips).
        self.pool = ctx.pool

    # -- source side ----------------------------------------------------
    def start_flow(self, flow: Flow) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    # -- receive side ---------------------------------------------------
    def on_packet(self, pkt: Packet) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    # -- observability ----------------------------------------------------
    def register_instruments(self, registry) -> None:
        """Publish protocol state as gauges on the run's
        :class:`~repro.obs.registry.InstrumentRegistry`.

        Called per host by :func:`repro.obs.register_run_instruments`
        when telemetry is enabled.  The default registers nothing;
        subclasses add pull-based gauges (evaluated only at snapshot
        time, so registration never perturbs the simulation).
        """

    # -- NIC integration --------------------------------------------------
    # Subclasses using the pull path assign a callable; the Host install
    # hook looks this attribute up.  None means push-only.
    nic_pull: Optional[Callable[[], Optional[Packet]]] = None


AgentFactory = Callable[[Host, SimContext], TransportAgent]
SharedFactory = Callable[[SimContext], Any]
ConfigFactory = Callable[[SimContext], Any]
QueueFactory = Callable[[int], Any]


@dataclass(frozen=True)
class ProtocolSpec:
    """Everything the runner needs to instantiate a protocol.

    The factories run in order against a partially-built context:
    ``config_factory(ctx)`` sees the substrate (env/rng/fabric/collector),
    ``shared_factory(ctx)`` additionally sees ``ctx.config``, and
    ``agent_factory(host, ctx)`` sees the fully-populated context.

    Switch behaviour is named, not hardcoded: ``switch_dataplane`` /
    ``host_dataplane`` select :class:`repro.dataplane.DataplaneProgram`
    entries from the dataplane registry (the built-ins declare
    "commodity" or "pfabric"; DCTCP declares "dctcp").  The legacy
    ``*_queue_factory`` fields remain for external registrants that
    construct queues directly — when set to a non-None callable they
    take precedence over the program names, and an
    ``ExperimentSpec.dataplane`` override trumps both.
    """

    name: str
    agent_factory: AgentFactory
    config_factory: ConfigFactory
    switch_queue_factory: Optional[QueueFactory] = None
    host_queue_factory: Optional[QueueFactory] = None
    shared_factory: Optional[SharedFactory] = None
    switch_dataplane: str = "commodity"
    host_dataplane: str = "commodity"

    def build_config(self, ctx: SimContext) -> Any:
        return self.config_factory(ctx)

    def build_shared(self, ctx: SimContext) -> Any:
        if self.shared_factory is None:
            return None
        return self.shared_factory(ctx)

    def install_agents(self, ctx: SimContext) -> None:
        """Construct one agent per host and install it on its NIC."""
        for host in ctx.fabric.hosts:
            host.install_agent(self.agent_factory(host, ctx))
