"""Transport-agent interface and protocol wiring description.

Each host runs one :class:`TransportAgent` that plays *both* roles —
source for the host's outgoing flows and destination for incoming ones
(the default traffic matrix is all-to-all, so every host does both).

A :class:`ProtocolSpec` tells the experiment runner how to assemble a
protocol: which queue discipline switches and NICs use, how to build the
shared context (Fastpass's arbiter), and how to build per-host agents.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional

from repro.net.node import Host
from repro.net.packet import Flow, Packet
from repro.net.queues import PFabricQueue, PriorityQueue
from repro.net.topology import Fabric
from repro.metrics.collector import MetricsCollector
from repro.sim.engine import EventLoop

__all__ = ["TransportAgent", "ProtocolSpec", "priority_queue_factory", "pfabric_queue_factory"]


def priority_queue_factory(capacity_bytes: int) -> PriorityQueue:
    """Commodity strict-priority queue (pHost, Fastpass)."""
    return PriorityQueue(capacity_bytes)


def pfabric_queue_factory(capacity_bytes: int) -> PFabricQueue:
    """pFabric's specialized priority-drop queue."""
    return PFabricQueue(capacity_bytes)


class TransportAgent:
    """Per-host protocol endpoint.

    Subclasses implement :meth:`start_flow` (source side, called when a
    flow arrives at this host), :meth:`on_packet` (anything delivered to
    this host) and optionally :meth:`nic_pull` (give the NIC the next
    data packet when it goes idle — the receiver-driven transports use
    this; push-based pFabric does not override it).
    """

    def __init__(
        self,
        host: Host,
        env: EventLoop,
        fabric: Fabric,
        collector: MetricsCollector,
        config: Any,
        shared: Any = None,
    ) -> None:
        self.host = host
        self.env = env
        self.fabric = fabric
        self.collector = collector
        self.config = config
        self.shared = shared

    # -- source side ----------------------------------------------------
    def start_flow(self, flow: Flow) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    # -- receive side ---------------------------------------------------
    def on_packet(self, pkt: Packet) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    # -- NIC integration --------------------------------------------------
    # Subclasses using the pull path assign a callable; the Host install
    # hook looks this attribute up.  None means push-only.
    nic_pull: Optional[Callable[[], Optional[Packet]]] = None


AgentFactory = Callable[[Host, EventLoop, Fabric, MetricsCollector, Any, Any], TransportAgent]
SharedFactory = Callable[[EventLoop, Fabric, MetricsCollector, Any], Any]
QueueFactory = Callable[[int], Any]


@dataclass(frozen=True)
class ProtocolSpec:
    """Everything the runner needs to instantiate a protocol."""

    name: str
    agent_factory: AgentFactory
    config_factory: Callable[[Fabric], Any]
    switch_queue_factory: QueueFactory = priority_queue_factory
    host_queue_factory: QueueFactory = priority_queue_factory
    shared_factory: Optional[SharedFactory] = None

    def build_shared(
        self,
        env: EventLoop,
        fabric: Fabric,
        collector: MetricsCollector,
        config: Any,
    ) -> Any:
        if self.shared_factory is None:
            return None
        return self.shared_factory(env, fabric, collector, config)
