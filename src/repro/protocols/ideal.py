"""An idealized centrally-scheduled transport (upper-bound baseline).

Not part of the paper's comparison, but invaluable for analysis: the
same arbiter machinery as Fastpass with **per-slot scheduling**
(epoch = 1 MTU time) and **zero control latency**.  Every overhead the
pHost paper attributes to Fastpass — the epoch wait and the signaling
round trip — is removed, leaving only unavoidable serialization and
matching imperfection.

This gives the repository a decomposition experiment
(``benchmarks/test_ablation_fastpass.py``): the gap

    fastpass  ->  fastpass(epoch=1)  ->  ideal(epoch=1, ctrl=0)

separates the epoch-granularity penalty from the signaling penalty,
quantifying §5's claim that Fastpass's short-flow problem is exactly
"an epoch plus a round trip".
"""

from __future__ import annotations

from repro.protocols.base import ProtocolSpec
from repro.protocols.fastpass.agent import (
    FastpassAgent,
    _fastpass_agent_factory,
    _fastpass_shared_factory,
)
from repro.protocols.fastpass.config import FastpassConfig

__all__ = ["ideal_config", "IDEAL_SPEC"]


def ideal_config(ctx) -> FastpassConfig:
    """Per-slot scheduling, instantaneous control plane.

    Telemetry note: agents are plain :class:`FastpassAgent` instances,
    so ideal runs publish the ``fastpass.*`` instrument set (per-host
    flow gauges plus the shared arbiter's demand/allocation gauges).
    """
    return FastpassConfig(
        epoch_pkts=1,
        control_latency=0.0,
        allocation_policy="srpt",
    ).resolve(ctx.fabric.config)


IDEAL_SPEC = ProtocolSpec(
    name="ideal",
    agent_factory=_fastpass_agent_factory,
    config_factory=ideal_config,
    switch_dataplane="commodity",
    host_dataplane="commodity",
    shared_factory=_fastpass_shared_factory,
)
