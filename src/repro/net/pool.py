"""Packet freelist over a columnar store.

Simulations churn through one short-lived :class:`~repro.net.packet.Packet`
object per wire packet.  The pool recycles them — but since PR 9 the
thing recycled is an integer *slot* in a preallocated struct-of-arrays
:class:`~repro.net.columns.PacketColumns` store, not a Packet object:
the freelist is a stack of ints, each slot lazily materializes one
cached ``Packet`` view on first use, and compiled backends can address
packet state by index without touching Python objects.  Protocol code
is oblivious: acquire helpers still hand out ``Packet``s, and a reused
view is indistinguishable from a fresh packet.

Packets are pure value objects here — nothing in the simulator keeps a
reference past delivery (instrumentation hooks record scalars, not
packets; a hook that *does* retain them must set
``retains_packets = True``, which makes the runner disable pooling for
that run) — so reuse is invisible to protocol logic and to run digests.

Two safety properties hold by construction:

* only packets that reach :meth:`repro.net.node.Host.receive` are ever
  released — dropped packets simply fall out of scope and are never
  recycled (their slots stay retired for the run), so
  ``fabric.keep_dropped`` stays sound;
* :meth:`release` resets every mutable field — view and columns — so a
  reused slot is indistinguishable from a fresh one.

With ``enabled = False`` the acquire helpers degrade to plain
construction (no slots, no column writes), so call sites never branch.
"""

from __future__ import annotations

from typing import List, Optional

from repro.net.columns import PacketColumns
from repro.net.packet import Flow, Packet, PacketType
from repro.sim.units import CONTROL_BYTES

__all__ = ["PacketPool"]


class PacketPool:
    """A bounded slot freelist over :class:`PacketColumns`.

    One pool per run, owned by the
    :class:`~repro.sim.context.SimContext`.  The object is created with
    the context and never replaced — agents may cache the reference —
    only ``enabled`` is flipped by the runner.
    """

    __slots__ = (
        "enabled",
        "max_free",
        "allocated",
        "reused",
        "released",
        "columns",
        "_free",
    )

    def __init__(
        self,
        enabled: bool = False,
        max_free: int = 4096,
        capacity: int = 256,
    ) -> None:
        self.enabled = enabled
        self.max_free = max_free
        self.allocated = 0  # fresh slot/Packet acquisitions
        self.reused = 0     # acquisitions served from the freelist
        self.released = 0   # slots parked for reuse
        self.columns = PacketColumns(capacity)
        self._free: List[int] = []  # parked slots, LIFO

    # ------------------------------------------------------------------
    def data(
        self,
        flow: Flow,
        seq: int,
        src: int,
        dst: int,
        size: int,
        priority: int,
        born: float,
    ) -> Packet:
        """Acquire a DATA packet (recycled slot, fresh slot, or plain)."""
        free = self._free
        if free:
            self.reused += 1
            return self.columns.stamp(
                free.pop(), PacketType.DATA, flow, seq, src, dst, size, priority, born
            )
        self.allocated += 1
        if self.enabled:
            return self.columns.stamp(
                self.columns.acquire(),
                PacketType.DATA, flow, seq, src, dst, size, priority, born,
            )
        return Packet(PacketType.DATA, flow, seq, src, dst, size, priority=priority, born=born)

    def control(
        self,
        ptype: PacketType,
        flow: Optional[Flow],
        seq: int,
        src: int,
        dst: int,
        born: float,
    ) -> Packet:
        """Acquire a 40-byte highest-priority control packet."""
        free = self._free
        if free:
            self.reused += 1
            return self.columns.stamp(
                free.pop(), ptype, flow, seq, src, dst, CONTROL_BYTES, 0, born
            )
        self.allocated += 1
        if self.enabled:
            return self.columns.stamp(
                self.columns.acquire(),
                ptype, flow, seq, src, dst, CONTROL_BYTES, 0, born,
            )
        return Packet(ptype, flow, seq, src, dst, CONTROL_BYTES, priority=0, born=born)

    # ------------------------------------------------------------------
    def release(self, pkt: Packet) -> None:
        """Park a delivered packet's slot for reuse (no-op while
        disabled, for plain packets, and past the ``max_free`` cap —
        over-cap slots simply retire, exactly as over-cap packets used
        to fall out of scope)."""
        if not self.enabled:
            return
        slot = pkt.slot
        if slot < 0:  # plain packet from a pre-enable acquire
            return
        free = self._free
        if len(free) >= self.max_free:
            return
        self.columns.reset(slot)
        free.append(slot)
        self.released += 1

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        out = {
            "enabled": self.enabled,
            "allocated": self.allocated,
            "reused": self.reused,
            "released": self.released,
            "free": len(self._free),
        }
        out.update({f"columns_{k}": v for k, v in self.columns.stats().items()})
        return out

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"PacketPool(enabled={self.enabled}, alloc={self.allocated}, "
            f"reused={self.reused}, free={len(self._free)})"
        )
