"""Packet freelist.

Simulations churn through one short-lived :class:`~repro.net.packet.Packet`
object per wire packet.  The pool recycles them: a packet delivered to a
host is reset and parked on a freelist, and the next send reuses it
instead of allocating.  Packets are pure value objects here — nothing in
the simulator keeps a reference past delivery (instrumentation hooks
record scalars, not packets; a hook that *does* retain them must set
``retains_packets = True``, which makes the runner disable pooling for
that run) — so reuse is invisible to protocol logic and to run digests.

Two safety properties hold by construction:

* only packets that reach :meth:`repro.net.node.Host.receive` are ever
  released — dropped packets simply fall out of scope and are never
  recycled, so ``fabric.keep_dropped`` stays sound;
* :meth:`release` resets every mutable field, so a reused packet is
  indistinguishable from a fresh one.

With ``enabled = False`` the acquire helpers degrade to plain
construction, so call sites never branch.
"""

from __future__ import annotations

from typing import List, Optional

from repro.net.packet import Flow, Packet, PacketType
from repro.sim.units import CONTROL_BYTES

__all__ = ["PacketPool"]


class PacketPool:
    """A bounded freelist of :class:`Packet` objects.

    One pool per run, owned by the
    :class:`~repro.sim.context.SimContext`.  The object is created with
    the context and never replaced — agents may cache the reference —
    only ``enabled`` is flipped by the runner.
    """

    __slots__ = ("enabled", "max_free", "allocated", "reused", "released", "_free")

    def __init__(self, enabled: bool = False, max_free: int = 4096) -> None:
        self.enabled = enabled
        self.max_free = max_free
        self.allocated = 0  # fresh Packet constructions
        self.reused = 0     # acquisitions served from the freelist
        self.released = 0   # packets parked for reuse
        self._free: List[Packet] = []

    # ------------------------------------------------------------------
    def data(
        self,
        flow: Flow,
        seq: int,
        src: int,
        dst: int,
        size: int,
        priority: int,
        born: float,
    ) -> Packet:
        """Acquire a DATA packet (fresh or recycled)."""
        free = self._free
        if free:
            pkt = free.pop()
            self.reused += 1
            pkt.ptype = PacketType.DATA
            pkt.flow = flow
            pkt.seq = seq
            pkt.src = src
            pkt.dst = dst
            pkt.size = size
            pkt.priority = priority
            pkt.born = born
            return pkt
        self.allocated += 1
        return Packet(PacketType.DATA, flow, seq, src, dst, size, priority=priority, born=born)

    def control(
        self,
        ptype: PacketType,
        flow: Optional[Flow],
        seq: int,
        src: int,
        dst: int,
        born: float,
    ) -> Packet:
        """Acquire a 40-byte highest-priority control packet."""
        free = self._free
        if free:
            pkt = free.pop()
            self.reused += 1
            pkt.ptype = ptype
            pkt.flow = flow
            pkt.seq = seq
            pkt.src = src
            pkt.dst = dst
            pkt.size = CONTROL_BYTES
            pkt.priority = 0
            pkt.born = born
            return pkt
        self.allocated += 1
        return Packet(ptype, flow, seq, src, dst, CONTROL_BYTES, priority=0, born=born)

    # ------------------------------------------------------------------
    def release(self, pkt: Packet) -> None:
        """Park a delivered packet for reuse (no-op while disabled).

        Every mutable field is reset here rather than on acquire, so the
        freelist holds packets indistinguishable from fresh ones and the
        acquire helpers only write the fields they are given.
        """
        if not self.enabled:
            return
        free = self._free
        if len(free) >= self.max_free:
            return
        pkt.flow = None
        pkt.payload = None
        pkt.remaining = 0
        pkt.data_prio = 0
        pkt.expiry = 0.0
        pkt.ecn = 0
        pkt.hops = 0
        free.append(pkt)
        self.released += 1

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        return {
            "enabled": self.enabled,
            "allocated": self.allocated,
            "reused": self.reused,
            "released": self.released,
            "free": len(self._free),
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"PacketPool(enabled={self.enabled}, alloc={self.allocated}, "
            f"reused={self.reused}, free={len(self._free)})"
        )
