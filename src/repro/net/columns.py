"""Struct-of-arrays packet storage.

:class:`PacketColumns` is the columnar substrate under
:class:`repro.net.pool.PacketPool`: every pooled packet is a row — an
integer *slot* — across a set of preallocated parallel ``array``
columns (one per scalar :class:`~repro.net.packet.Packet` field, plus a
plain list for the flow reference).  The freelist then recycles
integers, not objects, and compiled backends can address packet state
by index through the buffer protocol without touching a single Python
object.

``Packet`` objects do not disappear: protocols, tracers, and queues all
speak ``Packet``.  Each slot lazily materializes one *view* — a regular
``Packet`` carrying its ``slot`` index — created on first use and then
reused for every life of the slot, so the steady-state hot path
allocates nothing.

Column-authority contract (what the tests pin):

* **identity columns** — ``ptype, fid, seq, src, dst, size, priority,
  born`` — are written by :meth:`stamp` when a slot starts a life and
  never change in flight; the columns are authoritative and the view
  mirrors them.
* **dynamic fields** — ``remaining, data_prio, expiry, ecn, hops`` —
  are mutated on the view by protocol/dataplane code mid-flight (the
  pure hot path must not pay a column write per hop); the *view* is
  authoritative and :meth:`writeback` syncs a slot's dynamic columns on
  demand (analysis boundaries, compiled-backend handoff).

:meth:`reset` restores both representations to the fresh state, so a
recycled slot is indistinguishable from a new one — the same guarantee
the object freelist gave.
"""

from __future__ import annotations

from array import array
from typing import Dict, List, Optional

from repro.net.packet import Flow, Packet, PacketType

__all__ = ["PacketColumns"]

#: Column name -> array typecode.  Everything integral is int64 (or
#: int8 for the two tiny enums) so a compiled backend sees fixed-width
#: fields; floats are float64.
COLUMN_TYPECODES = (
    ("ptype", "b"),
    ("fid", "q"),
    ("seq", "q"),
    ("src", "q"),
    ("dst", "q"),
    ("size", "q"),
    ("priority", "q"),
    ("remaining", "q"),
    ("data_prio", "q"),
    ("expiry", "d"),
    ("ecn", "b"),
    ("hops", "q"),
    ("born", "d"),
)

_DYNAMIC = ("remaining", "data_prio", "expiry", "ecn", "hops")


class PacketColumns:
    """A preallocated struct-of-arrays packet store.

    Capacity grows geometrically on demand; slots are recycled through
    an internal LIFO free stack (:meth:`acquire` / :meth:`release`).
    """

    __slots__ = tuple(name for name, _ in COLUMN_TYPECODES) + (
        "capacity",
        "in_use",
        "grows",
        "flows",
        "views",
        "_free_slots",
        "_top",
    )

    def __init__(self, capacity: int = 256) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.in_use = 0
        self.grows = 0
        for name, typecode in COLUMN_TYPECODES:
            setattr(self, name, array(typecode, bytes(array(typecode).itemsize * capacity)))
        self.flows: List[Optional[Flow]] = [None] * capacity
        self.views: List[Optional[Packet]] = [None] * capacity
        self._free_slots: List[int] = []
        self._top = 0  # next never-used slot

    # ------------------------------------------------------------------
    # Slot lifecycle
    # ------------------------------------------------------------------
    def acquire(self) -> int:
        """Take a slot (recycled if available, else fresh; grows)."""
        free = self._free_slots
        if free:
            slot = free.pop()
        else:
            if self._top == self.capacity:
                self._grow()
            slot = self._top
            self._top += 1
        self.in_use += 1
        return slot

    def release(self, slot: int) -> None:
        """Return a slot to the free stack (caller resets it first)."""
        self.flows[slot] = None
        self._free_slots.append(slot)
        self.in_use -= 1

    def _grow(self) -> None:
        added = self.capacity  # double
        for name, typecode in COLUMN_TYPECODES:
            col: array = getattr(self, name)
            col.extend(array(typecode, bytes(col.itemsize * added)))
        self.flows.extend([None] * added)
        self.views.extend([None] * added)
        self.capacity += added
        self.grows += 1

    # ------------------------------------------------------------------
    # Row access
    # ------------------------------------------------------------------
    def view(self, slot: int) -> Packet:
        """The slot's cached ``Packet`` view (materialized on first use)."""
        pkt = self.views[slot]
        if pkt is None:
            pkt = Packet(
                PacketType(self.ptype[slot]),
                self.flows[slot],
                self.seq[slot],
                self.src[slot],
                self.dst[slot],
                self.size[slot],
                priority=self.priority[slot],
                born=self.born[slot],
            )
            pkt.slot = slot
            self.views[slot] = pkt
        return pkt

    def stamp(
        self,
        slot: int,
        ptype: PacketType,
        flow: Optional[Flow],
        seq: int,
        src: int,
        dst: int,
        size: int,
        priority: int,
        born: float,
    ) -> Packet:
        """Start a life: write the identity columns and mirror them onto
        the slot's view.  Returns the view, ready for flight."""
        self.ptype[slot] = ptype
        self.fid[slot] = flow.fid if flow is not None else -1
        self.seq[slot] = seq
        self.src[slot] = src
        self.dst[slot] = dst
        self.size[slot] = size
        self.priority[slot] = priority
        self.born[slot] = born
        self.flows[slot] = flow
        pkt = self.views[slot]
        if pkt is None:
            pkt = Packet(ptype, flow, seq, src, dst, size, priority=priority, born=born)
            pkt.slot = slot
            self.views[slot] = pkt
            return pkt
        pkt.ptype = ptype
        pkt.flow = flow
        pkt.seq = seq
        pkt.src = src
        pkt.dst = dst
        pkt.size = size
        pkt.priority = priority
        pkt.born = born
        return pkt

    def reset(self, slot: int) -> None:
        """End a life: restore view *and* columns to the fresh state."""
        self.fid[slot] = -1
        self.remaining[slot] = 0
        self.data_prio[slot] = 0
        self.expiry[slot] = 0.0
        self.ecn[slot] = 0
        self.hops[slot] = 0
        self.flows[slot] = None
        pkt = self.views[slot]
        if pkt is not None:
            pkt.flow = None
            pkt.payload = None
            pkt.remaining = 0
            pkt.data_prio = 0
            pkt.expiry = 0.0
            pkt.ecn = 0
            pkt.hops = 0

    def writeback(self, slot: int) -> None:
        """Sync the slot's dynamic columns from its (authoritative) view."""
        pkt = self.views[slot]
        if pkt is None:
            return
        self.remaining[slot] = pkt.remaining
        self.data_prio[slot] = pkt.data_prio
        self.expiry[slot] = pkt.expiry
        self.ecn[slot] = pkt.ecn
        self.hops[slot] = pkt.hops

    def row(self, slot: int) -> Dict[str, object]:
        """One slot's column values (dynamic columns as stored — call
        :meth:`writeback` first for in-flight packets)."""
        out: Dict[str, object] = {
            name: getattr(self, name)[slot] for name, _ in COLUMN_TYPECODES
        }
        out["flow"] = self.flows[slot]
        return out

    # ------------------------------------------------------------------
    # Bulk / compiled-backend access
    # ------------------------------------------------------------------
    def buffer(self, name: str) -> memoryview:
        """A writable memoryview of one column (buffer-protocol seam
        for compiled backends)."""
        return memoryview(getattr(self, name))

    def as_arrays(self) -> Dict[str, object]:
        """Zero-copy numpy views of every column (requires numpy)."""
        import numpy as np

        dtypes = {"b": np.int8, "q": np.int64, "d": np.float64}
        return {
            name: np.frombuffer(getattr(self, name), dtype=dtypes[tc])
            for name, tc in COLUMN_TYPECODES
        }

    def stats(self) -> Dict[str, int]:
        return {
            "capacity": self.capacity,
            "in_use": self.in_use,
            "free": len(self._free_slots),
            "grows": self.grows,
        }

    def __len__(self) -> int:
        return self.capacity

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"PacketColumns(capacity={self.capacity}, in_use={self.in_use}, "
            f"grows={self.grows})"
        )
