"""Output ports: queue + serializer + link.

A :class:`Port` owns one egress queue and models serialization at the
link rate followed by propagation to the connected receiver.  Two entry
paths exist:

* ``send(pkt)`` — push-based: the packet goes through the queue (and may
  be dropped there).  Switches and push-based transports (pFabric) use
  this.
* a *pull source* — when the port goes idle and its queue is empty it
  asks ``pull_source()`` for the next packet.  pHost and Fastpass
  sources use this so the host picks what to send per packet at line
  rate instead of building a standing NIC queue (the receiver-driven
  model of the paper).

Control packets pushed into the queue always win over pulled data
because the queue is drained first.

Hot-path notes (see docs/PERFORMANCE.md): each packet-hop costs two
simulated instants — serialization done at the transmitter, arrival at
the receiver — but only *one* freshly allocated heap entry.  When the
serialization event fires, its just-popped entry is re-stamped in place
as the propagation/arrival event (``fused`` mode), and when the port has
back-to-back departures with nothing else due in between,
``EventLoop.try_advance`` lets the drain loop run the next serialization
inline without re-entering the scheduler at all.  Both shortcuts
preserve the exact ``(time, seq)`` event order of the naive path, so
run digests are byte-identical with fusion on or off.
"""

from __future__ import annotations

from heapq import heappush
from typing import Callable, List, Optional

from repro.net.packet import Packet
from repro.sim.engine import EventLoop

__all__ = ["Port"]

DropCallback = Callable[[Packet, int], None]
PullSource = Callable[[], Optional[Packet]]


class Port:
    """One egress port of a host NIC or switch."""

    __slots__ = (
        "env",
        "rate_bps",
        "prop_delay",
        "queue",
        "name",
        "hop_index",
        "peer",
        "busy",
        "on_drop",
        "pull_source",
        "bytes_sent",
        "pkts_sent",
        "pkts_enqueued",
        "pkts_pulled",
        "pkts_dropped",
        "max_qlen_bytes",
        "max_qlen_pkts",
        "fused",
        "_tx_entry",
    )

    def __init__(
        self,
        env: EventLoop,
        rate_bps: float,
        prop_delay: float,
        queue,
        name: str = "",
        hop_index: int = 0,
        on_drop: Optional[DropCallback] = None,
    ) -> None:
        self.env = env
        self.rate_bps = rate_bps
        self.prop_delay = prop_delay
        self.queue = queue
        self.name = name
        self.hop_index = hop_index
        self.peer = None  # object exposing .receive(pkt)
        self.busy = False
        self.on_drop = on_drop
        self.pull_source: Optional[PullSource] = None
        self.bytes_sent = 0
        self.pkts_sent = 0
        # Conservation ledger: enqueued + pulled ==
        # sent + dropped + queued + (1 if busy).
        self.pkts_enqueued = 0
        self.pkts_pulled = 0
        self.pkts_dropped = 0
        # Queue high-water marks (post-drop occupancy, so they reflect
        # what the buffer actually held).
        self.max_qlen_bytes = 0
        self.max_qlen_pkts = 0
        # Fused transmission (entry reuse + inline drain); turn off to
        # force the classic two-schedules-per-hop path.
        self.fused = True
        self._tx_entry: Optional[list] = None  # pending serialization event

    def connect(self, peer) -> None:
        """Attach the receiving end of this port's link."""
        self.peer = peer

    # ------------------------------------------------------------------
    # Push path
    # ------------------------------------------------------------------
    def send(self, pkt: Packet) -> None:
        """Enqueue a packet for transmission (may drop at the queue)."""
        self.pkts_enqueued += 1
        queue = self.queue
        dropped = queue.push(pkt)
        qbytes = queue.bytes_queued
        if qbytes > self.max_qlen_bytes:
            self.max_qlen_bytes = qbytes
        qpkts = queue.pkts_queued
        if qpkts > self.max_qlen_pkts:
            self.max_qlen_pkts = qpkts
        if dropped:
            self.pkts_dropped += len(dropped)
            if self.on_drop is not None:
                for victim in dropped:
                    self.on_drop(victim, self.hop_index)
        if not self.busy:
            # Idle port: if the queue is somehow non-empty (race with
            # pull), keep FIFO semantics by going through it.
            self._start_next()

    # ------------------------------------------------------------------
    # Pull path
    # ------------------------------------------------------------------
    def kick(self) -> None:
        """Notify the port that new work may be available.

        Harmless if the port is busy; it re-checks on completion anyway.
        """
        if not self.busy:
            self._start_next()

    # ------------------------------------------------------------------
    # Transmit machinery
    # ------------------------------------------------------------------
    def _start_next(self) -> None:
        pkt = self.queue.pop()
        if pkt is None and self.pull_source is not None:
            pkt = self.pull_source()
            if pkt is not None:
                self.pkts_pulled += 1
        if pkt is None:
            return
        self.busy = True
        if not self.fused:
            tx = pkt.size * 8.0 / self.rate_bps
            self.env.schedule(tx, self._tx_done, pkt)
            return
        # Inlined schedule(): the serialization-done event is the single
        # hottest allocation in the simulator.
        env = self.env
        env._seq += 1
        entry = [
            env.now + pkt.size * 8.0 / self.rate_bps,
            env._seq,
            self._tx_done,
            (pkt,),
            env,
        ]
        self._tx_entry = entry
        heappush(env._heap, entry)
        env._live += 1

    def _tx_done(self, pkt: Packet) -> None:
        if not self.fused:
            self.bytes_sent += pkt.size
            self.pkts_sent += 1
            peer = self.peer
            if peer is not None:
                self.env.schedule(self.prop_delay, peer.receive, pkt)
            self.busy = False
            self._start_next()
            return
        env = self.env
        queue = self.queue
        pull = self.pull_source
        peer = self.peer
        recv = None if peer is None else peer.receive
        prop = self.prop_delay
        rate = self.rate_bps
        heap = env._heap
        # `entry` is a recyclable event list: initially the serialization
        # event that just fired (already popped and marked fired by the
        # loop), later whichever pushed event came back to us.  Reusing
        # it saves one list allocation per packet per hop.
        entry = self._tx_entry
        self._tx_entry = None
        seq_a = 0
        t_arr = 0.0
        while True:
            self.bytes_sent += pkt.size
            self.pkts_sent += 1
            if recv is not None:
                # The arrival's seq is drawn here — before the pull, like
                # the unfused schedule() call — whether the arrival ends
                # up executed inline or pushed on the heap.
                env._seq += 1
                seq_a = env._seq
                t_arr = env.now + prop
            # Next departure.  The queue-then-pull order, and popping
            # *before* the arrival can execute, exactly mirror the
            # unfused path (the pull decision is made at serialization-
            # done time, before the receiver sees the packet).
            nxt = queue.pop()
            if nxt is None and pull is not None:
                nxt = pull()
                if nxt is not None:
                    self.pkts_pulled += 1
            if nxt is None:
                self.busy = False
                if recv is None:
                    return
                if (not heap or heap[0][0] > t_arr) and env.try_advance(t_arr):
                    # Nothing else due through t_arr: run the arrival
                    # inline (seq_a stands as the seq it consumed).
                    recv(pkt)
                    return
                if entry is None:
                    entry = [t_arr, seq_a, recv, (pkt,), env]
                else:
                    entry[0] = t_arr
                    entry[1] = seq_a
                    entry[2] = recv
                    entry[3] = (pkt,)
                heappush(heap, entry)
                env._live += 1
                return
            # Serialization-done seq for the next departure, drawn at pop
            # time exactly like the unfused _start_next().
            t2 = env.now + nxt.size * 8.0 / rate
            env._seq += 1
            seq_b = env._seq
            if recv is not None:
                # The heap-head peek is a cheap conservative pre-filter:
                # try_advance would refuse anyway when an earlier event
                # is pending, and that is the overwhelmingly common case
                # under load, so skipping the call keeps the fused path
                # cheap when it cannot win.
                if (
                    t_arr <= t2
                    and (not heap or heap[0][0] > t_arr)
                    and env.try_advance(t_arr)
                ):
                    # Arrival is the next event anywhere (ties break to
                    # it: seq_a < seq_b): run it inline.  `entry` stays
                    # available for the serialization push below.
                    recv(pkt)
                else:
                    if entry is None:
                        arr = [t_arr, seq_a, recv, (pkt,), env]
                    else:
                        arr = entry
                        arr[0] = t_arr
                        arr[1] = seq_a
                        arr[2] = recv
                        arr[3] = (pkt,)
                        entry = None
                    heappush(heap, arr)
                    env._live += 1
            if (not heap or heap[0][0] > t2) and env.try_advance(t2):
                # Nothing else fires before our next serialization
                # completes (seq_b stands as the seq the elided event
                # consumed): drain inline.
                pkt = nxt
                continue
            if entry is None:
                entry = [t2, seq_b, self._tx_done, (nxt,), env]
            else:
                entry[0] = t2
                entry[1] = seq_b
                entry[2] = self._tx_done
                entry[3] = (nxt,)
            self._tx_entry = entry
            heappush(heap, entry)
            env._live += 1
            return

    def queued_packets(self) -> int:
        return len(self.queue)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "busy" if self.busy else "idle"
        return f"Port({self.name}, {state}, queued={len(self.queue)})"
