"""Output ports: queue + serializer + link.

A :class:`Port` owns one egress queue and models serialization at the
link rate followed by propagation to the connected receiver.  Two entry
paths exist:

* ``send(pkt)`` — push-based: the packet goes through the queue (and may
  be dropped there).  Switches and push-based transports (pFabric) use
  this.
* a *pull source* — when the port goes idle and its queue is empty it
  asks ``pull_source()`` for the next packet.  pHost and Fastpass
  sources use this so the host picks what to send per packet at line
  rate instead of building a standing NIC queue (the receiver-driven
  model of the paper).

Control packets pushed into the queue always win over pulled data
because the queue is drained first.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.net.packet import Packet
from repro.sim.engine import EventLoop

__all__ = ["Port"]

DropCallback = Callable[[Packet, int], None]
PullSource = Callable[[], Optional[Packet]]


class Port:
    """One egress port of a host NIC or switch."""

    __slots__ = (
        "env",
        "rate_bps",
        "prop_delay",
        "queue",
        "name",
        "hop_index",
        "peer",
        "busy",
        "on_drop",
        "pull_source",
        "bytes_sent",
        "pkts_sent",
        "pkts_enqueued",
        "pkts_pulled",
        "pkts_dropped",
        "max_qlen_bytes",
        "max_qlen_pkts",
    )

    def __init__(
        self,
        env: EventLoop,
        rate_bps: float,
        prop_delay: float,
        queue,
        name: str = "",
        hop_index: int = 0,
        on_drop: Optional[DropCallback] = None,
    ) -> None:
        self.env = env
        self.rate_bps = rate_bps
        self.prop_delay = prop_delay
        self.queue = queue
        self.name = name
        self.hop_index = hop_index
        self.peer = None  # object exposing .receive(pkt)
        self.busy = False
        self.on_drop = on_drop
        self.pull_source: Optional[PullSource] = None
        self.bytes_sent = 0
        self.pkts_sent = 0
        # Conservation ledger: enqueued + pulled ==
        # sent + dropped + queued + (1 if busy).
        self.pkts_enqueued = 0
        self.pkts_pulled = 0
        self.pkts_dropped = 0
        # Queue high-water marks (post-drop occupancy, so they reflect
        # what the buffer actually held).
        self.max_qlen_bytes = 0
        self.max_qlen_pkts = 0

    def connect(self, peer) -> None:
        """Attach the receiving end of this port's link."""
        self.peer = peer

    # ------------------------------------------------------------------
    # Push path
    # ------------------------------------------------------------------
    def send(self, pkt: Packet) -> None:
        """Enqueue a packet for transmission (may drop at the queue)."""
        self.pkts_enqueued += 1
        dropped = self.queue.push(pkt)
        qbytes = self.queue.bytes_queued
        if qbytes > self.max_qlen_bytes:
            self.max_qlen_bytes = qbytes
        qpkts = len(self.queue)
        if qpkts > self.max_qlen_pkts:
            self.max_qlen_pkts = qpkts
        if dropped:
            self.pkts_dropped += len(dropped)
            if self.on_drop is not None:
                for victim in dropped:
                    self.on_drop(victim, self.hop_index)
        if not self.busy:
            # Idle port: if the queue is somehow non-empty (race with
            # pull), keep FIFO semantics by going through it.
            self._start_next()

    # ------------------------------------------------------------------
    # Pull path
    # ------------------------------------------------------------------
    def kick(self) -> None:
        """Notify the port that new work may be available.

        Harmless if the port is busy; it re-checks on completion anyway.
        """
        if not self.busy:
            self._start_next()

    # ------------------------------------------------------------------
    # Transmit machinery
    # ------------------------------------------------------------------
    def _start_next(self) -> None:
        pkt = self.queue.pop()
        if pkt is None and self.pull_source is not None:
            pkt = self.pull_source()
            if pkt is not None:
                self.pkts_pulled += 1
        if pkt is None:
            return
        self.busy = True
        tx = pkt.size * 8.0 / self.rate_bps
        self.env.schedule(tx, self._tx_done, pkt)

    def _tx_done(self, pkt: Packet) -> None:
        self.bytes_sent += pkt.size
        self.pkts_sent += 1
        peer = self.peer
        if peer is not None:
            self.env.schedule(self.prop_delay, peer.receive, pkt)
        self.busy = False
        self._start_next()

    def queued_packets(self) -> int:
        return len(self.queue)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "busy" if self.busy else "idle"
        return f"Port({self.name}, {state}, queued={len(self.queue)})"
