"""The two-tier multi-rooted tree fabric of the paper.

Default dimensions match pFabric/pHost: 9 racks x 16 hosts = 144 hosts,
10 Gbps access links, 4 core switches each with one 40 Gbps link per
rack (full bisection bandwidth: 144 Gbps), 200 ns propagation per link,
36 kB per-port buffers.  Everything is parametric so tests and CI-scale
experiments can instantiate small fabrics.

Hop taxonomy (paper Figure 5(f)):

1. end-host NIC queue,
2. aggregation (ToR) switch upstream queue,
3. core switch queue,
4. aggregation (ToR) switch downstream queue.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.net.node import Host
from repro.net.packet import Packet
from repro.net.port import Port
from repro.net.queues import PriorityQueue
from repro.net.routing import SPRAY, make_core_route, make_tor_route
from repro.net.switch import Switch
from repro.sim.engine import EventLoop
from repro.sim.randoms import SeededRng
from repro.sim.units import HEADER_BYTES, MSS_BYTES, gbps, nsec

__all__ = ["TopologyConfig", "Fabric", "HOP_NAMES"]

HOP_NAMES = {1: "host NIC", 2: "ToR up", 3: "core", 4: "ToR down"}

QueueFactory = Callable[[int], object]


def _default_queue_factory(capacity_bytes: int) -> PriorityQueue:
    return PriorityQueue(capacity_bytes)


@dataclass
class TopologyConfig:
    """Dimensions and link parameters of the fabric.

    The defaults are the paper's evaluation topology.
    """

    n_racks: int = 9
    hosts_per_rack: int = 16
    n_cores: int = 4
    access_gbps: float = 10.0
    core_gbps: float = 40.0
    propagation_delay: float = nsec(200)
    buffer_bytes: int = 36_000
    load_balancing: str = SPRAY
    n_priority_bands: int = 8
    #: Core oversubscription factor: 1.0 is the paper's full-bisection
    #: fabric; f > 1 divides every core link's rate by f.  The paper's
    #: §2.3 argument (spraying empties the core) assumes f = 1; the
    #: oversubscription ablation bench shows what breaks otherwise.
    oversubscription: float = 1.0

    def __post_init__(self) -> None:
        if self.n_racks < 1 or self.hosts_per_rack < 1 or self.n_cores < 1:
            raise ValueError("topology dimensions must be positive")
        if self.access_gbps <= 0 or self.core_gbps <= 0:
            raise ValueError("link rates must be positive")
        if self.buffer_bytes < 2 * (MSS_BYTES + HEADER_BYTES):
            raise ValueError("buffers must hold at least two MTUs")
        if self.oversubscription < 1.0:
            raise ValueError("oversubscription factor must be >= 1.0")

    @property
    def n_hosts(self) -> int:
        return self.n_racks * self.hosts_per_rack

    @property
    def access_bps(self) -> float:
        return gbps(self.access_gbps)

    @property
    def core_bps(self) -> float:
        return gbps(self.core_gbps) / self.oversubscription

    @property
    def mtu_tx_time(self) -> float:
        """Transmission time of one MTU on the access link — the paper's
        base time unit for tokens, epochs and timeouts."""
        return (MSS_BYTES + HEADER_BYTES) * 8.0 / self.access_bps

    def rack_of(self, host_id: int) -> int:
        return host_id // self.hosts_per_rack

    @classmethod
    def paper(cls) -> "TopologyConfig":
        """The exact evaluation topology of the paper."""
        return cls()

    @classmethod
    def small(cls, n_racks: int = 3, hosts_per_rack: int = 4, n_cores: int = 2) -> "TopologyConfig":
        """A scaled-down fabric for tests and fast experiments."""
        return cls(n_racks=n_racks, hosts_per_rack=hosts_per_rack, n_cores=n_cores)


class Fabric:
    """A built network: hosts, ToR switches, core switches, and links.

    Drop accounting is centralized here: every port reports drops with
    its hop index, and `drops_by_hop` / `drops_by_type` accumulate them.
    """

    def __init__(
        self,
        env: EventLoop,
        config: TopologyConfig,
        rng: SeededRng,
        queue_factory: Optional[QueueFactory] = None,
        host_queue_factory: Optional[QueueFactory] = None,
    ) -> None:
        self.env = env
        self.config = config
        self.rng = rng.stream("fabric")
        qf = queue_factory or _default_queue_factory
        host_qf = host_queue_factory or qf
        self.drops_by_hop: Dict[int, int] = {1: 0, 2: 0, 3: 0, 4: 0}
        self.drops_total = 0
        self.dropped_packets: List[Packet] = []
        self.keep_dropped = False  # tests can flip this on
        self.drop_hook: Optional[Callable[[Packet, int], None]] = None
        # Injected-fault drops (repro.faults) are ledgered separately
        # from the congestion drops above so golden digests and the
        # Fig. 5e/f drop accounting are untouched by fault plans.
        self.fault_drops_by_hop: Dict[int, int] = {1: 0, 2: 0, 3: 0, 4: 0}
        self.fault_drops_total = 0
        self.fault_drops_by_reason: Dict[str, int] = {}
        self.fault_drop_hook: Optional[Callable[[Packet, int], None]] = None

        cfg = config
        prop = cfg.propagation_delay
        rack_of = cfg.rack_of

        self.hosts: List[Host] = []
        self.tors: List[Switch] = []
        self.cores: List[Switch] = []

        # Hosts and their NIC ports (hop 1)
        for hid in range(cfg.n_hosts):
            port = Port(
                env,
                cfg.access_bps,
                prop,
                host_qf(cfg.buffer_bytes),
                name=f"h{hid}.nic",
                hop_index=1,
                on_drop=self._record_drop,
            )
            self.hosts.append(Host(hid, rack_of(hid), port))

        # Core switches
        for cid in range(cfg.n_cores):
            self.cores.append(Switch(cid, "core"))

        # ToR switches with down ports (hop 4) and up ports (hop 2)
        for rid in range(cfg.n_racks):
            tor = Switch(rid, "tor")
            down_ports: Dict[int, Port] = {}
            for hid in range(rid * cfg.hosts_per_rack, (rid + 1) * cfg.hosts_per_rack):
                port = Port(
                    env,
                    cfg.access_bps,
                    prop,
                    qf(cfg.buffer_bytes),
                    name=f"tor{rid}.down.h{hid}",
                    hop_index=4,
                    on_drop=self._record_drop,
                )
                port.connect(self.hosts[hid])
                tor.add_port(port)
                down_ports[hid] = port
                self.hosts[hid].port.connect(tor)
            up_ports: List[Port] = []
            for cid in range(cfg.n_cores):
                port = Port(
                    env,
                    cfg.core_bps,
                    prop,
                    qf(cfg.buffer_bytes),
                    name=f"tor{rid}.up.c{cid}",
                    hop_index=2,
                    on_drop=self._record_drop,
                )
                port.connect(self.cores[cid])
                tor.add_port(port)
                up_ports.append(port)
            tor.route = make_tor_route(
                down_ports,
                up_ports,
                rack_of,
                rid,
                self.rng.stream(f"tor{rid}"),
                mode=cfg.load_balancing,
                n_hosts=cfg.n_hosts,
            )
            self.tors.append(tor)

        # Core switch down ports (hop 3), one per rack
        for cid, core in enumerate(self.cores):
            rack_ports: List[Port] = []
            for rid in range(cfg.n_racks):
                port = Port(
                    env,
                    cfg.core_bps,
                    prop,
                    qf(cfg.buffer_bytes),
                    name=f"core{cid}.down.tor{rid}",
                    hop_index=3,
                    on_drop=self._record_drop,
                )
                port.connect(self.tors[rid])
                core.add_port(port)
                rack_ports.append(port)
            core.route = make_core_route(rack_ports, rack_of, n_hosts=cfg.n_hosts)

    # ------------------------------------------------------------------
    def _record_drop(self, pkt: Packet, hop_index: int) -> None:
        self.drops_by_hop[hop_index] = self.drops_by_hop.get(hop_index, 0) + 1
        self.drops_total += 1
        if self.keep_dropped:
            self.dropped_packets.append(pkt)
        if self.drop_hook is not None:
            self.drop_hook(pkt, hop_index)

    def record_fault_drop(self, pkt: Packet, hop_index: int, reason: str = "fault") -> None:
        """Ledger one injected drop (loss model, dead link, scripted)."""
        self.fault_drops_by_hop[hop_index] = self.fault_drops_by_hop.get(hop_index, 0) + 1
        self.fault_drops_total += 1
        self.fault_drops_by_reason[reason] = self.fault_drops_by_reason.get(reason, 0) + 1
        if self.fault_drop_hook is not None:
            self.fault_drop_hook(pkt, hop_index)

    # ------------------------------------------------------------------
    def host(self, host_id: int) -> Host:
        return self.hosts[host_id]

    def same_rack(self, a: int, b: int) -> bool:
        return self.config.rack_of(a) == self.config.rack_of(b)

    def hop_count(self, src: int, dst: int) -> int:
        """Number of output ports a packet traverses from src to dst."""
        return 2 if self.same_rack(src, dst) else 4

    def path_rates(self, src: int, dst: int) -> List[float]:
        """Link rates (bps) along the path, in traversal order."""
        cfg = self.config
        if self.same_rack(src, dst):
            return [cfg.access_bps, cfg.access_bps]
        return [cfg.access_bps, cfg.core_bps, cfg.core_bps, cfg.access_bps]

    def base_rtt(self, src: int, dst: int) -> float:
        """Unloaded control-packet round-trip time between two hosts."""
        one_way = self.one_way_delay(src, dst, HEADER_BYTES)
        return 2.0 * one_way

    def one_way_delay(self, src: int, dst: int, pkt_bytes: int) -> float:
        """Unloaded delay for one packet of ``pkt_bytes`` src -> dst."""
        cfg = self.config
        rates = self.path_rates(src, dst)
        bits = pkt_bytes * 8.0
        return sum(bits / r for r in rates) + cfg.propagation_delay * len(rates)

    def opt_fct(self, size_bytes: int, src: int, dst: int) -> float:
        """Ideal flow completion time on an idle network.

        Store-and-forward pipelining: all n packets serialize back to
        back on the source access link; the final (possibly short)
        packet then crosses the remaining hops unobstructed.  This is
        the paper's OPT(i) denominator (flow alone in the network),
        computed under the same forwarding model as the simulator so
        slowdown >= 1 by construction.
        """
        from repro.net.packet import Flow  # local import to avoid cycle at module load

        flow = Flow(-1, src, dst, size_bytes, 0.0) if src != dst else None
        if flow is None:
            raise ValueError("src == dst")
        cfg = self.config
        rates = self.path_rates(src, dst)
        access = rates[0]
        total = 0.0
        for seq in range(flow.n_pkts):
            total += flow.wire_bytes_of(seq) * 8.0 / access
        last_wire = flow.wire_bytes_of(flow.n_pkts - 1) * 8.0
        for rate in rates[1:]:
            total += last_wire / rate
        total += cfg.propagation_delay * len(rates)
        return total

    def all_ports(self) -> List[Port]:
        """Every output port in the fabric (hosts, ToRs, cores)."""
        ports: List[Port] = [h.port for h in self.hosts]
        for switch in list(self.tors) + list(self.cores):
            ports.extend(switch.ports)
        return ports

    def utilization_by_hop(self, duration: float) -> Dict[int, float]:
        """Mean link utilization per hop class over ``duration`` seconds.

        Utilization is bytes actually serialized divided by link
        capacity x time, averaged across the ports of each hop class
        (1 = host NICs, 2 = ToR up, 3 = core, 4 = ToR down).  Useful to
        confirm §2.3's claim that the sprayed core runs far below the
        edges.
        """
        if duration <= 0:
            raise ValueError("duration must be positive")
        sums: Dict[int, float] = {}
        counts: Dict[int, int] = {}
        for port in self.all_ports():
            frac = port.bytes_sent * 8.0 / (port.rate_bps * duration)
            sums[port.hop_index] = sums.get(port.hop_index, 0.0) + frac
            counts[port.hop_index] = counts.get(port.hop_index, 0) + 1
        return {h: sums[h] / counts[h] for h in sums}

    def reset_counters(self) -> None:
        self.drops_by_hop = {1: 0, 2: 0, 3: 0, 4: 0}
        self.drops_total = 0
        self.dropped_packets = []
        self.fault_drops_by_hop = {1: 0, 2: 0, 3: 0, 4: 0}
        self.fault_drops_total = 0
        self.fault_drops_by_reason = {}
        for port in self.all_ports():
            port.bytes_sent = 0
            port.pkts_sent = 0
            port.max_qlen_bytes = 0
            port.max_qlen_pkts = 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        cfg = self.config
        return (
            f"Fabric({cfg.n_hosts} hosts, {cfg.n_racks} racks, "
            f"{cfg.n_cores} cores, {cfg.access_gbps:g}G/{cfg.core_gbps:g}G)"
        )
