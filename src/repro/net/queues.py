"""Per-port packet queues.

Two queue disciplines cover everything in the paper:

* :class:`PriorityQueue` — the commodity switch queue pHost and Fastpass
  assume: a handful of strict-priority FIFO bands sharing one small byte
  buffer, drop-tail on overflow.  ("they do provide some basic features:
  a few priority levels (typically 8-10)" — paper §2.1.)
* :class:`PFabricQueue` — pFabric's specialized queue: packets carry a
  `remaining` priority value (remaining un-ACKed packets of the flow);
  on overflow the *lowest-priority* (largest ``remaining``) packet in
  the buffer is evicted; dequeue picks the oldest packet of the flow
  with the most urgent packet (the starvation-avoidance rule from
  pFabric §3 / the footnote of the pHost paper).

Both scans in PFabricQueue are O(n), which is fine because the whole
point of pFabric is that buffers are tiny (36 kB ~ 24 packets).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional

from repro.net.packet import Packet

__all__ = ["PriorityQueue", "PFabricQueue", "QueueFullError"]

class _ReadOnlyDropList(list):
    """The shared empty push() return, with the read-only contract
    *enforced*: a caller appending to (or otherwise mutating) the
    sentinel would silently corrupt every later "nothing dropped"
    return, so every mutator raises instead.  Still a ``list`` subclass
    — ``dropped == []``, truthiness, and iteration behave exactly like
    the plain literal the hot path used before."""

    __slots__ = ()

    def _refuse(self, *args, **kwargs):
        raise TypeError(
            "push() returned the shared no-drop sentinel; it is read-only "
            "(copy it with list(...) if you need to mutate)"
        )

    append = extend = insert = remove = clear = sort = reverse = _refuse
    __setitem__ = __delitem__ = __iadd__ = __imul__ = _refuse
    pop = _refuse


#: Shared "nothing dropped" return — saves one list allocation per push
#: on the hot path.  Read-only by construction (see _ReadOnlyDropList).
_NO_DROP: List[Packet] = _ReadOnlyDropList()


class QueueFullError(RuntimeError):
    """Raised only by strict APIs in tests; data-path drops are returns."""


class PriorityQueue:
    """Strict-priority multi-band FIFO with a shared byte budget.

    ``push`` returns the list of dropped packets (the incoming packet,
    drop-tail, possibly empty), ``pop`` returns the next packet to
    serialize or None.
    """

    __slots__ = (
        "capacity_bytes",
        "bands",
        "bytes_queued",
        "pkts_queued",
        "_n_bands",
        "_lo",
    )

    def __init__(self, capacity_bytes: int, n_bands: int = 8) -> None:
        if n_bands < 1:
            raise ValueError("need at least one priority band")
        self.capacity_bytes = capacity_bytes
        self._n_bands = n_bands
        self.bands: List[Deque[Packet]] = [deque() for _ in range(n_bands)]
        self.bytes_queued = 0
        # Maintained packet count: ports read queue occupancy on every
        # send for the high-water marks, so len() must not be O(bands).
        self.pkts_queued = 0
        # Lowest band that may be non-empty (pop scans from here instead
        # of from band 0 every time).
        self._lo = 0

    @property
    def n_bands(self) -> int:
        return self._n_bands

    def push(self, pkt: Packet) -> List[Packet]:
        """Enqueue; returns dropped packets (drop-tail: incoming only).

        The returned list is owned by the queue when empty — read-only.
        """
        if self.bytes_queued + pkt.size > self.capacity_bytes:
            return [pkt]
        band = pkt.priority
        if band < 0:
            band = 0
        elif band >= self._n_bands:
            band = self._n_bands - 1
        self.bands[band].append(pkt)
        if band < self._lo:
            self._lo = band
        self.bytes_queued += pkt.size
        self.pkts_queued += 1
        return _NO_DROP

    def pop(self) -> Optional[Packet]:
        if not self.pkts_queued:
            return None
        bands = self.bands
        i = self._lo
        while not bands[i]:
            i += 1
        self._lo = i
        pkt = bands[i].popleft()
        self.bytes_queued -= pkt.size
        self.pkts_queued -= 1
        return pkt

    def peek(self) -> Optional[Packet]:
        for band in self.bands:
            if band:
                return band[0]
        return None

    def __len__(self) -> int:
        return self.pkts_queued

    def __bool__(self) -> bool:
        return self.pkts_queued > 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"PriorityQueue({self.bytes_queued}/{self.capacity_bytes}B, "
            f"{len(self)} pkts)"
        )


class PFabricQueue:
    """pFabric's priority-drop / priority-dequeue queue.

    Priority of a packet is its ``remaining`` field (fewer remaining
    un-ACKed packets = more urgent).  Control/ACK packets are stamped
    ``remaining = 0`` by the pFabric agent, so they are effectively
    never dropped — mirroring pFabric's high-priority ACKs.

    Dequeue implements the starvation-avoidance rule: find the packet
    with the minimum ``remaining`` value, then transmit the *earliest
    arrived* packet belonging to that packet's flow (which may be a
    different, older packet stamped with a larger remaining value).
    """

    __slots__ = (
        "capacity_bytes",
        "pkts",
        "bytes_queued",
        "pkts_queued",
        "_arrival_seq",
        "_stamps",
    )

    def __init__(self, capacity_bytes: int, n_bands: int = 8) -> None:
        # n_bands accepted (and ignored) so both queue types share a factory
        # signature.
        self.capacity_bytes = capacity_bytes
        self.pkts: List[Packet] = []
        self.bytes_queued = 0
        self.pkts_queued = 0  # == len(pkts); attribute so ports read it O(1)
        self._arrival_seq = 0
        self._stamps: List[int] = []  # arrival order, parallel to pkts

    def push(self, pkt: Packet) -> List[Packet]:
        """Enqueue with priority-aware eviction; returns dropped packets.

        The returned list is owned by the queue when empty — read-only.
        """
        self._arrival_seq += 1
        self.pkts.append(pkt)
        self._stamps.append(self._arrival_seq)
        self.bytes_queued += pkt.size
        self.pkts_queued += 1
        if self.bytes_queued <= self.capacity_bytes:
            return _NO_DROP
        dropped: List[Packet] = []
        while self.bytes_queued > self.capacity_bytes and self.pkts:
            victim_idx = self._worst_index()
            victim = self.pkts.pop(victim_idx)
            self._stamps.pop(victim_idx)
            self.bytes_queued -= victim.size
            self.pkts_queued -= 1
            dropped.append(victim)
        return dropped

    def _worst_index(self) -> int:
        """Index of the least-urgent packet (largest remaining; ties:
        most recently arrived, so older packets survive)."""
        worst = 0
        worst_key = (self.pkts[0].remaining, self._stamps[0])
        for i in range(1, len(self.pkts)):
            key = (self.pkts[i].remaining, self._stamps[i])
            if key > worst_key:
                worst_key = key
                worst = i
        return worst

    def pop(self) -> Optional[Packet]:
        if not self.pkts:
            return None
        pkts = self.pkts
        # 1. most urgent packet
        best = 0
        best_key = (pkts[0].remaining, self._stamps[0])
        for i in range(1, len(pkts)):
            key = (pkts[i].remaining, self._stamps[i])
            if key < best_key:
                best_key = key
                best = i
        urgent = pkts[best]
        # 2. earliest queued packet of that packet's flow
        flow = urgent.flow
        chosen = best
        if flow is not None:
            for i, p in enumerate(pkts):
                if p.flow is flow:
                    chosen = i
                    break
        pkt = pkts.pop(chosen)
        self._stamps.pop(chosen)
        self.bytes_queued -= pkt.size
        self.pkts_queued -= 1
        return pkt

    def peek(self) -> Optional[Packet]:
        return self.pkts[0] if self.pkts else None

    def __len__(self) -> int:
        return len(self.pkts)

    def __bool__(self) -> bool:
        return bool(self.pkts)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"PFabricQueue({self.bytes_queued}/{self.capacity_bytes}B, {len(self.pkts)} pkts)"
