"""Switches.

Switches here are deliberately dumb, mirroring the paper's commodity
assumption: on receive, pick an output port (routing/spraying decision)
and enqueue.  All interesting behaviour lives in the per-port queues
(:mod:`repro.net.queues`) and in the routing closure installed by the
topology builder (:mod:`repro.net.routing`).
"""

from __future__ import annotations

from typing import Callable, List

from repro.net.node import Node
from repro.net.packet import Packet
from repro.net.port import Port

__all__ = ["Switch"]

RouteFn = Callable[[Packet], Port]


class Switch(Node):
    """An output-queued switch with a pluggable routing function."""

    __slots__ = ("kind", "ports", "route", "pkts_forwarded")

    def __init__(self, node_id: int, kind: str, name: str = "") -> None:
        super().__init__(node_id, name=name or f"{kind}{node_id}")
        self.kind = kind  # "tor" | "core"
        self.ports: List[Port] = []
        self.route: RouteFn = _unrouted
        self.pkts_forwarded = 0

    def add_port(self, port: Port) -> Port:
        self.ports.append(port)
        return port

    def receive(self, pkt: Packet) -> None:
        pkt.hops += 1
        self.pkts_forwarded += 1
        self.route(pkt).send(pkt)


def _unrouted(pkt: Packet) -> Port:  # pragma: no cover - config error path
    raise RuntimeError(f"switch has no routing function installed (pkt={pkt!r})")
