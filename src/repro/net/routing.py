"""Routing and load-balancing policies for the two-tier fabric.

The paper relies on *packet spraying*: each packet of an inter-rack flow
is sent to a core switch chosen uniformly at random, which (together
with full bisection bandwidth) removes essentially all congestion from
the core (§2.3).  We also provide per-flow ECMP as an ablation, since
the paper cites both options as commodity features.

These functions build routing closures for :class:`repro.net.switch.Switch`.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.net.packet import Packet
from repro.net.port import Port
from repro.sim.randoms import SeededRng

__all__ = ["make_tor_route", "make_core_route", "SPRAY", "ECMP"]

SPRAY = "spray"
ECMP = "ecmp"


def make_tor_route(
    down_ports: Dict[int, Port],
    up_ports: List[Port],
    rack_of: Callable[[int], int],
    rack_id: int,
    rng: SeededRng,
    mode: str = SPRAY,
) -> Callable[[Packet], Port]:
    """Routing closure for a top-of-rack switch.

    Local destinations go straight down; remote ones go up via spraying
    (uniform per-packet) or ECMP (hash of flow id, per-flow stable).
    """
    n_up = len(up_ports)
    if mode not in (SPRAY, ECMP):
        raise ValueError(f"unknown load-balancing mode: {mode}")

    def route(pkt: Packet) -> Port:
        dst = pkt.dst
        if rack_of(dst) == rack_id:
            return down_ports[dst]
        if n_up == 1:
            return up_ports[0]
        if mode == SPRAY:
            return up_ports[rng.randrange(n_up)]
        fid = pkt.flow.fid if pkt.flow is not None else pkt.seq
        return up_ports[hash(fid) % n_up]

    return route


def make_core_route(
    rack_ports: List[Port],
    rack_of: Callable[[int], int],
) -> Callable[[Packet], Port]:
    """Routing closure for a core switch: one port per rack, downhill only."""

    def route(pkt: Packet) -> Port:
        return rack_ports[rack_of(pkt.dst)]

    return route
