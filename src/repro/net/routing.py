"""Routing and load-balancing policies for the two-tier fabric.

The paper relies on *packet spraying*: each packet of an inter-rack flow
is sent to a core switch chosen uniformly at random, which (together
with full bisection bandwidth) removes essentially all congestion from
the core (§2.3).  We also provide per-flow ECMP as an ablation, since
the paper cites both options as commodity features.

These functions build routing closures for :class:`repro.net.switch.Switch`.
Per-destination decisions are precomputed into dense tables (the host-id
space is contiguous) so the per-packet work is one list index plus — for
sprayed inter-rack traffic — exactly the same single ``randrange`` draw
the uncached closure made, keeping sprayed runs bit-reproducible across
the cached and fallback paths.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.net.packet import Packet
from repro.net.port import Port
from repro.sim.randoms import SeededRng

__all__ = ["make_tor_route", "make_core_route", "SPRAY", "ECMP"]

SPRAY = "spray"
ECMP = "ecmp"


def make_tor_route(
    down_ports: Dict[int, Port],
    up_ports: List[Port],
    rack_of: Callable[[int], int],
    rack_id: int,
    rng: SeededRng,
    mode: str = SPRAY,
    n_hosts: Optional[int] = None,
) -> Callable[[Packet], Port]:
    """Routing closure for a top-of-rack switch.

    Local destinations go straight down; remote ones go up via spraying
    (uniform per-packet) or ECMP (hash of flow id, per-flow stable).

    With ``n_hosts`` the per-destination down-port lookup is a dense
    list indexed by host id (``None`` marks a remote destination — the
    spray candidates are the full ``up_ports`` list for every remote
    host, per §2.3's uniform spraying).  Without it the same table is
    built lazily, keyed by destination.
    """
    n_up = len(up_ports)
    if mode not in (SPRAY, ECMP):
        raise ValueError(f"unknown load-balancing mode: {mode}")
    up0 = up_ports[0] if n_up else None
    spray = mode == SPRAY
    # Identical draw stream to rng.randrange(n) for n > 0, minus two
    # wrapper frames per sprayed packet.
    randrange = rng.randbelow

    # Live uplink state, mutable so the fault layer can exclude dead
    # links (`state` = [candidate count, sole/fallback port]).  With
    # every link up, `live` is `up_ports` itself and the spray draw
    # stream is untouched.  With no live uplink at all, packets fall
    # back to the first (dead) uplink, whose tap black-holes them.
    live: List[Port] = list(up_ports)
    state: List[object] = [n_up, up0]

    def set_live_uplinks(ports) -> None:
        alive_set = set(id(p) for p in ports)
        alive = [p for p in up_ports if id(p) in alive_set]
        live[:] = alive
        if not alive:
            state[0] = 1
            state[1] = up0
        else:
            state[0] = len(alive)
            state[1] = alive[0]

    def live_uplinks() -> List[Port]:
        return list(live)

    if n_hosts is not None:
        # Dense precomputed table: down_ports holds exactly this rack's
        # hosts, so membership doubles as the locality test.
        local: List[Optional[Port]] = [down_ports.get(d) for d in range(n_hosts)]

        def route(pkt: Packet) -> Port:
            port = local[pkt.dst]
            if port is not None:
                return port
            n = state[0]
            if n == 1:
                return state[1]
            if spray:
                return live[randrange(n)]
            fid = pkt.flow.fid if pkt.flow is not None else pkt.seq
            return live[hash(fid) % n]

        route.set_live_uplinks = set_live_uplinks
        route.live_uplinks = live_uplinks
        return route

    lazy: Dict[int, Optional[Port]] = {}
    _miss = object()

    def route(pkt: Packet) -> Port:
        dst = pkt.dst
        port = lazy.get(dst, _miss)
        if port is _miss:
            port = down_ports[dst] if rack_of(dst) == rack_id else None
            lazy[dst] = port
        if port is not None:
            return port
        n = state[0]
        if n == 1:
            return state[1]
        if spray:
            return live[randrange(n)]
        fid = pkt.flow.fid if pkt.flow is not None else pkt.seq
        return live[hash(fid) % n]

    route.set_live_uplinks = set_live_uplinks
    route.live_uplinks = live_uplinks
    return route


def make_core_route(
    rack_ports: List[Port],
    rack_of: Callable[[int], int],
    n_hosts: Optional[int] = None,
) -> Callable[[Packet], Port]:
    """Routing closure for a core switch: one port per rack, downhill only.

    With ``n_hosts`` the rack lookup is flattened into one dense
    host-id -> port table (a single list index per packet)."""

    if n_hosts is not None:
        table: List[Port] = [rack_ports[rack_of(d)] for d in range(n_hosts)]

        def route(pkt: Packet) -> Port:
            return table[pkt.dst]

        return route

    def route(pkt: Packet) -> Port:
        return rack_ports[rack_of(pkt.dst)]

    return route
