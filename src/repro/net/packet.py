"""Packets and flows.

A single :class:`Packet` class serves every protocol; the per-protocol
fields (``remaining`` for pFabric's priority, ``data_seq``/``data_prio``
/``expiry`` for pHost tokens) are plain slots left at their defaults
when unused.  This keeps the hot path monomorphic — no isinstance
dispatch inside switch queues.
"""

from __future__ import annotations

from enum import IntEnum
from typing import Optional

from repro.sim.units import CONTROL_BYTES, HEADER_BYTES, MSS_BYTES, packets_for_bytes

__all__ = ["PacketType", "Packet", "Flow", "CONTROL_TYPES"]


class PacketType(IntEnum):
    """Wire packet kinds across all three protocols."""

    DATA = 0
    RTS = 1        # pHost: request-to-send, one per flow
    TOKEN = 2      # pHost: per-packet send credit
    ACK = 3        # pHost: per-flow ACK; pFabric/Fastpass: per-packet ACK
    REQUEST = 4    # Fastpass: demand report to the arbiter
    SCHEDULE = 5   # Fastpass: allocation from the arbiter


#: Types that ride at the highest priority and are 40 bytes on the wire.
CONTROL_TYPES = frozenset(
    {PacketType.RTS, PacketType.TOKEN, PacketType.ACK, PacketType.REQUEST, PacketType.SCHEDULE}
)


class Flow:
    """A transfer request between two hosts.

    This is the protocol-independent record; transports keep their own
    per-flow state objects referencing it.  ``size_bytes`` counts
    payload; on the wire each packet additionally carries
    ``HEADER_BYTES`` of header.
    """

    __slots__ = (
        "fid",
        "src",
        "dst",
        "size_bytes",
        "n_pkts",
        "arrival",
        "tenant",
        "deadline",
        "request_id",
        "finish",
        "start_time",
    )

    def __init__(
        self,
        fid: int,
        src: int,
        dst: int,
        size_bytes: int,
        arrival: float,
        tenant: int = 0,
        deadline: Optional[float] = None,
        request_id: Optional[int] = None,
    ) -> None:
        if src == dst:
            raise ValueError(f"flow {fid}: src == dst == {src}")
        if size_bytes < 0:
            raise ValueError(f"flow {fid}: negative size {size_bytes}")
        self.fid = fid
        self.src = src
        self.dst = dst
        self.size_bytes = size_bytes
        self.n_pkts = packets_for_bytes(size_bytes)
        self.arrival = arrival
        self.tenant = tenant
        self.deadline = deadline
        self.request_id = request_id
        #: Set by the metrics collector when the destination has all data.
        self.finish: Optional[float] = None
        #: Time the source transmitted the first data packet (None until then).
        self.start_time: Optional[float] = None

    # ------------------------------------------------------------------
    def payload_of(self, seq: int) -> int:
        """Payload bytes of data packet ``seq`` (the last may be short)."""
        if seq < 0 or seq >= self.n_pkts:
            raise ValueError(f"flow {self.fid}: bad seq {seq} (n_pkts={self.n_pkts})")
        if seq < self.n_pkts - 1:
            return MSS_BYTES
        last = self.size_bytes - MSS_BYTES * (self.n_pkts - 1)
        return max(last, 0)

    def wire_bytes_of(self, seq: int) -> int:
        """Wire bytes (payload + header) of data packet ``seq``."""
        return self.payload_of(seq) + HEADER_BYTES

    @property
    def completed(self) -> bool:
        return self.finish is not None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Flow(fid={self.fid}, {self.src}->{self.dst}, "
            f"{self.size_bytes}B/{self.n_pkts}pkts, t={self.arrival:.6f})"
        )


class Packet:
    """One packet on the wire.

    Attributes:
        ptype: Packet kind (see :class:`PacketType`).
        flow: Owning flow (None only for synthetic test packets).
        seq: Data sequence number, or the seq an ACK/token refers to.
        src/dst: Endpoint host ids.
        size: Wire size in bytes (payload + header for data; 40 for
            control).
        priority: Strict-priority band for commodity queues; 0 is the
            highest.
        remaining: pFabric priority value — remaining un-ACKed packets
            of the flow at send time; lower = more urgent.
        data_prio: pHost tokens: the priority band the granted data
            packet should use.
        expiry: pHost tokens: absolute time at which the token lapses.
        ecn: ECN codepoint — 0 (not marked) or 1 (congestion
            experienced).  Set by marking dataplane programs
            (:class:`repro.dataplane.DctcpEcnProgram`) on data packets
            and echoed back on ACKs by ECN-aware receivers.
        hops: Number of switch ports traversed so far (drop accounting).
        born: Time the packet was created (queueing-delay metrics).
        slot: Row index in the run's
            :class:`~repro.net.columns.PacketColumns` store when this
            packet is a pooled columnar view; -1 for plain packets.
    """

    __slots__ = (
        "ptype",
        "flow",
        "seq",
        "src",
        "dst",
        "size",
        "priority",
        "remaining",
        "data_prio",
        "expiry",
        "ecn",
        "hops",
        "born",
        "slot",
        "payload",
    )

    def __init__(
        self,
        ptype: PacketType,
        flow: Optional[Flow],
        seq: int,
        src: int,
        dst: int,
        size: int,
        priority: int = 0,
        born: float = 0.0,
    ) -> None:
        self.ptype = ptype
        self.flow = flow
        self.seq = seq
        self.src = src
        self.dst = dst
        self.size = size
        self.priority = priority
        self.remaining = 0
        self.data_prio = 0
        self.expiry = 0.0
        self.ecn = 0
        self.hops = 0
        self.born = born
        self.slot = -1  # columnar row index (see repro.net.columns)
        self.payload = None  # free-form (Fastpass schedules)

    @property
    def is_control(self) -> bool:
        return self.ptype != PacketType.DATA

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        fid = self.flow.fid if self.flow is not None else None
        return (
            f"Packet({self.ptype.name}, flow={fid}, seq={self.seq}, "
            f"{self.src}->{self.dst}, {self.size}B, prio={self.priority})"
        )


def control_packet(
    ptype: PacketType,
    flow: Optional[Flow],
    seq: int,
    src: int,
    dst: int,
    born: float,
) -> Packet:
    """Build a 40-byte highest-priority control packet."""
    return Packet(ptype, flow, seq, src, dst, CONTROL_BYTES, priority=0, born=born)
