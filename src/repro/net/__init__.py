"""Network fabric substrate (S2-S4).

Models the paper's commodity datacenter fabric: a two-tier multi-rooted
tree of output-queued switches with small per-port buffers, a few strict
priority levels, per-packet spraying across uplinks, and 10/40 Gbps
links with 200 ns propagation delay.

Key pieces:

* :mod:`repro.net.packet` — the packet and flow records.
* :mod:`repro.net.queues` — commodity strict-priority drop-tail queues
  and the pFabric priority-drop queue.
* :mod:`repro.net.port` — an output port: queue + transmitter + link.
* :mod:`repro.net.switch` / :mod:`repro.net.node` — switches and hosts.
* :mod:`repro.net.topology` — builds the fabric and computes ideal FCTs.
"""

from repro.net.packet import Flow, Packet, PacketType
from repro.net.queues import PFabricQueue, PriorityQueue
from repro.net.port import Port
from repro.net.node import Host, Node
from repro.net.switch import Switch
from repro.net.topology import Fabric, TopologyConfig
from repro.net.fattree import FatTreeConfig, FatTreeFabric

__all__ = [
    "Flow",
    "Packet",
    "PacketType",
    "PriorityQueue",
    "PFabricQueue",
    "Port",
    "Node",
    "Host",
    "Switch",
    "Fabric",
    "TopologyConfig",
    "FatTreeConfig",
    "FatTreeFabric",
]
