"""Fabric nodes: the common base and end hosts.

A :class:`Host` owns one uplink :class:`~repro.net.port.Port` toward its
top-of-rack switch and delegates received packets to the transport agent
installed on it.  Hop accounting: a host's NIC egress is hop 1 in the
paper's Figure 5(f) taxonomy.
"""

from __future__ import annotations

from typing import Optional

from repro.net.packet import Packet
from repro.net.port import Port

__all__ = ["Node", "Host"]


class Node:
    """Anything that can terminate a link."""

    __slots__ = ("node_id", "name")

    def __init__(self, node_id: int, name: str = "") -> None:
        self.node_id = node_id
        self.name = name or f"node{node_id}"

    def receive(self, pkt: Packet) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}({self.name})"


class Host(Node):
    """An end host: NIC port + a pluggable transport agent."""

    __slots__ = ("port", "agent", "rack", "pool")

    def __init__(self, node_id: int, rack: int, port: Port) -> None:
        super().__init__(node_id, name=f"h{node_id}")
        self.rack = rack
        self.port = port
        self.agent = None  # set by the experiment runner
        self.pool = None  # PacketPool, set by the runner when pooling is on

    def install_agent(self, agent) -> None:
        """Attach a transport agent; wires up the NIC pull source."""
        self.agent = agent
        pull = getattr(agent, "nic_pull", None)
        if pull is not None:
            self.port.pull_source = pull

    def receive(self, pkt: Packet) -> None:
        agent = self.agent
        if agent is None:
            raise RuntimeError(f"{self.name}: packet arrived but no agent installed")
        agent.on_packet(pkt)
        # Delivery is a packet's end of life: nothing retains it past
        # on_packet (hooks that do must declare retains_packets, which
        # keeps pool disabled), so it can be recycled here.
        pool = self.pool
        if pool is not None:
            pool.release(pkt)

    def send(self, pkt: Packet) -> None:
        """Push a packet into the NIC egress queue."""
        self.port.send(pkt)
