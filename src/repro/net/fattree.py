"""Three-tier k-ary fat-tree fabric (Al-Fares et al., SIGCOMM 2008).

The paper's evaluation uses a two-tier multi-rooted tree, but its §2.1
grounds the full-bisection assumption in "topologies such as Fat-Tree
[3] or VL2 [11]".  This module provides the classic k-ary fat-tree so
the protocol results can be checked on a deeper fabric with two levels
of packet spraying:

* k pods; each pod has k/2 edge switches and k/2 aggregation switches;
* each edge switch serves k/2 hosts and uplinks to every agg in its pod;
* (k/2)^2 core switches; aggregation switch j of every pod connects to
  cores j*(k/2) .. j*(k/2)+k/2-1;
* k^3/4 hosts total, full bisection bandwidth with uniform link rates.

Cross-pod paths traverse six output ports; hop classes extend the
two-tier taxonomy: 1 host NIC, 2 edge up, 3 agg up, 4 core down,
5 agg down, 6 edge down.

`FatTreeFabric` exposes the same surface as
:class:`repro.net.topology.Fabric` (hosts, `opt_fct`, drop accounting,
`utilization_by_hop`, ...), so every protocol, driver and analysis in
the repository runs on it unchanged — see
`benchmarks/test_ablation_topology.py`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.net.node import Host
from repro.net.packet import Packet
from repro.net.port import Port
from repro.net.queues import PriorityQueue
from repro.net.routing import ECMP, SPRAY
from repro.net.switch import Switch
from repro.sim.engine import EventLoop
from repro.sim.randoms import SeededRng
from repro.sim.units import HEADER_BYTES, MSS_BYTES, gbps, nsec

__all__ = ["FatTreeConfig", "FatTreeFabric", "FAT_TREE_HOP_NAMES"]

FAT_TREE_HOP_NAMES = {
    1: "host NIC",
    2: "edge up",
    3: "agg up",
    4: "core",
    5: "agg down",
    6: "edge down",
}

QueueFactory = Callable[[int], object]


def _default_queue_factory(capacity_bytes: int) -> PriorityQueue:
    return PriorityQueue(capacity_bytes)


@dataclass
class FatTreeConfig:
    """Dimensions of a k-ary fat-tree.

    ``k`` must be even and >= 2.  All links run at ``link_gbps``
    (uniform rates are what make the classic fat-tree rearrangeably
    non-blocking).
    """

    k: int = 4
    link_gbps: float = 10.0
    propagation_delay: float = nsec(200)
    buffer_bytes: int = 36_000
    load_balancing: str = SPRAY
    n_priority_bands: int = 8

    def __post_init__(self) -> None:
        if self.k < 2 or self.k % 2 != 0:
            raise ValueError("fat-tree k must be an even integer >= 2")
        if self.link_gbps <= 0:
            raise ValueError("link rate must be positive")
        if self.buffer_bytes < 2 * (MSS_BYTES + HEADER_BYTES):
            raise ValueError("buffers must hold at least two MTUs")
        if self.load_balancing not in (SPRAY, ECMP):
            raise ValueError("load_balancing must be 'spray' or 'ecmp'")

    # -- fabric-interface compatibility (what configs/resolvers use) ----
    @property
    def half(self) -> int:
        return self.k // 2

    @property
    def n_pods(self) -> int:
        return self.k

    @property
    def hosts_per_edge(self) -> int:
        return self.half

    @property
    def hosts_per_pod(self) -> int:
        return self.half * self.half

    @property
    def n_hosts(self) -> int:
        return self.k * self.hosts_per_pod

    @property
    def n_cores(self) -> int:
        return self.half * self.half

    @property
    def access_gbps(self) -> float:
        return self.link_gbps

    @property
    def core_gbps(self) -> float:
        return self.link_gbps

    @property
    def access_bps(self) -> float:
        return gbps(self.link_gbps)

    @property
    def core_bps(self) -> float:
        return gbps(self.link_gbps)

    @property
    def oversubscription(self) -> float:
        return 1.0

    @property
    def mtu_tx_time(self) -> float:
        return (MSS_BYTES + HEADER_BYTES) * 8.0 / self.access_bps

    # -- host coordinates ------------------------------------------------
    def pod_of(self, host_id: int) -> int:
        return host_id // self.hosts_per_pod

    def edge_of(self, host_id: int) -> int:
        """Global edge-switch index of a host."""
        return host_id // self.hosts_per_edge

    def rack_of(self, host_id: int) -> int:
        """Alias: an edge switch is the fat-tree's "rack"."""
        return self.edge_of(host_id)


class FatTreeFabric:
    """A built k-ary fat-tree with the :class:`Fabric` interface."""

    def __init__(
        self,
        env: EventLoop,
        config: FatTreeConfig,
        rng: SeededRng,
        queue_factory: Optional[QueueFactory] = None,
        host_queue_factory: Optional[QueueFactory] = None,
    ) -> None:
        self.env = env
        self.config = config
        self.rng = rng.stream("fattree")
        qf = queue_factory or _default_queue_factory
        host_qf = host_queue_factory or qf
        self.drops_by_hop: Dict[int, int] = {h: 0 for h in FAT_TREE_HOP_NAMES}
        self.drops_total = 0
        self.dropped_packets: List[Packet] = []
        self.keep_dropped = False
        self.drop_hook = None
        # Injected-fault ledger, mirroring Fabric (see repro.faults).
        self.fault_drops_by_hop: Dict[int, int] = {h: 0 for h in FAT_TREE_HOP_NAMES}
        self.fault_drops_total = 0
        self.fault_drops_by_reason: Dict[str, int] = {}
        self.fault_drop_hook = None

        cfg = config
        half = cfg.half
        prop = cfg.propagation_delay
        rate = cfg.access_bps
        spray = cfg.load_balancing == SPRAY

        def make_port(name: str, hop: int, queue_factory=qf) -> Port:
            return Port(
                env, rate, prop, queue_factory(cfg.buffer_bytes),
                name=name, hop_index=hop, on_drop=self._record_drop,
            )

        # Hosts
        self.hosts: List[Host] = []
        for hid in range(cfg.n_hosts):
            port = Port(
                env, rate, prop, host_qf(cfg.buffer_bytes),
                name=f"h{hid}.nic", hop_index=1, on_drop=self._record_drop,
            )
            self.hosts.append(Host(hid, cfg.rack_of(hid), port))

        # Switch shells
        self.edges: List[Switch] = [
            Switch(i, "edge", name=f"edge{i}") for i in range(cfg.k * half)
        ]
        self.aggs: List[Switch] = [
            Switch(i, "agg", name=f"agg{i}") for i in range(cfg.k * half)
        ]
        self.cores: List[Switch] = [
            Switch(i, "core", name=f"core{i}") for i in range(cfg.n_cores)
        ]

        # Edge wiring: down to hosts, up to every agg in the pod
        edge_down: List[Dict[int, Port]] = []
        edge_up: List[List[Port]] = []
        for e, edge in enumerate(self.edges):
            pod = e // half
            down: Dict[int, Port] = {}
            for hid in range(e * half, (e + 1) * half):
                port = make_port(f"edge{e}.down.h{hid}", 6)
                port.connect(self.hosts[hid])
                edge.add_port(port)
                down[hid] = port
                self.hosts[hid].port.connect(edge)
            ups: List[Port] = []
            for j in range(half):
                agg = self.aggs[pod * half + j]
                port = make_port(f"edge{e}.up.agg{agg.node_id}", 2)
                port.connect(agg)
                edge.add_port(port)
                ups.append(port)
            edge_down.append(down)
            edge_up.append(ups)

        # Agg wiring: down to every edge in the pod, up to its core group
        agg_down: List[List[Port]] = []   # indexed by agg, then edge-in-pod
        agg_up: List[List[Port]] = []
        for a, agg in enumerate(self.aggs):
            pod = a // half
            j = a % half
            downs: List[Port] = []
            for i in range(half):
                edge = self.edges[pod * half + i]
                port = make_port(f"agg{a}.down.edge{edge.node_id}", 5)
                port.connect(edge)
                agg.add_port(port)
                downs.append(port)
            ups: List[Port] = []
            for c in range(j * half, (j + 1) * half):
                port = make_port(f"agg{a}.up.core{c}", 3)
                port.connect(self.cores[c])
                agg.add_port(port)
                ups.append(port)
            agg_down.append(downs)
            agg_up.append(ups)

        # Core wiring: one port per pod, down to that pod's agg j
        core_down: List[List[Port]] = []
        for c, core in enumerate(self.cores):
            j = c // half  # which agg position this core serves
            downs: List[Port] = []
            for pod in range(cfg.k):
                agg = self.aggs[pod * half + j]
                port = make_port(f"core{c}.down.pod{pod}", 4)
                port.connect(agg)
                core.add_port(port)
                downs.append(port)
            core_down.append(downs)

        # Routing closures
        pod_of = cfg.pod_of
        edge_of = cfg.edge_of
        fabric_rng = self.rng

        def edge_route(e: int):
            pod = e // half
            down = edge_down[e]
            ups = edge_up[e]

            def route(pkt: Packet) -> Port:
                dst = pkt.dst
                if edge_of(dst) == e:
                    return down[dst]
                if spray:
                    return ups[fabric_rng.randrange(half)]
                fid = pkt.flow.fid if pkt.flow is not None else pkt.seq
                return ups[hash(fid) % half]

            return route

        def agg_route(a: int):
            pod = a // half
            downs = agg_down[a]
            ups = agg_up[a]

            def route(pkt: Packet) -> Port:
                dst = pkt.dst
                if pod_of(dst) == pod:
                    return downs[edge_of(dst) % half]
                if spray:
                    return ups[fabric_rng.randrange(half)]
                fid = pkt.flow.fid if pkt.flow is not None else pkt.seq
                return ups[hash(fid) % half]

            return route

        def core_route(c: int):
            downs = core_down[c]

            def route(pkt: Packet) -> Port:
                return downs[pod_of(pkt.dst)]

            return route

        for e, edge in enumerate(self.edges):
            edge.route = edge_route(e)
        for a, agg in enumerate(self.aggs):
            agg.route = agg_route(a)
        for c, core in enumerate(self.cores):
            core.route = core_route(c)

    # ------------------------------------------------------------------
    # Fabric interface
    # ------------------------------------------------------------------
    def _record_drop(self, pkt: Packet, hop_index: int) -> None:
        self.drops_by_hop[hop_index] = self.drops_by_hop.get(hop_index, 0) + 1
        self.drops_total += 1
        if self.keep_dropped:
            self.dropped_packets.append(pkt)
        if self.drop_hook is not None:
            self.drop_hook(pkt, hop_index)

    def record_fault_drop(self, pkt: Packet, hop_index: int, reason: str = "fault") -> None:
        """Ledger one injected drop (see :meth:`Fabric.record_fault_drop`)."""
        self.fault_drops_by_hop[hop_index] = self.fault_drops_by_hop.get(hop_index, 0) + 1
        self.fault_drops_total += 1
        self.fault_drops_by_reason[reason] = self.fault_drops_by_reason.get(reason, 0) + 1
        if self.fault_drop_hook is not None:
            self.fault_drop_hook(pkt, hop_index)

    def host(self, host_id: int) -> Host:
        return self.hosts[host_id]

    def same_rack(self, a: int, b: int) -> bool:
        return self.config.edge_of(a) == self.config.edge_of(b)

    def hop_count(self, src: int, dst: int) -> int:
        cfg = self.config
        if cfg.edge_of(src) == cfg.edge_of(dst):
            return 2
        if cfg.pod_of(src) == cfg.pod_of(dst):
            return 4
        return 6

    def path_rates(self, src: int, dst: int) -> List[float]:
        return [self.config.access_bps] * self.hop_count(src, dst)

    def one_way_delay(self, src: int, dst: int, pkt_bytes: int) -> float:
        rates = self.path_rates(src, dst)
        bits = pkt_bytes * 8.0
        return sum(bits / r for r in rates) + self.config.propagation_delay * len(rates)

    def base_rtt(self, src: int, dst: int) -> float:
        return 2.0 * self.one_way_delay(src, dst, HEADER_BYTES)

    def opt_fct(self, size_bytes: int, src: int, dst: int) -> float:
        from repro.net.packet import Flow

        if src == dst:
            raise ValueError("src == dst")
        flow = Flow(-1, src, dst, size_bytes, 0.0)
        rates = self.path_rates(src, dst)
        access = rates[0]
        total = 0.0
        for seq in range(flow.n_pkts):
            total += flow.wire_bytes_of(seq) * 8.0 / access
        last_wire = flow.wire_bytes_of(flow.n_pkts - 1) * 8.0
        for rate in rates[1:]:
            total += last_wire / rate
        total += self.config.propagation_delay * len(rates)
        return total

    def all_ports(self) -> List[Port]:
        ports: List[Port] = [h.port for h in self.hosts]
        for switch in self.edges + self.aggs + self.cores:
            ports.extend(switch.ports)
        return ports

    def utilization_by_hop(self, duration: float) -> Dict[int, float]:
        if duration <= 0:
            raise ValueError("duration must be positive")
        sums: Dict[int, float] = {}
        counts: Dict[int, int] = {}
        for port in self.all_ports():
            frac = port.bytes_sent * 8.0 / (port.rate_bps * duration)
            sums[port.hop_index] = sums.get(port.hop_index, 0.0) + frac
            counts[port.hop_index] = counts.get(port.hop_index, 0) + 1
        return {h: sums[h] / counts[h] for h in sums}

    def reset_counters(self) -> None:
        self.drops_by_hop = {h: 0 for h in FAT_TREE_HOP_NAMES}
        self.drops_total = 0
        self.dropped_packets = []
        for port in self.all_ports():
            port.bytes_sent = 0
            port.pkts_sent = 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        cfg = self.config
        return f"FatTreeFabric(k={cfg.k}, {cfg.n_hosts} hosts, {cfg.link_gbps:g}G)"
