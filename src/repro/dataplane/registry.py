"""Dataplane registry: name -> :class:`~repro.dataplane.program.DataplaneProgram`.

Mirrors :mod:`repro.protocols.registry`: the experiment runner resolves
programs by name ("commodity", "pfabric", "dctcp"); external code can
register additional programs with :func:`register_dataplane` and select
them per run via ``ExperimentSpec.dataplane`` or the CLI's
``--dataplane`` flag (``--list-dataplanes`` shows what is installed).

Programs are stateless policy singletons (per-port state lives in each
:class:`~repro.dataplane.program.ProgramQueue`), so registering an
instance once and sharing it across runs is safe.
"""

from __future__ import annotations

from typing import Dict, List

from repro.dataplane.program import DataplaneProgram

__all__ = ["get_dataplane", "register_dataplane", "available_dataplanes"]

_REGISTRY: Dict[str, DataplaneProgram] = {}


def register_dataplane(program: DataplaneProgram) -> None:
    """Add (or replace) a program in the registry (keyed by its name)."""
    _REGISTRY[program.name] = program


def _ensure_builtins() -> None:
    if _REGISTRY:
        return
    from repro.dataplane.programs import (
        CommodityProgram,
        DctcpEcnProgram,
        PFabricProgram,
    )

    for program in (CommodityProgram(), PFabricProgram(), DctcpEcnProgram()):
        register_dataplane(program)


def get_dataplane(name: str) -> DataplaneProgram:
    """Look a program up by name; raises ValueError for unknown names."""
    _ensure_builtins()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown dataplane {name!r}; available: {sorted(_REGISTRY)}"
        ) from None


def available_dataplanes() -> List[str]:
    _ensure_builtins()
    return sorted(_REGISTRY)
