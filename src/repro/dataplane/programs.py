"""The built-in dataplane programs.

Two *reference* programs re-express the seed repository's queue classes
as match-action pipelines — the paper's commodity switch and pFabric's
custom silicon — and one *new* program (DCTCP-style ECN marking)
demonstrates that a plug-in needs nothing beyond the public stage API.

The reference programs also compile to the hand-optimized
``repro.net.queues`` classes when ``fused=True`` (the default at run
time, controlled by ``SimTuning.fused_dataplane``): the generic engine
is the semantic specification, the specialized class is the hot path,
and the determinism suite holds them byte-identical.
"""

from __future__ import annotations

from repro.net.packet import Packet, PacketType
from repro.net.queues import PFabricQueue, PriorityQueue
from repro.dataplane.program import DataplaneProgram, ProgramQueue

__all__ = ["CommodityProgram", "PFabricProgram", "DctcpEcnProgram"]


class CommodityProgram(DataplaneProgram):
    """The paper's commodity switch (§2.1): a few strict-priority FIFO
    bands over one shared byte budget, drop-tail on overflow.

    classify  -> the packet's ``priority`` field, clamped to the band
                 range;
    meter     -> nothing (commodity switches do not mark);
    evict     -> the incoming packet (drop-tail);
    schedule  -> lowest band first, FIFO within a band.
    """

    name = "commodity"

    def __init__(self, n_bands: int = 8) -> None:
        if n_bands < 1:
            raise ValueError("need at least one priority band")
        self.n_bands = n_bands

    def make_queue(self, capacity_bytes: int, *, fused: bool = True):
        if fused:
            return PriorityQueue(capacity_bytes, n_bands=self.n_bands)
        return ProgramQueue(self, capacity_bytes)

    def classify(self, pkt: Packet, q: ProgramQueue) -> int:
        band = pkt.priority
        if band < 0:
            return 0
        if band >= self.n_bands:
            return self.n_bands - 1
        return band

    # evict: inherited drop-tail.
    # schedule: inherited strict-priority FIFO.


class PFabricProgram(DataplaneProgram):
    """pFabric's specialized queue as a program.

    classify  -> single band (pFabric ignores priority bands; urgency
                 lives in ``remaining``);
    meter     -> nothing;
    evict     -> the least-urgent entry: max ``(remaining, stamp)``.
                 The incoming packet holds the newest stamp, so on an
                 urgency tie the *incoming* packet is dropped and older
                 buffered packets survive — exactly
                 ``PFabricQueue._worst_index``;
    schedule  -> starvation avoidance (paper footnote 1): the most
                 urgent entry — min ``(remaining, stamp)`` — selects a
                 flow; the earliest queued packet of that flow is
                 transmitted.
    """

    name = "pfabric"

    def make_queue(self, capacity_bytes: int, *, fused: bool = True):
        if fused:
            return PFabricQueue(capacity_bytes)
        return ProgramQueue(self, capacity_bytes)

    def evict(self, pkt: Packet, q: ProgramQueue) -> int:
        pkts = q.pkts
        stamps = q.stamps
        worst = 0
        worst_key = (pkts[0].remaining, stamps[0])
        for i in range(1, len(pkts)):
            key = (pkts[i].remaining, stamps[i])
            if key > worst_key:
                worst_key = key
                worst = i
        return worst

    def schedule(self, q: ProgramQueue) -> int:
        pkts = q.pkts
        stamps = q.stamps
        best = 0
        best_key = (pkts[0].remaining, stamps[0])
        for i in range(1, len(pkts)):
            key = (pkts[i].remaining, stamps[i])
            if key < best_key:
                best_key = key
                best = i
        flow = pkts[best].flow
        if flow is None:
            return best
        # List order is arrival order, so the first same-flow entry is
        # the earliest queued packet of the selected flow.
        for i, p in enumerate(pkts):
            if p.flow is flow:
                return i
        return best  # pragma: no cover - flow is in pkts by construction


class DctcpEcnProgram(DataplaneProgram):
    """DCTCP's switch side: commodity forwarding + ECN threshold marking.

    Identical to :class:`CommodityProgram` except for two stages:

    meter     -> a DATA packet arriving while the instantaneous buffer
                 occupancy is at or above the marking threshold ``K``
                 gets its ECN codepoint set (DCTCP paper §3.2: mark on
                 instantaneous queue length, not an average — the
                 low-threshold marking *is* the algorithm).  Control
                 packets are never marked: the 40-byte ACK band cannot
                 build a standing queue, and marking ACKs would feed
                 the sender's estimator noise from the reverse path;
    evict     -> the newest packet of the lowest-priority (highest)
                 band, i.e. per-class drop-tail on a strict-priority
                 scheduler rather than shared-buffer drop-tail.  DCTCP
                 deployments carry ACKs in a protected high-priority
                 class; modelling that here keeps 40-byte ACKs from
                 being tail-dropped behind a data burst (a lost final
                 ACK would otherwise force the sender to retransmit a
                 flow the receiver already completed).  For data-only
                 overflow the victim is the incoming packet itself, so
                 the behaviour degenerates to commodity drop-tail.

    There is deliberately no fused specialization: this program always
    runs on the generic :class:`ProgramQueue` engine, proving the
    plug-in path end to end (per-stage ledgers included).
    """

    name = "dctcp"

    def __init__(self, n_bands: int = 8, mark_threshold_bytes: int = 9_000) -> None:
        if n_bands < 1:
            raise ValueError("need at least one priority band")
        if mark_threshold_bytes < 0:
            raise ValueError("mark threshold must be >= 0")
        self.n_bands = n_bands
        self.mark_threshold_bytes = mark_threshold_bytes

    def classify(self, pkt: Packet, q: ProgramQueue) -> int:
        band = pkt.priority
        if band < 0:
            return 0
        if band >= self.n_bands:
            return self.n_bands - 1
        return band

    def meter(self, pkt: Packet, q: ProgramQueue) -> bool:
        if (
            pkt.ptype == PacketType.DATA
            and q.bytes_queued >= self.mark_threshold_bytes
        ):
            pkt.ecn = 1
            return True
        return False

    def evict(self, pkt: Packet, q: ProgramQueue) -> int:
        bands = q.bands
        stamps = q.stamps
        worst = 0
        worst_key = (bands[0], stamps[0])
        for i in range(1, len(bands)):
            key = (bands[i], stamps[i])
            if key > worst_key:
                worst_key = key
                worst = i
        return worst
