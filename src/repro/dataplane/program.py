"""The match-action dataplane program API.

The paper's central hardware claim (§2.1) is a *dichotomy*: pHost and
Fastpass run on commodity switches (a few strict-priority bands,
drop-tail), while pFabric needs custom silicon (priority drop and
priority dequeue on a per-packet ``remaining`` value).  The seed
repository hardcoded that dichotomy as exactly two queue classes; every
further switch behaviour (ECN marking, policing, trimming, WFQ) would
have been a third fork of ``repro.net.queues``.

This module replaces the fork point with a small match-action pipeline
in the style of P4: a :class:`DataplaneProgram` is a *stateless policy
object* describing four explicit stages, and a :class:`ProgramQueue` is
the generic per-port engine that executes the policy against bounded
per-port state (:class:`PortState`).  Per packet:

1. **classify** — map the packet to a traffic class (a band index);
2. **meter / mark** — observe occupancy, optionally mark the packet
   (e.g. DCTCP's ECN bit).  Marking never removes a packet;
3. **admit / evict** — while the buffer exceeds its byte budget, the
   program names a victim (the incoming packet for drop-tail, a
   buffered one for pFabric-style eviction);
4. **schedule** — on dequeue, pick which buffered packet serializes
   next.

The engine owns all byte/packet accounting and the per-stage ledgers,
so a buggy program can mis-prioritize but cannot corrupt conservation:
``classified == admitted + dropped_incoming`` and ``admitted ==
scheduled + queued + evicted`` hold by construction and are audited by
:class:`repro.validate.ConservationAuditor`.

Hot-path note: the two reference programs (commodity, pFabric) also
*compile* to the hand-optimized ``repro.net.queues`` classes — see
:meth:`DataplaneProgram.make_queue` and ``SimTuning.fused_dataplane``.
The generic engine is the semantic reference: the determinism suite
proves both forms produce byte-identical run digests.
"""

from __future__ import annotations

from typing import List, Optional

from repro.net.packet import Packet
from repro.net.queues import _NO_DROP

__all__ = ["PortState", "DataplaneProgram", "ProgramQueue"]


class PortState:
    """Bounded per-port pipeline state: one counter per stage outcome.

    Every field is a monotone counter (ints only — no packet
    references, no per-flow maps), so attaching the ledgers to all
    ports of the paper fabric costs a fixed few hundred bytes per
    port.  Invariants the engine maintains:

    * ``classified == admitted + dropped_incoming``
    * ``admitted == scheduled + queued + evicted``  (queued = live
      occupancy, read from the queue)
    * ``dropped_incoming + evicted ==`` the owning port's
      ``pkts_dropped``
    * ``marked <= classified`` (marking conserves packets)
    """

    __slots__ = (
        "classified",
        "marked",
        "admitted",
        "dropped_incoming",
        "evicted",
        "scheduled",
    )

    def __init__(self) -> None:
        self.classified = 0        # packets entering the pipeline
        self.marked = 0            # packets the meter stage marked
        self.admitted = 0          # packets that entered the buffer
        self.dropped_incoming = 0  # incoming packets refused (drop-tail)
        self.evicted = 0           # buffered packets displaced
        self.scheduled = 0         # packets handed to the serializer

    def to_dict(self) -> dict:
        return {name: getattr(self, name) for name in self.__slots__}

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        body = ", ".join(f"{k}={v}" for k, v in self.to_dict().items())
        return f"PortState({body})"


class DataplaneProgram:
    """One switch/NIC behaviour as four match-action stages.

    Programs are stateless policies: the same instance serves every
    port of a run (per-port state lives in the :class:`ProgramQueue`
    that executes it), so a program object is safe to keep in a
    registry and share between fabrics.

    Subclasses override the stage methods; the defaults implement the
    simplest commodity behaviour (single band, no marking, drop-tail,
    FIFO).  ``q`` is the executing :class:`ProgramQueue` — programs
    read occupancy (``q.bytes_queued``, ``q.capacity_bytes``) and the
    parallel entry arrays (``q.pkts`` / ``q.bands`` / ``q.stamps``,
    read-only) but never mutate them; all removal goes through victim
    *indices* returned to the engine.
    """

    #: Registry key; subclasses must override.
    name = "program"

    # -- compilation -----------------------------------------------------
    def make_queue(self, capacity_bytes: int, *, fused: bool = True):
        """Build the per-port queue executing this program.

        ``fused=True`` lets a program return a hand-optimized
        specialized queue (the PR-4 hot path) when one exists; the
        base class and any plug-in without a specialization always
        return the generic engine.  Both forms must be behaviourally
        identical — the determinism suite runs the reference programs
        with ``SimTuning(fused_dataplane=False)`` to prove it.
        """
        return ProgramQueue(self, capacity_bytes)

    # -- stage 1: classify ----------------------------------------------
    def classify(self, pkt: Packet, q: "ProgramQueue") -> int:
        """Traffic class (band index) for an arriving packet."""
        return 0

    # -- stage 2: meter / mark -------------------------------------------
    def meter(self, pkt: Packet, q: "ProgramQueue") -> bool:
        """Observe occupancy; optionally mark ``pkt`` (returns True).

        Marking mutates packet metadata (e.g. the ECN codepoint) but
        never drops: a marked packet continues down the pipeline, which
        is exactly why the auditor can require ``marked <= classified``
        independently of the drop ledgers.
        """
        return False

    # -- stage 3: admit / evict ------------------------------------------
    def evict(self, pkt: Packet, q: "ProgramQueue") -> int:
        """Index of the entry to drop while the buffer is over budget.

        Called by the engine *after* the incoming packet is
        provisionally appended, repeatedly until occupancy fits.
        Returning the incoming packet's own index (always the last
        entry on the first call) is drop-tail; returning a buffered
        entry's index is pFabric-style displacement.  The default is
        drop-tail.
        """
        return len(q.pkts) - 1

    # -- stage 4: schedule -----------------------------------------------
    def schedule(self, q: "ProgramQueue") -> int:
        """Index of the entry to serialize next (never called empty).

        The default is strict-priority across bands, FIFO within a
        band (the commodity discipline).
        """
        bands = q.bands
        best = 0
        best_band = bands[0]
        for i in range(1, len(bands)):
            band = bands[i]
            if band < best_band:
                best_band = band
                best = i
        return best

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}(name={self.name!r})"


class ProgramQueue:
    """Generic engine executing one :class:`DataplaneProgram` per port.

    Implements the exact queue protocol :class:`repro.net.port.Port`
    depends on — ``push(pkt) -> dropped list``, ``pop() -> packet |
    None``, ``bytes_queued``, ``pkts_queued``, ``peek``, ``__len__``,
    ``__bool__`` — so ports cannot tell a program apart from the
    hand-written queue classes.

    Storage is three parallel arrays in arrival order: packets, their
    classified bands, and monotone arrival stamps.  List order *is*
    stamp order (removals preserve it), which the pFabric reference
    program's tie-breaking and starvation-avoidance rules rely on.
    """

    __slots__ = (
        "program",
        "capacity_bytes",
        "state",
        "pkts",
        "bands",
        "stamps",
        "bytes_queued",
        "pkts_queued",
        "_arrival_seq",
    )

    def __init__(self, program: DataplaneProgram, capacity_bytes: int) -> None:
        self.program = program
        self.capacity_bytes = capacity_bytes
        self.state = PortState()
        self.pkts: List[Packet] = []
        self.bands: List[int] = []
        self.stamps: List[int] = []
        self.bytes_queued = 0
        self.pkts_queued = 0
        self._arrival_seq = 0

    # ------------------------------------------------------------------
    def push(self, pkt: Packet) -> List[Packet]:
        """Run classify -> meter -> admit/evict; returns dropped packets.

        The returned list is owned by the queue when empty — read-only
        (same contract as ``repro.net.queues``).
        """
        state = self.state
        program = self.program
        state.classified += 1
        band = program.classify(pkt, self)
        if program.meter(pkt, self):
            state.marked += 1
        # Provisional append: admit/evict sees the full candidate set
        # (buffer + incoming) with the incoming holding the newest stamp.
        self._arrival_seq += 1
        self.pkts.append(pkt)
        self.bands.append(band)
        self.stamps.append(self._arrival_seq)
        self.bytes_queued += pkt.size
        self.pkts_queued += 1
        if self.bytes_queued <= self.capacity_bytes:
            state.admitted += 1
            return _NO_DROP
        dropped: List[Packet] = []
        incoming_dropped = False
        while self.bytes_queued > self.capacity_bytes and self.pkts:
            victim = self._remove_at(program.evict(pkt, self))
            if victim is pkt:
                incoming_dropped = True
            else:
                state.evicted += 1
            dropped.append(victim)
        if incoming_dropped:
            state.dropped_incoming += 1
        else:
            state.admitted += 1
        return dropped

    def pop(self) -> Optional[Packet]:
        if not self.pkts:
            return None
        pkt = self._remove_at(self.program.schedule(self))
        self.state.scheduled += 1
        return pkt

    def peek(self) -> Optional[Packet]:
        """The packet :meth:`pop` would return, without removing it."""
        if not self.pkts:
            return None
        return self.pkts[self.program.schedule(self)]

    # ------------------------------------------------------------------
    def _remove_at(self, index: int) -> Packet:
        pkt = self.pkts.pop(index)
        self.bands.pop(index)
        self.stamps.pop(index)
        self.bytes_queued -= pkt.size
        self.pkts_queued -= 1
        return pkt

    def __len__(self) -> int:
        return self.pkts_queued

    def __bool__(self) -> bool:
        return self.pkts_queued > 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"ProgramQueue({self.program.name}, "
            f"{self.bytes_queued}/{self.capacity_bytes}B, {len(self)} pkts)"
        )
