"""Pluggable dataplane programs (match-action switch pipeline).

See docs/DATAPLANE.md for the programming model.  Public surface:

* :class:`DataplaneProgram` — the four-stage policy API
  (classify -> meter/mark -> admit/evict -> schedule);
* :class:`ProgramQueue` — the generic per-port engine executing a
  program with bounded :class:`PortState` ledgers;
* :class:`CommodityProgram` / :class:`PFabricProgram` — the paper's two
  switch models as reference programs (compiling to the hand-optimized
  ``repro.net.queues`` classes on the hot path);
* :class:`DctcpEcnProgram` — DCTCP-style ECN threshold marking, the
  first plug-in landed purely through the public API;
* :func:`register_dataplane` / :func:`get_dataplane` /
  :func:`available_dataplanes` — the name registry the runner and CLI
  resolve against;
* :class:`DataplaneBinding` — the per-run record of which programs a
  simulation is executing (held at ``SimContext.dataplane``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dataplane.program import DataplaneProgram, PortState, ProgramQueue
from repro.dataplane.programs import (
    CommodityProgram,
    DctcpEcnProgram,
    PFabricProgram,
)
from repro.dataplane.registry import (
    available_dataplanes,
    get_dataplane,
    register_dataplane,
)

__all__ = [
    "DataplaneProgram",
    "PortState",
    "ProgramQueue",
    "CommodityProgram",
    "PFabricProgram",
    "DctcpEcnProgram",
    "DataplaneBinding",
    "available_dataplanes",
    "get_dataplane",
    "register_dataplane",
]


@dataclass(frozen=True)
class DataplaneBinding:
    """Which programs one run's fabric is executing, and in which form.

    ``fused`` records whether the reference programs were compiled to
    their specialized queue classes (the default) or run on the generic
    :class:`ProgramQueue` engine; obs and the auditors discover engine
    ports by looking for a ``state`` ledger on each port's queue, so
    they work for any mix.
    """

    switch: DataplaneProgram
    host: DataplaneProgram
    fused: bool = True

    @property
    def names(self) -> str:
        if self.switch.name == self.host.name:
            return self.switch.name
        return f"{self.switch.name}/{self.host.name}"
