"""The fault injector: turns a :class:`FaultPlan` into wire-level taps
and scheduled outage events.

The injector is an ordinary instrument hook (``ctx.add_hook``); the
runner installs it only for non-empty plans, which is what makes the
empty plan byte-identical to no plan at all.  It interposes on links by
replacing each transmitting port's ``peer`` with a :class:`_LinkTap`
(ports re-read ``self.peer`` on every serialization-done event, so the
swap covers both the fused and classic transmit paths).  A tapped
packet is dropped *after* the port's send counters ran — from the
fabric's point of view the packet died on the wire, so the per-port
conservation ledger keeps balancing and only the end-to-end ledger
needs the separate fault column.

Determinism: fault draws come from ``SeededRng(plan.seed)`` with one
derived stream per link, never from the run's own RNG — injecting
faults cannot perturb workload generation or spray draws, and a given
(plan, fault seed) replays the same drops against the same traffic.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.faults.models import BernoulliLoss, GilbertElliottLoss
from repro.faults.plan import FaultPlan, HostPause, LinkDown, ScriptedDrop
from repro.net.packet import Packet
from repro.sim.randoms import SeededRng

__all__ = ["FaultInjector"]

#: Cap on corrupted packets retained for inspection; the count keeps
#: incrementing past it.
CORRUPT_RETAIN_CAP = 4096

#: Fault-drop reason labels (stable — instruments key off them).
REASONS = ("loss", "corrupt", "link_down", "scripted")


class _LinkTap:
    """Receiving-end wrapper for one link.

    Sits between a port and its real peer: decides drop / corrupt /
    forward per packet.  ``forward_hook`` (tests only) observes every
    packet that actually crosses the wire.
    """

    __slots__ = (
        "injector",
        "real",
        "name",
        "hop",
        "model",
        "corrupt_rate",
        "rng",
        "down",
        "fault_drops",
        "pkts_forwarded",
        "forward_hook",
    )

    def __init__(
        self,
        injector: "FaultInjector",
        real,
        name: str,
        hop: int,
        model,
        corrupt_rate: float,
        rng: Optional[SeededRng],
    ) -> None:
        self.injector = injector
        self.real = real
        self.name = name
        self.hop = hop
        self.model = model
        self.corrupt_rate = corrupt_rate
        self.rng = rng
        self.down = False
        self.fault_drops = 0
        self.pkts_forwarded = 0
        self.forward_hook: Optional[Callable[[Packet, "_LinkTap"], None]] = None

    def receive(self, pkt: Packet) -> None:
        inj = self.injector
        if self.down:
            inj._ledger(pkt, self, "link_down")
            return
        if inj.scripted_active and inj._match_scripted(pkt, self):
            inj._ledger(pkt, self, "scripted")
            return
        model = self.model
        if model is not None and model.lose(self.rng):
            inj._ledger(pkt, self, "loss")
            return
        rate = self.corrupt_rate
        if rate > 0.0 and self.rng.random() < rate:
            inj._record_corrupt(pkt, self)
            return
        self.pkts_forwarded += 1
        hook = self.forward_hook
        if hook is not None:
            hook(pkt, self)
        self.real.receive(pkt)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "down" if self.down else "up"
        return f"_LinkTap({self.name}, {state}, drops={self.fault_drops})"


class _RuleState:
    """Mutable consumption state of one :class:`ScriptedDrop` rule."""

    __slots__ = ("rule", "ptype_val", "skip_left", "remaining")

    def __init__(self, rule: ScriptedDrop) -> None:
        self.rule = rule
        self.ptype_val = rule.packet_type
        self.skip_left = rule.skip
        self.remaining = rule.count


class FaultInjector:
    """Instrument hook executing one :class:`FaultPlan`.

    Exposed on ``ctx.faults`` after binding.  ``retains_packets``
    mirrors the instrument contract from the packet-pool work: a
    corrupting plan holds dropped packets for inspection, so the runner
    must not recycle them through the pool.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self.retains_packets = plan.corrupt_rate > 0.0
        self.ctx = None
        self.taps: Dict[str, _LinkTap] = {}
        self.corrupted: List[Packet] = []
        self.pkts_corrupted = 0
        self.drops_by_reason: Dict[str, int] = {r: 0 for r in REASONS}
        self.links_down_now = 0
        self.link_down_events = 0
        self._rules: List[_RuleState] = []
        self.scripted_active = False
        self._spray_switch: Dict[str, object] = {}
        self._record_fault_drop = None
        self.blackouts_started = 0

    # ------------------------------------------------------------------
    # Hook protocol
    # ------------------------------------------------------------------
    def bind(self, ctx) -> None:
        if self.ctx is not None:
            raise RuntimeError("FaultInjector is single-use; build a new one per run")
        self.ctx = ctx
        ctx.faults = self
        plan = self.plan
        self._record_fault_drop = getattr(ctx.fabric, "record_fault_drop", None)
        self._rules = [_RuleState(r) for r in plan.scripted]
        self.scripted_active = bool(self._rules)
        if plan.wire_faults_active():
            self._install_taps(ctx)
            self._schedule_outages(ctx)
        self._schedule_blackouts(ctx)

    def finalize(self, ctx) -> None:  # matches the instrument interface
        pass

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def _install_taps(self, ctx) -> None:
        plan = self.plan
        root = SeededRng(plan.seed)
        for port in ctx.fabric.all_ports():
            if port.peer is None:  # pragma: no cover - unwired test port
                continue
            modeled = plan.models_link(port.name)
            model = None
            corrupt = 0.0
            rng = None
            if modeled:
                if plan.gilbert_elliott is not None:
                    model = GilbertElliottLoss(plan.gilbert_elliott)
                elif plan.loss_rate > 0.0:
                    model = BernoulliLoss(plan.loss_rate)
                corrupt = plan.corrupt_rate
                if model is not None or corrupt > 0.0:
                    rng = root.stream(port.name)
            tap = _LinkTap(self, port.peer, port.name, port.hop_index, model, corrupt, rng)
            port.peer = tap
            self.taps[port.name] = tap
        # Spray-table maintenance: which switch owns each ToR uplink
        # whose routing closure can exclude dead links.
        for tor in getattr(ctx.fabric, "tors", []):
            if getattr(tor.route, "set_live_uplinks", None) is None:
                continue
            for port in tor.ports:
                if port.hop_index == 2:
                    self._spray_switch[port.name] = tor

    def _schedule_outages(self, ctx) -> None:
        env = ctx.env
        events: List[LinkDown] = list(self.plan.link_downs)
        for pause in self.plan.host_pauses:
            events.extend(self._pause_as_downs(ctx, pause))
        for ev in events:
            tap = self.taps.get(ev.link)
            if tap is None:
                raise ValueError(
                    f"fault plan names unknown link {ev.link!r} "
                    f"(known: h*.nic, tor*.up.c*, tor*.down.h*, core*.down.tor*)"
                )
            env.schedule_at(ev.down_at, self._set_link_state, tap, True)
            if ev.up_at != float("inf"):
                env.schedule_at(ev.up_at, self._set_link_state, tap, False)

    def _pause_as_downs(self, ctx, pause: HostPause) -> List[LinkDown]:
        """A paused host is both of its links going dark."""
        hosts = ctx.fabric.hosts
        if pause.host >= len(hosts):
            raise ValueError(f"fault plan pauses unknown host {pause.host}")
        host = hosts[pause.host]
        links = [host.port.name]
        for name, tap in self.taps.items():
            if tap.real is host:
                links.append(name)
        return [
            LinkDown(link=name, down_at=pause.pause_at, up_at=pause.resume_at)
            for name in links
        ]

    def _schedule_blackouts(self, ctx) -> None:
        if not self.plan.arbiter_blackouts:
            return
        set_offline = getattr(ctx.shared, "set_offline", None)
        if set_offline is None:
            return  # no central arbiter in this protocol — inert
        env = ctx.env
        for b in self.plan.arbiter_blackouts:
            env.schedule_at(b.start, self._blackout, set_offline, True)
            env.schedule_at(b.end, self._blackout, set_offline, False)

    # ------------------------------------------------------------------
    # Event handlers
    # ------------------------------------------------------------------
    def _set_link_state(self, tap: _LinkTap, down: bool) -> None:
        if tap.down == down:
            return
        tap.down = down
        if down:
            self.links_down_now += 1
            self.link_down_events += 1
        else:
            self.links_down_now -= 1
        tor = self._spray_switch.get(tap.name)
        if tor is not None:
            live = [
                p
                for p in tor.ports
                if p.hop_index == 2 and not self.taps[p.name].down
            ]
            tor.route.set_live_uplinks(live)

    def _blackout(self, set_offline, offline: bool) -> None:
        if offline:
            self.blackouts_started += 1
        set_offline(offline)

    # ------------------------------------------------------------------
    # Per-packet bookkeeping
    # ------------------------------------------------------------------
    def _match_scripted(self, pkt: Packet, tap: _LinkTap) -> bool:
        for rs in self._rules:
            if rs.remaining == 0:
                continue
            rule = rs.rule
            if pkt.ptype != rs.ptype_val:
                continue
            if rule.hop is not None and rule.hop != tap.hop:
                continue
            if rule.link is not None and rule.link != tap.name:
                continue
            if rule.flow is not None and (
                pkt.flow is None or pkt.flow.fid != rule.flow
            ):
                continue
            if rule.seq is not None and pkt.seq != rule.seq:
                continue
            if rs.skip_left > 0:
                rs.skip_left -= 1
                return False  # matched, but still in the skip window
            rs.remaining -= 1
            if rs.remaining == 0 and all(x.remaining == 0 for x in self._rules):
                self.scripted_active = False
            return True
        return False

    def _ledger(self, pkt: Packet, tap: _LinkTap, reason: str) -> None:
        tap.fault_drops += 1
        self.drops_by_reason[reason] += 1
        if self._record_fault_drop is not None:
            self._record_fault_drop(pkt, tap.hop, reason)

    def _record_corrupt(self, pkt: Packet, tap: _LinkTap) -> None:
        self.pkts_corrupted += 1
        if len(self.corrupted) < CORRUPT_RETAIN_CAP:
            self.corrupted.append(pkt)
        self._ledger(pkt, tap, "corrupt")

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def drops_total(self) -> int:
        return sum(self.drops_by_reason.values())

    def register_instruments(self, registry) -> None:
        """Surface fault counters as pull-based gauges."""
        for reason in REASONS:
            registry.gauge(
                "fault.drops",
                lambda r=reason: self.drops_by_reason[r],
                reason=reason,
            )
        registry.gauge("fault.links_down", lambda: self.links_down_now)
        registry.gauge("fault.pkts_corrupted", lambda: self.pkts_corrupted)
        registry.gauge("fault.blackouts", lambda: self.blackouts_started)
