"""Declarative fault plans.

A :class:`FaultPlan` is a frozen value object carried on
``ExperimentSpec.faults``.  Freezing it matters twice over: the figure
driver memoizes runs on ``repr(spec)``, and the determinism suite
demands that the same plan + seed reproduce byte-identical digests —
both need a plan whose identity is exactly its field values.

Links are named by the transmitting port (``h3.nic``, ``tor0.up.c1``,
``tor2.down.h8``, ``core1.down.tor0`` — see
:data:`repro.net.topology.HOP_NAMES`); a fault on a link applies to
everything that port serializes onto the wire.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.net.packet import PacketType

__all__ = [
    "ArbiterBlackout",
    "FaultPlan",
    "GilbertElliott",
    "HostPause",
    "LinkDown",
    "ScriptedDrop",
    "parse_fault_plan",
]


@dataclass(frozen=True)
class GilbertElliott:
    """Parameters of the two-state Markov (Gilbert–Elliott) loss model.

    Each packet first draws a state transition (good→bad with
    probability ``p_enter_bad``, bad→good with ``p_exit_bad``), then a
    loss against the new state's loss probability.  The stationary
    fraction of time spent in the bad state is
    ``p_enter_bad / (p_enter_bad + p_exit_bad)``.
    """

    p_enter_bad: float
    p_exit_bad: float
    loss_good: float = 0.0
    loss_bad: float = 1.0

    def __post_init__(self) -> None:
        for name in ("p_enter_bad", "p_exit_bad"):
            v = getattr(self, name)
            if not 0.0 < v <= 1.0:
                raise ValueError(f"{name} must be in (0, 1], got {v}")
        for name in ("loss_good", "loss_bad"):
            v = getattr(self, name)
            if not 0.0 <= v <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {v}")

    @property
    def stationary_bad(self) -> float:
        """Long-run probability of being in the bad state."""
        return self.p_enter_bad / (self.p_enter_bad + self.p_exit_bad)

    @property
    def mean_loss(self) -> float:
        """Long-run per-packet loss probability."""
        pi = self.stationary_bad
        return pi * self.loss_bad + (1.0 - pi) * self.loss_good


@dataclass(frozen=True)
class LinkDown:
    """Take one link down at ``down_at``; restore it at ``up_at``.

    While down, every packet the port serializes is recorded as an
    injected ``link_down`` drop at the far end of the wire (the queue
    keeps draining — a dead link is a black hole, not backpressure).
    ``up_at`` of ``inf`` means the link never comes back.
    """

    link: str
    down_at: float
    up_at: float = float("inf")

    def __post_init__(self) -> None:
        if self.down_at < 0.0:
            raise ValueError("down_at must be >= 0")
        if self.up_at <= self.down_at:
            raise ValueError("up_at must be > down_at")


@dataclass(frozen=True)
class HostPause:
    """Freeze one host's connectivity over ``[pause_at, resume_at)``.

    Modeled as both of the host's links (its NIC uplink and the ToR
    port facing it) going down for the interval, so traffic in either
    direction is black-holed and the recovery timers must carry the
    flow across the outage.
    """

    host: int
    pause_at: float
    resume_at: float

    def __post_init__(self) -> None:
        if self.host < 0:
            raise ValueError("host must be >= 0")
        if self.pause_at < 0.0:
            raise ValueError("pause_at must be >= 0")
        if self.resume_at <= self.pause_at:
            raise ValueError("resume_at must be > pause_at")


@dataclass(frozen=True)
class ArbiterBlackout:
    """The Fastpass arbiter loses state over ``[start, end)``.

    Incoming REQUESTs during the window are lost and epochs elapse
    unallocated; sources must re-request after their RTO.  Inert for
    protocols without a central arbiter.
    """

    start: float
    end: float

    def __post_init__(self) -> None:
        if self.start < 0.0:
            raise ValueError("start must be >= 0")
        if self.end <= self.start:
            raise ValueError("end must be > start")


@dataclass(frozen=True)
class ScriptedDrop:
    """Drop exact packets by class — the loss-recovery tests' scalpel.

    After ``skip`` matching packets have passed, the next ``count``
    matches are dropped.  ``ptype`` is a :class:`PacketType` name
    (case-insensitive).  Optional filters narrow the match; note a
    packet traverses up to four links, so without a ``link`` or ``hop``
    filter one logical packet can match several times — tests pin
    ``hop=1`` (sender NIC) to count each packet once.
    """

    ptype: str
    count: int = 1
    skip: int = 0
    link: Optional[str] = None
    flow: Optional[int] = None
    seq: Optional[int] = None
    hop: Optional[int] = None

    def __post_init__(self) -> None:
        if self.ptype.upper() not in PacketType.__members__:
            raise ValueError(
                f"unknown packet type {self.ptype!r}; "
                f"expected one of {sorted(PacketType.__members__)}"
            )
        if self.count < 1:
            raise ValueError("count must be >= 1")
        if self.skip < 0:
            raise ValueError("skip must be >= 0")

    @property
    def packet_type(self) -> PacketType:
        return PacketType[self.ptype.upper()]


def _as_tuple(value):
    return tuple(value) if value is not None and not isinstance(value, tuple) else value


@dataclass(frozen=True)
class FaultPlan:
    """Everything the fault layer will do to one run.

    Attributes:
        loss_rate: Per-packet Bernoulli wire-loss probability.
        gilbert_elliott: Bursty-loss model (mutually exclusive with
            ``loss_rate``); each link gets an independent state machine.
        corrupt_rate: Per-packet corruption probability.  Corrupted
            packets are dropped from the receiver's point of view but
            *retained* by the injector for replay/inspection — which is
            why a corrupting plan disables the packet pool (see
            :attr:`FaultInjector.retains_packets`).
        loss_links: Restrict loss/corruption to these link names
            (``None`` = every link).
        link_downs / host_pauses / arbiter_blackouts: Scheduled outages.
        scripted: Exact-packet drop rules for unit tests.
        seed: Root of the fault layer's own RNG streams — deliberately
            independent of the run seed, so the same traffic can be
            replayed under different fault draws and vice versa.
    """

    loss_rate: float = 0.0
    gilbert_elliott: Optional[GilbertElliott] = None
    corrupt_rate: float = 0.0
    loss_links: Optional[Tuple[str, ...]] = None
    link_downs: Tuple[LinkDown, ...] = ()
    host_pauses: Tuple[HostPause, ...] = ()
    arbiter_blackouts: Tuple[ArbiterBlackout, ...] = ()
    scripted: Tuple[ScriptedDrop, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        # Coerce list-valued fields so equal plans repr identically.
        for name in ("loss_links", "link_downs", "host_pauses",
                     "arbiter_blackouts", "scripted"):
            coerced = _as_tuple(getattr(self, name))
            object.__setattr__(self, name, coerced)
        if not 0.0 <= self.loss_rate < 1.0:
            raise ValueError(f"loss_rate must be in [0, 1), got {self.loss_rate}")
        if not 0.0 <= self.corrupt_rate < 1.0:
            raise ValueError(
                f"corrupt_rate must be in [0, 1), got {self.corrupt_rate}"
            )
        if self.loss_rate > 0.0 and self.gilbert_elliott is not None:
            raise ValueError("loss_rate and gilbert_elliott are mutually exclusive")

    def is_empty(self) -> bool:
        """True iff the plan injects nothing: the runner installs no
        injector and the run is byte-identical to ``faults=None``."""
        return (
            self.loss_rate == 0.0
            and self.gilbert_elliott is None
            and self.corrupt_rate == 0.0
            and not self.link_downs
            and not self.host_pauses
            and not self.arbiter_blackouts
            and not self.scripted
        )

    def wire_faults_active(self) -> bool:
        """True iff any fault needs per-link wire taps (everything
        except arbiter blackouts, which live above the fabric)."""
        return (
            self.loss_rate > 0.0
            or self.gilbert_elliott is not None
            or self.corrupt_rate > 0.0
            or bool(self.link_downs)
            or bool(self.host_pauses)
            or bool(self.scripted)
        )

    def models_link(self, name: str) -> bool:
        """Does the stochastic loss/corruption model apply to ``name``?"""
        return self.loss_links is None or name in self.loss_links


def parse_fault_plan(text: str, seed: int = 0) -> FaultPlan:
    """Parse the CLI ``--faults`` spec string into a :class:`FaultPlan`.

    The spec is comma-separated clauses::

        loss=0.01                      Bernoulli loss on every link
        ge=0.05:0.3                    Gilbert-Elliott p_enter:p_exit
        ge=0.05:0.3:0.001:0.5          ... :loss_good:loss_bad
        corrupt=0.001                  corruption (disables the pool)
        links=tor0.up.c0+tor0.up.c1    restrict loss/corrupt to links
        down=tor0.up.c1@0.001:0.002    link down over [t1, t2)
        down=tor0.up.c1@0.001          ... forever
        pause=3@0.001:0.002            host 3 off the network
        blackout=0:0.0005              Fastpass arbiter outage
        drop=rts:1                     scripted: drop 1 RTS (at hop 1)
        drop=data:2:5                  ... skip 5 DATA, drop next 2

    Example: ``--faults loss=0.01,down=tor0.up.c1@0.001:0.002``.
    """
    loss_rate = 0.0
    ge: Optional[GilbertElliott] = None
    corrupt = 0.0
    links: Optional[Tuple[str, ...]] = None
    downs = []
    pauses = []
    blackouts = []
    scripted = []
    for clause in text.split(","):
        clause = clause.strip()
        if not clause:
            continue
        if "=" not in clause:
            raise ValueError(f"bad --faults clause {clause!r}: expected key=value")
        key, _, value = clause.partition("=")
        key = key.strip().lower()
        value = value.strip()
        try:
            if key == "loss":
                loss_rate = float(value)
            elif key == "ge":
                parts = [float(p) for p in value.split(":")]
                if len(parts) == 2:
                    ge = GilbertElliott(parts[0], parts[1])
                elif len(parts) == 4:
                    ge = GilbertElliott(parts[0], parts[1], parts[2], parts[3])
                else:
                    raise ValueError("ge takes 2 or 4 colon-separated floats")
            elif key == "corrupt":
                corrupt = float(value)
            elif key == "links":
                links = tuple(value.split("+"))
            elif key == "down":
                link, _, window = value.partition("@")
                if not window:
                    raise ValueError("down needs link@t1[:t2]")
                times = window.split(":")
                down_at = float(times[0])
                up_at = float(times[1]) if len(times) > 1 else float("inf")
                downs.append(LinkDown(link=link, down_at=down_at, up_at=up_at))
            elif key == "pause":
                host, _, window = value.partition("@")
                t1, _, t2 = window.partition(":")
                pauses.append(
                    HostPause(host=int(host), pause_at=float(t1), resume_at=float(t2))
                )
            elif key == "blackout":
                t1, _, t2 = value.partition(":")
                blackouts.append(ArbiterBlackout(start=float(t1), end=float(t2)))
            elif key == "drop":
                parts = value.split(":")
                scripted.append(
                    ScriptedDrop(
                        ptype=parts[0],
                        count=int(parts[1]) if len(parts) > 1 else 1,
                        skip=int(parts[2]) if len(parts) > 2 else 0,
                        hop=1,
                    )
                )
            else:
                raise ValueError(f"unknown --faults key {key!r}")
        except (ValueError, IndexError) as exc:
            raise ValueError(f"bad --faults clause {clause!r}: {exc}") from None
    return FaultPlan(
        loss_rate=loss_rate,
        gilbert_elliott=ge,
        corrupt_rate=corrupt,
        loss_links=links,
        link_downs=tuple(downs),
        host_pauses=tuple(pauses),
        arbiter_blackouts=tuple(blackouts),
        scripted=tuple(scripted),
        seed=seed,
    )
