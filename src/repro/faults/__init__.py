"""Deterministic, seeded fault injection for simulation runs.

The subsystem is declared — not imperatively scripted — as a
:class:`~repro.faults.plan.FaultPlan` attached to
``ExperimentSpec.faults``.  The runner turns a non-empty plan into a
:class:`~repro.faults.injector.FaultInjector` hook that wraps wire
links, schedules link/host/arbiter outage events, and ledgers every
injected drop separately from congestion drops so the validate-layer
auditors keep balancing.  An empty plan installs nothing and leaves a
run byte-identical to one with no plan at all (see docs/FAULTS.md for
the determinism contract).
"""

from repro.faults.injector import FaultInjector
from repro.faults.models import BernoulliLoss, GilbertElliottLoss
from repro.faults.plan import (
    ArbiterBlackout,
    FaultPlan,
    GilbertElliott,
    HostPause,
    LinkDown,
    ScriptedDrop,
    parse_fault_plan,
)

__all__ = [
    "ArbiterBlackout",
    "BernoulliLoss",
    "FaultInjector",
    "FaultPlan",
    "GilbertElliott",
    "GilbertElliottLoss",
    "HostPause",
    "LinkDown",
    "ScriptedDrop",
    "parse_fault_plan",
]
