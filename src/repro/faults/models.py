"""Per-link stochastic loss models.

Each tapped link owns one model instance and one derived RNG stream
(``SeededRng(plan.seed).stream(link_name)``), so loss draws on one link
never perturb another link's sequence — adding a link to ``loss_links``
leaves every other link's fault pattern unchanged.

Draw discipline (the determinism contract depends on it): a uniform
draw is consumed only when the probability is strictly between 0 and 1,
except that Gilbert–Elliott always consumes exactly one transition draw
per packet.  Degenerate probabilities short-circuit without touching
the stream, so e.g. ``loss_bad=1.0`` and ``loss_bad=0.999999`` differ
only where the draw itself says so.
"""

from __future__ import annotations

from repro.faults.plan import GilbertElliott
from repro.sim.randoms import SeededRng

__all__ = ["BernoulliLoss", "GilbertElliottLoss"]


class BernoulliLoss:
    """Independent per-packet loss with fixed probability."""

    __slots__ = ("rate",)

    def __init__(self, rate: float) -> None:
        self.rate = rate

    def lose(self, rng: SeededRng) -> bool:
        rate = self.rate
        if rate <= 0.0:
            return False
        if rate >= 1.0:
            return True
        return rng.random() < rate


class GilbertElliottLoss:
    """One link's instance of the two-state Markov loss chain.

    Tracks occupancy counters (``steps`` / ``bad_steps``) so tests can
    check convergence to the stationary distribution
    ``p_enter_bad / (p_enter_bad + p_exit_bad)``.
    """

    __slots__ = ("params", "bad", "steps", "bad_steps")

    def __init__(self, params: GilbertElliott) -> None:
        self.params = params
        self.bad = False
        self.steps = 0
        self.bad_steps = 0

    def lose(self, rng: SeededRng) -> bool:
        p = self.params
        # One transition draw per packet, unconditionally: state flips
        # must not depend on whether the loss draw below is degenerate.
        u = rng.random()
        if self.bad:
            if u < p.p_exit_bad:
                self.bad = False
        else:
            if u < p.p_enter_bad:
                self.bad = True
        self.steps += 1
        if self.bad:
            self.bad_steps += 1
        loss_p = p.loss_bad if self.bad else p.loss_good
        if loss_p <= 0.0:
            return False
        if loss_p >= 1.0:
            return True
        return rng.random() < loss_p

    @property
    def occupancy_bad(self) -> float:
        """Empirical fraction of steps spent in the bad state."""
        return self.bad_steps / self.steps if self.steps else 0.0
