"""Job-structured coflows (figT).

A *coflow* is the set of flows a distributed job (shuffle, aggregation
fan-in) must finish before the job completes; the interesting metric is
the job completion time (max member finish − min member arrival), not
any single FCT.  :class:`CoflowGenerator` mirrors
:class:`~repro.workloads.generator.FlowGenerator` but draws *jobs* by a
Poisson process and expands each job into ``width`` member flows that
share an arrival instant (plus an optional per-member ``stagger``) and
carry the job id in ``Flow.request_id`` — the same field the incast
driver uses to group requests, so the collector's job accounting
(`repro.metrics.jobs`) covers both.

The job rate is the flow rate divided by the mean width, so a coflow
run offers the same expected load as the flat generator at the same
``load`` knob.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.net.packet import Flow
from repro.sim.randoms import SeededRng
from repro.workloads.distributions import EmpiricalCDF
from repro.workloads.generator import poisson_flow_rate
from repro.workloads.ramp import LoadProfile
from repro.workloads.traffic_matrix import TrafficMatrix

__all__ = ["CoflowConfig", "CoflowGenerator", "parse_coflows"]


@dataclass(frozen=True)
class CoflowConfig:
    """Knobs for job-structured generation.

    Attributes:
        min_flows / max_flows: Inclusive bounds on the number of member
            flows per job (width drawn uniformly).
        stagger: Seconds between consecutive member arrivals within a
            job (0.0 = all members arrive together, the classic
            shuffle-barrier shape).
    """

    min_flows: int = 2
    max_flows: int = 8
    stagger: float = 0.0

    def __post_init__(self) -> None:
        if self.min_flows < 1:
            raise ValueError(f"min_flows must be >= 1, got {self.min_flows}")
        if self.max_flows < self.min_flows:
            raise ValueError(
                f"max_flows ({self.max_flows}) < min_flows ({self.min_flows})"
            )
        if self.stagger < 0.0:
            raise ValueError(f"stagger must be >= 0, got {self.stagger}")

    @property
    def mean_width(self) -> float:
        return (self.min_flows + self.max_flows) / 2.0


class CoflowGenerator:
    """Pre-generates a job-structured flow list.

    Same contract as :class:`FlowGenerator.generate` — a deterministic
    list of ``n_flows`` flows sorted by construction — but flows come in
    ``request_id``-tagged groups.  Uses its own named RNG streams
    ("job-arrivals", "job-widths") so it cannot perturb flat-generator
    digests.
    """

    def __init__(
        self,
        dist: EmpiricalCDF,
        tm: TrafficMatrix,
        access_bps: float,
        load: float,
        rng: SeededRng,
        config: CoflowConfig,
        tenant_of=None,
        profile: Optional[LoadProfile] = None,
    ) -> None:
        self.dist = dist
        self.tm = tm
        self.config = config
        self.tenant_of = tenant_of
        self.profile = profile
        self._arrivals = rng.stream("job-arrivals")
        self._widths = rng.stream("job-widths")
        self._sizes = rng.stream("sizes")
        self._pairs = rng.stream("pairs")
        flow_rate = poisson_flow_rate(dist, tm.n_hosts, access_bps, load)
        # Jobs arrive slower by the mean width so offered load matches
        # the flat generator at the same ``load``.
        self.job_rate = flow_rate / config.mean_width

    def generate(
        self,
        n_flows: int,
        start_time: float = 0.0,
        first_fid: int = 0,
        max_bytes: Optional[int] = None,
        first_job_id: int = 0,
    ) -> List[Flow]:
        """Draw jobs until ``n_flows`` member flows exist.

        The last job's width is capped by the remaining flow budget so
        the list length is exactly ``n_flows``.
        """
        if n_flows < 1:
            raise ValueError("n_flows must be positive")
        cfg = self.config
        flows: List[Flow] = []
        now = start_time
        job_id = first_job_id
        while len(flows) < n_flows:
            if self.profile is None:
                now += self._arrivals.expovariate(self.job_rate)
            else:
                now = self.profile.next_arrival(now, self.job_rate, self._arrivals)
            width = self._widths.randint(cfg.min_flows, cfg.max_flows)
            width = min(width, n_flows - len(flows))
            for j in range(width):
                i = len(flows)
                size = self.dist.sample(self._sizes)
                if max_bytes is not None and size > max_bytes:
                    size = max_bytes
                src, dst = self.tm.sample_pair(self._pairs)
                tenant = self.tenant_of(i) if self.tenant_of is not None else 0
                flows.append(
                    Flow(
                        first_fid + i,
                        src,
                        dst,
                        size,
                        now + j * cfg.stagger,
                        tenant=tenant,
                        request_id=job_id,
                    )
                )
            job_id += 1
        return flows


def parse_coflows(text: str) -> CoflowConfig:
    """Parse the CLI ``--coflows`` spec ``MIN:MAX[:STAGGER]``."""
    parts = text.strip().split(":")
    try:
        if len(parts) == 2:
            return CoflowConfig(int(parts[0]), int(parts[1]))
        if len(parts) == 3:
            return CoflowConfig(int(parts[0]), int(parts[1]), float(parts[2]))
        raise ValueError("expected MIN:MAX[:STAGGER]")
    except ValueError as exc:
        raise ValueError(f"bad --coflows spec {text!r}: {exc}") from None
