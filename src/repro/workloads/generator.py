"""Open-loop Poisson flow generation at a target network load.

As in pFabric/pHost, flows arrive by a Poisson process whose rate is
calibrated so the *offered* load equals ``load`` x aggregate access
bandwidth: the expected bytes-per-second injected by each host equals
``load * access_bps / 8``.  Wire overhead (40 B header per packet) is
included in the calibration so a load-0.6 run really offers 6 Gbps of
wire bytes per 10 Gbps host.
"""

from __future__ import annotations

from typing import List, Optional

from repro.net.packet import Flow
from repro.sim.randoms import SeededRng
from repro.sim.units import HEADER_BYTES, MSS_BYTES
from repro.workloads.distributions import EmpiricalCDF
from repro.workloads.ramp import LoadProfile
from repro.workloads.traffic_matrix import TrafficMatrix

__all__ = ["poisson_flow_rate", "FlowGenerator"]


# The sampled estimate below is a pure function of the distribution and
# the (fixed) private seed, so it is memoized process-wide: repeated
# experiment builds over the same workload — figure sweeps, benchmark
# repetitions — skip the 20k draws after the first.
_MEAN_WIRE_CACHE: dict = {}


def _mean_wire_bytes(dist: EmpiricalCDF, samples: int = 20_000, seed: int = 7) -> float:
    """Expected wire bytes per flow (payload + per-packet headers).

    Uses the analytic payload mean plus a sampled estimate of the mean
    packet count (the header term), which has no closed form for
    interpolated CDFs.
    """
    sizes = getattr(dist, "_sizes", None)
    if sizes is not None:
        key = (tuple(sizes), tuple(dist._probs), dist.discrete, samples, seed)
        cached = _MEAN_WIRE_CACHE.get(key)
        if cached is not None:
            return cached
    else:
        key = None  # synthetic dists (no CDF points) are cheap anyway
    rng = SeededRng(seed)
    mean_payload = dist.mean()
    total_pkts = 0
    for _ in range(samples):
        size = dist.sample(rng)
        total_pkts += -(-size // MSS_BYTES)
    mean_pkts = total_pkts / samples
    result = mean_payload + mean_pkts * HEADER_BYTES
    if key is not None:
        _MEAN_WIRE_CACHE[key] = result
    return result


def poisson_flow_rate(
    dist: EmpiricalCDF,
    n_hosts: int,
    access_bps: float,
    load: float,
) -> float:
    """Aggregate flow arrival rate (flows/second) for a target load."""
    if not 0.0 < load:
        raise ValueError("load must be positive")
    mean_wire = _mean_wire_bytes(dist)
    per_host_bytes_per_sec = load * access_bps / 8.0
    return n_hosts * per_host_bytes_per_sec / mean_wire


class FlowGenerator:
    """Pre-generates a flow list for an experiment.

    The whole arrival schedule is drawn up front (deterministic given
    the seed), then replayed by the runner.  This keeps runs exactly
    reproducible and lets metrics know the total offered work.
    """

    def __init__(
        self,
        dist: EmpiricalCDF,
        tm: TrafficMatrix,
        access_bps: float,
        load: float,
        rng: SeededRng,
        tenant_of=None,
        profile: Optional[LoadProfile] = None,
    ) -> None:
        self.dist = dist
        self.tm = tm
        self.access_bps = access_bps
        self.load = load
        self._arrivals = rng.stream("arrivals")
        self._sizes = rng.stream("sizes")
        self._pairs = rng.stream("pairs")
        self.tenant_of = tenant_of  # optional fn(flow_index) -> tenant id
        # ``profile`` modulates the Poisson rate piecewise in time (see
        # repro.workloads.ramp).  None keeps the homogeneous draw path —
        # and the exact RNG trajectory — of every pre-ramp experiment.
        self.profile = profile
        self.rate = poisson_flow_rate(dist, tm.n_hosts, access_bps, load)

    def generate(
        self,
        n_flows: int,
        start_time: float = 0.0,
        first_fid: int = 0,
        max_bytes: Optional[int] = None,
    ) -> List[Flow]:
        """Draw ``n_flows`` flows with Poisson arrivals.

        ``max_bytes`` truncates sizes at generation time (scaling knob
        for CI runs; the distribution object itself is untouched).
        """
        if n_flows < 1:
            raise ValueError("n_flows must be positive")
        flows: List[Flow] = []
        now = start_time
        for i in range(n_flows):
            if self.profile is None:
                now += self._arrivals.expovariate(self.rate)
            else:
                now = self.profile.next_arrival(now, self.rate, self._arrivals)
            size = self.dist.sample(self._sizes)
            if max_bytes is not None and size > max_bytes:
                size = max_bytes
            src, dst = self.tm.sample_pair(self._pairs)
            tenant = self.tenant_of(i) if self.tenant_of is not None else 0
            flows.append(
                Flow(first_fid + i, src, dst, size, now, tenant=tenant)
            )
        return flows
