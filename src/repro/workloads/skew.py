"""Spatio-temporal traffic skew (figT, beyond the paper).

The paper's traffic matrices treat every host identically; production
fabrics do not (Parsonson et al., *Traffic Generation for Benchmarking
Data Centre Networks* — see PAPERS.md — fit rack-level skew and
locality explicitly).  :class:`SkewedMatrix` adds both dimensions:

* **hot racks** — a configurable fraction of the source and/or
  destination probability mass concentrates on a set of racks
  (``src_hot_fraction`` / ``dst_hot_fraction``).  Setting
  ``dst_hot_fraction`` near 1 on a single rack turns the open-loop
  generator into a sustained incast storm.
* **rack affinity** — with probability ``rack_affinity`` the
  destination is drawn uniformly from the source's own rack (job
  locality), otherwise from the global (skewed) weights.
* **dead hosts** — ``exclude_hosts`` removes hosts from both weight
  vectors entirely (e.g. hosts a fault plan pauses for the whole run);
  an excluded host is never selected as source or destination.

Weights are exact (not sampled): :meth:`SkewedMatrix.src_weights` and
:meth:`SkewedMatrix.dst_weights` each sum to 1, which the property
suite in ``tests/workloads/test_skew.py`` pins.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from itertools import accumulate
from typing import Callable, List, Optional, Tuple

from repro.sim.randoms import SeededRng
from repro.workloads.traffic_matrix import TrafficMatrix

__all__ = ["SkewConfig", "SkewedMatrix", "parse_skew"]


@dataclass(frozen=True)
class SkewConfig:
    """Hot-rack and locality knobs for a :class:`SkewedMatrix`.

    Attributes:
        hot_racks: Rack indices carrying the concentrated mass.  Empty
            means no spatial skew (uniform weights).
        src_hot_fraction: Probability a flow's *source* lands in a hot
            rack (mass split uniformly inside the set).
        dst_hot_fraction: Same for the *destination* — skewing only this
            side produces incast-style concentration.
        rack_affinity: Probability the destination is drawn from the
            source's own rack instead of the global weights.
        exclude_hosts: Host ids removed from both weight vectors (never
            selected as source or destination).
    """

    hot_racks: Tuple[int, ...] = ()
    src_hot_fraction: float = 0.5
    dst_hot_fraction: float = 0.5
    rack_affinity: float = 0.0
    exclude_hosts: Tuple[int, ...] = ()

    def __post_init__(self) -> None:
        # Coerce so equal configs repr identically (spec memoization).
        object.__setattr__(self, "hot_racks", tuple(self.hot_racks))
        object.__setattr__(self, "exclude_hosts", tuple(self.exclude_hosts))
        for name in ("src_hot_fraction", "dst_hot_fraction", "rack_affinity"):
            v = getattr(self, name)
            if not 0.0 <= v <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {v}")
        if any(r < 0 for r in self.hot_racks):
            raise ValueError("hot_racks must be non-negative rack indices")
        if any(h < 0 for h in self.exclude_hosts):
            raise ValueError("exclude_hosts must be non-negative host ids")


class SkewedMatrix(TrafficMatrix):
    """Weighted (src, dst) sampling with hot racks and rack affinity."""

    name = "skewed"

    def __init__(
        self,
        n_hosts: int,
        config: SkewConfig,
        rack_of: Callable[[int], int],
    ) -> None:
        super().__init__(n_hosts)
        self.config = config
        self.rack_of = rack_of
        n_racks = max(rack_of(h) for h in range(n_hosts)) + 1
        if any(r >= n_racks for r in config.hot_racks):
            raise ValueError(
                f"hot rack out of range for {n_racks}-rack fabric: "
                f"{sorted(config.hot_racks)}"
            )
        dead = set(config.exclude_hosts)
        if any(h >= n_hosts for h in dead):
            raise ValueError(
                f"excluded host out of range for {n_hosts}-host fabric"
            )
        self._live = [h for h in range(n_hosts) if h not in dead]
        if len(self._live) < 2:
            raise ValueError("skew must leave at least two live hosts")
        hot = set(config.hot_racks)
        self._src_w = self._weights(hot, config.src_hot_fraction, dead)
        self._dst_w = self._weights(hot, config.dst_hot_fraction, dead)
        if sum(1 for w in self._dst_w if w > 0.0) < 2:
            raise ValueError(
                "destination weights must leave at least two selectable "
                "hosts (every flow needs a destination != its source)"
            )
        self._src_cum = list(accumulate(self._src_w))
        self._dst_cum = list(accumulate(self._dst_w))
        # Per-rack live-host lists for the affinity draw.
        self._rack_hosts: List[List[int]] = [[] for _ in range(n_racks)]
        for h in self._live:
            self._rack_hosts[rack_of(h)].append(h)

    # ------------------------------------------------------------------
    def _weights(self, hot: set, hot_fraction: float, dead: set) -> List[float]:
        """Per-host selection weights; excluded hosts get exactly 0 and
        the rest always sums to 1."""
        hot_hosts = [
            h for h in self._live if self.rack_of(h) in hot
        ] if hot else []
        cold_hosts = [h for h in self._live if self.rack_of(h) not in hot]
        w = [0.0] * self.n_hosts
        if not hot_hosts or not cold_hosts:
            # No skew possible: everything live is one class.
            for h in self._live:
                w[h] = 1.0 / len(self._live)
            return w
        for h in hot_hosts:
            w[h] = hot_fraction / len(hot_hosts)
        for h in cold_hosts:
            w[h] = (1.0 - hot_fraction) / len(cold_hosts)
        return w

    def src_weights(self) -> List[float]:
        """Exact per-host source-selection probabilities (sum to 1)."""
        return list(self._src_w)

    def dst_weights(self) -> List[float]:
        """Exact per-host destination weights before the affinity draw
        and the dst != src exclusion (sum to 1)."""
        return list(self._dst_w)

    # ------------------------------------------------------------------
    #: Rejection-draw budget for dst == src.  Extreme-but-valid configs
    #: can concentrate so much mass on one host that other hosts'
    #: weights, though positive, vanish from the cumulative sums in
    #: float arithmetic — every draw then returns that host and an
    #: unbounded loop never terminates.  Past the budget we fall back
    #: deterministically (no further RNG), so sampling stays both total
    #: and reproducible.
    _MAX_REJECTIONS = 128

    def _draw(self, cum: List[float], weights: List[float], rng: SeededRng) -> int:
        idx = bisect_right(cum, rng.random() * cum[-1])
        if idx >= self.n_hosts or weights[idx] == 0.0:
            # Float-rounding overshoot at the top of the cumulative sum:
            # snap to the last positively weighted host, never a dead one.
            idx = max(h for h in range(self.n_hosts) if weights[h] > 0.0)
        return idx

    def sample_pair(self, rng: SeededRng) -> Tuple[int, int]:
        src = self._draw(self._src_cum, self._src_w, rng)
        cfg = self.config
        if cfg.rack_affinity > 0.0 and rng.random() < cfg.rack_affinity:
            mates = [h for h in self._rack_hosts[self.rack_of(src)] if h != src]
            if mates:
                return src, mates[rng.randrange(len(mates))]
        for _ in range(self._MAX_REJECTIONS):
            dst = self._draw(self._dst_cum, self._dst_w, rng)
            if dst != src:
                return src, dst
        # Degenerate saturation: src is the only host the weighted draw
        # can reach.  The constructor guarantees a second positively
        # weighted host exists; take the heaviest one.
        return src, max(
            (h for h in range(self.n_hosts) if h != src and self._dst_w[h] > 0.0),
            key=lambda h: self._dst_w[h],
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"SkewedMatrix(n_hosts={self.n_hosts}, config={self.config})"


def parse_skew(text: str) -> SkewConfig:
    """Parse the CLI ``--skew`` spec into a :class:`SkewConfig`.

    Comma-separated clauses::

        racks=0+1          hot racks (``+``-separated indices)
        src=0.7            src_hot_fraction
        dst=0.9            dst_hot_fraction
        affinity=0.3       rack_affinity
        exclude=5+6        exclude_hosts

    Example: ``--skew racks=0,dst=0.9,affinity=0.2``.
    """
    kwargs: dict = {}
    for clause in text.split(","):
        clause = clause.strip()
        if not clause:
            continue
        if "=" not in clause:
            raise ValueError(f"bad --skew clause {clause!r}: expected key=value")
        key, _, value = clause.partition("=")
        key = key.strip().lower()
        value = value.strip()
        try:
            if key == "racks":
                kwargs["hot_racks"] = tuple(int(v) for v in value.split("+"))
            elif key == "src":
                kwargs["src_hot_fraction"] = float(value)
            elif key == "dst":
                kwargs["dst_hot_fraction"] = float(value)
            elif key == "affinity":
                kwargs["rack_affinity"] = float(value)
            elif key == "exclude":
                kwargs["exclude_hosts"] = tuple(int(v) for v in value.split("+"))
            else:
                raise ValueError(f"unknown --skew key {key!r}")
        except ValueError as exc:
            raise ValueError(f"bad --skew clause {clause!r}: {exc}") from None
    return SkewConfig(**kwargs)
