"""Deadline assignment for deadline-constrained traffic (Figure 5c).

Per the paper: "We assign a deadline to each flow using exponential
distribution with mean 1000us; if the assigned deadline is less than
1.25x the optimal FCT of a flow, we set the deadline for that flow to be
1.25x its optimal FCT."
"""

from __future__ import annotations

from typing import Iterable, List

from repro.net.packet import Flow
from repro.net.topology import Fabric
from repro.sim.randoms import SeededRng
from repro.sim.units import usec

__all__ = ["assign_deadlines", "DEFAULT_DEADLINE_MEAN", "DEFAULT_DEADLINE_FLOOR"]

DEFAULT_DEADLINE_MEAN = usec(1000)
DEFAULT_DEADLINE_FLOOR = 1.25


def assign_deadlines(
    flows: Iterable[Flow],
    fabric: Fabric,
    rng: SeededRng,
    mean: float = DEFAULT_DEADLINE_MEAN,
    floor_factor: float = DEFAULT_DEADLINE_FLOOR,
) -> List[Flow]:
    """Set ``flow.deadline`` (absolute time) on every flow; returns them.

    A deadline is relative slack added to the arrival time, floored at
    ``floor_factor`` x the flow's ideal FCT so no deadline is
    unachievable by construction.
    """
    if mean <= 0:
        raise ValueError("deadline mean must be positive")
    if floor_factor < 1.0:
        raise ValueError("floor_factor below 1.0 creates impossible deadlines")
    stream = rng.stream("deadlines")
    out: List[Flow] = []
    for flow in flows:
        slack = stream.expovariate(1.0 / mean)
        floor = floor_factor * fabric.opt_fct(flow.size_bytes, flow.src, flow.dst)
        flow.deadline = flow.arrival + max(slack, floor)
        out.append(flow)
    return out
