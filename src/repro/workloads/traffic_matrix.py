"""Traffic matrices (paper §4.1 and §4.3).

* :class:`AllToAll` — the default: every flow picks a uniform source and
  an independent uniform destination (!= source).
* :class:`Permutation` — each source sends only to its partner under a
  fixed random derangement ("a single destination chosen uniformly at
  random without replacement").
* :class:`IncastPattern` — N uniformly-chosen senders each send
  ``total_bytes / N`` to one receiver per request; used by the
  closed-loop incast driver (Figures 9c/9d).
"""

from __future__ import annotations

from typing import List, Tuple

from repro.sim.randoms import SeededRng

__all__ = ["TrafficMatrix", "AllToAll", "Permutation", "IncastPattern"]


class TrafficMatrix:
    """Base class: a generator of (src, dst) host pairs."""

    name = "abstract"

    def __init__(self, n_hosts: int) -> None:
        if n_hosts < 2:
            raise ValueError("traffic matrix needs at least two hosts")
        self.n_hosts = n_hosts

    def sample_pair(self, rng: SeededRng) -> Tuple[int, int]:  # pragma: no cover
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}(n_hosts={self.n_hosts})"


class AllToAll(TrafficMatrix):
    """Uniform random source, uniform random distinct destination."""

    name = "all_to_all"

    def sample_pair(self, rng: SeededRng) -> Tuple[int, int]:
        src = rng.randrange(self.n_hosts)
        dst = rng.other_than(self.n_hosts, src)
        return src, dst


class Permutation(TrafficMatrix):
    """A fixed random derangement: host i always sends to perm[i]."""

    name = "permutation"

    def __init__(self, n_hosts: int, rng: SeededRng) -> None:
        super().__init__(n_hosts)
        self.perm: List[int] = rng.stream("permutation").derangement_permutation(n_hosts)

    def sample_pair(self, rng: SeededRng) -> Tuple[int, int]:
        src = rng.randrange(self.n_hosts)
        return src, self.perm[src]

    def destination_of(self, src: int) -> int:
        return self.perm[src]


class IncastPattern:
    """Incast request shape: N senders -> 1 receiver, data split evenly.

    ``make_request`` returns the receiver and the per-sender byte count
    for one request; the closed-loop driver in
    :mod:`repro.experiments.runner` turns these into simultaneous flows
    and measures FCT (per flow) and RCT (per request).
    """

    name = "incast"

    def __init__(self, n_hosts: int, n_senders: int, total_bytes: int) -> None:
        if n_senders < 1:
            raise ValueError("need at least one sender")
        if n_senders >= n_hosts:
            raise ValueError("n_senders must be < n_hosts (receiver excluded)")
        if total_bytes < n_senders:
            raise ValueError("total_bytes must cover at least one byte per sender")
        self.n_hosts = n_hosts
        self.n_senders = n_senders
        self.total_bytes = total_bytes

    @property
    def bytes_per_sender(self) -> int:
        return self.total_bytes // self.n_senders

    def make_request(self, rng: SeededRng) -> Tuple[int, List[int]]:
        """Sample one request: (receiver, sender list)."""
        receiver = rng.randrange(self.n_hosts)
        candidates = [h for h in range(self.n_hosts) if h != receiver]
        senders = rng.sample(candidates, self.n_senders)
        return receiver, senders

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"IncastPattern({self.n_senders} senders, "
            f"{self.total_bytes}B total, {self.bytes_per_sender}B each)"
        )
