"""Parametric synthetic flow-size distributions.

The paper's Figure 8 shows that conclusions depend on the short/long
mix, and leaves other mixes as an open question.  These analytic
families let users explore that space beyond the bimodal sweep:

* :class:`ParetoDist` — bounded Pareto; the canonical heavy-tail model
  (tail exponent ``alpha`` controls how much of the byte mass lives in
  elephants).
* :class:`LognormalDist` — the other classic size model, with a lighter
  tail than Pareto at the same mean.
* :class:`UniformDist` — a no-tail control case.

All three expose the same duck interface as
:class:`repro.workloads.distributions.EmpiricalCDF` (``sample``,
``mean``, ``max_bytes``, ``cdf_at``, ``truncated``), so they drop into
:class:`~repro.workloads.generator.FlowGenerator` and the experiment
runner unchanged.  Experiment specs accept them as strings:
``"pareto:<alpha>:<min_bytes>:<max_bytes>"``,
``"lognormal:<median_bytes>:<sigma>"`` and
``"uniform:<min_bytes>:<max_bytes>"``.
"""

from __future__ import annotations

import math

from repro.sim.randoms import SeededRng

__all__ = ["ParetoDist", "LognormalDist", "UniformDist", "parse_synthetic"]


class ParetoDist:
    """Bounded Pareto on [min_bytes, max_bytes] with tail exponent alpha."""

    def __init__(self, alpha: float, min_bytes: int, max_bytes: int) -> None:
        if alpha <= 0:
            raise ValueError("alpha must be positive")
        if not 0 < min_bytes < max_bytes:
            raise ValueError("need 0 < min_bytes < max_bytes")
        self.alpha = float(alpha)
        self.min_bytes = int(min_bytes)
        self._max_bytes = int(max_bytes)
        self.name = f"pareto:{alpha:g}:{min_bytes}:{max_bytes}"

    @property
    def max_bytes(self) -> int:
        return self._max_bytes

    def sample(self, rng: SeededRng) -> int:
        # Inverse-CDF sampling of the bounded Pareto.
        a, lo, hi = self.alpha, self.min_bytes, self._max_bytes
        u = rng.random()
        ratio = (hi / lo) ** a
        x = lo / ((1.0 - u * (1.0 - 1.0 / ratio)) ** (1.0 / a))
        return max(1, min(int(round(x)), hi))

    def cdf_at(self, size_bytes: float) -> float:
        a, lo, hi = self.alpha, self.min_bytes, self._max_bytes
        if size_bytes < lo:
            return 0.0
        if size_bytes >= hi:
            return 1.0
        num = 1.0 - (lo / size_bytes) ** a
        den = 1.0 - (lo / hi) ** a
        return num / den

    def mean(self) -> float:
        a, lo, hi = self.alpha, self.min_bytes, self._max_bytes
        if abs(a - 1.0) < 1e-9:
            return lo * math.log(hi / lo) / (1.0 - lo / hi)
        num = (lo ** a) * a / (a - 1.0) * (lo ** (1 - a) - hi ** (1 - a))
        den = 1.0 - (lo / hi) ** a
        return num / den

    def truncated(self, max_bytes: int, name: str = "") -> "ParetoDist":
        if max_bytes <= self.min_bytes:
            raise ValueError("truncation point below the smallest flow size")
        return ParetoDist(self.alpha, self.min_bytes, min(max_bytes, self._max_bytes))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"ParetoDist(alpha={self.alpha:g}, {self.min_bytes}-{self._max_bytes}B)"


class LognormalDist:
    """Lognormal sizes, clipped to [1, max_bytes]."""

    def __init__(self, median_bytes: float, sigma: float, max_bytes: int = 10**9) -> None:
        if median_bytes <= 0 or sigma <= 0:
            raise ValueError("median and sigma must be positive")
        if max_bytes <= median_bytes:
            raise ValueError("max_bytes must exceed the median")
        self.mu = math.log(median_bytes)
        self.sigma = float(sigma)
        self._max_bytes = int(max_bytes)
        self.name = f"lognormal:{median_bytes:g}:{sigma:g}"

    @property
    def max_bytes(self) -> int:
        return self._max_bytes

    def sample(self, rng: SeededRng) -> int:
        # Box-Muller from two uniform draws (keeps SeededRng's API thin).
        u1 = max(rng.random(), 1e-12)
        u2 = rng.random()
        z = math.sqrt(-2.0 * math.log(u1)) * math.cos(2.0 * math.pi * u2)
        x = math.exp(self.mu + self.sigma * z)
        return max(1, min(int(round(x)), self._max_bytes))

    def cdf_at(self, size_bytes: float) -> float:
        if size_bytes <= 0:
            return 0.0
        if size_bytes >= self._max_bytes:
            return 1.0
        z = (math.log(size_bytes) - self.mu) / self.sigma
        return 0.5 * (1.0 + math.erf(z / math.sqrt(2.0)))

    def mean(self) -> float:
        # Clipping slightly lowers this; fine for rate calibration.
        return math.exp(self.mu + self.sigma ** 2 / 2.0)

    def truncated(self, max_bytes: int, name: str = "") -> "LognormalDist":
        out = LognormalDist.__new__(LognormalDist)
        out.mu = self.mu
        out.sigma = self.sigma
        out._max_bytes = min(int(max_bytes), self._max_bytes)
        out.name = self.name + f"<=:{max_bytes}"
        if out._max_bytes <= math.exp(self.mu):
            raise ValueError("truncation point below the median")
        return out

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"LognormalDist(median={math.exp(self.mu):g}, sigma={self.sigma:g})"


class UniformDist:
    """Uniform integer sizes on [min_bytes, max_bytes] — the no-tail control."""

    def __init__(self, min_bytes: int, max_bytes: int) -> None:
        if not 0 < min_bytes <= max_bytes:
            raise ValueError("need 0 < min_bytes <= max_bytes")
        self.min_bytes = int(min_bytes)
        self._max_bytes = int(max_bytes)
        self.name = f"uniform:{min_bytes}:{max_bytes}"

    @property
    def max_bytes(self) -> int:
        return self._max_bytes

    def sample(self, rng: SeededRng) -> int:
        return rng.randint(self.min_bytes, self._max_bytes)

    def cdf_at(self, size_bytes: float) -> float:
        if size_bytes < self.min_bytes:
            return 0.0
        if size_bytes >= self._max_bytes:
            return 1.0
        span = self._max_bytes - self.min_bytes + 1
        return (math.floor(size_bytes) - self.min_bytes + 1) / span

    def mean(self) -> float:
        return (self.min_bytes + self._max_bytes) / 2.0

    def truncated(self, max_bytes: int, name: str = "") -> "UniformDist":
        if max_bytes < self.min_bytes:
            raise ValueError("truncation point below the smallest flow size")
        return UniformDist(self.min_bytes, min(max_bytes, self._max_bytes))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"UniformDist({self.min_bytes}-{self._max_bytes}B)"


def parse_synthetic(spec: str):
    """Parse "pareto:a:lo:hi" / "lognormal:median:sigma[:max]" /
    "uniform:lo:hi" workload strings; returns None if not synthetic."""
    parts = spec.split(":")
    kind = parts[0]
    try:
        if kind == "pareto" and len(parts) == 4:
            return ParetoDist(float(parts[1]), int(parts[2]), int(parts[3]))
        if kind == "lognormal" and len(parts) in (3, 4):
            max_bytes = int(parts[3]) if len(parts) == 4 else 10**9
            return LognormalDist(float(parts[1]), float(parts[2]), max_bytes)
        if kind == "uniform" and len(parts) == 3:
            return UniformDist(int(parts[1]), int(parts[2]))
    except ValueError as exc:
        raise ValueError(f"bad synthetic workload spec {spec!r}: {exc}") from exc
    return None
