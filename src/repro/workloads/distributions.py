"""Flow-size distributions (paper Figure 2 and §4.3).

The paper evaluates three production traces — "Web Search" (DCTCP),
"Data Mining" (VL2) and "IMC10" (Benson et al.) — plus a synthetic
bimodal workload.  We do not have the raw traces, so we embed
piecewise-linear CDFs with the published shapes:

* all three are heavy-tailed (most flows short, most bytes in long
  flows);
* Data Mining and IMC10 have a much larger fraction of tiny flows than
  Web Search;
* IMC10 matches Data Mining except its tail is capped at 3 MB (vs 1 GB).

DESIGN.md §2 records this substitution.  Every property the paper's
arguments rely on (flow-count dominated by short flows, byte-count by
long ones, the Fig. 4 short/long split) is exercised by tests in
``tests/workloads``.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, List, Sequence, Tuple

from repro.sim.randoms import SeededRng
from repro.sim.units import MSS_BYTES

__all__ = [
    "EmpiricalCDF",
    "web_search",
    "data_mining",
    "imc10",
    "bimodal",
    "fixed_size",
    "WORKLOADS",
    "LONG_FLOW_THRESHOLD",
]

#: Figure 4's analysis split: flows larger than this are "long".
LONG_FLOW_THRESHOLD: Dict[str, int] = {
    "websearch": 10_000_000,
    "datamining": 10_000_000,
    "imc10": 100_000,
}


class EmpiricalCDF:
    """A flow-size distribution given as CDF breakpoints.

    By default sizes between breakpoints are linearly interpolated (a
    first breakpoint with cdf > 0 is an atom at that size).  With
    ``discrete=True`` the distribution is a pure mixture of atoms at the
    breakpoints (used by the bimodal workload).  Sampling inverts the
    CDF with a binary search, so draws are O(log n).
    """

    def __init__(
        self,
        points: Sequence[Tuple[float, float]],
        name: str = "cdf",
        discrete: bool = False,
    ) -> None:
        if len(points) < 1:
            raise ValueError("need at least one CDF point")
        sizes = [float(s) for s, _ in points]
        probs = [float(p) for _, p in points]
        if any(s <= 0 for s in sizes):
            raise ValueError("flow sizes must be positive")
        if sizes != sorted(sizes) or len(set(sizes)) != len(sizes):
            raise ValueError("CDF sizes must be strictly increasing")
        if probs != sorted(probs):
            raise ValueError("CDF probabilities must be non-decreasing")
        if abs(probs[-1] - 1.0) > 1e-9:
            raise ValueError("final CDF value must be 1.0")
        if any(p < 0 or p > 1 for p in probs):
            raise ValueError("CDF values must lie in [0, 1]")
        self.name = name
        self.discrete = discrete
        self._sizes = sizes
        self._probs = probs

    # ------------------------------------------------------------------
    @property
    def points(self) -> List[Tuple[float, float]]:
        return list(zip(self._sizes, self._probs))

    @property
    def max_bytes(self) -> int:
        return int(self._sizes[-1])

    def sample(self, rng: SeededRng) -> int:
        """Draw one flow size in bytes (at least 1)."""
        u = rng.random()
        probs = self._probs
        idx = bisect_left(probs, u)
        if idx >= len(probs):
            idx = len(probs) - 1
        if self.discrete or idx == 0:
            return max(1, int(round(self._sizes[idx])))
        p_lo, p_hi = probs[idx - 1], probs[idx]
        s_lo, s_hi = self._sizes[idx - 1], self._sizes[idx]
        if p_hi <= p_lo:  # atom
            return max(1, int(round(s_hi)))
        frac = (u - p_lo) / (p_hi - p_lo)
        return max(1, int(round(s_lo + frac * (s_hi - s_lo))))

    def cdf_at(self, size_bytes: float) -> float:
        """P(flow size <= size_bytes) under the interpolated CDF."""
        sizes, probs = self._sizes, self._probs
        if size_bytes < sizes[0]:
            return 0.0
        if size_bytes >= sizes[-1]:
            return 1.0
        idx = bisect_left(sizes, size_bytes)
        if sizes[idx] == size_bytes:
            return probs[idx]
        s_lo, s_hi = sizes[idx - 1], sizes[idx]
        p_lo, p_hi = probs[idx - 1], probs[idx]
        return p_lo + (size_bytes - s_lo) / (s_hi - s_lo) * (p_hi - p_lo)

    def mean(self) -> float:
        """Analytic mean of the distribution (bytes)."""
        total = self._sizes[0] * self._probs[0]  # atom at the first point
        for i in range(1, len(self._sizes)):
            mass = self._probs[i] - self._probs[i - 1]
            if self.discrete:
                total += mass * self._sizes[i]
            else:
                total += mass * 0.5 * (self._sizes[i - 1] + self._sizes[i])
        return total

    def truncated(self, max_bytes: int, name: str = "") -> "EmpiricalCDF":
        """Cap the distribution at ``max_bytes`` (mass above collapses
        onto the cap).  Used to keep CI-scale runs fast; DESIGN.md
        documents the effect on absolute numbers."""
        if max_bytes < self._sizes[0]:
            raise ValueError("truncation point below the smallest flow size")
        pts: List[Tuple[float, float]] = []
        for s, p in zip(self._sizes, self._probs):
            if s < max_bytes:
                pts.append((s, p))
            else:
                break
        pts.append((float(max_bytes), 1.0))
        return EmpiricalCDF(
            pts, name=name or f"{self.name}<=:{max_bytes}", discrete=self.discrete
        )

    def fraction_short(self, threshold_bytes: float) -> float:
        return self.cdf_at(threshold_bytes)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"EmpiricalCDF({self.name}, {len(self._sizes)} pts, max={self.max_bytes}B)"


# ----------------------------------------------------------------------
# The paper's three workloads (breakpoints in bytes).
# ----------------------------------------------------------------------

def web_search() -> EmpiricalCDF:
    """DCTCP "Web Search" shape: fewer tiny flows than the other two,
    mean ~1.5 MB, tail to 30 MB."""
    return EmpiricalCDF(
        [
            (1_000, 0.00),
            (10_000, 0.15),
            (20_000, 0.20),
            (30_000, 0.30),
            (50_000, 0.40),
            (80_000, 0.53),
            (200_000, 0.60),
            (1_000_000, 0.70),
            (2_000_000, 0.80),
            (5_000_000, 0.90),
            (10_000_000, 0.95),
            (30_000_000, 1.00),
        ],
        name="websearch",
    )


def data_mining() -> EmpiricalCDF:
    """VL2 "Data Mining" shape: half the flows are tiny, tail to 1 GB."""
    return EmpiricalCDF(
        [
            (100, 0.00),
            (300, 0.50),
            (1_000, 0.60),
            (2_000, 0.70),
            (10_000, 0.80),
            (100_000, 0.85),
            (1_000_000, 0.90),
            (10_000_000, 0.95),
            (100_000_000, 0.98),
            (1_000_000_000, 1.00),
        ],
        name="datamining",
    )


def imc10() -> EmpiricalCDF:
    """Benson et al. IMC'10 shape: like Data Mining but the largest flow
    is 3 MB (paper §4.1)."""
    return EmpiricalCDF(
        [
            (100, 0.00),
            (300, 0.50),
            (1_000, 0.63),
            (2_000, 0.72),
            (10_000, 0.82),
            (100_000, 0.90),
            (1_000_000, 0.97),
            (3_000_000, 1.00),
        ],
        name="imc10",
    )


def bimodal(
    fraction_short: float,
    short_pkts: int = 3,
    long_pkts: int = 700,
) -> EmpiricalCDF:
    """The synthetic workload of Figure 8: short (3-packet) and long
    (700-packet) flows with a configurable short fraction."""
    if not 0.0 <= fraction_short <= 1.0:
        raise ValueError("fraction_short must be in [0, 1]")
    short_bytes = short_pkts * MSS_BYTES
    long_bytes = long_pkts * MSS_BYTES
    if fraction_short >= 1.0:
        return fixed_size(short_bytes, name="bimodal:all-short")
    if fraction_short <= 0.0:
        return fixed_size(long_bytes, name="bimodal:all-long")
    return EmpiricalCDF(
        [(short_bytes, fraction_short), (long_bytes, 1.0)],
        name=f"bimodal:{fraction_short:.3f}",
        discrete=True,
    )


def fixed_size(size_bytes: int, name: str = "") -> EmpiricalCDF:
    """Degenerate distribution: every flow is exactly ``size_bytes``."""
    return EmpiricalCDF([(size_bytes, 1.0)], name=name or f"fixed:{size_bytes}")


#: Registry used by experiment specs ("websearch", "datamining", "imc10").
WORKLOADS = {
    "websearch": web_search,
    "datamining": data_mining,
    "imc10": imc10,
}
