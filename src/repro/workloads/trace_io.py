"""Flow-trace import/export (CSV and JSONL).

The paper's workloads come from production traces we cannot ship; this
module lets downstream users run the simulator on their *own* traces.
Two formats round-trip exactly:

**CSV** — a header row then one flow per line::

    arrival,src,dst,size_bytes[,tenant[,deadline[,job]]]

**JSONL** — one JSON object per line with the same fields
(``arrival``, ``src``, ``dst``, ``size_bytes`` required; ``tenant``,
``deadline``, ``job`` optional)::

    {"arrival": 0.0013, "src": 4, "dst": 9, "size_bytes": 21460, "job": 2}

Field semantics:

* ``arrival`` — seconds (float), >= 0;
* ``src``/``dst`` — distinct host indices in the simulated fabric;
* ``size_bytes`` — positive payload size;
* ``tenant`` — optional integer tenant id (default 0);
* ``deadline`` — optional absolute deadline in seconds;
* ``job`` — optional integer job id (becomes ``Flow.request_id``,
  grouping the flow into a coflow for job-completion metrics).

The format is chosen from the file suffix (``.jsonl``/``.ndjson`` →
JSONL, anything else CSV) unless forced with ``fmt=``.  Malformed rows
— negative arrival, non-positive size, self-loop, host outside the
fabric, arrivals that go backwards when the file claims ``sorted=True``
— raise :class:`TraceFormatError` naming the offending line; a trace
that parses is guaranteed to be a runnable schedule.

``save_flows``/``load_flows`` round-trip exactly (arrivals written with
``repr`` so floats survive), and ``iter_flows`` streams records without
materialising the list.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Iterable, Iterator, List, Optional, Tuple, Union

from repro.net.packet import Flow

__all__ = ["save_flows", "load_flows", "iter_flows", "TraceFormatError"]

_HEADER = ["arrival", "src", "dst", "size_bytes", "tenant", "deadline", "job"]
_JSONL_SUFFIXES = {".jsonl", ".ndjson"}


class TraceFormatError(ValueError):
    """Raised when a trace file cannot be parsed."""


def _format_for(path: Path, fmt: Optional[str]) -> str:
    if fmt is not None:
        if fmt not in ("csv", "jsonl"):
            raise ValueError(f"fmt must be 'csv' or 'jsonl', got {fmt!r}")
        return fmt
    return "jsonl" if path.suffix.lower() in _JSONL_SUFFIXES else "csv"


def save_flows(
    flows: Iterable[Flow],
    path: Union[str, Path],
    fmt: Optional[str] = None,
) -> int:
    """Write flows as CSV or JSONL; returns the number of rows written.

    Format follows the file suffix (``.jsonl``/``.ndjson`` → JSONL)
    unless ``fmt`` forces one.
    """
    path = Path(path)
    if _format_for(path, fmt) == "jsonl":
        return _save_jsonl(flows, path)
    count = 0
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(_HEADER)
        for flow in flows:
            writer.writerow(
                [
                    repr(flow.arrival),
                    flow.src,
                    flow.dst,
                    flow.size_bytes,
                    flow.tenant,
                    "" if flow.deadline is None else repr(flow.deadline),
                    "" if flow.request_id is None else flow.request_id,
                ]
            )
            count += 1
    return count


def _save_jsonl(flows: Iterable[Flow], path: Path) -> int:
    count = 0
    with path.open("w") as fh:
        for flow in flows:
            rec = {
                "arrival": flow.arrival,
                "src": flow.src,
                "dst": flow.dst,
                "size_bytes": flow.size_bytes,
            }
            if flow.tenant:
                rec["tenant"] = flow.tenant
            if flow.deadline is not None:
                rec["deadline"] = flow.deadline
            if flow.request_id is not None:
                rec["job"] = flow.request_id
            fh.write(json.dumps(rec) + "\n")
            count += 1
    return count


# ----------------------------------------------------------------------
# Loading

# (arrival, src, dst, size, tenant, deadline, job)
_Row = Tuple[float, int, int, int, int, Optional[float], Optional[int]]


def _check_row(
    path: Path,
    lineno: int,
    arrival: float,
    src: int,
    dst: int,
    size: int,
    n_hosts: Optional[int],
) -> None:
    if arrival < 0:
        raise TraceFormatError(f"{path}:{lineno}: negative arrival {arrival}")
    if size < 1:
        raise TraceFormatError(
            f"{path}:{lineno}: non-positive size {size} (a flow must carry "
            "at least one byte)"
        )
    if src == dst:
        raise TraceFormatError(f"{path}:{lineno}: src == dst == {src}")
    if n_hosts is not None and not (0 <= src < n_hosts and 0 <= dst < n_hosts):
        raise TraceFormatError(
            f"{path}:{lineno}: host pair ({src}, {dst}) out of range for "
            f"{n_hosts}-host fabric"
        )


def _iter_csv_rows(path: Path, n_hosts: Optional[int]) -> Iterator[_Row]:
    with path.open(newline="") as fh:
        reader = csv.reader(fh)
        try:
            header = next(reader)
        except StopIteration:
            raise TraceFormatError(f"{path}: empty trace file") from None
        header = [h.strip().lower() for h in header]
        if header[:4] != _HEADER[:4]:
            raise TraceFormatError(
                f"{path}: header must start with {_HEADER[:4]}, got {header[:4]}"
            )
        for lineno, row in enumerate(reader, start=2):
            if not row or all(not cell.strip() for cell in row):
                continue
            try:
                arrival = float(row[0])
                src = int(row[1])
                dst = int(row[2])
                size = int(row[3])
                tenant = int(row[4]) if len(row) > 4 and row[4].strip() else 0
                deadline = (
                    float(row[5]) if len(row) > 5 and row[5].strip() else None
                )
                job = int(row[6]) if len(row) > 6 and row[6].strip() else None
            except (ValueError, IndexError) as exc:
                raise TraceFormatError(f"{path}:{lineno}: bad row {row!r}") from exc
            _check_row(path, lineno, arrival, src, dst, size, n_hosts)
            yield (arrival, src, dst, size, tenant, deadline, job)


def _iter_jsonl_rows(path: Path, n_hosts: Optional[int]) -> Iterator[_Row]:
    saw_record = False
    with path.open() as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                rec = json.loads(line)
            except json.JSONDecodeError as exc:
                raise TraceFormatError(
                    f"{path}:{lineno}: invalid JSON: {exc.msg}"
                ) from None
            if not isinstance(rec, dict):
                raise TraceFormatError(
                    f"{path}:{lineno}: expected a JSON object, got "
                    f"{type(rec).__name__}"
                )
            missing = [
                k for k in ("arrival", "src", "dst", "size_bytes") if k not in rec
            ]
            if missing:
                raise TraceFormatError(
                    f"{path}:{lineno}: missing required fields {missing}"
                )
            try:
                arrival = float(rec["arrival"])
                src = int(rec["src"])
                dst = int(rec["dst"])
                size = int(rec["size_bytes"])
                tenant = int(rec.get("tenant", 0))
                deadline = (
                    float(rec["deadline"]) if rec.get("deadline") is not None else None
                )
                job = int(rec["job"]) if rec.get("job") is not None else None
            except (TypeError, ValueError) as exc:
                raise TraceFormatError(f"{path}:{lineno}: bad record: {exc}") from None
            _check_row(path, lineno, arrival, src, dst, size, n_hosts)
            saw_record = True
            yield (arrival, src, dst, size, tenant, deadline, job)
    if not saw_record:
        raise TraceFormatError(f"{path}: empty trace file")


def iter_flows(
    path: Union[str, Path],
    n_hosts: Optional[int] = None,
    first_fid: int = 0,
    fmt: Optional[str] = None,
) -> Iterator[Flow]:
    """Stream flows from a trace in file order, validating each row.

    Unlike :func:`load_flows` this neither sorts nor buffers — ids are
    assigned in file order — so arbitrarily large traces can be scanned
    in constant memory.
    """
    path = Path(path)
    rows = (
        _iter_jsonl_rows(path, n_hosts)
        if _format_for(path, fmt) == "jsonl"
        else _iter_csv_rows(path, n_hosts)
    )
    for i, (arrival, src, dst, size, tenant, deadline, job) in enumerate(rows):
        yield Flow(
            first_fid + i,
            src,
            dst,
            size,
            arrival,
            tenant=tenant,
            deadline=deadline,
            request_id=job,
        )


def load_flows(
    path: Union[str, Path],
    n_hosts: Optional[int] = None,
    first_fid: int = 0,
    fmt: Optional[str] = None,
    sorted: bool = False,
) -> List[Flow]:
    """Read flows from a trace file, validating against the fabric size.

    With ``sorted=False`` (default) rows may arrive in any order: flows
    are sorted by arrival time (stable, so equal arrivals keep file
    order) and renumbered sequentially from ``first_fid``.  With
    ``sorted=True`` the file *claims* to already be in arrival order —
    a row whose arrival precedes its predecessor's is an error, and
    file order is preserved exactly.
    """
    path = Path(path)
    rows_iter = (
        _iter_jsonl_rows(path, n_hosts)
        if _format_for(path, fmt) == "jsonl"
        else _iter_csv_rows(path, n_hosts)
    )
    rows: List[_Row] = []
    if sorted:
        prev = None
        for lineno_ish, row in enumerate(rows_iter):
            if prev is not None and row[0] < prev:
                raise TraceFormatError(
                    f"{path}: arrivals are not monotone (record "
                    f"{lineno_ish + 1} has arrival {row[0]!r} after {prev!r}) "
                    "but sorted=True was requested"
                )
            prev = row[0]
            rows.append(row)
    else:
        rows = list(rows_iter)
        rows.sort(key=lambda r: r[0])
    return [
        Flow(
            first_fid + i,
            src,
            dst,
            size,
            arrival,
            tenant=tenant,
            deadline=deadline,
            request_id=job,
        )
        for i, (arrival, src, dst, size, tenant, deadline, job) in enumerate(rows)
    ]
