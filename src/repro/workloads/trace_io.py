"""Flow-trace import/export.

The paper's workloads come from production traces we cannot ship; this
module lets downstream users run the simulator on their *own* traces.
The format is deliberately plain CSV with a header::

    arrival,src,dst,size_bytes[,tenant[,deadline]]

* ``arrival`` — seconds (float), non-decreasing not required (sorted on
  load);
* ``src``/``dst`` — host indices in the simulated fabric;
* ``tenant`` — optional integer tenant id (default 0);
* ``deadline`` — optional absolute deadline in seconds.

``save_flows``/``load_flows`` round-trip exactly, and
``replay_spec_flows`` converts a generated workload to a file so an
experiment can be archived and re-run bit-for-bit elsewhere.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Iterable, List, Optional, Union

from repro.net.packet import Flow

__all__ = ["save_flows", "load_flows", "TraceFormatError"]

_HEADER = ["arrival", "src", "dst", "size_bytes", "tenant", "deadline"]


class TraceFormatError(ValueError):
    """Raised when a trace file cannot be parsed."""


def save_flows(flows: Iterable[Flow], path: Union[str, Path]) -> int:
    """Write flows as CSV; returns the number of rows written."""
    path = Path(path)
    count = 0
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(_HEADER)
        for flow in flows:
            writer.writerow(
                [
                    repr(flow.arrival),
                    flow.src,
                    flow.dst,
                    flow.size_bytes,
                    flow.tenant,
                    "" if flow.deadline is None else repr(flow.deadline),
                ]
            )
            count += 1
    return count


def load_flows(
    path: Union[str, Path],
    n_hosts: Optional[int] = None,
    first_fid: int = 0,
) -> List[Flow]:
    """Read flows from CSV, validating against the fabric size.

    Flows are returned sorted by arrival time with sequential ids
    starting at ``first_fid``.
    """
    path = Path(path)
    rows: List[tuple] = []
    with path.open(newline="") as fh:
        reader = csv.reader(fh)
        try:
            header = next(reader)
        except StopIteration:
            raise TraceFormatError(f"{path}: empty trace file") from None
        header = [h.strip().lower() for h in header]
        if header[:4] != _HEADER[:4]:
            raise TraceFormatError(
                f"{path}: header must start with {_HEADER[:4]}, got {header[:4]}"
            )
        for lineno, row in enumerate(reader, start=2):
            if not row or all(not cell.strip() for cell in row):
                continue
            try:
                arrival = float(row[0])
                src = int(row[1])
                dst = int(row[2])
                size = int(row[3])
                tenant = int(row[4]) if len(row) > 4 and row[4].strip() else 0
                deadline = (
                    float(row[5]) if len(row) > 5 and row[5].strip() else None
                )
            except (ValueError, IndexError) as exc:
                raise TraceFormatError(f"{path}:{lineno}: bad row {row!r}") from exc
            if arrival < 0:
                raise TraceFormatError(f"{path}:{lineno}: negative arrival")
            if size < 0:
                raise TraceFormatError(f"{path}:{lineno}: negative size")
            if src == dst:
                raise TraceFormatError(f"{path}:{lineno}: src == dst == {src}")
            if n_hosts is not None and not (0 <= src < n_hosts and 0 <= dst < n_hosts):
                raise TraceFormatError(
                    f"{path}:{lineno}: host out of range for {n_hosts}-host fabric"
                )
            rows.append((arrival, src, dst, size, tenant, deadline))
    rows.sort(key=lambda r: r[0])
    return [
        Flow(first_fid + i, src, dst, size, arrival, tenant=tenant, deadline=deadline)
        for i, (arrival, src, dst, size, tenant, deadline) in enumerate(rows)
    ]
