"""Workloads (S8-S10): flow-size distributions, arrival processes,
traffic matrices and deadline assignment from the paper's evaluation.
"""

from repro.workloads.distributions import (
    EmpiricalCDF,
    WORKLOADS,
    bimodal,
    data_mining,
    fixed_size,
    imc10,
    web_search,
)
from repro.workloads.generator import FlowGenerator, poisson_flow_rate
from repro.workloads.traffic_matrix import (
    AllToAll,
    IncastPattern,
    Permutation,
    TrafficMatrix,
)
from repro.workloads.deadlines import assign_deadlines
from repro.workloads.synthetic import LognormalDist, ParetoDist, UniformDist
from repro.workloads.trace_io import (
    TraceFormatError,
    iter_flows,
    load_flows,
    save_flows,
)
from repro.workloads.skew import SkewConfig, SkewedMatrix, parse_skew
from repro.workloads.ramp import LoadProfile, parse_load_profile
from repro.workloads.coflows import CoflowConfig, CoflowGenerator, parse_coflows

__all__ = [
    "EmpiricalCDF",
    "WORKLOADS",
    "web_search",
    "data_mining",
    "imc10",
    "bimodal",
    "fixed_size",
    "FlowGenerator",
    "poisson_flow_rate",
    "TrafficMatrix",
    "AllToAll",
    "Permutation",
    "IncastPattern",
    "assign_deadlines",
    "ParetoDist",
    "LognormalDist",
    "UniformDist",
    "load_flows",
    "save_flows",
    "iter_flows",
    "TraceFormatError",
    "SkewConfig",
    "SkewedMatrix",
    "parse_skew",
    "LoadProfile",
    "parse_load_profile",
    "CoflowConfig",
    "CoflowGenerator",
    "parse_coflows",
]
