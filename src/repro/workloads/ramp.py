"""Piecewise-constant load ramps for the arrival process (figT).

The paper's generators are homogeneous Poisson; real fabrics see
diurnal swings and bursts.  :class:`LoadProfile` multiplies the base
arrival rate by a piecewise-constant factor, and inter-arrival times
are drawn by cumulative-hazard inversion: draw a unit exponential
``e``, then walk the segments consuming ``rate(t) * dt`` of hazard
until ``e`` is spent.  One RNG draw per arrival, exactly like the flat
``expovariate`` path, so determinism bookkeeping is unchanged — a flow
with ``profile=None`` (or :meth:`LoadProfile.flat`) consumes the same
stream the same way and keeps existing digests byte-identical.

The final segment extends to infinity, so the profile covers any
horizon.  Property tests in ``tests/workloads/test_ramp.py`` pin the
inversion against per-segment empirical rates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.sim.randoms import SeededRng

__all__ = ["LoadProfile", "parse_load_profile"]


@dataclass(frozen=True)
class LoadProfile:
    """Piecewise-constant multiplier on the base arrival rate.

    ``segments`` is a tuple of ``(start_time, multiplier)`` pairs: the
    multiplier applies from its start time until the next segment's
    start (the last one runs forever).  The first start must be 0.0,
    starts strictly increase, and multipliers are positive.
    """

    segments: Tuple[Tuple[float, float], ...] = ((0.0, 1.0),)

    def __post_init__(self) -> None:
        segs = tuple((float(t), float(m)) for t, m in self.segments)
        object.__setattr__(self, "segments", segs)
        if not segs:
            raise ValueError("LoadProfile needs at least one segment")
        if segs[0][0] != 0.0:
            raise ValueError(
                f"first segment must start at t=0.0, got {segs[0][0]}"
            )
        for (t0, _), (t1, _) in zip(segs, segs[1:]):
            if t1 <= t0:
                raise ValueError(
                    f"segment starts must strictly increase ({t1} after {t0})"
                )
        for t, m in segs:
            if m <= 0.0:
                raise ValueError(f"multiplier at t={t} must be > 0, got {m}")

    # ------------------------------------------------------------------
    @classmethod
    def flat(cls) -> "LoadProfile":
        """The identity profile (multiplier 1 everywhere)."""
        return cls(((0.0, 1.0),))

    @classmethod
    def burst(cls, at: float, duration: float, factor: float) -> "LoadProfile":
        """Baseline load with a ``factor``× burst in ``[at, at+duration)``."""
        if at < 0.0 or duration <= 0.0:
            raise ValueError("burst needs at >= 0 and duration > 0")
        if at == 0.0:
            return cls(((0.0, factor), (duration, 1.0)))
        return cls(((0.0, 1.0), (at, factor), (at + duration, 1.0)))

    @classmethod
    def diurnal(
        cls, period: float, low: float, high: float, steps: int = 8
    ) -> "LoadProfile":
        """One sinusoid-ish cycle: ``steps`` equal slices ramping
        low → high → low over ``period`` (then the last slice holds)."""
        if period <= 0.0 or steps < 2:
            raise ValueError("diurnal needs period > 0 and steps >= 2")
        segs = []
        for i in range(steps):
            # Triangle wave sampled at slice midpoints: 0 → 1 → 0.
            phase = i / (steps - 1)
            level = 1.0 - abs(2.0 * phase - 1.0)
            segs.append((period * i / steps, low + (high - low) * level))
        return cls(tuple(segs))

    # ------------------------------------------------------------------
    @property
    def is_flat(self) -> bool:
        return all(m == self.segments[0][1] for _, m in self.segments)

    def multiplier_at(self, t: float) -> float:
        """The rate multiplier in effect at absolute time ``t``."""
        current = self.segments[0][1]
        for start, mult in self.segments:
            if start > t:
                break
            current = mult
        return current

    def mean_multiplier(self, horizon: float) -> float:
        """Time-average multiplier over ``[0, horizon]`` (for sizing
        the experiment's time guard)."""
        if horizon <= 0.0:
            return self.segments[0][1]
        total = 0.0
        for i, (start, mult) in enumerate(self.segments):
            if start >= horizon:
                break
            end = (
                self.segments[i + 1][0]
                if i + 1 < len(self.segments)
                else horizon
            )
            total += mult * (min(end, horizon) - start)
        return total / horizon

    def next_arrival(self, now: float, base_rate: float, rng: SeededRng) -> float:
        """The next arrival time after ``now`` for a non-homogeneous
        Poisson process with rate ``base_rate * multiplier_at(t)``.

        Cumulative-hazard inversion: exactly one exponential draw per
        arrival regardless of how many segment boundaries are crossed.
        """
        if base_rate <= 0.0:
            raise ValueError(f"base_rate must be > 0, got {base_rate}")
        hazard = rng.expovariate(1.0)
        t = now
        idx = 0
        for i, (start, _) in enumerate(self.segments):
            if start > t:
                break
            idx = i
        while True:
            rate = base_rate * self.segments[idx][1]
            if idx + 1 < len(self.segments):
                boundary = self.segments[idx + 1][0]
                chunk = rate * (boundary - t)
                if chunk < hazard:
                    hazard -= chunk
                    t = boundary
                    idx += 1
                    continue
            return t + hazard / rate


def parse_load_profile(text: str) -> LoadProfile:
    """Parse the CLI ``--ramp`` spec into a :class:`LoadProfile`.

    Three forms::

        burst@AT:DURATION:FACTOR     e.g.  burst@0.01:0.02:4
        diurnal@PERIOD:LOW:HIGH      e.g.  diurnal@0.1:0.5:2
        T:MULT,T:MULT,...            explicit segments, first T must be 0
    """
    text = text.strip()
    try:
        if text.startswith("burst@"):
            at, duration, factor = (float(v) for v in text[6:].split(":"))
            return LoadProfile.burst(at, duration, factor)
        if text.startswith("diurnal@"):
            period, low, high = (float(v) for v in text[8:].split(":"))
            return LoadProfile.diurnal(period, low, high)
        segs = []
        for part in text.split(","):
            t, _, m = part.partition(":")
            if not m:
                raise ValueError(f"segment {part!r} is not T:MULT")
            segs.append((float(t), float(m)))
        return LoadProfile(tuple(segs))
    except ValueError as exc:
        raise ValueError(f"bad --ramp spec {text!r}: {exc}") from None
