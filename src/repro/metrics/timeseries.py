"""Time series of a running simulation.

Two complementary shapes:

* :class:`ThroughputSeries` — a collector observer that bins delivered
  payload bytes into fixed windows and tracks the active-flow count at
  each transition — the raw material for "goodput over time" and
  "concurrency over time" plots, and a direct way to watch a run enter
  the unstable regime (goodput saturates while active flows climb).
  Attach it with :meth:`repro.metrics.collector.MetricsCollector.add_observer`
  (observers stack; tracers, auditors and telemetry sinks coexist).
* :class:`ColumnarSeries` — an append-only columnar store (one shared
  time column plus named float columns) that the
  :class:`repro.obs.PeriodicSampler` fills with registry snapshots.
  Columns may appear mid-run (instruments registered late); earlier
  rows are backfilled with NaN so every column always has one value
  per row.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterator, List, Mapping, Optional, Tuple

from repro.net.packet import Flow, Packet
from repro.sim.engine import EventLoop
from repro.sim.units import HEADER_BYTES

__all__ = ["ThroughputSeries", "Window", "ColumnarSeries"]


@dataclass(frozen=True)
class Window:
    """One completed time window."""

    start: float
    bytes_delivered: int
    flows_completed: int
    flows_arrived: int

    def goodput_bps(self, width: float) -> float:
        return self.bytes_delivered * 8.0 / width


class ThroughputSeries:
    """Collector observer binning delivery into fixed windows."""

    def __init__(self, env: EventLoop, window: float) -> None:
        if window <= 0:
            raise ValueError("window must be positive")
        self.env = env
        self.window = window
        self._bins: Dict[int, List[int]] = {}  # idx -> [bytes, done, arrived]
        self.active_flows = 0
        self.peak_active_flows = 0

    # -- observer interface ---------------------------------------------
    def flow_arrived(self, flow: Flow, now: float) -> None:
        self.active_flows += 1
        if self.active_flows > self.peak_active_flows:
            self.peak_active_flows = self.active_flows
        self._bin(now)[2] += 1

    def flow_completed(self, flow: Flow, now: float) -> None:
        if self.active_flows > 0:
            self.active_flows -= 1
        self._bin(now)[1] += 1

    def data_sent(self, pkt: Packet, first_time: bool) -> None:
        pass

    def data_delivered(self, pkt: Packet) -> None:
        self._bin(self.env.now)[0] += max(pkt.size - HEADER_BYTES, 0)

    def control_sent(self, pkt: Packet) -> None:
        pass

    # -- internals --------------------------------------------------------
    def _bin(self, now: float) -> List[int]:
        idx = int(now / self.window)
        cell = self._bins.get(idx)
        if cell is None:
            cell = [0, 0, 0]
            self._bins[idx] = cell
        return cell

    # -- queries ----------------------------------------------------------
    def windows(self) -> List[Window]:
        """All non-empty windows in time order."""
        out = []
        for idx in sorted(self._bins):
            b, done, arrived = self._bins[idx]
            out.append(Window(idx * self.window, b, done, arrived))
        return out

    def peak_goodput_bps(self) -> float:
        if not self._bins:
            return 0.0
        return max(b for b, _, _ in self._bins.values()) * 8.0 / self.window

    def total_bytes(self) -> int:
        return sum(b for b, _, _ in self._bins.values())


class ColumnarSeries:
    """Append-only columnar time series.

    One shared ``times`` list; each named column is a parallel list of
    floats.  Rows are appended via :meth:`append` with a full mapping of
    column values; columns unseen before are backfilled with NaN, and
    columns missing from a row get NaN for that row — so
    ``len(column) == len(times)`` always holds.
    """

    def __init__(self) -> None:
        self.times: List[float] = []
        self.columns: Dict[str, List[float]] = {}

    # ------------------------------------------------------------------
    def append(self, t: float, values: Mapping[str, float]) -> None:
        """Add one row at time ``t``."""
        n = len(self.times)
        for name, value in values.items():
            col = self.columns.get(name)
            if col is None:
                col = [math.nan] * n
                self.columns[name] = col
            col.append(float(value))
        for name, col in self.columns.items():
            if len(col) == n:  # column absent from this row
                col.append(math.nan)
        self.times.append(t)

    # ------------------------------------------------------------------
    def column(self, name: str) -> List[float]:
        return self.columns[name]

    def names(self) -> List[str]:
        return sorted(self.columns)

    def rows(self) -> Iterator[Tuple[float, Dict[str, float]]]:
        """Yield ``(t, {column: value})`` per row, NaN cells omitted."""
        for i, t in enumerate(self.times):
            row = {
                name: col[i]
                for name, col in self.columns.items()
                if not math.isnan(col[i])
            }
            yield t, row

    def peak(self, name: str) -> Tuple[Optional[float], float]:
        """``(time, value)`` of the column's maximum (NaN-ignoring).

        Returns ``(None, nan)`` when the column has no finite values.
        """
        best_t: Optional[float] = None
        best_v = math.nan
        for t, v in zip(self.times, self.columns.get(name, [])):
            if math.isnan(v):
                continue
            if best_t is None or v > best_v:
                best_t, best_v = t, v
        return best_t, best_v

    def __len__(self) -> int:
        return len(self.times)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"ColumnarSeries({len(self.times)} rows x {len(self.columns)} cols)"
