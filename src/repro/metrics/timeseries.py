"""Windowed time series of a running simulation.

A :class:`ThroughputSeries` is a collector observer that bins delivered
payload bytes into fixed windows and tracks the active-flow count at
each transition — the raw material for "goodput over time" and
"concurrency over time" plots, and a direct way to watch a run enter
the unstable regime (goodput saturates while active flows climb).

Attach exactly one observer per collector (the
:class:`repro.trace.PacketTracer` uses the same slot); to combine,
compose manually.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.net.packet import Flow, Packet
from repro.sim.engine import EventLoop
from repro.sim.units import HEADER_BYTES

__all__ = ["ThroughputSeries", "Window"]


@dataclass(frozen=True)
class Window:
    """One completed time window."""

    start: float
    bytes_delivered: int
    flows_completed: int
    flows_arrived: int

    def goodput_bps(self, width: float) -> float:
        return self.bytes_delivered * 8.0 / width


class ThroughputSeries:
    """Collector observer binning delivery into fixed windows."""

    def __init__(self, env: EventLoop, window: float) -> None:
        if window <= 0:
            raise ValueError("window must be positive")
        self.env = env
        self.window = window
        self._bins: Dict[int, List[int]] = {}  # idx -> [bytes, done, arrived]
        self.active_flows = 0
        self.peak_active_flows = 0

    # -- observer interface ---------------------------------------------
    def flow_arrived(self, flow: Flow, now: float) -> None:
        self.active_flows += 1
        if self.active_flows > self.peak_active_flows:
            self.peak_active_flows = self.active_flows
        self._bin(now)[2] += 1

    def flow_completed(self, flow: Flow, now: float) -> None:
        if self.active_flows > 0:
            self.active_flows -= 1
        self._bin(now)[1] += 1

    def data_sent(self, pkt: Packet, first_time: bool) -> None:
        pass

    def data_delivered(self, pkt: Packet) -> None:
        self._bin(self.env.now)[0] += max(pkt.size - HEADER_BYTES, 0)

    def control_sent(self, pkt: Packet) -> None:
        pass

    # -- internals --------------------------------------------------------
    def _bin(self, now: float) -> List[int]:
        idx = int(now / self.window)
        cell = self._bins.get(idx)
        if cell is None:
            cell = [0, 0, 0]
            self._bins[idx] = cell
        return cell

    # -- queries ----------------------------------------------------------
    def windows(self) -> List[Window]:
        """All non-empty windows in time order."""
        out = []
        for idx in sorted(self._bins):
            b, done, arrived = self._bins[idx]
            out.append(Window(idx * self.window, b, done, arrived))
        return out

    def peak_goodput_bps(self) -> float:
        if not self._bins:
            return 0.0
        return max(b for b, _, _ in self._bins.values()) * 8.0 / self.window

    def total_bytes(self) -> int:
        return sum(b for b, _, _ in self._bins.values())
