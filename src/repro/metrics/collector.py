"""In-simulation metrics collection.

One :class:`MetricsCollector` per run.  Transport agents report events
through it (flow completed, data packet injected/delivered, control
packet sent, retransmission); the fabric reports drops directly into its
own counters, which the experiment result merges with these.

The collector also tracks the cumulative counters that the Figure 7
stability analysis samples: packets *arrived* (offered by the workload)
versus packets *injected* (transmitted at least once by a source).
"""

from __future__ import annotations

import warnings
from typing import Callable, Dict, List, Optional

from repro.net.packet import Flow, Packet
from repro.sim.units import HEADER_BYTES

__all__ = ["MetricsCollector"]


class MetricsCollector:
    """Counters and completion recording for one simulation run."""

    def __init__(self) -> None:
        self.flows: Dict[int, Flow] = {}
        self.completed_flows: List[Flow] = []
        # Data-plane counters
        self.data_pkts_injected = 0        # unique first transmissions at sources
        self.data_pkts_retransmitted = 0
        self.data_pkts_delivered = 0       # packets accepted at destinations (deduped)
        self.data_pkts_duplicate = 0       # arrivals discarded as already-received
        self.payload_bytes_delivered = 0
        self.delivered_bytes_by_tenant: Dict[int, int] = {}
        self.control_pkts_sent = 0
        self.control_bytes_sent = 0
        # Job (coflow) bookkeeping: flows sharing a request_id form a
        # job; these count members per job so live gauges can report
        # how many jobs are open vs fully drained (the post-hoc JCT
        # analysis lives in repro.metrics.jobs).
        self.job_flows_seen: Dict[int, int] = {}
        self.job_flows_done: Dict[int, int] = {}
        # Workload counters (for stability analysis)
        self.pkts_arrived = 0              # sum of n_pkts over arrived flows
        self.total_pkts_offered = 0        # set by the runner up front
        self.expected_flows: Optional[int] = None  # set by the runner up front
        # Time bounds of the data plane (throughput window)
        self.first_arrival: Optional[float] = None
        self.last_completion: Optional[float] = None
        # Optional hook fired on each completion (incast driver uses it)
        self.on_complete: Optional[Callable[[Flow, float], None]] = None
        # Event observers (see repro.trace / repro.validate / repro.obs);
        # each must expose flow_arrived/flow_completed/data_sent/
        # data_delivered/control_sent.  ``add_observer`` is the
        # attachment point — observers stack, so a tracer, the auditors
        # and telemetry sinks coexist on one run.  ``_legacy_observer``
        # backs the deprecated single-slot ``observer`` property.
        self._legacy_observer = None
        self._observers: List = []

    def add_observer(self, observer) -> None:
        """Register an event observer (tracers, auditors, sinks stack)."""
        self._observers.append(observer)

    @property
    def observer(self):
        """Deprecated single-observer slot; use :meth:`add_observer`."""
        return self._legacy_observer

    @observer.setter
    def observer(self, value) -> None:
        if value is not None:
            warnings.warn(
                "MetricsCollector.observer is deprecated; use "
                "add_observer() — observers stack, the single slot "
                "does not",
                DeprecationWarning,
                stacklevel=2,
            )
        self._legacy_observer = value

    # ------------------------------------------------------------------
    # Flow lifecycle
    # ------------------------------------------------------------------
    def flow_arrived(self, flow: Flow, now: float) -> None:
        self.flows[flow.fid] = flow
        self.pkts_arrived += flow.n_pkts
        if flow.request_id is not None:
            rid = flow.request_id
            self.job_flows_seen[rid] = self.job_flows_seen.get(rid, 0) + 1
        if self.first_arrival is None or now < self.first_arrival:
            self.first_arrival = now
        if self._legacy_observer is not None:
            self._legacy_observer.flow_arrived(flow, now)
        for obs in self._observers:
            obs.flow_arrived(flow, now)

    def flow_completed(self, flow: Flow, now: float) -> None:
        if flow.finish is not None:
            return  # idempotent: duplicate ACK paths must not double count
        flow.finish = now
        self.completed_flows.append(flow)
        self.payload_bytes_delivered += flow.size_bytes
        if flow.request_id is not None:
            rid = flow.request_id
            self.job_flows_done[rid] = self.job_flows_done.get(rid, 0) + 1
        if self.last_completion is None or now > self.last_completion:
            self.last_completion = now
        if self._legacy_observer is not None:
            self._legacy_observer.flow_completed(flow, now)
        for obs in self._observers:
            obs.flow_completed(flow, now)
        if self.on_complete is not None:
            self.on_complete(flow, now)

    # ------------------------------------------------------------------
    # Packet events
    # ------------------------------------------------------------------
    def data_sent(self, pkt: Packet, first_time: bool) -> None:
        if first_time:
            self.data_pkts_injected += 1
        else:
            self.data_pkts_retransmitted += 1
        if self._legacy_observer is not None:
            self._legacy_observer.data_sent(pkt, first_time)
        if self._observers:
            for obs in self._observers:
                obs.data_sent(pkt, first_time)

    def data_delivered(self, pkt: Packet) -> None:
        self.data_pkts_delivered += 1
        if pkt.flow is not None:
            tenant = pkt.flow.tenant
            payload = max(pkt.size - HEADER_BYTES, 0)
            self.delivered_bytes_by_tenant[tenant] = (
                self.delivered_bytes_by_tenant.get(tenant, 0) + payload
            )
        if self._legacy_observer is not None:
            self._legacy_observer.data_delivered(pkt)
        if self._observers:
            for obs in self._observers:
                obs.data_delivered(pkt)

    def data_duplicate(self, pkt: Packet) -> None:
        """A destination discarded an already-received data packet."""
        self.data_pkts_duplicate += 1
        if self._legacy_observer is not None:
            handler = getattr(self._legacy_observer, "data_duplicate", None)
            if handler is not None:
                handler(pkt)
        if self._observers:
            for obs in self._observers:
                obs.data_duplicate(pkt)

    def control_sent(self, pkt: Packet) -> None:
        self.control_pkts_sent += 1
        self.control_bytes_sent += pkt.size
        if self._legacy_observer is not None:
            self._legacy_observer.control_sent(pkt)
        if self._observers:
            for obs in self._observers:
                obs.control_sent(pkt)

    # ------------------------------------------------------------------
    # Derived views
    # ------------------------------------------------------------------
    @property
    def n_flows(self) -> int:
        return len(self.flows)

    @property
    def n_completed(self) -> int:
        return len(self.completed_flows)

    @property
    def all_complete(self) -> bool:
        """True once every expected flow has completed.

        ``expected_flows`` must be set by the driver; before any flow
        arrives (or when unset) this is False — arrived-so-far counts
        would otherwise declare victory after the first completion.
        """
        total = self.expected_flows if self.expected_flows is not None else None
        if total is None:
            return False
        return self.n_completed >= total > 0

    @property
    def n_jobs_seen(self) -> int:
        """Distinct jobs (request_id groups) with at least one arrival."""
        return len(self.job_flows_seen)

    @property
    def n_jobs_drained(self) -> int:
        """Jobs whose every *arrived* member has completed.

        A live gauge: a job with members still to arrive can flicker
        back to open; the authoritative post-hoc answer is
        ``repro.metrics.jobs.job_records``.
        """
        return sum(
            1
            for rid, seen in self.job_flows_seen.items()
            if self.job_flows_done.get(rid, 0) >= seen
        )

    @property
    def pkts_pending(self) -> int:
        """Arrived-but-not-yet-injected packets (Fig. 7's y-axis)."""
        return max(self.pkts_arrived - self.data_pkts_injected, 0)

    def duration(self) -> float:
        if self.first_arrival is None or self.last_completion is None:
            return 0.0
        return max(self.last_completion - self.first_arrival, 0.0)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"MetricsCollector(flows={self.n_flows}, done={self.n_completed}, "
            f"injected={self.data_pkts_injected}, delivered={self.data_pkts_delivered})"
        )
