"""Per-flow result records.

A :class:`FlowRecord` is the analysis-ready, protocol-independent
summary of one completed (or abandoned) flow.  Records are derived from
:class:`repro.net.packet.Flow` objects once a run finishes, with OPT
computed from the fabric under the same forwarding model as the
simulation (see ``Fabric.opt_fct``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional

from repro.net.packet import Flow
from repro.net.topology import Fabric

__all__ = ["FlowRecord", "records_from_flows"]


@dataclass(frozen=True)
class FlowRecord:
    """One flow's outcome.

    ``fct``/``slowdown`` are None for flows that never completed (a run
    in the unstable regime may end with flows outstanding; analysis
    functions treat those as missing, and report completion counts).
    """

    fid: int
    src: int
    dst: int
    size_bytes: int
    n_pkts: int
    tenant: int
    arrival: float
    finish: Optional[float]
    opt: float
    deadline: Optional[float] = None
    #: Job (coflow) id the flow belongs to; None for standalone flows.
    request_id: Optional[int] = None

    @property
    def completed(self) -> bool:
        return self.finish is not None

    @property
    def fct(self) -> Optional[float]:
        if self.finish is None:
            return None
        return self.finish - self.arrival

    @property
    def slowdown(self) -> Optional[float]:
        fct = self.fct
        if fct is None:
            return None
        return fct / self.opt

    @property
    def met_deadline(self) -> Optional[bool]:
        """True/False if a deadline was set; None when no deadline."""
        if self.deadline is None:
            return None
        if self.finish is None:
            return False
        return self.finish <= self.deadline


def records_from_flows(flows: Iterable[Flow], fabric: Fabric) -> List[FlowRecord]:
    """Convert simulation flows into analysis records."""
    out: List[FlowRecord] = []
    for f in flows:
        out.append(
            FlowRecord(
                fid=f.fid,
                src=f.src,
                dst=f.dst,
                size_bytes=f.size_bytes,
                n_pkts=f.n_pkts,
                tenant=f.tenant,
                arrival=f.arrival,
                finish=f.finish,
                opt=fabric.opt_fct(f.size_bytes, f.src, f.dst),
                deadline=f.deadline,
                request_id=f.request_id,
            )
        )
    return out
