"""Empirical-distribution utilities for result analysis.

Papers in this area present per-flow results as CDFs and size-binned
series (e.g. slowdown vs flow size).  These helpers turn
:class:`~repro.metrics.records.FlowRecord` lists into those shapes
without pulling in a plotting stack — output is (x, y) pairs ready for
any renderer, plus an ASCII sparkline for terminal inspection.
"""

from __future__ import annotations

import math
from typing import Iterable, List, Sequence, Tuple

from repro.metrics.records import FlowRecord
from repro.metrics.slowdown import mean_slowdown

__all__ = [
    "empirical_cdf",
    "log_bins",
    "slowdown_by_size",
    "histogram",
    "sparkline",
]


def empirical_cdf(values: Iterable[float]) -> List[Tuple[float, float]]:
    """(value, P(X <= value)) points of the sample CDF."""
    ordered = sorted(values)
    n = len(ordered)
    if n == 0:
        return []
    return [(v, (i + 1) / n) for i, v in enumerate(ordered)]


def log_bins(lo: float, hi: float, per_decade: int = 4) -> List[float]:
    """Logarithmically spaced bin edges covering [lo, hi]."""
    if lo <= 0 or hi <= lo:
        raise ValueError("need 0 < lo < hi")
    if per_decade < 1:
        raise ValueError("per_decade must be >= 1")
    edges = []
    step = 1.0 / per_decade
    k = math.floor(math.log10(lo) / step) * step
    while 10 ** k < hi * (1 + 1e-12):
        edges.append(10 ** k)
        k += step
    edges.append(10 ** k)
    return edges


def slowdown_by_size(
    records: Sequence[FlowRecord],
    per_decade: int = 2,
) -> List[Tuple[float, float, int]]:
    """Mean slowdown per logarithmic flow-size bin.

    Returns (bin upper edge in bytes, mean slowdown, flow count) for
    non-empty bins — the classic per-size breakdown plot.
    """
    done = [r for r in records if r.completed]
    if not done:
        return []
    sizes = [max(r.size_bytes, 1) for r in done]
    edges = log_bins(min(sizes), max(sizes) + 1, per_decade)
    out: List[Tuple[float, float, int]] = []
    for lo, hi in zip(edges, edges[1:]):
        bucket = [r for r in done if lo <= max(r.size_bytes, 1) < hi]
        if bucket:
            out.append((hi, mean_slowdown(bucket), len(bucket)))
    return out


def histogram(
    values: Sequence[float],
    edges: Sequence[float],
) -> List[int]:
    """Counts per [edges[i], edges[i+1]) bin; values outside are ignored."""
    if len(edges) < 2:
        raise ValueError("need at least two bin edges")
    counts = [0] * (len(edges) - 1)
    for v in values:
        if v < edges[0] or v >= edges[-1]:
            continue
        # linear scan is fine for analysis-time code
        for i in range(len(edges) - 1):
            if edges[i] <= v < edges[i + 1]:
                counts[i] += 1
                break
    return counts


_SPARK_CHARS = " .:-=+*#%@"


def sparkline(values: Sequence[float], width: int = 40) -> str:
    """A terminal-friendly magnitude strip for quick inspection."""
    if not values:
        return ""
    if width < 1:
        raise ValueError("width must be positive")
    # resample to the requested width
    if len(values) > width:
        chunk = len(values) / width
        resampled = [
            max(values[int(i * chunk): max(int((i + 1) * chunk), int(i * chunk) + 1)])
            for i in range(width)
        ]
    else:
        resampled = list(values)
    hi = max(resampled)
    lo = min(resampled)
    span = hi - lo
    if span <= 0:
        return _SPARK_CHARS[1] * len(resampled)
    out = []
    for v in resampled:
        idx = int((v - lo) / span * (len(_SPARK_CHARS) - 1))
        out.append(_SPARK_CHARS[idx])
    return "".join(out)
