"""Packet-drop accounting (Figures 5e and 5f).

The fabric counts drops per hop (1 = host NIC, 2 = ToR up, 3 = core,
4 = ToR down); :class:`DropStats` snapshots those counters together with
the injection totals needed to express a drop *rate*.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.metrics.collector import MetricsCollector
from repro.net.topology import Fabric, HOP_NAMES

__all__ = ["DropStats"]


@dataclass(frozen=True)
class DropStats:
    """Immutable snapshot of drop counters at the end of a run."""

    by_hop: Dict[int, int]
    total_drops: int
    pkts_injected: int
    pkts_retransmitted: int

    @classmethod
    def from_run(cls, fabric: Fabric, collector: MetricsCollector) -> "DropStats":
        return cls(
            by_hop=dict(fabric.drops_by_hop),
            total_drops=fabric.drops_total,
            pkts_injected=collector.data_pkts_injected,
            pkts_retransmitted=collector.data_pkts_retransmitted,
        )

    @property
    def drop_rate(self) -> float:
        """Drops / total packets injected (Fig. 5e's y-axis)."""
        sent = self.pkts_injected + self.pkts_retransmitted
        if sent <= 0:
            return 0.0
        return self.total_drops / sent

    @property
    def edge_drops(self) -> int:
        """First + last hop drops (where pFabric concentrates losses)."""
        return self.by_hop.get(1, 0) + self.by_hop.get(4, 0)

    @property
    def fabric_drops(self) -> int:
        """Drops inside the fabric (hops 2 and 3)."""
        return self.by_hop.get(2, 0) + self.by_hop.get(3, 0)

    def rows(self):
        """(hop name, count) rows in hop order, for reports."""
        return [(HOP_NAMES[h], self.by_hop.get(h, 0)) for h in sorted(HOP_NAMES)]

    def __str__(self) -> str:
        parts = ", ".join(f"{name}={count}" for name, count in self.rows())
        return f"DropStats(total={self.total_drops}, rate={self.drop_rate:.2e}, {parts})"
