"""Metrics (S11): everything §4 of the paper measures.

* :mod:`repro.metrics.records` — per-flow result records.
* :mod:`repro.metrics.collector` — in-simulation counters and completion
  recording.
* :mod:`repro.metrics.slowdown` — slowdown / NFCT / percentile analysis.
* :mod:`repro.metrics.throughput` — goodput normalization.
* :mod:`repro.metrics.drops` — drop-rate and per-hop drop accounting.
* :mod:`repro.metrics.stability` — Fig. 7 pending-packet analysis.
* :mod:`repro.metrics.jobs` — coflow job-completion-time analysis.
"""

from repro.metrics.records import FlowRecord, records_from_flows
from repro.metrics.collector import MetricsCollector
from repro.metrics.jobs import (
    JobRecord,
    job_completion_rate,
    job_records,
    mean_jct,
)
from repro.metrics.slowdown import (
    deadline_met_fraction,
    mean_fct,
    mean_slowdown,
    nfct,
    percentile,
    slowdown_percentile,
    split_short_long,
)
from repro.metrics.throughput import per_host_goodput_gbps
from repro.metrics.drops import DropStats
from repro.metrics.stability import StabilitySample, StabilityTracker
from repro.metrics.export import load_records, result_to_json, save_records
from repro.metrics.timeseries import ThroughputSeries, Window

__all__ = [
    "FlowRecord",
    "records_from_flows",
    "MetricsCollector",
    "JobRecord",
    "job_records",
    "mean_jct",
    "job_completion_rate",
    "mean_slowdown",
    "mean_fct",
    "nfct",
    "percentile",
    "slowdown_percentile",
    "split_short_long",
    "deadline_met_fraction",
    "per_host_goodput_gbps",
    "DropStats",
    "StabilitySample",
    "StabilityTracker",
    "save_records",
    "load_records",
    "result_to_json",
    "ThroughputSeries",
    "Window",
]
