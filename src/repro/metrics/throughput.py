"""Throughput metrics (Figure 5b).

The paper measures "the number of bytes delivered to receivers through
the network over unit time normalized by the access link bandwidth".
We report the average per-host goodput in Gbps over the active window
(first arrival to last completion); dividing by the access rate gives
the normalized form.
"""

from __future__ import annotations

from repro.metrics.collector import MetricsCollector

__all__ = ["per_host_goodput_gbps", "normalized_throughput"]


def per_host_goodput_gbps(
    collector: MetricsCollector,
    n_hosts: int,
    duration: float = 0.0,
) -> float:
    """Average payload Gbps delivered per host over the run."""
    window = duration if duration > 0 else collector.duration()
    if window <= 0 or n_hosts <= 0:
        return 0.0
    bits = collector.payload_bytes_delivered * 8.0
    return bits / window / n_hosts / 1e9


def normalized_throughput(
    collector: MetricsCollector,
    n_hosts: int,
    access_bps: float,
    duration: float = 0.0,
) -> float:
    """Goodput as a fraction of aggregate access bandwidth (~ load when
    the system keeps up)."""
    gbps_per_host = per_host_goodput_gbps(collector, n_hosts, duration)
    return gbps_per_host * 1e9 / access_bps
