"""Slowdown-family analyses (paper §4.1 "Performance metrics").

All functions take :class:`~repro.metrics.records.FlowRecord` lists.
Flows that never completed are excluded from slowdown/FCT statistics
(the caller should check completion rates separately; the runner
reports them).
"""

from __future__ import annotations

import math
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.metrics.records import FlowRecord

__all__ = [
    "completed",
    "mean_slowdown",
    "mean_fct",
    "nfct",
    "percentile",
    "slowdown_percentile",
    "split_short_long",
    "deadline_met_fraction",
]


def completed(records: Iterable[FlowRecord]) -> List[FlowRecord]:
    """Only the flows that finished."""
    return [r for r in records if r.completed]


def mean_slowdown(records: Iterable[FlowRecord]) -> float:
    """Mean of per-flow slowdown (FCT / OPT) over completed flows."""
    vals = [r.slowdown for r in records if r.completed]
    if not vals:
        return math.nan
    return sum(vals) / len(vals)


def mean_fct(records: Iterable[FlowRecord]) -> float:
    vals = [r.fct for r in records if r.completed]
    if not vals:
        return math.nan
    return sum(vals) / len(vals)


def nfct(records: Iterable[FlowRecord]) -> float:
    """Normalized FCT: mean(FCT) / mean(OPT) over completed flows.

    Unlike mean slowdown this is dominated by long flows (paper §4.3).
    """
    done = completed(records)
    if not done:
        return math.nan
    total_fct = sum(r.fct for r in done)
    total_opt = sum(r.opt for r in done)
    if total_opt <= 0:
        return math.nan
    return total_fct / total_opt


def percentile(values: Sequence[float], p: float) -> float:
    """Linear-interpolation percentile (p in [0, 100])."""
    if not values:
        return math.nan
    if not 0.0 <= p <= 100.0:
        raise ValueError("percentile must be in [0, 100]")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (p / 100.0) * (len(ordered) - 1)
    lo = int(math.floor(rank))
    hi = int(math.ceil(rank))
    if lo == hi:
        return ordered[lo]
    frac = rank - lo
    return ordered[lo] * (1 - frac) + ordered[hi] * frac


def slowdown_percentile(records: Iterable[FlowRecord], p: float) -> float:
    """p-th percentile slowdown over completed flows (Fig. 5d uses 99)."""
    vals = [r.slowdown for r in records if r.completed]
    return percentile(vals, p)


def split_short_long(
    records: Iterable[FlowRecord],
    threshold_bytes: int,
) -> Tuple[List[FlowRecord], List[FlowRecord]]:
    """Figure 4's split: flows > threshold are long, the rest short."""
    short: List[FlowRecord] = []
    long_: List[FlowRecord] = []
    for r in records:
        (long_ if r.size_bytes > threshold_bytes else short).append(r)
    return short, long_


def deadline_met_fraction(records: Iterable[FlowRecord]) -> float:
    """Fraction of deadline-carrying flows that met their deadline."""
    with_deadline = [r for r in records if r.deadline is not None]
    if not with_deadline:
        return math.nan
    met = sum(1 for r in with_deadline if r.met_deadline)
    return met / len(with_deadline)
