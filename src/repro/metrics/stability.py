"""Stability analysis (Figure 7).

The paper diagnoses instability at high load by plotting, as the
simulation progresses, the fraction of all packets that have *arrived*
at sources (x) against the fraction that have arrived but have not yet
been *injected* into the network (y).  A flat curve means sources keep
up with the offered load; a rising curve means the backlog grows without
bound and slowdown figures would be an artifact of run length.

:class:`StabilityTracker` samples the collector's counters on a periodic
timer while the simulation runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.metrics.collector import MetricsCollector
from repro.sim.engine import EventLoop

__all__ = ["StabilitySample", "StabilityTracker", "samples_stable"]


@dataclass(frozen=True)
class StabilitySample:
    """One point of the Fig. 7 curve."""

    time: float
    frac_arrived: float   # x-axis: packets arrived / total offered
    frac_pending: float   # y-axis: (arrived - injected) / total offered


class StabilityTracker:
    """Samples arrival/injection counters on a fixed period."""

    def __init__(
        self,
        env: EventLoop,
        collector: MetricsCollector,
        period: float,
    ) -> None:
        if period <= 0:
            raise ValueError("sampling period must be positive")
        self.env = env
        self.collector = collector
        self.period = period
        self.samples: List[StabilitySample] = []
        self._timer: Optional[list] = None

    def start(self) -> None:
        self._timer = self.env.schedule(self.period, self._tick)

    def stop(self) -> None:
        EventLoop.cancel(self._timer)
        self._timer = None

    def _tick(self) -> None:
        self.sample()
        self._timer = self.env.schedule(self.period, self._tick)

    def sample(self) -> Optional[StabilitySample]:
        total = self.collector.total_pkts_offered
        if total <= 0:
            return None
        arrived = self.collector.pkts_arrived
        pending = self.collector.pkts_pending
        point = StabilitySample(
            time=self.env.now,
            frac_arrived=arrived / total,
            frac_pending=pending / total,
        )
        self.samples.append(point)
        return point

    def is_stable(self, slope_tolerance: float = 0.05) -> bool:
        """Heuristic verdict from the samples: is the pending backlog
        ~flat while load is being offered?

        Only the *arrival phase* counts (frac_arrived < 1): once
        arrivals stop, any backlog drains and would mask instability.
        The verdict compares mean pending in the last third of the
        arrival phase against the first third; a rise above
        ``slope_tolerance`` flags instability — the paper's criterion
        that "the fraction of pending packets would remain roughly
        constant" in a stable network.
        """
        return samples_stable(self.samples, slope_tolerance)


def samples_stable(samples, slope_tolerance: float = 0.05) -> bool:
    """Stability verdict over a list of :class:`StabilitySample`.

    Compares the mean pending fraction in the *middle* third of the
    arrival phase against the *final* third: the first third is the
    ramp-up transient (the backlog grows from zero toward its working
    level even in a perfectly stable system), and the post-arrival
    samples are the drain.  A stable system is flat between the middle
    and the end; an unstable one keeps climbing.
    """
    phase = [s for s in samples if s.frac_arrived < 0.999]
    if len(phase) < 6:
        return True
    third = max(len(phase) // 3, 1)
    middle = phase[third: 2 * third]
    tail = phase[-third:]
    middle_mean = sum(s.frac_pending for s in middle) / len(middle)
    tail_mean = sum(s.frac_pending for s in tail) / len(tail)
    return (tail_mean - middle_mean) <= slope_tolerance
