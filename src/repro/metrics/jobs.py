"""Job (coflow) completion metrics.

Flows carrying a ``request_id`` form a *job*: the unit a distributed
application actually waits on.  A job's completion time runs from its
earliest member arrival to its latest member finish, and the job only
counts as complete when **every** member finished — one straggler flow
holds the whole job (exactly the effect coflow-aware schedulers exist
to fix, and the reason per-flow FCT understates application-level
pain on shuffle-like traffic).

Pure post-hoc analysis over :class:`~repro.metrics.records.FlowRecord`
lists — no simulation state, so the same functions serve experiment
results, incast drivers and trace replays.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from repro.metrics.records import FlowRecord

__all__ = ["JobRecord", "job_records", "mean_jct", "job_completion_rate"]


@dataclass(frozen=True)
class JobRecord:
    """One job's outcome, aggregated over its member flows."""

    job_id: int
    n_flows: int
    n_completed: int
    total_bytes: int
    arrival: float          # earliest member arrival
    finish: Optional[float]  # latest member finish; None if any member open

    @property
    def completed(self) -> bool:
        return self.finish is not None

    @property
    def jct(self) -> Optional[float]:
        """Job completion time: max member finish − min member arrival."""
        if self.finish is None:
            return None
        return self.finish - self.arrival


def job_records(records: Iterable[FlowRecord]) -> List[JobRecord]:
    """Group flow records by ``request_id`` into job records.

    Flows without a ``request_id`` are standalone and ignored here.
    Jobs are returned sorted by id for deterministic reporting.
    """
    by_job: Dict[int, List[FlowRecord]] = {}
    for rec in records:
        if rec.request_id is not None:
            by_job.setdefault(rec.request_id, []).append(rec)
    out: List[JobRecord] = []
    for job_id in sorted(by_job):
        members = by_job[job_id]
        complete = all(m.finish is not None for m in members)
        out.append(
            JobRecord(
                job_id=job_id,
                n_flows=len(members),
                n_completed=sum(1 for m in members if m.finish is not None),
                total_bytes=sum(m.size_bytes for m in members),
                arrival=min(m.arrival for m in members),
                finish=max(m.finish for m in members) if complete else None,
            )
        )
    return out


def mean_jct(records: Iterable[FlowRecord]) -> float:
    """Mean job completion time over completed jobs (NaN if none)."""
    jcts = [j.jct for j in job_records(records) if j.jct is not None]
    if not jcts:
        return math.nan
    return sum(jcts) / len(jcts)


def job_completion_rate(records: Iterable[FlowRecord]) -> float:
    """Fraction of jobs with every member flow finished (NaN if no jobs)."""
    jobs = job_records(records)
    if not jobs:
        return math.nan
    return sum(1 for j in jobs if j.completed) / len(jobs)
