"""Result export: per-flow records to CSV, experiment results to JSON.

Archival counterpart to :mod:`repro.workloads.trace_io`: a saved trace
plus saved records fully document an experiment.  The CSV schema is
stable and spreadsheet-friendly::

    fid,src,dst,size_bytes,n_pkts,tenant,arrival,finish,fct,opt,slowdown,deadline,met_deadline,job

``job`` (the coflow id, empty for standalone flows) was appended for
figT; files written before it load fine.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Iterable, List, Union

from repro.metrics.records import FlowRecord

__all__ = ["save_records", "load_records", "result_to_json", "audit_report_to_json"]

_COLUMNS = [
    "fid", "src", "dst", "size_bytes", "n_pkts", "tenant",
    "arrival", "finish", "fct", "opt", "slowdown", "deadline", "met_deadline",
    "job",
]


def save_records(records: Iterable[FlowRecord], path: Union[str, Path]) -> int:
    """Write analysis records as CSV; returns the row count."""
    path = Path(path)
    count = 0
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(_COLUMNS)
        for r in records:
            writer.writerow([
                r.fid, r.src, r.dst, r.size_bytes, r.n_pkts, r.tenant,
                repr(r.arrival),
                "" if r.finish is None else repr(r.finish),
                "" if r.fct is None else repr(r.fct),
                repr(r.opt),
                "" if r.slowdown is None else repr(r.slowdown),
                "" if r.deadline is None else repr(r.deadline),
                "" if r.met_deadline is None else int(r.met_deadline),
                "" if r.request_id is None else r.request_id,
            ])
            count += 1
    return count


def load_records(path: Union[str, Path]) -> List[FlowRecord]:
    """Read records back (numeric fields only; derived ones recompute)."""
    path = Path(path)
    out: List[FlowRecord] = []
    with path.open(newline="") as fh:
        reader = csv.DictReader(fh)
        if reader.fieldnames is None or reader.fieldnames[:4] != _COLUMNS[:4]:
            raise ValueError(f"{path}: not a records CSV (header mismatch)")
        for row in reader:
            out.append(
                FlowRecord(
                    fid=int(row["fid"]),
                    src=int(row["src"]),
                    dst=int(row["dst"]),
                    size_bytes=int(row["size_bytes"]),
                    n_pkts=int(row["n_pkts"]),
                    tenant=int(row["tenant"]),
                    arrival=float(row["arrival"]),
                    finish=float(row["finish"]) if row["finish"] else None,
                    opt=float(row["opt"]),
                    deadline=float(row["deadline"]) if row["deadline"] else None,
                    request_id=int(row["job"]) if row.get("job") else None,
                )
            )
    return out


def result_to_json(result, path: Union[str, Path]) -> Path:
    """Dump an :class:`~repro.experiments.spec.ExperimentResult` summary
    (spec + headline metrics, not per-flow data) as JSON."""
    path = Path(path)
    spec = result.spec
    payload = {
        "spec": {
            "protocol": spec.protocol,
            "workload": spec.workload,
            "load": spec.load,
            "n_flows": spec.n_flows,
            "traffic_matrix": spec.traffic_matrix,
            "seed": spec.seed,
            "buffer_bytes": spec.buffer_bytes,
            "max_flow_bytes": spec.max_flow_bytes,
            "topology": {
                "n_racks": spec.topology.n_racks,
                "hosts_per_rack": spec.topology.hosts_per_rack,
                "n_cores": spec.topology.n_cores,
                "access_gbps": spec.topology.access_gbps,
                "core_gbps": spec.topology.core_gbps,
                "oversubscription": spec.topology.oversubscription,
            },
        },
        "metrics": {
            "n_completed": result.n_completed,
            "mean_slowdown": result.mean_slowdown(),
            "p99_slowdown": result.tail_slowdown(99),
            "nfct": result.nfct(),
            "goodput_gbps_per_host": result.goodput_gbps_per_host,
            "drop_rate": result.drops.drop_rate,
            "drops_by_hop": result.drops.by_hop,
            "retransmissions": result.data_pkts_retransmitted,
            "control_bytes": result.control_bytes_sent,
            "duration_s": result.duration,
        },
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True))
    return path


def audit_report_to_json(report, path: Union[str, Path]) -> Path:
    """Dump an :class:`~repro.validate.AuditReport` (per-invariant
    pass/fail plus first-violation context) as JSON."""
    path = Path(path)
    path.write_text(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    return path
