"""One driver per figure of the paper's evaluation (§4).

Each ``figN*`` function runs the simulations that figure needs and
returns a :class:`~repro.experiments.report.FigureResult` whose rows are
the series the paper plots.  All drivers accept a ``scale`` preset
("tiny" / "bench" / "full", see :mod:`repro.experiments.defaults`) and a
seed; identical (spec) runs within one process are memoized so drivers
that share the default configuration (fig3, fig4, fig5a/b/d) do not
re-simulate.

The paper has no numbered tables — Figures 2-11 are the complete result
set.  EXPERIMENTS.md records paper-vs-measured for each.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.experiments.defaults import (
    EXTENDED_PROTOCOLS,
    PROTOCOLS,
    SCALES,
    WORKLOAD_NAMES,
    make_spec,
)
from repro.experiments.report import FigureResult
from repro.experiments.runner import (
    run_experiment,
    run_incast,
    run_tenant_fairness,
)
from repro.experiments.spec import ExperimentResult, ExperimentSpec
from repro.protocols.phost.config import PHostConfig
from repro.workloads.distributions import LONG_FLOW_THRESHOLD, WORKLOADS, bimodal

__all__ = [
    "fig2",
    "fig3",
    "fig4",
    "fig5a",
    "fig5b",
    "fig5c",
    "fig5d",
    "fig5e",
    "fig5f",
    "fig6",
    "fig7",
    "fig8",
    "fig9a",
    "fig9b",
    "fig9c",
    "fig9d",
    "fig10",
    "fig11",
    "figR",
    "figT",
    "ALL_FIGURES",
    "run_figure",
    "clear_cache",
]

# ----------------------------------------------------------------------
# Per-process run memoization (figures sharing the default config reuse
# each other's simulations)
# ----------------------------------------------------------------------
_CACHE: Dict[str, ExperimentResult] = {}


def _run(spec: ExperimentSpec) -> ExperimentResult:
    key = repr(spec)
    hit = _CACHE.get(key)
    if hit is None:
        hit = run_experiment(spec)
        _CACHE[key] = hit
    return hit


def clear_cache() -> None:
    _CACHE.clear()
    _INCAST_CACHE.clear()


def _long_threshold(workload: str, scale: str = "full") -> int:
    """The Fig. 4 short/long boundary, adapted to truncation.

    The paper splits at 10 MB (Web Search / Data Mining) and 100 kB
    (IMC10).  When a scale preset truncates the tail below the paper's
    boundary no flow would ever be "long", so the boundary shifts to a
    third of the cap — flows near the truncated tail play the long-flow
    role.
    """
    paper = LONG_FLOW_THRESHOLD.get(workload, 10_000_000)
    preset = SCALES.get(scale)
    if preset is None:
        return paper
    trunc = preset.truncate_for(workload)
    if trunc is not None and trunc <= paper:
        return trunc // 3
    return paper


# ----------------------------------------------------------------------
# Figure 2 — workload flow-size CDFs
# ----------------------------------------------------------------------

def fig2(scale: str = "bench", seed: int = 42) -> FigureResult:
    """Flow-size CDFs of the three workloads (no simulation needed)."""
    result = FigureResult(
        figure="fig2",
        title="Distribution of flow sizes across workloads",
        columns=["size_bytes"] + list(WORKLOAD_NAMES),
    )
    grid = [1e2, 1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9]
    dists = {name: WORKLOADS[name]() for name in WORKLOAD_NAMES}
    for size in grid:
        result.add_row(
            size_bytes=int(size),
            **{name: dists[name].cdf_at(size) for name in WORKLOAD_NAMES},
        )
    result.notes.append(
        "short flows dominate all workloads; DataMining/IMC10 have far more "
        "tiny flows than WebSearch; IMC10 tail capped at 3MB vs 1GB"
    )
    return result


# ----------------------------------------------------------------------
# Figures 3 & 4 — mean slowdown at the default configuration
# ----------------------------------------------------------------------

def fig3(scale: str = "bench", seed: int = 42) -> FigureResult:
    """Mean slowdown of the paper's protocols (plus the DCTCP baseline)
    across the three workloads (0.6 load, 36kB buffers, all-to-all)."""
    result = FigureResult(
        figure="fig3",
        title="Mean slowdown across workloads (default config)",
        columns=["workload"] + list(EXTENDED_PROTOCOLS),
    )
    for workload in WORKLOAD_NAMES:
        row = {"workload": workload}
        for protocol in EXTENDED_PROTOCOLS:
            row[protocol] = _run(make_spec(protocol, workload, scale, seed=seed)).mean_slowdown()
        result.add_row(**row)
    result.notes.append("paper: pHost within ~4% of pFabric; Fastpass 1.3-4x worse")
    result.notes.append(
        "dctcp: repository-added ECN baseline (not in the paper's figure)"
    )
    return result


def fig4(scale: str = "bench", seed: int = 42) -> FigureResult:
    """Mean slowdown split into short and long flows (same runs as fig3)."""
    result = FigureResult(
        figure="fig4",
        title="Mean slowdown by flow size class",
        columns=["workload", "class"] + list(PROTOCOLS),
    )
    for workload in WORKLOAD_NAMES:
        threshold = _long_threshold(workload, scale)
        rows = {"short": {"workload": workload, "class": "short"},
                "long": {"workload": workload, "class": "long"}}
        for protocol in PROTOCOLS:
            r = _run(make_spec(protocol, workload, scale, seed=seed))
            short, long_ = r.short_long_slowdown(threshold)
            rows["short"][protocol] = short
            rows["long"][protocol] = long_
        result.add_row(**rows["short"])
        result.add_row(**rows["long"])
    result.notes.append(
        "paper: all comparable on long flows; pHost~pFabric and 1.3-4x "
        "better than Fastpass on short flows"
    )
    return result


# ----------------------------------------------------------------------
# Figure 5 — additional metrics
# ----------------------------------------------------------------------

def fig5a(scale: str = "bench", seed: int = 42) -> FigureResult:
    """Normalized FCT (dominated by long flows)."""
    result = FigureResult(
        figure="fig5a",
        title="Normalized FCT across workloads",
        columns=["workload"] + list(PROTOCOLS),
    )
    for workload in WORKLOAD_NAMES:
        row = {"workload": workload}
        for protocol in PROTOCOLS:
            row[protocol] = _run(make_spec(protocol, workload, scale, seed=seed)).nfct()
        result.add_row(**row)
    result.notes.append("paper: max difference between any two protocols ~15%")
    return result


def fig5b(scale: str = "bench", seed: int = 42) -> FigureResult:
    """Per-host goodput (Gbps) over the active window."""
    result = FigureResult(
        figure="fig5b",
        title="Throughput (per-host goodput, Gbps)",
        columns=["workload"] + list(PROTOCOLS),
    )
    for workload in WORKLOAD_NAMES:
        row = {"workload": workload}
        for protocol in PROTOCOLS:
            row[protocol] = _run(
                make_spec(protocol, workload, scale, seed=seed)
            ).goodput_gbps_per_host
        result.add_row(**row)
    result.notes.append("paper: all protocols similar; below load x access rate")
    return result


def fig5c(scale: str = "bench", seed: int = 42) -> FigureResult:
    """Fraction of flows meeting exponential (mean 1000us) deadlines."""
    result = FigureResult(
        figure="fig5c",
        title="Deadline-constrained traffic: fraction of deadlines met",
        columns=["workload"] + list(PROTOCOLS),
    )
    for workload in WORKLOAD_NAMES:
        row = {"workload": workload}
        for protocol in PROTOCOLS:
            cfg = PHostConfig.deadline() if protocol == "phost" else None
            spec = make_spec(
                protocol,
                workload,
                scale,
                seed=seed,
                with_deadlines=True,
                protocol_config=cfg,
            )
            row[protocol] = _run(spec).deadline_met_fraction()
        result.add_row(**row)
    result.notes.append(
        "pHost runs its EDF grant/spend policies; paper: all protocols "
        "within ~2% of each other"
    )
    return result


def fig5d(scale: str = "bench", seed: int = 42) -> FigureResult:
    """99th-percentile slowdown for short flows."""
    from repro.metrics.slowdown import slowdown_percentile

    result = FigureResult(
        figure="fig5d",
        title="99%ile slowdown (short flows)",
        columns=["workload"] + list(PROTOCOLS),
    )
    for workload in WORKLOAD_NAMES:
        threshold = _long_threshold(workload, scale)
        row = {"workload": workload}
        for protocol in PROTOCOLS:
            r = _run(make_spec(protocol, workload, scale, seed=seed))
            row[protocol] = slowdown_percentile(r.short_records(threshold), 99.0)
        result.add_row(**row)
    result.notes.append(
        "paper: pHost/pFabric tails ~1.3x their mean; Fastpass ~2x its mean"
    )
    return result


def fig5e(scale: str = "bench", seed: int = 42) -> FigureResult:
    """Packet drop rate vs load (Web Search workload)."""
    result = FigureResult(
        figure="fig5e",
        title="Drop rate vs load (Web Search)",
        columns=["load"] + list(PROTOCOLS),
    )
    for load in (0.5, 0.6, 0.7, 0.8):
        row = {"load": load}
        for protocol in PROTOCOLS:
            r = _run(make_spec(protocol, "websearch", scale, seed=seed, load=load))
            row[protocol] = r.drops.drop_rate
        result.add_row(**row)
    result.notes.append(
        "paper: pFabric's drop rate is high and grows with load; "
        "pHost/Fastpass stay ~0"
    )
    return result


def fig5f(scale: str = "bench", seed: int = 42) -> FigureResult:
    """Absolute packet drops per hop (Web Search, 0.6 load)."""
    result = FigureResult(
        figure="fig5f",
        title="Packet drops across hops (hop1=NIC .. hop4=ToR down)",
        columns=["protocol", "hop1", "hop2", "hop3", "hop4", "injected"],
    )
    for protocol in PROTOCOLS:
        r = _run(make_spec(protocol, "websearch", scale, seed=seed))
        by_hop = r.drops.by_hop
        result.add_row(
            protocol=protocol,
            hop1=by_hop.get(1, 0),
            hop2=by_hop.get(2, 0),
            hop3=by_hop.get(3, 0),
            hop4=by_hop.get(4, 0),
            injected=r.data_pkts_injected + r.data_pkts_retransmitted,
        )
    result.notes.append(
        "paper: pFabric drops concentrate at first/last hop; pHost/Fastpass "
        "eliminate first-hop drops and fabric drops are negligible for all"
    )
    return result


# ----------------------------------------------------------------------
# Figure 6 — load sweep
# ----------------------------------------------------------------------

def fig6(scale: str = "bench", seed: int = 42) -> FigureResult:
    """Mean slowdown vs network load for each workload."""
    result = FigureResult(
        figure="fig6",
        title="Mean slowdown vs load",
        columns=["workload", "load"] + list(PROTOCOLS),
    )
    for workload in WORKLOAD_NAMES:
        for load in (0.5, 0.6, 0.7, 0.8):
            row = {"workload": workload, "load": load}
            for protocol in PROTOCOLS:
                r = _run(make_spec(protocol, workload, scale, seed=seed, load=load))
                row[protocol] = r.mean_slowdown()
            result.add_row(**row)
    result.notes.append(
        "paper: ordering consistent across loads; absolute values grow "
        "with load (0.8 is beyond the stable regime)"
    )
    return result


# ----------------------------------------------------------------------
# Figure 7 — stability analysis
# ----------------------------------------------------------------------

def fig7(scale: str = "bench", seed: int = 42, protocol: str = "pfabric") -> FigureResult:
    """Fraction of packets pending vs fraction arrived, per load."""
    preset = SCALES[scale]
    result = FigureResult(
        figure="fig7",
        title=f"Stability analysis ({protocol}, Web Search)",
        columns=["load", "frac_arrived", "frac_pending"],
    )
    verdicts = []
    # The stability signal only means something past the ramp-up
    # transient: the standing backlog must reach steady state well
    # before arrivals end.  So this figure sizes the run by the fabric
    # (flows per host) and truncates the tail harder than the preset —
    # shorter flows converge faster without changing the phenomenon.
    # The paper sweeps 0.6-0.8; at reproduction scale the instability
    # onset shifts upward, so a clearly-overloaded point is included.
    n_flows = 30 * preset.topology.n_hosts
    trunc = preset.truncate_for("websearch")
    trunc = min(trunc, 300_000) if trunc else 300_000
    for load in (0.6, 0.8, 0.9, 1.1):
        spec = make_spec(
            protocol,
            "websearch",
            scale,
            seed=seed,
            load=load,
            n_flows=n_flows,
            max_flow_bytes=trunc,
            stability_samples=preset.stability_samples,
            time_guard_factor=1.5,
        )
        r = _run(spec)
        for sample in r.stability:
            result.add_row(
                load=load,
                frac_arrived=sample.frac_arrived,
                frac_pending=sample.frac_pending,
            )
        from repro.metrics.stability import samples_stable

        verdict = "stable" if samples_stable(r.stability) else "UNSTABLE"
        verdicts.append(f"load {load:g}: {verdict}")
    result.notes.append("; ".join(verdicts))
    result.notes.append("paper: flat curve at 0.6 load, rising (unstable) at 0.7-0.8")
    return result


# ----------------------------------------------------------------------
# Figure 8 — synthetic bimodal workload
# ----------------------------------------------------------------------

_BIMODAL_FRACTIONS = (0.0, 0.25, 0.5, 0.75, 0.9, 0.995)


def fig8(scale: str = "bench", seed: int = 42) -> FigureResult:
    """Mean slowdown vs percentage of short flows (3 vs 700 packets)."""
    result = FigureResult(
        figure="fig8",
        title="Bimodal workload: slowdown vs % short flows",
        columns=["pct_short"] + list(PROTOCOLS),
    )
    for frac in _BIMODAL_FRACTIONS:
        row = {"pct_short": round(100 * frac, 1)}
        for protocol in PROTOCOLS:
            spec = make_spec(
                protocol,
                "bimodal",
                scale,
                seed=seed,
                bimodal_fraction_short=frac,
            )
            row[protocol] = _run(spec).mean_slowdown()
        result.add_row(**row)
    result.notes.append(
        "paper: pHost tracks pFabric across the sweep; Fastpass degrades "
        "as short flows dominate"
    )
    return result


# ----------------------------------------------------------------------
# Figure 9 — other traffic matrices
# ----------------------------------------------------------------------

def fig9a(scale: str = "bench", seed: int = 42) -> FigureResult:
    """Permutation TM, trace workloads."""
    result = FigureResult(
        figure="fig9a",
        title="Permutation TM: mean slowdown across workloads",
        columns=["workload"] + list(PROTOCOLS),
    )
    for workload in WORKLOAD_NAMES:
        row = {"workload": workload}
        for protocol in PROTOCOLS:
            spec = make_spec(
                protocol, workload, scale, seed=seed, traffic_matrix="permutation"
            )
            row[protocol] = _run(spec).mean_slowdown()
        result.add_row(**row)
    result.notes.append("paper: pHost outperforms both baselines under permutation TM")
    return result


def fig9b(scale: str = "bench", seed: int = 42) -> FigureResult:
    """Permutation TM, bimodal sweep."""
    result = FigureResult(
        figure="fig9b",
        title="Permutation TM: bimodal slowdown vs % short flows",
        columns=["pct_short"] + list(PROTOCOLS),
    )
    for frac in _BIMODAL_FRACTIONS:
        row = {"pct_short": round(100 * frac, 1)}
        for protocol in PROTOCOLS:
            spec = make_spec(
                protocol,
                "bimodal",
                scale,
                seed=seed,
                traffic_matrix="permutation",
                bimodal_fraction_short=frac,
            )
            row[protocol] = _run(spec).mean_slowdown()
        result.add_row(**row)
    return result


_INCAST_SENDERS = (5, 15, 30, 50)
_INCAST_CACHE: Dict[tuple, object] = {}


def _incast(protocol, n_senders, preset, seed):
    """Memoized incast run shared by fig9c and fig9d."""
    key = (protocol, n_senders, preset.incast_bytes, preset.incast_requests,
           repr(preset.topology), seed)
    hit = _INCAST_CACHE.get(key)
    if hit is None:
        hit = run_incast(
            protocol,
            n_senders=n_senders,
            total_bytes=preset.incast_bytes,
            n_requests=preset.incast_requests,
            topology=preset.topology,
            seed=seed,
        )
        _INCAST_CACHE[key] = hit
    return hit


def _incast_senders(preset) -> tuple:
    """The paper's 5-50 sender sweep, capped to the fabric size."""
    cap = preset.topology.n_hosts - 1
    senders = tuple(n for n in _INCAST_SENDERS if n <= cap)
    return senders or (min(5, cap),)


def fig9c(scale: str = "bench", seed: int = 42) -> FigureResult:
    """Incast TM: average FCT vs number of senders."""
    preset = SCALES[scale]
    result = FigureResult(
        figure="fig9c",
        title=f"Incast TM: mean FCT (ms), {preset.incast_bytes/1e6:g}MB per request",
        columns=["n_senders"] + list(EXTENDED_PROTOCOLS),
    )
    for n in _incast_senders(preset):
        row = {"n_senders": n}
        for protocol in EXTENDED_PROTOCOLS:
            r = _incast(protocol, n, preset, seed)
            row[protocol] = r.mean_fct * 1e3
        result.add_row(**row)
    result.notes.append("paper: all protocols within ~7% of each other")
    result.notes.append(
        "dctcp: repository-added ECN baseline (not in the paper's figure)"
    )
    return result


def fig9d(scale: str = "bench", seed: int = 42) -> FigureResult:
    """Incast TM: average request completion time vs number of senders."""
    preset = SCALES[scale]
    result = FigureResult(
        figure="fig9d",
        title=f"Incast TM: mean RCT (ms), {preset.incast_bytes/1e6:g}MB per request",
        columns=["n_senders"] + list(PROTOCOLS),
    )
    for n in _incast_senders(preset):
        row = {"n_senders": n}
        for protocol in PROTOCOLS:
            r = _incast(protocol, n, preset, seed)
            row[protocol] = r.mean_rct * 1e3
        result.add_row(**row)
    result.notes.append(
        "paper: <4% spread; RCT nearly flat in N (data volume is fixed)"
    )
    return result


# ----------------------------------------------------------------------
# Figure 10 — switch buffer sweep
# ----------------------------------------------------------------------

_BUFFER_SWEEP = (6_000, 12_000, 18_000, 24_000, 36_000, 72_000)


def fig10(scale: str = "bench", seed: int = 42) -> FigureResult:
    """Mean slowdown vs per-port buffer size (Data Mining)."""
    result = FigureResult(
        figure="fig10",
        title="Mean slowdown vs switch buffer size (Data Mining)",
        columns=["buffer_bytes"] + list(PROTOCOLS),
    )
    for buffer_bytes in _BUFFER_SWEEP:
        row = {"buffer_bytes": buffer_bytes}
        for protocol in PROTOCOLS:
            spec = make_spec(
                protocol, "datamining", scale, seed=seed, buffer_bytes=buffer_bytes
            )
            row[protocol] = _run(spec).mean_slowdown()
        result.add_row(**row)
    result.notes.append("paper: all three insensitive to buffer size, even at 6kB")
    return result


# ----------------------------------------------------------------------
# Figure 11 — multi-tenant fairness
# ----------------------------------------------------------------------

def fig11(scale: str = "bench", seed: int = 42) -> FigureResult:
    """Throughput share per tenant: pHost (tenant-fair policy) vs pFabric."""
    from repro.net.topology import TopologyConfig

    # Shares only show scheduling policy when every host has a *deep*
    # standing backlog of both tenants, so this figure trades fabric
    # size for backlog depth: a small fabric with several MB per host
    # per tenant (the paper injects entire traces at t=0).
    topo = TopologyConfig.small() if scale != "full" else TopologyConfig.paper()
    per_host = {"tiny": 2_000_000, "bench": 5_000_000}.get(scale, 8_000_000)
    budget = per_host * topo.n_hosts
    # Keep the tenants' flow-size contrast: WebSearch keeps multi-MB
    # flows (up to the budget scale), IMC10 is naturally <=3MB.
    trunc = 2_000_000
    workloads = {0: "imc10", 1: "websearch"}
    result = FigureResult(
        figure="fig11",
        title="Multi-tenant throughput share (tenant0=IMC10, tenant1=WebSearch)",
        columns=["protocol", "imc10_share", "websearch_share"],
    )
    for protocol, cfg in (
        ("phost", PHostConfig.tenant_fair()),
        ("pfabric", None),
    ):
        r = run_tenant_fairness(
            protocol,
            workloads,
            bytes_per_tenant=budget,
            topology=topo,
            max_flow_bytes=trunc,
            protocol_config=cfg,
            seed=seed,
        )
        result.add_row(
            protocol=protocol,
            imc10_share=r.share_of(0),
            websearch_share=r.share_of(1),
        )
    result.notes.append(
        "paper: pFabric implicitly favours the short-flow (IMC10) tenant; "
        "pHost's tenant-fair token policy splits throughput ~evenly"
    )
    return result


# ----------------------------------------------------------------------
# Figure R — robustness under injected faults (not in the paper)
# ----------------------------------------------------------------------

def figR(scale: str = "bench", seed: int = 42) -> FigureResult:
    """Completion rate and slowdown under injected faults (WebSearch).

    Not a paper figure: the paper's fabric is lossless except for buffer
    overflow.  This driver stresses each protocol's recovery machinery —
    random wire loss at two rates plus one and two failed ToR uplinks
    (spraying must route around them) — and reports how much of the
    workload still completes and at what slowdown cost.
    """
    from repro.faults import FaultPlan, LinkDown

    preset = SCALES.get(scale)
    topo = preset.topology if preset is not None else None
    n_cores = topo.n_cores if topo is not None else 4
    n_racks = topo.n_racks if topo is not None else 9

    def _downed(n_links: int) -> FaultPlan:
        # Fail uplinks on distinct racks (and distinct cores while they
        # last) from t=0: spray exclusion must keep every flow alive.
        downs = tuple(
            LinkDown(f"tor{r}.up.c{r % n_cores}", down_at=0.0)
            for r in range(min(n_links, n_racks))
        )
        return FaultPlan(link_downs=downs, seed=seed)

    scenarios = [
        ("baseline", None),
        ("loss-0.1%", FaultPlan(loss_rate=0.001, seed=seed)),
        ("loss-1%", FaultPlan(loss_rate=0.01, seed=seed)),
        ("linkdown-1", _downed(1)),
        ("linkdown-2", _downed(2)),
    ]
    result = FigureResult(
        figure="figR",
        title="Robustness under injected faults (WebSearch, default config)",
        columns=[
            "scenario",
            "protocol",
            "completion",
            "mean_slowdown",
            "p99_slowdown",
            "goodput_gbps",
            "fault_drops",
        ],
    )
    for name, plan in scenarios:
        for protocol in EXTENDED_PROTOCOLS:
            spec = make_spec(protocol, "websearch", scale, seed=seed, faults=plan)
            r = _run(spec)
            result.add_row(
                scenario=name,
                protocol=protocol,
                completion=r.completion_rate,
                mean_slowdown=r.mean_slowdown(),
                p99_slowdown=r.tail_slowdown(99.0),
                goodput_gbps=r.goodput_gbps_per_host,
                fault_drops=r.fault_drops,
            )
    result.notes.append(
        "expectation: 100% completion everywhere; loss inflates tail slowdown "
        "(RTO recovery); link-down scenarios drop ~nothing because spraying "
        "excludes dead uplinks"
    )
    return result


# ----------------------------------------------------------------------
# Figure T — trace-driven & adversarial workloads (not in the paper)
# ----------------------------------------------------------------------

def _figT_horizon(workload: str, scale: str, seed: int) -> float:
    """Expected arrival-window length (n_flows / Poisson rate) for a
    preset — the time base ramps and blackouts are anchored to."""
    from repro.experiments.runner import _resolve_workload
    from repro.workloads.generator import poisson_flow_rate

    spec = make_spec("phost", workload, scale, seed=seed)
    dist = _resolve_workload(spec)
    topo = spec.topology
    rate = poisson_flow_rate(dist, topo.n_hosts, topo.access_bps, spec.load)
    return spec.n_flows / rate


def figT(scale: str = "bench", seed: int = 42) -> FigureResult:
    """Which protocol wins where: adversarial workloads beyond the paper.

    Five scenarios the paper never ran (WebSearch sizes, default load),
    each against all four protocols:

    * ``traced``   — the generated workload round-tripped through a
      JSONL trace file and replayed via ``spec.trace`` (must match the
      generated run's behaviour);
    * ``hotrack``  — 70% of src *and* dst mass on two hot racks with
      30% rack affinity (sustained oversubscription of two ToRs);
    * ``ramp``     — a 4x load burst over the middle half of the
      arrival window (transient overload, then drain);
    * ``coflow``   — job-structured flows (2-6 per job), scored by job
      completion time;
    * ``storm``    — deadline-constrained traffic, 90% of destinations
      in one hot rack, 0.5% wire loss and a mid-run arbiter blackout,
      all at once.
    """
    from repro.faults import ArbiterBlackout, FaultPlan
    from repro.workloads.coflows import CoflowConfig
    from repro.workloads.ramp import LoadProfile
    from repro.workloads.skew import SkewConfig

    horizon = _figT_horizon("websearch", scale, seed)
    specs_by_scenario = {}

    # traced: round-trip this scale's generated websearch workload
    # through a JSONL trace and replay it through the spec machinery.
    import os
    import tempfile

    from repro.experiments.runner import _generate_flows, build_simulation
    from repro.sim.randoms import SeededRng
    from repro.workloads.trace_io import save_flows

    base = make_spec("phost", "websearch", scale, seed=seed)
    flows = _generate_flows(base, build_simulation(base).fabric, SeededRng(base.seed))
    fd, trace_path = tempfile.mkstemp(suffix=".jsonl", prefix="figT-trace-")
    os.close(fd)
    save_flows(flows, trace_path)
    specs_by_scenario["traced"] = lambda p: make_spec(
        p, "websearch", scale, seed=seed, trace=trace_path
    )

    hot = SkewConfig(
        hot_racks=(0, 1),
        src_hot_fraction=0.7,
        dst_hot_fraction=0.7,
        rack_affinity=0.3,
    )
    specs_by_scenario["hotrack"] = lambda p: make_spec(
        p, "websearch", scale, seed=seed,
        traffic_matrix="skewed", skew=hot,
    )

    burst = LoadProfile.burst(
        at=0.25 * horizon, duration=0.5 * horizon, factor=4.0
    )
    specs_by_scenario["ramp"] = lambda p: make_spec(
        p, "websearch", scale, seed=seed, load_profile=burst
    )

    specs_by_scenario["coflow"] = lambda p: make_spec(
        p, "websearch", scale, seed=seed, coflows=CoflowConfig(2, 6)
    )

    incast_skew = SkewConfig(
        hot_racks=(0,), src_hot_fraction=0.2, dst_hot_fraction=0.9
    )
    storm_faults = FaultPlan(
        loss_rate=0.005,
        arbiter_blackouts=(
            ArbiterBlackout(start=0.3 * horizon, end=0.6 * horizon),
        ),
        seed=seed,
    )
    specs_by_scenario["storm"] = lambda p: make_spec(
        p, "websearch", scale, seed=seed,
        traffic_matrix="skewed", skew=incast_skew,
        with_deadlines=True,
        protocol_config=PHostConfig.deadline() if p == "phost" else None,
        faults=storm_faults,
    )

    result = FigureResult(
        figure="figT",
        title="Adversarial workloads: which protocol wins where (WebSearch)",
        columns=[
            "scenario",
            "protocol",
            "completion",
            "mean_slowdown",
            "p99_slowdown",
            "mean_jct_ms",
            "deadline_met",
            "fault_drops",
        ],
    )
    for name, spec_of in specs_by_scenario.items():
        best = None
        for protocol in EXTENDED_PROTOCOLS:
            r = _run(spec_of(protocol))
            jct = r.mean_jct()
            row = dict(
                scenario=name,
                protocol=protocol,
                completion=r.completion_rate,
                mean_slowdown=r.mean_slowdown(),
                p99_slowdown=r.tail_slowdown(99.0),
                mean_jct_ms=jct * 1e3,
                deadline_met=r.deadline_met_fraction(),
                fault_drops=r.fault_drops,
            )
            result.add_row(**row)
            # Winner: deadline scenarios by deadlines met, coflow by
            # JCT, everything else by mean slowdown.
            if name == "storm":
                score = -row["deadline_met"]
            elif name == "coflow":
                score = row["mean_jct_ms"]
            else:
                score = row["mean_slowdown"]
            if best is None or score < best[0]:
                best = (score, protocol)
        result.notes.append(f"{name}: best protocol {best[1]}")
    result.notes.append(
        "scenarios are repository extensions (docs/WORKLOADS.md); the "
        "paper's fabric saw none of these"
    )
    return result


# ----------------------------------------------------------------------
# Registry / entry point
# ----------------------------------------------------------------------

ALL_FIGURES = {
    "fig2": fig2,
    "fig3": fig3,
    "fig4": fig4,
    "fig5a": fig5a,
    "fig5b": fig5b,
    "fig5c": fig5c,
    "fig5d": fig5d,
    "fig5e": fig5e,
    "fig5f": fig5f,
    "fig6": fig6,
    "fig7": fig7,
    "fig8": fig8,
    "fig9a": fig9a,
    "fig9b": fig9b,
    "fig9c": fig9c,
    "fig9d": fig9d,
    "fig10": fig10,
    "fig11": fig11,
    "figR": figR,
    "figT": figT,
}


def run_figure(name: str, scale: str = "bench", seed: int = 42) -> FigureResult:
    """Run one figure driver by name ("fig3", "fig9c", ...)."""
    try:
        driver = ALL_FIGURES[name]
    except KeyError:
        raise ValueError(
            f"unknown figure {name!r}; available: {sorted(ALL_FIGURES)}"
        ) from None
    return driver(scale=scale, seed=seed)
