"""Plain-text rendering of figure results.

Every figure driver returns a :class:`FigureResult`: a title, column
names, and rows.  ``render`` produces the aligned ASCII table the
benchmarks print — the same rows/series the paper's figures plot.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Sequence

__all__ = ["FigureResult", "render", "fmt"]


def fmt(value: Any) -> str:
    """Human-friendly cell formatting."""
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.001:
            return f"{value:.3g}"
        return f"{value:.3f}"
    return str(value)


@dataclass
class FigureResult:
    """One regenerated figure: metadata + a table of rows."""

    figure: str                      # e.g. "fig3"
    title: str                       # paper caption summary
    columns: List[str]
    rows: List[Dict[str, Any]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add_row(self, **cells: Any) -> None:
        self.rows.append(cells)

    def column(self, name: str) -> List[Any]:
        return [row.get(name) for row in self.rows]

    def row_where(self, **match: Any) -> Dict[str, Any]:
        """First row whose cells equal all of ``match`` (KeyError if none)."""
        for row in self.rows:
            if all(row.get(k) == v for k, v in match.items()):
                return row
        raise KeyError(f"no row matching {match} in {self.figure}")

    def __str__(self) -> str:
        return render(self)


def render(result: FigureResult) -> str:
    """Aligned ASCII table with title and notes."""
    cols: Sequence[str] = result.columns
    header = [c for c in cols]
    body = [[fmt(row.get(c)) for c in cols] for row in result.rows]
    widths = [len(h) for h in header]
    for line in body:
        for i, cell in enumerate(line):
            widths[i] = max(widths[i], len(cell))

    def join(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells)).rstrip()

    out = [f"== {result.figure}: {result.title} =="]
    out.append(join(header))
    out.append(join(["-" * w for w in widths]))
    out.extend(join(line) for line in body)
    for note in result.notes:
        out.append(f"note: {note}")
    return "\n".join(out)
