"""Parallel experiment execution.

Simulations are single-threaded and independent, so sweeps parallelize
perfectly across processes.  ``run_experiments_parallel`` preserves
input order and falls back to in-process execution for a single spec
(or ``processes=1``), which keeps it usable under profilers and in
restricted environments.

Determinism is unaffected: each run is a pure function of its spec, so
the parallel results are identical to serial ones (asserted in
``tests/experiments/test_parallel.py``).

Live progress: pass ``progress=`` a callable (or ``True`` for the
stderr :class:`~repro.experiments.progress.ProgressPrinter`) and every
worker fans :class:`~repro.experiments.progress.ProgressEvent`\\ s back
over a queue — a ``start`` marker, ``running`` heartbeats carried by
the event-loop profiler's wall-clock heartbeat (ev/s, sim time, ETA),
and a terminal ``done``/``error`` per spec.  The profiler's twin
dispatch loop observes the run without touching it, so progress
reporting never changes digests or event counts.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
import traceback
from typing import Callable, List, Optional, Sequence, Tuple, Union

from repro.experiments.progress import ProgressEvent, ProgressPrinter, spec_label
from repro.experiments.runner import run_experiment
from repro.experiments.spec import ExperimentResult, ExperimentSpec

__all__ = ["run_experiments_parallel"]

#: Default wall-clock spacing of ``running`` heartbeats.
DEFAULT_HEARTBEAT_SECONDS = 2.0

# Worker-side progress state, set by the pool initializer (a queue can
# ride to workers through initargs, but not through ``pool.map`` items).
_progress_queue = None
_progress_total = 0
_progress_interval = DEFAULT_HEARTBEAT_SECONDS


def _worker(spec: ExperimentSpec) -> ExperimentResult:
    # Top-level function so it pickles under the spawn start method.
    return run_experiment(spec)


def _run_with_heartbeats(
    spec: ExperimentSpec,
    interval: float,
    emit: Callable[[ProgressEvent], None],
    index: int,
    total: int,
) -> ExperimentResult:
    """Run one spec, routing profiler heartbeats into ``emit``.

    Reuses the run's own profiler when observability already installed
    one; otherwise attaches a bare heartbeat-only profiler.  Either way
    the simulation schedule is untouched (wall-clock heartbeats only).
    """
    from repro.experiments.runner import _generate_flows, build_simulation, run_flow_list
    from repro.obs.profiler import EventLoopProfiler, Heartbeat
    from repro.sim.randoms import SeededRng

    label = spec_label(spec)

    tuning = spec.tuning
    if tuning is not None and tuning.shards != "off":
        # Sharded runs own their event loops (one per shard worker), so
        # the single-loop heartbeat profiler cannot observe them; run
        # through the normal dispatcher and report only start/done.
        return run_experiment(spec)

    def on_heartbeat(hb: Heartbeat) -> None:
        emit(
            ProgressEvent(
                index=index,
                total=total,
                label=label,
                state="running",
                events=hb.events_total,
                events_per_sec=hb.events_per_sec,
                sim_now=hb.sim_now,
                eta_seconds=hb.eta_seconds,
            )
        )

    ctx = build_simulation(spec)
    profiler = ctx.env.profiler
    if profiler is not None:
        profiler.set_heartbeat(interval, on_heartbeat)
    else:
        ctx.env.set_profiler(
            EventLoopProfiler(heartbeat_wall_seconds=interval, on_heartbeat=on_heartbeat)
        )
    rng = SeededRng(spec.seed)
    flows = _generate_flows(spec, ctx.fabric, rng)
    return run_flow_list(spec, flows, ctx)


def _run_one_with_progress(
    spec: ExperimentSpec,
    index: int,
    total: int,
    interval: float,
    emit: Callable[[ProgressEvent], None],
) -> ExperimentResult:
    label = spec_label(spec)
    emit(ProgressEvent(index=index, total=total, label=label, state="start"))
    try:
        result = _run_with_heartbeats(spec, interval, emit, index, total)
    except Exception as exc:
        emit(
            ProgressEvent(
                index=index,
                total=total,
                label=label,
                state="error",
                error=f"{type(exc).__name__}: {exc}",
            )
        )
        raise
    emit(
        ProgressEvent(
            index=index,
            total=total,
            label=label,
            state="done",
            events=result.events_processed,
            wall_seconds=result.wall_seconds,
        )
    )
    return result


def _progress_init(queue, total: int, interval: float) -> None:
    global _progress_queue, _progress_total, _progress_interval
    _progress_queue = queue
    _progress_total = total
    _progress_interval = interval


def _worker_with_progress(item: Tuple[int, ExperimentSpec]) -> ExperimentResult:
    index, spec = item
    queue = _progress_queue
    try:
        return _run_one_with_progress(
            spec, index, _progress_total, _progress_interval, queue.put
        )
    except Exception:
        # The error event is already on the queue; re-raise with the
        # worker-side traceback text so the parent sees where it died.
        raise RuntimeError(
            f"experiment {index} ({spec_label(spec)}) failed:\n"
            + traceback.format_exc()
        ) from None


def _available_cpus() -> int:
    """CPUs this process may actually run on.

    ``sched_getaffinity`` respects container/cgroup CPU masks, so a CI
    job pinned to 2 cores gets a 2-process pool instead of oversubscribing
    the machine's full core count; ``cpu_count`` is the portable fallback.
    """
    try:
        return len(os.sched_getaffinity(0)) or 1
    except AttributeError:  # pragma: no cover - non-Linux
        return multiprocessing.cpu_count()


def run_experiments_parallel(
    specs: Sequence[ExperimentSpec],
    processes: Optional[int] = None,
    progress: Union[None, bool, Callable[[ProgressEvent], None]] = None,
    heartbeat_wall_seconds: float = DEFAULT_HEARTBEAT_SECONDS,
) -> List[ExperimentResult]:
    """Run many specs, using up to ``processes`` worker processes.

    ``processes=None`` uses ``min(len(specs), available CPUs)`` (CPU
    affinity aware).  Results are returned in the order of ``specs``.

    ``progress`` receives every :class:`ProgressEvent` (``True`` means
    "print heartbeat lines to stderr"); ``heartbeat_wall_seconds``
    spaces the ``running`` heartbeats.  Progress observation is free of
    behavioural side effects — results remain byte-identical.

    Cross-run and in-run parallelism compose: when specs request
    sharded execution (``tuning.shards``), the default process budget
    is divided by the widest run's shard count so the two layers do not
    oversubscribe the machine.  Sharded runs inside pool workers use
    the in-process shard executor automatically (daemonic workers
    cannot fork again), so an explicit ``processes=`` cap still yields
    correct, merely narrower, runs.
    """
    specs = list(specs)
    if not specs:
        return []
    if processes is None:
        from repro.sim.shard import shard_width_hint

        width = max(shard_width_hint(spec) for spec in specs)
        processes = min(len(specs), max(1, _available_cpus() // width))
    if processes < 1:
        raise ValueError("processes must be >= 1")
    sink: Optional[Callable[[ProgressEvent], None]]
    sink = ProgressPrinter() if progress is True else (progress or None)

    if processes == 1 or len(specs) == 1:
        if sink is None:
            return [run_experiment(spec) for spec in specs]
        return [
            _run_one_with_progress(spec, i, len(specs), heartbeat_wall_seconds, sink)
            for i, spec in enumerate(specs)
        ]

    # fork (where available) avoids re-importing the package per worker;
    # spawn is the portable fallback.
    try:
        ctx = multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX
        ctx = multiprocessing.get_context("spawn")

    if sink is None:
        with ctx.Pool(processes=processes) as pool:
            return pool.map(_worker, specs)

    queue = ctx.Queue()

    def drain() -> None:
        while True:
            event = queue.get()
            if event is None:
                return
            sink(event)

    drainer = threading.Thread(target=drain, name="progress-drain", daemon=True)
    drainer.start()
    try:
        with ctx.Pool(
            processes=processes,
            initializer=_progress_init,
            initargs=(queue, len(specs), heartbeat_wall_seconds),
        ) as pool:
            return pool.map(_worker_with_progress, list(enumerate(specs)))
    finally:
        queue.put(None)
        drainer.join(timeout=10)
