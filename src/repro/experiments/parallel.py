"""Parallel experiment execution.

Simulations are single-threaded and independent, so sweeps parallelize
perfectly across processes.  ``run_experiments_parallel`` preserves
input order and falls back to in-process execution for a single spec
(or ``processes=1``), which keeps it usable under profilers and in
restricted environments.

Determinism is unaffected: each run is a pure function of its spec, so
the parallel results are identical to serial ones (asserted in
``tests/experiments/test_parallel.py``).
"""

from __future__ import annotations

import multiprocessing
import os
from typing import List, Optional, Sequence

from repro.experiments.runner import run_experiment
from repro.experiments.spec import ExperimentResult, ExperimentSpec

__all__ = ["run_experiments_parallel"]


def _worker(spec: ExperimentSpec) -> ExperimentResult:
    # Top-level function so it pickles under the spawn start method.
    return run_experiment(spec)


def _available_cpus() -> int:
    """CPUs this process may actually run on.

    ``sched_getaffinity`` respects container/cgroup CPU masks, so a CI
    job pinned to 2 cores gets a 2-process pool instead of oversubscribing
    the machine's full core count; ``cpu_count`` is the portable fallback.
    """
    try:
        return len(os.sched_getaffinity(0)) or 1
    except AttributeError:  # pragma: no cover - non-Linux
        return multiprocessing.cpu_count()


def run_experiments_parallel(
    specs: Sequence[ExperimentSpec],
    processes: Optional[int] = None,
) -> List[ExperimentResult]:
    """Run many specs, using up to ``processes`` worker processes.

    ``processes=None`` uses ``min(len(specs), available CPUs)`` (CPU
    affinity aware).  Results are returned in the order of ``specs``.
    """
    specs = list(specs)
    if not specs:
        return []
    if processes is None:
        processes = min(len(specs), _available_cpus())
    if processes < 1:
        raise ValueError("processes must be >= 1")
    if processes == 1 or len(specs) == 1:
        return [run_experiment(spec) for spec in specs]
    # fork (where available) avoids re-importing the package per worker;
    # spawn is the portable fallback.
    try:
        ctx = multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX
        ctx = multiprocessing.get_context("spawn")
    with ctx.Pool(processes=processes) as pool:
        return pool.map(_worker, specs)
