"""Turn an :class:`ExperimentSpec` into an :class:`ExperimentResult`.

Also hosts the closed-loop incast driver (Figures 9c/9d): requests are
issued sequentially — the next request starts when the previous one's
last flow completes — and RCT is the request's makespan.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.metrics.collector import MetricsCollector
from repro.metrics.drops import DropStats
from repro.metrics.records import FlowRecord, records_from_flows
from repro.metrics.stability import StabilityTracker
from repro.metrics.throughput import per_host_goodput_gbps
from repro.net.packet import Flow
from repro.net.topology import Fabric, TopologyConfig
from repro.obs.telemetry import Telemetry
from repro.protocols.registry import get_protocol
from repro.sim.context import SimContext
from repro.sim.engine import EventLoop
from repro.sim.randoms import SeededRng
from repro.sim.tuning import SimTuning
from repro.validate.base import AuditReport
from repro.workloads.deadlines import assign_deadlines
from repro.workloads.distributions import WORKLOADS, bimodal, fixed_size
from repro.workloads.generator import FlowGenerator
from repro.workloads.traffic_matrix import AllToAll, IncastPattern, Permutation

from repro.experiments.spec import ExperimentResult, ExperimentSpec

__all__ = [
    "run_experiment",
    "run_flow_list",
    "run_incast",
    "run_tenant_fairness",
    "IncastResult",
    "TenantFairnessResult",
    "build_simulation",
]


def _resolve_workload(spec: ExperimentSpec):
    from repro.workloads.synthetic import parse_synthetic

    name = spec.workload
    synthetic = parse_synthetic(name)
    if name in WORKLOADS:
        dist = WORKLOADS[name]()
    elif name == "bimodal":
        dist = bimodal(spec.bimodal_fraction_short)
    elif name.startswith("fixed:"):
        dist = fixed_size(int(name.split(":", 1)[1]))
    elif synthetic is not None:
        dist = synthetic
    else:
        raise ValueError(
            f"unknown workload {spec.workload!r}; expected one of "
            f"{sorted(WORKLOADS)}, 'bimodal', 'fixed:<bytes>', or a "
            "synthetic spec ('pareto:a:lo:hi', 'lognormal:median:sigma', "
            "'uniform:lo:hi')"
        )
    if spec.max_flow_bytes is not None and spec.max_flow_bytes < dist.max_bytes:
        # Truncate the distribution itself so the Poisson arrival rate
        # is calibrated against the sizes actually offered — otherwise
        # the effective load would be far below spec.load.
        dist = dist.truncated(spec.max_flow_bytes)
    return dist


def _resolve_tm(spec: ExperimentSpec, n_hosts: int, rng: SeededRng):
    if spec.traffic_matrix == "permutation":
        return Permutation(n_hosts, rng)
    if spec.traffic_matrix == "skewed":
        from repro.workloads.skew import SkewedMatrix

        return SkewedMatrix(n_hosts, spec.skew, spec.topology.rack_of)
    return AllToAll(n_hosts)


def _resolve_dataplane(spec: ExperimentSpec, proto, tuning: SimTuning):
    """(DataplaneBinding, switch queue factory, host queue factory).

    Resolution order per side: the spec-level ``dataplane`` override,
    then a legacy ``*_queue_factory`` callable on the protocol spec
    (external registrants constructing queues directly), then the
    protocol's declared program name.  The returned binding records
    which programs ended up driving the fabric (None when both sides
    came from legacy factories).
    """
    from repro.dataplane import DataplaneBinding, get_dataplane

    fused = tuning.fused_dataplane
    if spec.dataplane is not None:
        program = get_dataplane(spec.dataplane)
        binding = DataplaneBinding(switch=program, host=program, fused=fused)
        factory = lambda cap: program.make_queue(cap, fused=fused)  # noqa: E731
        return binding, factory, factory

    def side(queue_factory, program_name):
        if queue_factory is not None:
            return None, queue_factory
        program = get_dataplane(program_name)
        return program, lambda cap: program.make_queue(cap, fused=fused)

    switch_prog, switch_qf = side(proto.switch_queue_factory, proto.switch_dataplane)
    host_prog, host_qf = side(proto.host_queue_factory, proto.host_dataplane)
    binding = None
    if switch_prog is not None and host_prog is not None:
        binding = DataplaneBinding(switch=switch_prog, host=host_prog, fused=fused)
    return binding, switch_qf, host_qf


def build_simulation(
    spec: ExperimentSpec,
    env: Optional[EventLoop] = None,
    collector: Optional[MetricsCollector] = None,
    fabric_cls: Optional[type] = None,
) -> SimContext:
    """Instantiate env + fabric + agents for a spec (no flows yet).

    Returns the run's :class:`~repro.sim.context.SimContext` (event
    loop, RNG, fabric, collector, resolved protocol config, protocol
    shared state, instrumentation hooks).  Exposed so tests and custom
    drivers (incast, examples) can reuse the wiring.  The ``env`` /
    ``collector`` / ``fabric_cls`` overrides exist for the sharded
    executor (:mod:`repro.sim.shard`), which substitutes lineage-keyed
    loops and journaling subclasses while reusing all of this wiring.
    """
    tuning = spec.tuning if spec.tuning is not None else SimTuning()
    from repro.sim.backend import resolve_backend

    backend = resolve_backend(tuning.backend)
    if env is None:
        env = EventLoop(timer_resolution=tuning.wheel_resolution)
    env.timer_wheel_enabled = tuning.timer_wheel
    env.drain_enabled = tuning.inline_drain
    env.batch_dispatch = tuning.batch_dispatch
    backend.apply(env)
    rng = SeededRng(spec.seed)
    proto = get_protocol(spec.protocol)
    topo = spec.with_topology_buffer()
    if collector is None:
        collector = MetricsCollector()
    from repro.net.fattree import FatTreeConfig, FatTreeFabric

    if fabric_cls is None:
        fabric_cls = FatTreeFabric if isinstance(topo, FatTreeConfig) else Fabric
    binding, switch_qf, host_qf = _resolve_dataplane(spec, proto, tuning)
    # A compiled backend may substitute its queue class for exact
    # PriorityQueue products (subclassed/tapped queues pass through).
    switch_qf = backend.wrap_queue_factory(switch_qf)
    host_qf = backend.wrap_queue_factory(host_qf)
    fabric = fabric_cls(
        env,
        topo,
        rng,
        queue_factory=switch_qf,
        host_queue_factory=host_qf,
    )
    if not tuning.fused_ports:
        for port in fabric.all_ports():
            port.fused = False
    ctx = SimContext(env, rng, fabric, collector, tuning=tuning)
    ctx.dataplane = binding
    if spec.protocol_config is not None:
        config = spec.protocol_config
        if hasattr(config, "resolve"):
            config = config.resolve(topo)
        ctx.config = config
    else:
        ctx.config = proto.build_config(ctx)
    if getattr(ctx.config, "use_timer_wheel", None) is False:
        # Protocol-config escape hatch: force pure-heap timers for this
        # run without touching the spec-level tuning.
        env.timer_wheel_enabled = False
    ctx.shared = proto.build_shared(ctx)
    proto.install_agents(ctx)
    if spec.faults is not None and not spec.faults.is_empty():
        # Installed before user instruments so auditors chain onto the
        # fault-drop hook and the retains_packets gate below sees a
        # corrupting plan.  Empty plans install nothing at all, keeping
        # the run byte-identical to faults=None (golden digests).
        from repro.faults.injector import FaultInjector

        ctx.add_hook(FaultInjector(spec.faults))
    for hook in spec.instruments:
        ctx.add_hook(hook)
    if spec.observability is not None:
        ctx.add_hook(Telemetry(spec.observability))
    if any(getattr(h, "retains_packets", False) for h in ctx.hooks):
        # A hook that keeps packet references past delivery makes
        # recycling unsound; pooling quietly turns off for this run.
        ctx.pool.enabled = False
    if ctx.pool.enabled:
        for host in fabric.hosts:
            host.pool = ctx.pool
    return ctx


def _finalize_hooks(ctx: SimContext) -> None:
    """Give every instrumentation hook its end-of-run pass (auditors
    reconcile their ledgers here)."""
    for hook in ctx.hooks:
        fin = getattr(hook, "finalize", None)
        if fin is not None:
            fin(ctx)


def _generate_flows(spec: ExperimentSpec, fabric: Fabric, rng: SeededRng) -> List[Flow]:
    if spec.trace is not None:
        # Trace replay: the file is the workload (generator fields are
        # ignored).  Deadlines are still assigned — but only to traced
        # flows that do not carry their own.
        from repro.workloads.trace_io import load_flows

        flows = load_flows(spec.trace, n_hosts=fabric.config.n_hosts)
        if spec.with_deadlines:
            bare = [f for f in flows if f.deadline is None]
            if bare:
                assign_deadlines(bare, fabric, rng, mean=spec.deadline_mean)
        return flows
    dist = _resolve_workload(spec)
    tm = _resolve_tm(spec, fabric.config.n_hosts, rng)
    tenant_of: Optional[Callable[[int], int]] = None
    if spec.tenant_split is not None:
        split = spec.tenant_split
        tenant_rng = rng.stream("tenants")
        tenant_of = lambda i: 1 if tenant_rng.random() < split else 0  # noqa: E731
    if spec.coflows is not None:
        from repro.workloads.coflows import CoflowGenerator

        gen = CoflowGenerator(
            dist,
            tm,
            fabric.config.access_bps,
            spec.load,
            rng,
            spec.coflows,
            tenant_of=tenant_of,
            profile=spec.load_profile,
        )
    else:
        gen = FlowGenerator(
            dist,
            tm,
            fabric.config.access_bps,
            spec.load,
            rng,
            tenant_of=tenant_of,
            profile=spec.load_profile,
        )
    flows = gen.generate(spec.n_flows)  # dist already truncated above
    if spec.with_deadlines:
        assign_deadlines(flows, fabric, rng, mean=spec.deadline_mean)
    return flows


def _default_time_guard(spec: ExperimentSpec, flows: List[Flow]) -> float:
    """Wall for the simulated clock.

    Stable runs stop the moment the last flow completes; the guard only
    matters for the unstable regime (paper §4.3), where sources fall
    ever further behind and the run would otherwise never drain.  The
    budget is ``time_guard_factor`` x (arrival window + the wire time of
    the largest flow) — the second term keeps short-horizon runs with
    huge flows from being cut off mid-transfer.
    """
    if spec.max_sim_time is not None:
        return spec.max_sim_time
    if not flows:
        return 0.1
    horizon = flows[-1].arrival
    access = spec.topology.access_bps
    largest = max(f.size_bytes for f in flows)
    drain = largest * 8.0 / access
    return spec.time_guard_factor * (horizon + drain) + 1e-5


def run_experiment(spec: ExperimentSpec) -> ExperimentResult:
    """Run one simulation to completion (or its time guard)."""
    tuning = spec.tuning if spec.tuning is not None else SimTuning()
    if tuning.shards != "off":
        from repro.sim.shard import run_sharded

        result = run_sharded(spec)
        if result is not None:
            return result
        # Unsupported spec: run_sharded warned and declined; fall
        # through to the byte-identical serial reference path.
    ctx = build_simulation(spec)
    rng = SeededRng(spec.seed)
    flows = _generate_flows(spec, ctx.fabric, rng)
    return run_flow_list(spec, flows, ctx)


def run_flow_list(
    spec: ExperimentSpec,
    flows: List[Flow],
    ctx: Optional[SimContext] = None,
) -> ExperimentResult:
    """Run an explicit flow list (e.g. loaded from a trace file).

    ``spec`` supplies the protocol/topology wiring and run controls; the
    workload fields are ignored.  Pass the context from a prior
    :func:`build_simulation` call to reuse custom wiring (tracers,
    monitors); otherwise it is built here.
    """
    wall_start = time.perf_counter()
    if ctx is None:
        ctx = build_simulation(spec)
    env, fabric, collector = ctx.env, ctx.fabric, ctx.collector
    flows = sorted(flows, key=lambda f: f.arrival)
    collector.total_pkts_offered = sum(f.n_pkts for f in flows)
    collector.expected_flows = len(flows)

    for flow in flows:
        agent = fabric.hosts[flow.src].agent
        env.schedule_at(flow.arrival, agent.start_flow, flow)

    tracker: Optional[StabilityTracker] = None
    if spec.stability_samples > 0:
        horizon = max(flows[-1].arrival, 1e-6)
        tracker = StabilityTracker(env, collector, horizon / spec.stability_samples)
        tracker.start()

    # Stop as soon as the last flow completes.
    def _maybe_stop(flow: Flow, now: float) -> None:
        if collector.all_complete:
            env.stop()

    collector.on_complete = _maybe_stop

    guard = _default_time_guard(spec, flows)
    env.run(until=guard)
    if tracker is not None:
        tracker.stop()
        tracker.sample()  # terminal point
    _finalize_hooks(ctx)

    records = records_from_flows(flows, fabric)
    duration = collector.duration()
    result = ExperimentResult(
        spec=spec,
        records=records,
        drops=DropStats.from_run(fabric, collector),
        duration=duration,
        n_flows=len(flows),
        n_completed=collector.n_completed,
        payload_bytes_delivered=collector.payload_bytes_delivered,
        data_pkts_injected=collector.data_pkts_injected,
        data_pkts_retransmitted=collector.data_pkts_retransmitted,
        control_pkts_sent=collector.control_pkts_sent,
        control_bytes_sent=collector.control_bytes_sent,
        goodput_gbps_per_host=per_host_goodput_gbps(collector, fabric.config.n_hosts),
        stability=list(tracker.samples) if tracker is not None else [],
        events_processed=env.events_processed,
        wall_seconds=time.perf_counter() - wall_start,
        fault_drops=getattr(fabric, "fault_drops_total", 0),
        audit=AuditReport.from_hooks(ctx.hooks),
        telemetry=Telemetry.report_from_hooks(ctx.hooks),
    )
    if result.telemetry is not None:
        # Self-describing series: spec hash / seed / git rev / wall time
        # ride on the ObsReport (post-run, never perturbs the run).
        from repro.obs.store import stamp_result_meta

        stamp_result_meta(result)
    return result


# ----------------------------------------------------------------------
# Incast driver (Figures 9c and 9d)
# ----------------------------------------------------------------------

@dataclass
class IncastResult:
    """Outcome of a closed-loop incast experiment."""

    n_senders: int
    total_bytes: int
    n_requests: int
    rcts: List[float] = field(default_factory=list)
    fcts: List[float] = field(default_factory=list)
    #: AuditReport when auditors were passed via ``instruments``.
    audit: Optional[AuditReport] = None
    #: ObsReport when ``observability`` was set; None otherwise.
    telemetry: Optional[Any] = None

    @property
    def mean_rct(self) -> float:
        return sum(self.rcts) / len(self.rcts) if self.rcts else float("nan")

    @property
    def mean_fct(self) -> float:
        return sum(self.fcts) / len(self.fcts) if self.fcts else float("nan")


def run_incast(
    protocol: str,
    n_senders: int,
    total_bytes: int,
    n_requests: int = 10,
    topology: Optional[TopologyConfig] = None,
    seed: int = 42,
    protocol_config: Any = None,
    instruments: tuple = (),
    observability: Any = None,
    tuning: Any = None,
    faults: Any = None,
) -> IncastResult:
    """Closed-loop incast: each request fans N senders into one receiver;
    the next request starts when the previous completes."""
    spec = ExperimentSpec(
        protocol=protocol,
        workload="fixed:1",  # unused; flows are built by the driver
        n_flows=1,
        topology=topology or TopologyConfig.paper(),
        protocol_config=protocol_config,
        instruments=instruments,
        observability=observability,
        tuning=tuning,
        faults=faults,
        seed=seed,
    )
    ctx = build_simulation(spec)
    env, fabric, collector = ctx.env, ctx.fabric, ctx.collector
    rng = SeededRng(seed).stream("incast")
    pattern = IncastPattern(fabric.config.n_hosts, n_senders, total_bytes)
    result = IncastResult(n_senders=n_senders, total_bytes=total_bytes, n_requests=n_requests)

    state: Dict[str, Any] = {"request": 0, "outstanding": 0, "start": 0.0, "next_fid": 0}

    def launch_request() -> None:
        receiver, senders = pattern.make_request(rng)
        now = env.now
        state["outstanding"] = len(senders)
        state["start"] = now
        per_sender = pattern.bytes_per_sender
        for sender in senders:
            fid = state["next_fid"]
            state["next_fid"] += 1
            flow = Flow(fid, sender, receiver, per_sender, now, request_id=state["request"])
            collector.total_pkts_offered += flow.n_pkts
            fabric.hosts[sender].agent.start_flow(flow)

    def on_complete(flow: Flow, now: float) -> None:
        result.fcts.append(now - flow.arrival)
        state["outstanding"] -= 1
        if state["outstanding"] == 0:
            result.rcts.append(now - state["start"])
            state["request"] += 1
            if state["request"] >= n_requests:
                env.stop()
            else:
                launch_request()

    collector.on_complete = on_complete
    env.schedule_at(0.0, launch_request)
    env.run(until=3600.0)  # safety wall; closed loop ends via env.stop()
    _finalize_hooks(ctx)
    result.audit = AuditReport.from_hooks(ctx.hooks)
    result.telemetry = Telemetry.report_from_hooks(ctx.hooks)
    if result.telemetry is not None:
        from repro.obs.store import run_meta

        result.telemetry.meta = run_meta(
            spec, events_processed=env.events_processed
        )
    return result


# ----------------------------------------------------------------------
# Multi-tenant fairness driver (Figure 11)
# ----------------------------------------------------------------------

@dataclass
class TenantFairnessResult:
    """Per-tenant throughput shares for the Figure 11 scenario.

    Each tenant injects an equal byte budget at t=0.  ``shares`` is the
    per-tenant split of bytes delivered by the *halfway point* of total
    delivery — a window in which both tenants are still backlogged, so
    the split reflects the scheduling policy rather than total demand.
    Under a fair scheduler it is ~0.5/0.5; under SRPT-in-the-fabric
    (pFabric) the short-flow-heavy tenant is visibly favoured.
    ``throughput_bps`` additionally records budget / drain-time rates.
    """

    protocol: str
    shares: Dict[int, float]
    delivered_bytes: Dict[int, int]
    drain_time: Dict[int, float]
    throughput_bps: Dict[int, float]

    def share_of(self, tenant: int) -> float:
        return self.shares.get(tenant, 0.0)

    def rate_share_of(self, tenant: int) -> float:
        """Share of drain-rate throughput (budget / drain time)."""
        total = sum(self.throughput_bps.values())
        if not total:
            return 0.0
        return self.throughput_bps.get(tenant, 0.0) / total


def run_tenant_fairness(
    protocol: str,
    workload_by_tenant: Dict[int, str],
    bytes_per_tenant: int = 20_000_000,
    topology: Optional[TopologyConfig] = None,
    max_flow_bytes: Optional[int] = None,
    protocol_config: Any = None,
    seed: int = 42,
) -> TenantFairnessResult:
    """Figure 11's scenario: tenants inject their whole trace at the
    start; measure how the fabric's throughput is shared.

    Flow sizes follow each tenant's workload distribution; flows are
    drawn until the tenant's byte budget is met, so the comparison is
    between equal demands with different flow-size mixes.
    """
    from repro.workloads.distributions import WORKLOADS
    from repro.workloads.traffic_matrix import AllToAll

    spec = ExperimentSpec(
        protocol=protocol,
        workload="fixed:1",  # unused; the driver builds flows itself
        n_flows=1,
        topology=topology or TopologyConfig.paper(),
        protocol_config=protocol_config,
        seed=seed,
    )
    ctx = build_simulation(spec)
    env, fabric, collector = ctx.env, ctx.fabric, ctx.collector
    rng = SeededRng(seed)
    tm = AllToAll(fabric.config.n_hosts)
    pair_rng = rng.stream("pairs")
    jitter = rng.stream("jitter")

    flows: List[Flow] = []
    remaining_flows: Dict[int, int] = {}
    budget_bytes: Dict[int, int] = {}
    fid = 0
    for tenant, workload in sorted(workload_by_tenant.items()):
        dist = WORKLOADS[workload]()
        size_rng = rng.stream(f"sizes-{tenant}")
        total = 0
        count = 0
        while total < bytes_per_tenant:
            size = dist.sample(size_rng)
            if max_flow_bytes is not None:
                size = min(size, max_flow_bytes)
            src, dst = tm.sample_pair(pair_rng)
            # "Both tenants inject the flows in their trace at the
            # beginning of the simulation": tiny jitter only, to avoid
            # a mega-batch at one timestamp.
            arrival = jitter.uniform(0.0, 50e-6)
            flows.append(Flow(fid, src, dst, size, arrival, tenant=tenant))
            fid += 1
            total += size
            count += 1
        remaining_flows[tenant] = count
        budget_bytes[tenant] = total

    collector.total_pkts_offered = sum(f.n_pkts for f in flows)
    collector.expected_flows = len(flows)
    for flow in flows:
        env.schedule_at(flow.arrival, fabric.hosts[flow.src].agent.start_flow, flow)

    drain_time: Dict[int, float] = {}
    grand_total = sum(budget_bytes.values())
    halfway_snapshot: Dict[int, int] = {}

    def on_complete(flow: Flow, now: float) -> None:
        remaining_flows[flow.tenant] -= 1
        if remaining_flows[flow.tenant] == 0:
            drain_time[flow.tenant] = now
        if not halfway_snapshot and collector.payload_bytes_delivered >= grand_total // 2:
            halfway_snapshot.update(collector.delivered_bytes_by_tenant)
        if collector.all_complete:
            env.stop()

    collector.on_complete = on_complete
    env.run(until=60.0)
    throughput = {
        tenant: (budget_bytes[tenant] * 8.0 / drain_time[tenant])
        for tenant in drain_time
        if drain_time[tenant] > 0
    }
    snapshot = halfway_snapshot or dict(collector.delivered_bytes_by_tenant)
    snap_total = sum(snapshot.values())
    shares = {
        t: (snapshot.get(t, 0) / snap_total if snap_total else 0.0)
        for t in workload_by_tenant
    }
    return TenantFairnessResult(
        protocol=protocol,
        shares=shares,
        delivered_bytes=dict(collector.delivered_bytes_by_tenant),
        drain_time=drain_time,
        throughput_bps=throughput,
    )
