"""Experiment harness (S12): declarative specs, a runner, and one
driver per figure of the paper's evaluation section.
"""

from repro.experiments.spec import ExperimentResult, ExperimentSpec
from repro.experiments.runner import run_experiment, run_incast, IncastResult

__all__ = [
    "ExperimentSpec",
    "ExperimentResult",
    "run_experiment",
    "run_incast",
    "IncastResult",
]
