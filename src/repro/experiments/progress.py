"""Live progress events for experiment sweeps.

:func:`repro.experiments.parallel.run_experiments_parallel` fans one
:class:`ProgressEvent` stream out of its workers (over a queue for the
multi-process path, directly for the serial path): a ``start`` event
when a spec begins, ``running`` heartbeats piggybacked on the
event-loop profiler's wall-clock heartbeat (events so far, ev/s, sim
time, ETA), and a terminal ``done``/``error``.  Consumers are plain
callables — :class:`ProgressPrinter` is the stderr default the CLI's
``--progress`` flag uses.

Events are frozen plain-data objects so they pickle across the worker
queue unchanged.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass
from typing import Optional, TextIO

__all__ = ["ProgressEvent", "ProgressPrinter", "format_event", "spec_label"]


@dataclass(frozen=True)
class ProgressEvent:
    """One progress report from one experiment in a sweep."""

    index: int  # position in the sweep (0-based)
    total: int  # sweep size
    label: str  # human name of the spec
    state: str  # "start" | "running" | "done" | "error"
    events: int = 0
    events_per_sec: float = 0.0
    sim_now: float = 0.0
    eta_seconds: Optional[float] = None
    wall_seconds: Optional[float] = None
    error: Optional[str] = None


def spec_label(spec) -> str:
    """Display name for a spec: its label, or protocol/workload/load/seed."""
    if getattr(spec, "label", ""):
        return spec.label
    return (
        f"{spec.protocol}/{spec.workload} load={spec.load:g} seed={spec.seed}"
    )


def format_event(event: ProgressEvent) -> str:
    """One status line for an event (the heartbeat-line format)."""
    head = f"[{event.index + 1}/{event.total}] {event.label}"
    if event.state == "start":
        return f"{head}: started"
    if event.state == "running":
        eta = "?" if event.eta_seconds is None else f"{event.eta_seconds:.1f}s"
        return (
            f"{head}: {event.events:,} ev "
            f"({event.events_per_sec:,.0f} ev/s, "
            f"t_sim={event.sim_now:.6f}s, ETA {eta})"
        )
    if event.state == "done":
        wall = "" if event.wall_seconds is None else f" in {event.wall_seconds:.2f}s"
        return f"{head}: done — {event.events:,} events{wall}"
    if event.state == "error":
        return f"{head}: FAILED — {event.error}"
    return f"{head}: {event.state}"


class ProgressPrinter:
    """Default sink: one line per event to ``stream`` (stderr).

    Tracks completion counts so the terminal line carries sweep-level
    progress too.
    """

    def __init__(self, stream: Optional[TextIO] = None) -> None:
        self.stream = stream if stream is not None else sys.stderr
        self.done = 0
        self.failed = 0

    def __call__(self, event: ProgressEvent) -> None:
        if event.state == "done":
            self.done += 1
        elif event.state == "error":
            self.failed += 1
        line = format_event(event)
        if event.state in ("done", "error"):
            finished = self.done + self.failed
            line += f"  [{finished}/{event.total} finished]"
        print(line, file=self.stream, flush=True)
