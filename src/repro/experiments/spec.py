"""Experiment specification and result types.

An :class:`ExperimentSpec` fully determines a simulation run (given the
code version): protocol, workload, traffic matrix, load, topology,
scale knobs and seed.  :func:`repro.experiments.runner.run_experiment`
turns one into an :class:`ExperimentResult`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Any, List, Optional, Tuple

from repro.metrics.drops import DropStats
from repro.metrics.records import FlowRecord
from repro.metrics.slowdown import (
    deadline_met_fraction,
    mean_slowdown,
    nfct,
    slowdown_percentile,
    split_short_long,
)
from repro.metrics.stability import StabilitySample
from repro.net.topology import TopologyConfig

__all__ = ["ExperimentSpec", "ExperimentResult"]


@dataclass
class ExperimentSpec:
    """One simulation run, fully specified.

    Attributes:
        protocol: "phost" | "pfabric" | "fastpass" (or any registered).
        workload: "websearch" | "datamining" | "imc10" | "bimodal" |
            "fixed:<bytes>".
        load: Target network load (paper sweeps 0.5-0.8; default 0.6).
        n_flows: Number of flows to generate.
        traffic_matrix: "all_to_all" (default), "permutation" or
            "skewed" (requires ``skew``; see
            :class:`repro.workloads.SkewedMatrix`).
        topology: Fabric dimensions; default is the paper's 144-host
            two-tier tree.
        buffer_bytes: Per-port buffer override (Figure 10 sweeps this).
        max_flow_bytes: Truncate sampled flow sizes (scale knob for CI
            runs; None = faithful distribution).
        bimodal_fraction_short: Short-flow fraction for the bimodal
            workload (Figure 8's x-axis).
        with_deadlines: Assign exponential deadlines (Figure 5c).
        deadline_mean: Mean deadline slack in seconds.
        protocol_config: Optional protocol config override; objects with
            a ``resolve(topology)`` method are resolved automatically.
        dataplane: Optional dataplane-program override (a
            :mod:`repro.dataplane` registry name, e.g. "commodity",
            "pfabric", "dctcp").  None (the default) uses the programs
            the protocol's spec declares; a name forces *both* switch
            and NIC queues onto that program for what-if runs (e.g.
            pHost over a pFabric fabric).
        tenant_split: If set (0..1), flows are assigned tenant 0/1 with
            this probability of tenant 1 (Figure 11 uses explicit
            per-tenant specs instead).
        stability_samples: If > 0, sample the Fig. 7 stability curve
            this many times over the run.
        max_sim_time: Hard stop (simulated seconds) for runs in the
            unstable regime; None derives a default of
            ``time_guard_factor`` x the arrival window.
        time_guard_factor: Multiplier for the derived time guard
            (stability runs use a small factor so unstable runs end
            promptly).
        instruments: Instrumentation hooks (e.g.
            :class:`repro.trace.PacketTracer`) bound to the run's
            :class:`~repro.sim.context.SimContext` by
            ``build_simulation`` — no hand-wiring needed.  In-process
            runs only: parallel workers cannot ship hook state back.
        observability: Optional
            :class:`~repro.obs.config.ObservabilityConfig`; when set,
            the runner attaches a :class:`repro.obs.Telemetry` hook
            (sampler / profiler / exporters per the config) and the
            result carries a plain-data
            :class:`~repro.obs.telemetry.ObsReport` in ``telemetry``.
        tuning: Hot-path optimization switches
            (:class:`~repro.sim.tuning.SimTuning`); None means all
            optimizations on.  Results are byte-identical for any
            setting — the knobs exist for the determinism suite and for
            benchmarking against ``SimTuning.baseline()``.
        faults: Optional :class:`repro.faults.FaultPlan`.  A non-empty
            plan makes the runner attach a
            :class:`repro.faults.FaultInjector` hook; ``None`` or an
            empty plan injects nothing and leaves the run byte-identical
            to the fault-free goldens (see docs/FAULTS.md).
        trace: Path to a flow-trace file (CSV/JSONL, see
            :mod:`repro.workloads.trace_io`).  When set, the workload
            generator is bypassed and the trace's flows are replayed
            (``workload``/``load``/``n_flows`` are ignored;
            ``with_deadlines`` still assigns deadlines to traced flows
            that lack one).
        skew: Optional :class:`repro.workloads.SkewConfig`; requires
            ``traffic_matrix="skewed"`` (hot-rack weights + rack
            affinity, see docs/WORKLOADS.md).
        load_profile: Optional :class:`repro.workloads.LoadProfile`
            modulating the Poisson arrival rate piecewise in time
            (bursts / diurnal ramps).  None = homogeneous arrivals,
            byte-identical to pre-ramp behaviour.
        coflows: Optional :class:`repro.workloads.CoflowConfig`; flows
            are then generated in ``request_id``-tagged jobs and the
            result exposes job-completion metrics (``job_records()``,
            ``mean_jct()``).
        seed: RNG seed; everything is deterministic given it.
        label: Free-form tag for reports.
    """

    protocol: str = "phost"
    workload: str = "websearch"
    load: float = 0.6
    n_flows: int = 1000
    traffic_matrix: str = "all_to_all"
    topology: TopologyConfig = field(default_factory=TopologyConfig.paper)
    buffer_bytes: Optional[int] = None
    max_flow_bytes: Optional[int] = None
    bimodal_fraction_short: float = 0.5
    with_deadlines: bool = False
    deadline_mean: float = 1000e-6
    protocol_config: Any = None
    dataplane: Optional[str] = None
    tenant_split: Optional[float] = None
    stability_samples: int = 0
    max_sim_time: Optional[float] = None
    time_guard_factor: float = 20.0
    instruments: Tuple[Any, ...] = ()
    observability: Any = None
    tuning: Any = None
    faults: Any = None
    trace: Optional[str] = None
    skew: Any = None
    load_profile: Any = None
    coflows: Any = None
    seed: int = 42
    label: str = ""

    def __post_init__(self) -> None:
        if self.load <= 0:
            raise ValueError("load must be positive")
        if self.n_flows < 1:
            raise ValueError("n_flows must be >= 1")
        if self.traffic_matrix not in ("all_to_all", "permutation", "skewed"):
            raise ValueError(
                "traffic_matrix must be 'all_to_all', 'permutation' or 'skewed'"
            )
        if self.traffic_matrix == "skewed" and self.skew is None:
            raise ValueError("traffic_matrix='skewed' requires a skew config")
        if self.skew is not None and self.traffic_matrix != "skewed":
            raise ValueError(
                "skew config set but traffic_matrix is "
                f"{self.traffic_matrix!r}; use traffic_matrix='skewed'"
            )
        if self.tenant_split is not None and not 0.0 <= self.tenant_split <= 1.0:
            raise ValueError("tenant_split must be in [0, 1]")
        if not isinstance(self.instruments, tuple):
            self.instruments = tuple(self.instruments)

    def with_topology_buffer(self) -> TopologyConfig:
        """Topology with the buffer override applied."""
        if self.buffer_bytes is None:
            return self.topology
        return replace(self.topology, buffer_bytes=self.buffer_bytes)

    def variant(self, **changes) -> "ExperimentSpec":
        """A copy with fields changed (sweep helper)."""
        return replace(self, **changes)


@dataclass
class ExperimentResult:
    """Everything a figure driver needs from one run."""

    spec: ExperimentSpec
    records: List[FlowRecord]
    drops: DropStats
    duration: float
    n_flows: int
    n_completed: int
    payload_bytes_delivered: int
    data_pkts_injected: int
    data_pkts_retransmitted: int
    control_pkts_sent: int
    control_bytes_sent: int
    goodput_gbps_per_host: float
    stability: List[StabilitySample] = field(default_factory=list)
    events_processed: int = 0
    wall_seconds: float = 0.0
    #: Injected-fault drops (repro.faults), ledgered separately from
    #: the congestion drops in ``drops``; 0 in fault-free runs.
    fault_drops: int = 0
    #: AuditReport when auditors were attached via spec.instruments
    #: (see repro.validate); None otherwise.
    audit: Optional[Any] = None
    #: ObsReport when spec.observability was set (see repro.obs);
    #: None otherwise.  Plain data — survives pickling to workers.
    telemetry: Optional[Any] = None
    #: ShardRunStats when the run executed under repro.sim.shard
    #: (tuning.shards != "off"); None for serial runs.  Plain data.
    shard_stats: Optional[Any] = None

    # ------------------------------------------------------------------
    # Metric shortcuts (all over completed flows)
    # ------------------------------------------------------------------
    @property
    def completion_rate(self) -> float:
        return self.n_completed / self.n_flows if self.n_flows else math.nan

    def mean_slowdown(self) -> float:
        return mean_slowdown(self.records)

    def nfct(self) -> float:
        return nfct(self.records)

    def tail_slowdown(self, p: float = 99.0) -> float:
        return slowdown_percentile(self.records, p)

    def short_long_slowdown(self, threshold_bytes: int):
        """(mean short, mean long) slowdowns under the Fig. 4 split."""
        short, long_ = split_short_long(self.records, threshold_bytes)
        return mean_slowdown(short), mean_slowdown(long_)

    def short_records(self, threshold_bytes: int) -> List[FlowRecord]:
        short, _ = split_short_long(self.records, threshold_bytes)
        return short

    def deadline_met_fraction(self) -> float:
        return deadline_met_fraction(self.records)

    def job_records(self):
        """Coflow job records (see :mod:`repro.metrics.jobs`); empty
        when no flow carried a ``request_id``."""
        from repro.metrics.jobs import job_records

        return job_records(self.records)

    def mean_jct(self) -> float:
        """Mean job completion time (NaN when there are no jobs)."""
        from repro.metrics.jobs import mean_jct

        return mean_jct(self.records)

    def job_completion_rate(self) -> float:
        """Fraction of jobs fully drained (NaN when there are no jobs)."""
        from repro.metrics.jobs import job_completion_rate

        return job_completion_rate(self.records)

    def summary(self) -> str:
        return (
            f"[{self.spec.protocol}/{self.spec.workload} load={self.spec.load:g}] "
            f"slowdown={self.mean_slowdown():.3f} nfct={self.nfct():.3f} "
            f"done={self.n_completed}/{self.n_flows} drops={self.drops.total_drops}"
        )
