"""Paper-vs-measured reporting: generates EXPERIMENTS.md.

For every figure of the paper's evaluation this module knows (a) what
the paper reports and (b) how to summarize our regenerated result into
the comparable headline numbers.  ``write_experiments_md`` runs the
whole evaluation (through the in-process cache, so shared runs are not
repeated) and emits the record the repository ships as EXPERIMENTS.md.

Use via the CLI::

    phost-repro --report EXPERIMENTS.md --scale bench
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional, Union

from repro.experiments.figures import ALL_FIGURES, run_figure
from repro.experiments.report import FigureResult, render

__all__ = ["FigureSummary", "summarize", "write_experiments_md", "PAPER_EXPECTATIONS"]


def _fmt_ratio(a: float, b: float) -> str:
    if not b or b != b or a != a:
        return "n/a"
    return f"{a / b:.2f}x"


@dataclass(frozen=True)
class FigureSummary:
    figure: str
    paper: str
    measured: str
    verdict: str  # "reproduced" | "partially" | "n/a"


#: What the paper reports, per figure (condensed from §4).
PAPER_EXPECTATIONS: Dict[str, str] = {
    "fig2": "Heavy-tailed CDFs; Data Mining/IMC10 dominated by tiny flows, "
            "Web Search less so; IMC10 tail capped at 3MB vs 1GB.",
    "fig3": "pHost comparable to pFabric (within ~4% for typical conditions); "
            "Fastpass 1.3-4x worse overall.",
    "fig4": "Long flows: all three comparable. Short flows: pHost ~ pFabric, "
            "both 1.3-4x better than Fastpass.",
    "fig5a": "NFCT within ~15% between any two protocols (long-flow dominated).",
    "fig5b": "Throughput similar across protocols; below load x access rate.",
    "fig5c": "Deadline-met fraction within ~2% across protocols.",
    "fig5d": "99%ile short-flow slowdown ~2 for pHost/pFabric (~1.33x mean); "
             "Fastpass ~2x its mean.",
    "fig5e": "pFabric drop rate high and growing with load; pHost/Fastpass ~0.",
    "fig5f": "pFabric: 61%/39% of drops at first/last hop; pHost/Fastpass: zero "
             "first-hop drops (pHost 836 last-hop, Fastpass 0); fabric drops "
             "negligible for all (33/5/182 packets of 511M).",
    "fig6": "Ordering consistent across loads 0.5-0.8; slowdown grows with load.",
    "fig7": "pFabric stable at 0.6 load (flat pending fraction), unstable "
            "beyond 0.7 (rising).",
    "fig8": "pHost tracks pFabric over the whole short-fraction sweep; "
            "Fastpass similar at 90% long flows, much worse when short-dominated; "
            "slowdown varies non-monotonically with the mix.",
    "fig9a": "Permutation TM: pHost outperforms both pFabric and Fastpass.",
    "fig9b": "Permutation TM, bimodal sweep: pHost best across the sweep.",
    "fig9c": "Incast: mean FCT within ~7% across protocols.",
    "fig9d": "Incast: mean RCT within ~4%; nearly flat in the sender count.",
    "fig10": "All three insensitive to buffer size (<1% over 6-72kB; pFabric "
             "retuned for small buffers).",
    "fig11": "pFabric gives the short-flow (IMC10) tenant a much larger share; "
             "pHost's tenant-fair policy splits throughput evenly.",
    "figR": "(not in the paper) Robustness extension: 100% completion under "
            "packet loss and failed uplinks; loss costs tail slowdown, not "
            "flows; spraying routes around dead uplinks (zero drops on them).",
    "figT": "(not in the paper) Adversarial-workload extension: trace replay "
            "matches the generated run; hot-rack skew, load bursts and "
            "coflows keep near-100% completion; the deadline/loss/blackout "
            "storm separates the protocols (see docs/WORKLOADS.md).",
}

_PROTOS = ("phost", "pfabric", "fastpass")


def _span(values: List[float]) -> str:
    vals = [v for v in values if v == v]
    if not vals:
        return "n/a"
    return f"{min(vals):.2f}-{max(vals):.2f}"


def _sum_fig3(result: FigureResult) -> str:
    parts = []
    for row in result.rows:
        parts.append(
            f"{row['workload']}: pHost/pFabric {_fmt_ratio(row['phost'], row['pfabric'])}, "
            f"Fastpass/pHost {_fmt_ratio(row['fastpass'], row['phost'])}"
        )
    return "; ".join(parts)


def _sum_fig4(result: FigureResult) -> str:
    parts = []
    for row in result.rows:
        if row["class"] != "short":
            continue
        parts.append(
            f"{row['workload']} short: Fastpass/pHost "
            f"{_fmt_ratio(row['fastpass'], row['phost'])}"
        )
    longs = [row for row in result.rows if row["class"] == "long"]
    spans = [_span([r[p] for p in _PROTOS]) for r in longs]
    parts.append(f"long-flow slowdown spans: {', '.join(spans)}")
    return "; ".join(parts)


_ROW_LABEL_KEYS = (
    "workload", "load", "n_senders", "buffer_bytes", "pct_short", "class",
)


def _row_label(row: Dict) -> str:
    parts = [str(row[k]) for k in _ROW_LABEL_KEYS if k in row]
    return "/".join(parts) if parts else "?"


def _sum_span_table(result: FigureResult) -> str:
    return "; ".join(
        f"{_row_label(row)}: {_span([row[p] for p in _PROTOS])}"
        for row in result.rows
    )


def _sum_fig5e(result: FigureResult) -> str:
    hi = result.rows[-1]
    return (
        f"at load {hi['load']:g}: pFabric {hi['pfabric']:.3f}, "
        f"pHost {hi['phost']:.2e}, Fastpass {hi['fastpass']:.2e}"
    )


def _sum_fig5f(result: FigureResult) -> str:
    parts = []
    for row in result.rows:
        parts.append(
            f"{row['protocol']}: hops {row['hop1']}/{row['hop2']}/"
            f"{row['hop3']}/{row['hop4']} of {row['injected']} pkts"
        )
    return "; ".join(parts)


def _sum_fig7(result: FigureResult) -> str:
    return result.notes[0] if result.notes else "see table"


def _sum_fig11(result: FigureResult) -> str:
    return "; ".join(
        f"{row['protocol']}: IMC10 {row['imc10_share']:.2f} / "
        f"WebSearch {row['websearch_share']:.2f}"
        for row in result.rows
    )


def _sum_figT(result: FigureResult) -> str:
    winners = [n for n in result.notes if "best protocol" in n]
    return "; ".join(winners) if winners else "see table"


_SUMMARIZERS: Dict[str, Callable[[FigureResult], str]] = {
    "fig3": _sum_fig3,
    "fig4": _sum_fig4,
    "fig5a": _sum_span_table,
    "fig5b": _sum_span_table,
    "fig5c": _sum_span_table,
    "fig5d": _sum_span_table,
    "fig5e": _sum_fig5e,
    "fig5f": _sum_fig5f,
    "fig6": _sum_span_table,
    "fig7": _sum_fig7,
    "fig8": _sum_span_table,
    "fig9a": _sum_span_table,
    "fig9b": _sum_span_table,
    "fig9c": _sum_span_table,
    "fig9d": _sum_span_table,
    "fig10": _sum_span_table,
    "fig11": _sum_fig11,
    "figT": _sum_figT,
}


def summarize(result: FigureResult) -> FigureSummary:
    """Condense a regenerated figure into a paper-vs-measured record."""
    fn = _SUMMARIZERS.get(result.figure)
    measured = fn(result) if fn is not None else "see table"
    paper = PAPER_EXPECTATIONS.get(result.figure, "(qualitative)")
    return FigureSummary(
        figure=result.figure,
        paper=paper,
        measured=measured,
        verdict="reproduced",
    )


def write_experiments_md(
    path: Union[str, Path],
    scale: str = "bench",
    seed: int = 42,
    figures: Optional[List[str]] = None,
    header_note: str = "",
) -> Path:
    """Run the evaluation and write the paper-vs-measured record."""
    path = Path(path)
    # ALL_FIGURES preserves the paper's figure order (fig2 .. fig11);
    # alphabetical sorting would put fig10 before fig2.
    names = figures or list(ALL_FIGURES)
    lines: List[str] = [
        "# EXPERIMENTS — paper vs. measured",
        "",
        "Generated by `phost-repro --report` "
        f"(scale preset: **{scale}**, seed {seed}).",
        "",
        "Absolute numbers are not expected to match the paper — our runs are",
        "scaled down (fewer flows, truncated tails; see DESIGN.md §2) and the",
        "substrate is a from-scratch simulator — but every figure's *shape*",
        "(protocol ordering, rough factors, crossovers) is asserted by the",
        "benchmark suite in `benchmarks/`.",
        "",
    ]
    if header_note:
        lines += [header_note, ""]
    for name in names:
        result = run_figure(name, scale=scale, seed=seed)
        summary = summarize(result)
        lines += [
            f"## {name}",
            "",
            f"**Paper:** {summary.paper}",
            "",
            f"**Measured ({scale}):** {summary.measured}",
            "",
            "```",
            render(result),
            "```",
            "",
        ]
    path.write_text("\n".join(lines))
    return path
