"""Command-line entry point (``phost-repro``).

Examples::

    phost-repro --list
    phost-repro --figure fig3 --scale tiny
    phost-repro --figure fig3 --figure fig4
    phost-repro --all --scale bench
    phost-repro --run phost websearch --load 0.7 --flows 500
    phost-repro --run phost imc10 --json
    phost-repro --sweep load phost imc10 --values 0.5,0.6,0.7,0.8
    phost-repro --replay trace.csv --protocol pfabric
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import List, Optional

from repro.experiments.defaults import SCALES, make_spec
from repro.experiments.figures import ALL_FIGURES, run_figure
from repro.experiments.report import FigureResult, render
from repro.experiments.runner import run_experiment, run_flow_list
from repro.experiments.spec import ExperimentResult, ExperimentSpec

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="phost-repro",
        description=(
            "Regenerate the evaluation of 'pHost: Distributed Near-Optimal "
            "Datacenter Transport Over Commodity Network Fabric' (CoNEXT 2015)."
        ),
    )
    mode = parser.add_argument_group("modes (pick one)")
    mode.add_argument(
        "--figure",
        action="append",
        default=[],
        metavar="FIG",
        help="figure to regenerate (repeatable); see --list",
    )
    mode.add_argument("--all", action="store_true", help="run every figure")
    mode.add_argument("--list", action="store_true", help="list available figures")
    mode.add_argument(
        "--list-protocols",
        action="store_true",
        help="list registered transport protocols (repro.protocols registry)",
    )
    mode.add_argument(
        "--list-dataplanes",
        action="store_true",
        help="list registered dataplane programs (repro.dataplane registry)",
    )
    mode.add_argument(
        "--run",
        nargs=2,
        metavar=("PROTOCOL", "WORKLOAD"),
        help="run a single ad-hoc experiment",
    )
    mode.add_argument(
        "--sweep",
        nargs=3,
        metavar=("FIELD", "PROTOCOL", "WORKLOAD"),
        help="sweep one spec field (e.g. load) over --values",
    )
    mode.add_argument(
        "--replay",
        metavar="TRACE",
        help=(
            "simulate a flow trace file — CSV, or JSONL when the suffix "
            "is .jsonl/.ndjson (see repro.workloads.trace_io)"
        ),
    )
    mode.add_argument(
        "--report",
        metavar="FILE.md",
        help="run the full evaluation and write a paper-vs-measured report",
    )
    mode.add_argument(
        "--batch",
        metavar="SPECS.json",
        help="run a JSON batch of experiments (see repro.experiments.specfile)",
    )
    mode.add_argument(
        "--size-profile",
        nargs=2,
        metavar=("PROTOCOL", "WORKLOAD"),
        help="per-size slowdown profile (log-binned) for one run",
    )
    parser.add_argument(
        "--parallel",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for --batch (default 1)",
    )
    parser.add_argument(
        "--scale",
        default="bench",
        choices=sorted(SCALES),
        help="run-size preset (default: bench)",
    )
    parser.add_argument(
        "--backend",
        default=None,
        choices=("pure", "compiled", "auto"),
        help=(
            "inner-loop backend for --run/--sweep/--replay (SimTuning."
            "backend): 'pure' (default), 'compiled' (built extension; "
            "warns and falls back if absent), or 'auto'.  Digest-inert "
            "by contract — only wall-clock changes"
        ),
    )
    parser.add_argument(
        "--shards",
        default=None,
        metavar="N|auto|off",
        help=(
            "sharded per-rack execution for --run/--sweep (SimTuning."
            "shards): an explicit shard count, 'auto' (racks/CPUs "
            "capped), or 'off' (default).  Digests are byte-identical "
            "to the serial run; unsupported specs warn and run serially"
        ),
    )
    parser.add_argument(
        "--shard-transport",
        default=None,
        choices=("auto", "inprocess", "processes"),
        help=(
            "executor for --shards: 'processes' (forked workers), "
            "'inprocess' (sequential, for debugging), or 'auto' "
            "(default: processes when sharding and fork is available)"
        ),
    )
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--load", type=float, default=0.6, help="network load for --run")
    parser.add_argument("--flows", type=int, default=None, help="flow count for --run")
    parser.add_argument(
        "--protocol", default="phost", help="protocol for --replay (default phost)"
    )
    parser.add_argument(
        "--dataplane",
        default=None,
        metavar="PROGRAM",
        help=(
            "override the dataplane program for --run/--replay (a "
            "repro.dataplane registry name; see --list-dataplanes); "
            "forces both switch and NIC queues onto that program"
        ),
    )
    parser.add_argument(
        "--values",
        default="0.5,0.6,0.7,0.8",
        help="comma-separated values for --sweep (default: loads 0.5-0.8)",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit machine-readable JSON instead of tables"
    )
    parser.add_argument(
        "--ledger",
        metavar="DIR",
        default=None,
        help=(
            "persist results into a content-addressed run ledger at DIR "
            "(repro.obs.store): --run/--replay/--batch store each run "
            "keyed by (spec_hash, run_digest); --figure stores the "
            "acceptance table.  Render with scripts/report.py"
        ),
    )
    parser.add_argument(
        "--progress",
        action="store_true",
        help=(
            "stream live progress for --batch: per-experiment start/"
            "done lines plus heartbeat lines (ev/s, sim time, ETA) to "
            "stderr"
        ),
    )
    parser.add_argument(
        "--audit",
        action="store_true",
        help=(
            "attach the run-time invariant auditors (repro.validate) to "
            "--run/--replay and report per-invariant pass/fail; exits 1 "
            "on any violation"
        ),
    )
    parser.add_argument(
        "--audit-json",
        metavar="FILE.json",
        default=None,
        help="write the audit report as JSON to this path (implies --audit)",
    )
    obs = parser.add_argument_group("observability (repro.obs; for --run/--replay)")
    obs.add_argument(
        "--obs",
        action="store_true",
        help="attach the telemetry spine: instrument registry + periodic sampler",
    )
    obs.add_argument(
        "--obs-period",
        type=float,
        default=None,
        metavar="SECONDS",
        help="sampling period in simulated seconds (default 100e-6; implies --obs)",
    )
    obs.add_argument(
        "--obs-out",
        metavar="DIR",
        default=None,
        help=(
            "write series.jsonl / profile.txt / summary.txt to this "
            "directory (implies --obs)"
        ),
    )
    obs.add_argument(
        "--profile",
        action="store_true",
        help=(
            "profile event-loop dispatch (per-event-type counts and "
            "wall-clock self-time; implies --obs)"
        ),
    )
    obs.add_argument(
        "--chrome-trace",
        metavar="FILE.json",
        default=None,
        help=(
            "export a Chrome trace_event file (open in Perfetto or "
            "chrome://tracing; implies --obs)"
        ),
    )
    faults = parser.add_argument_group("fault injection (repro.faults; for --run/--replay)")
    faults.add_argument(
        "--faults",
        metavar="SPEC",
        default=None,
        help=(
            "inject faults per a comma-separated plan, e.g. "
            "'loss=0.01', 'ge=0.05:0.3', 'corrupt=0.001', "
            "'down=tor0.up.c1@0.001:0.002', 'pause=3@0.001:0.002', "
            "'blackout=0:0.0005', 'drop=rts:1' (see docs/FAULTS.md)"
        ),
    )
    faults.add_argument(
        "--fault-seed",
        type=int,
        default=0,
        help=(
            "seed for the fault layer's own RNG streams, independent of "
            "--seed so faults can be re-drawn against identical traffic"
        ),
    )
    wl = parser.add_argument_group(
        "adversarial workloads (repro.workloads; for --run, see docs/WORKLOADS.md)"
    )
    wl.add_argument(
        "--trace",
        metavar="TRACE",
        default=None,
        help=(
            "replay this flow-trace file (CSV/JSONL) instead of generating "
            "a workload; unlike --replay, composes with --faults/--audit "
            "and the full spec machinery"
        ),
    )
    wl.add_argument(
        "--skew",
        metavar="SPEC",
        default=None,
        help=(
            "hot-rack traffic skew, e.g. 'racks=0+1,src=0.7,dst=0.7,"
            "affinity=0.3,exclude=5+6'; implies the skewed traffic matrix"
        ),
    )
    wl.add_argument(
        "--ramp",
        metavar="SPEC",
        default=None,
        help=(
            "piecewise load ramp on the arrival process: "
            "'burst@AT:DURATION:FACTOR', 'diurnal@PERIOD:LOW:HIGH', or "
            "explicit 'T:MULT,T:MULT,...' segments"
        ),
    )
    wl.add_argument(
        "--coflows",
        metavar="MIN:MAX[:STAGGER]",
        default=None,
        help=(
            "generate job-structured coflows (uniform width in "
            "[MIN, MAX], optional intra-job stagger seconds) and report "
            "job-completion metrics"
        ),
    )
    return parser


def _wants_audit(args: argparse.Namespace) -> bool:
    return args.audit or args.audit_json is not None


def _audit_instruments(args: argparse.Namespace) -> tuple:
    if not _wants_audit(args):
        return ()
    from repro.validate import standard_auditors

    return standard_auditors()


def _fault_plan(args: argparse.Namespace):
    """Build a FaultPlan from --faults/--fault-seed (None if unused)."""
    if args.faults is None:
        return None
    from repro.faults import parse_fault_plan

    return parse_fault_plan(args.faults, seed=args.fault_seed)


def _workload_variant(args: argparse.Namespace) -> dict:
    """Spec overrides from --trace/--skew/--ramp/--coflows (may be {})."""
    changes: dict = {}
    if args.trace is not None:
        changes["trace"] = args.trace
    if args.skew is not None:
        from repro.workloads.skew import parse_skew

        changes["skew"] = parse_skew(args.skew)
        changes["traffic_matrix"] = "skewed"
    if args.ramp is not None:
        from repro.workloads.ramp import parse_load_profile

        changes["load_profile"] = parse_load_profile(args.ramp)
    if args.coflows is not None:
        from repro.workloads.coflows import parse_coflows

        changes["coflows"] = parse_coflows(args.coflows)
    return changes


def _wants_obs(args: argparse.Namespace) -> bool:
    return (
        args.obs
        or args.obs_period is not None
        or args.obs_out is not None
        or args.profile
        or args.chrome_trace is not None
    )


def _obs_config(args: argparse.Namespace):
    """Build an ObservabilityConfig from the CLI flags (None if unused)."""
    if not _wants_obs(args):
        return None
    from repro.obs import ObservabilityConfig

    kwargs = dict(
        out_dir=args.obs_out,
        profile=args.profile,
        chrome_trace=args.chrome_trace,
    )
    if args.obs_period is not None:
        kwargs["sample_period"] = args.obs_period
    return ObservabilityConfig(**kwargs)


def _store_result(result: ExperimentResult, args: argparse.Namespace) -> None:
    """Persist one result into the --ledger store (no-op without it)."""
    if args.ledger is None:
        return
    from repro.obs.store import RunLedger

    entry = RunLedger(args.ledger).put(result)
    print(f"ledger: stored {entry.key} under {args.ledger}", file=sys.stderr)


def _store_figure(figure: FigureResult, args: argparse.Namespace) -> None:
    """Persist one figure table into the --ledger store (no-op without it)."""
    if args.ledger is None:
        return
    from repro.obs.store import RunLedger

    path = RunLedger(args.ledger).put_figure(figure)
    print(f"ledger: stored figure table {path}", file=sys.stderr)


def _handle_telemetry(result: ExperimentResult, args: argparse.Namespace) -> None:
    report = result.telemetry
    if report is None or args.json:
        return
    print(report.summary())
    if report.profile_text is not None:
        print(report.profile_text)


def _handle_audit(report, args: argparse.Namespace) -> int:
    """Emit/export the audit report; exit status 1 on violations."""
    if report is None:
        return 0
    if args.audit_json is not None:
        from repro.metrics.export import audit_report_to_json

        audit_report_to_json(report, args.audit_json)
    if not args.json:
        print(report.summary())
    return 0 if report.ok else 1


# ----------------------------------------------------------------------
# Output helpers
# ----------------------------------------------------------------------

def _result_dict(result: ExperimentResult) -> dict:
    payload = {
        "protocol": result.spec.protocol,
        "workload": result.spec.workload,
        "load": result.spec.load,
        "seed": result.spec.seed,
        "n_flows": result.n_flows,
        "n_completed": result.n_completed,
        "mean_slowdown": result.mean_slowdown(),
        "p99_slowdown": result.tail_slowdown(99),
        "nfct": result.nfct(),
        "goodput_gbps_per_host": result.goodput_gbps_per_host,
        "drops": result.drops.by_hop,
        "drop_rate": result.drops.drop_rate,
        "retransmissions": result.data_pkts_retransmitted,
        "control_bytes": result.control_bytes_sent,
        "duration_s": result.duration,
        "wall_seconds": result.wall_seconds,
    }
    if result.fault_drops:
        payload["fault_drops"] = result.fault_drops
    jobs = result.job_records()
    if jobs:
        payload["jobs"] = {
            "n_jobs": len(jobs),
            "completion_rate": result.job_completion_rate(),
            "mean_jct": result.mean_jct(),
        }
    if result.audit is not None:
        payload["audit"] = result.audit.to_dict()
    if result.telemetry is not None:
        report = result.telemetry
        obs: dict = {
            "n_instruments": report.n_instruments,
            "samples": report.samples_taken,
            "written": list(report.written),
        }
        if report.profile is not None:
            obs["profile"] = report.profile
        if report.chrome_trace_path is not None:
            obs["chrome_trace"] = report.chrome_trace_path
        payload["obs"] = obs
    from repro.validate import run_digest

    payload["run_digest"] = run_digest(result)
    if result.shard_stats is not None:
        stats = result.shard_stats
        payload["shards"] = {
            "n_shards": stats.n_shards,
            "transport": stats.transport,
            "rounds": stats.rounds,
            "events_per_shard": [s.events_processed for s in stats.shards],
        }
    return payload


def _emit_result(result: ExperimentResult, as_json: bool) -> None:
    if as_json:
        print(json.dumps(_result_dict(result), indent=2, sort_keys=True))
        return
    print(result.summary())
    print(
        f"  goodput/host: {result.goodput_gbps_per_host:.3f} Gbps, "
        f"99%ile slowdown: {result.tail_slowdown():.3f}, "
        f"drops by hop: {result.drops.by_hop}"
    )
    if result.fault_drops:
        print(f"  injected fault drops: {result.fault_drops}")
    jobs = result.job_records()
    if jobs:
        print(
            f"  jobs: {sum(1 for j in jobs if j.completed)}/{len(jobs)} "
            f"complete, mean JCT: {result.mean_jct() * 1e3:.3f} ms"
        )


def _figure_dict(result: FigureResult) -> dict:
    return {
        "figure": result.figure,
        "title": result.title,
        "columns": result.columns,
        "rows": result.rows,
        "notes": result.notes,
    }


# ----------------------------------------------------------------------
# Modes
# ----------------------------------------------------------------------

def _list_protocols(args: argparse.Namespace) -> int:
    """Registry-sourced protocol listing (never a hardcoded choice list)."""
    from repro.protocols.registry import available_protocols, get_protocol

    rows = []
    for name in available_protocols():
        spec = get_protocol(name)
        rows.append(
            {
                "protocol": name,
                "switch_dataplane": spec.switch_dataplane,
                "host_dataplane": spec.host_dataplane,
                "legacy_queue_factories": bool(
                    spec.switch_queue_factory or spec.host_queue_factory
                ),
            }
        )
    if args.json:
        print(json.dumps(rows, indent=2))
        return 0
    for row in rows:
        extra = " (legacy queue factories)" if row["legacy_queue_factories"] else ""
        print(
            f"{row['protocol']:10s} switch={row['switch_dataplane']} "
            f"host={row['host_dataplane']}{extra}"
        )
    return 0


def _list_dataplanes(args: argparse.Namespace) -> int:
    """Registry-sourced dataplane-program listing."""
    from repro.dataplane import available_dataplanes, get_dataplane

    rows = []
    for name in available_dataplanes():
        program = get_dataplane(name)
        doc = (type(program).__doc__ or "").strip().splitlines()
        rows.append(
            {
                "dataplane": name,
                "class": type(program).__name__,
                "summary": doc[0] if doc else "",
            }
        )
    if args.json:
        print(json.dumps(rows, indent=2))
        return 0
    for row in rows:
        print(f"{row['dataplane']:10s} {row['class']:18s} {row['summary']}")
    return 0


def _backend_variant(spec: ExperimentSpec, args: argparse.Namespace) -> ExperimentSpec:
    """Apply ``--backend``/``--shards`` onto the spec's tuning."""
    changes: dict = {}
    if getattr(args, "backend", None) is not None:
        changes["backend"] = args.backend
    shards = getattr(args, "shards", None)
    if shards is not None:
        changes["shards"] = shards if shards in ("auto", "off") else int(shards)
    if getattr(args, "shard_transport", None) is not None:
        changes["shard_transport"] = args.shard_transport
    if not changes:
        return spec
    from dataclasses import replace as _dc_replace

    from repro.sim.tuning import SimTuning

    tuning = spec.tuning if spec.tuning is not None else SimTuning()
    return spec.variant(tuning=_dc_replace(tuning, **changes))


def _run_single(args: argparse.Namespace) -> int:
    protocol, workload = args.run
    overrides = dict(load=args.load, seed=args.seed)
    if args.flows is not None:
        overrides["n_flows"] = args.flows
    spec = make_spec(protocol, workload, args.scale, **overrides)
    try:
        workload_changes = _workload_variant(args)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    spec = spec.variant(
        dataplane=args.dataplane,
        instruments=_audit_instruments(args),
        observability=_obs_config(args),
        faults=_fault_plan(args),
        **workload_changes,
    )
    result = run_experiment(_backend_variant(spec, args))
    _emit_result(result, args.json)
    _handle_telemetry(result, args)
    _store_result(result, args)
    return _handle_audit(result.audit, args)


def _run_sweep(args: argparse.Namespace) -> int:
    field_name, protocol, workload = args.sweep
    raw_values = [v.strip() for v in args.values.split(",") if v.strip()]
    table = FigureResult(
        figure=f"sweep:{field_name}",
        title=f"{protocol}/{workload}: sweep over {field_name}",
        columns=[field_name, "mean_slowdown", "p99_slowdown", "drop_rate"],
    )
    for raw in raw_values:
        try:
            value: object = int(raw)
        except ValueError:
            try:
                value = float(raw)
            except ValueError:
                value = raw
        spec = make_spec(protocol, workload, args.scale, seed=args.seed)
        try:
            spec = spec.variant(**{field_name: value})
        except TypeError:
            print(f"error: ExperimentSpec has no field {field_name!r}", file=sys.stderr)
            return 2
        result = run_experiment(_backend_variant(spec, args))
        table.add_row(
            **{
                field_name: value,
                "mean_slowdown": result.mean_slowdown(),
                "p99_slowdown": result.tail_slowdown(99),
                "drop_rate": result.drops.drop_rate,
            }
        )
    if args.json:
        print(json.dumps(_figure_dict(table), indent=2))
    else:
        print(render(table))
    return 0


def _run_replay(args: argparse.Namespace) -> int:
    from repro.workloads.trace_io import load_flows

    preset = SCALES[args.scale]
    spec = ExperimentSpec(
        protocol=args.protocol,
        workload="fixed:1",  # ignored by run_flow_list
        n_flows=1,
        topology=preset.topology,
        dataplane=args.dataplane,
        instruments=_audit_instruments(args),
        observability=_obs_config(args),
        faults=_fault_plan(args),
        seed=args.seed,
    )
    flows = load_flows(args.replay, n_hosts=preset.topology.n_hosts)
    result = run_flow_list(_backend_variant(spec, args), flows)
    _emit_result(result, args.json)
    _handle_telemetry(result, args)
    _store_result(result, args)
    return _handle_audit(result.audit, args)


def _run_batch(args: argparse.Namespace) -> int:
    from repro.experiments.parallel import run_experiments_parallel
    from repro.experiments.specfile import SpecFileError, load_spec_file

    try:
        named = load_spec_file(args.batch)
    except SpecFileError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    results = run_experiments_parallel(
        [spec for _, spec in named], args.parallel, progress=args.progress or None
    )
    for _, result in zip(named, results):
        _store_result(result, args)
    if args.json:
        payload = {
            name: _result_dict(result)
            for (name, _), result in zip(named, results)
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    table = FigureResult(
        figure="batch",
        title=f"batch: {args.batch}",
        columns=["name", "protocol", "workload", "load",
                 "mean_slowdown", "p99_slowdown", "drop_rate"],
    )
    for (name, spec), result in zip(named, results):
        table.add_row(
            name=name,
            protocol=spec.protocol,
            workload=spec.workload,
            load=spec.load,
            mean_slowdown=result.mean_slowdown(),
            p99_slowdown=result.tail_slowdown(99),
            drop_rate=result.drops.drop_rate,
        )
    print(render(table))
    return 0


def _run_size_profile(args: argparse.Namespace) -> int:
    from repro.metrics.cdf import slowdown_by_size, sparkline

    protocol, workload = args.size_profile
    overrides = dict(load=args.load, seed=args.seed)
    if args.flows is not None:
        overrides["n_flows"] = args.flows
    spec = make_spec(protocol, workload, args.scale, **overrides)
    result = run_experiment(spec)
    rows = slowdown_by_size(result.records)
    table = FigureResult(
        figure="size-profile",
        title=f"{protocol}/{workload} @ load {spec.load:g}: slowdown by flow size",
        columns=["size_upto_bytes", "mean_slowdown", "flows"],
        rows=[
            {"size_upto_bytes": int(hi), "mean_slowdown": mean, "flows": count}
            for hi, mean, count in rows
        ],
    )
    table.notes.append("slowdown trend: " + sparkline([m for _, m, _ in rows]))
    if args.json:
        print(json.dumps(_figure_dict(table), indent=2))
    else:
        print(render(table))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list:
        for name in sorted(ALL_FIGURES):
            doc = (ALL_FIGURES[name].__doc__ or "").strip().splitlines()[0]
            print(f"{name:7s} {doc}")
        return 0
    if args.list_protocols:
        return _list_protocols(args)
    if args.list_dataplanes:
        return _list_dataplanes(args)
    if args.run:
        return _run_single(args)
    if args.sweep:
        return _run_sweep(args)
    if args.replay:
        return _run_replay(args)
    if args.report:
        from repro.experiments.summary import write_experiments_md

        figures = list(args.figure) or None
        out = write_experiments_md(
            args.report, scale=args.scale, seed=args.seed, figures=figures
        )
        print(f"wrote {out}")
        return 0
    if args.batch:
        return _run_batch(args)
    if args.size_profile:
        return _run_size_profile(args)
    names = list(args.figure)
    if args.all:
        names = sorted(ALL_FIGURES)
    if not names:
        build_parser().print_help()
        return 2
    for name in names:
        t0 = time.perf_counter()
        result = run_figure(name, scale=args.scale, seed=args.seed)
        _store_figure(result, args)
        if args.json:
            print(json.dumps(_figure_dict(result), indent=2))
        else:
            print(render(result))
            print(f"({name} regenerated in {time.perf_counter() - t0:.1f}s)\n")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
