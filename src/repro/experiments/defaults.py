"""Scale presets and default experiment parameters.

The paper injects hundreds of millions of packets into a 144-host
fabric; a pure-Python simulator reproduces the *comparisons* at a
fraction of that scale.  Three presets:

* ``tiny``  — a small fabric, few flows, strong size truncation.  For
  unit/integration tests (sub-second runs).
* ``bench`` — the paper's 144-host fabric, hundreds of flows, long
  tails truncated to single-digit MB.  For the per-figure benchmarks
  (seconds per simulation).
* ``full``  — the paper's fabric, thousands of flows, faithful
  distributions.  For unattended runs; hours in CPython.

Mean slowdown is dominated by the short-flow mass in every workload, so
truncating the extreme tail changes absolute values slightly but not
the protocol ordering the paper reports; EXPERIMENTS.md quantifies the
deltas per figure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.experiments.spec import ExperimentSpec
from repro.net.topology import TopologyConfig

__all__ = [
    "Scale",
    "SCALES",
    "make_spec",
    "PROTOCOLS",
    "EXTENDED_PROTOCOLS",
    "WORKLOAD_NAMES",
    "DEFAULT_LOAD",
]

#: The paper's three transports — the comparison every figure reproduces.
PROTOCOLS = ("phost", "pfabric", "fastpass")
#: The paper trio plus baselines added by this repository (currently
#: DCTCP); the headline figures (fig3, fig9c, figR) carry these extra
#: columns, the paper-only figures stay with the trio.
EXTENDED_PROTOCOLS = PROTOCOLS + ("dctcp",)
WORKLOAD_NAMES = ("websearch", "datamining", "imc10")
DEFAULT_LOAD = 0.6


@dataclass(frozen=True)
class Scale:
    """One run-size preset."""

    name: str
    topology: TopologyConfig
    n_flows: Dict[str, int]
    truncate: Dict[str, Optional[int]]
    incast_bytes: int
    incast_requests: int
    stability_samples: int = 24

    def flows_for(self, workload: str) -> int:
        return self.n_flows.get(workload, self.n_flows["default"])

    def truncate_for(self, workload: str) -> Optional[int]:
        return self.truncate.get(workload, self.truncate.get("default"))


SCALES: Dict[str, Scale] = {
    "tiny": Scale(
        name="tiny",
        topology=TopologyConfig.small(),
        n_flows={"default": 120, "websearch": 80},
        truncate={"default": 200_000, "bimodal": None},
        incast_bytes=1_000_000,
        incast_requests=3,
        stability_samples=12,
    ),
    "bench": Scale(
        name="bench",
        topology=TopologyConfig.paper(),
        n_flows={"default": 500, "websearch": 350, "bimodal": 400},
        truncate={
            "websearch": 1_000_000,
            "datamining": 3_000_000,
            "imc10": None,
            "bimodal": None,  # the two modes *are* the workload
            "default": 3_000_000,
        },
        incast_bytes=5_000_000,
        incast_requests=4,
        stability_samples=24,
    ),
    "full": Scale(
        name="full",
        topology=TopologyConfig.paper(),
        n_flows={"default": 20_000, "websearch": 10_000},
        truncate={"default": None},
        incast_bytes=100_000_000,
        incast_requests=20,
        stability_samples=40,
    ),
}


def make_spec(
    protocol: str,
    workload: str,
    scale: str = "bench",
    **overrides,
) -> ExperimentSpec:
    """Build an :class:`ExperimentSpec` from a scale preset.

    Any spec field can be overridden by keyword (load, seed,
    traffic_matrix, buffer_bytes, ...).
    """
    try:
        preset = SCALES[scale]
    except KeyError:
        raise ValueError(f"unknown scale {scale!r}; choose from {sorted(SCALES)}") from None
    params = dict(
        protocol=protocol,
        workload=workload,
        load=DEFAULT_LOAD,
        n_flows=preset.flows_for(workload),
        max_flow_bytes=preset.truncate_for(workload),
        topology=preset.topology,
    )
    params.update(overrides)
    return ExperimentSpec(**params)
