"""Batch experiment definitions as JSON files.

A spec file is a JSON object::

    {
      "defaults": {"workload": "imc10", "load": 0.6, "scale": "tiny"},
      "experiments": [
        {"name": "phost-base", "protocol": "phost"},
        {"name": "pfabric-hot", "protocol": "pfabric", "load": 0.8}
      ]
    }

Each experiment entry inherits ``defaults``, may carry a ``name`` (for
reports) and a ``scale`` preset, and otherwise uses
:func:`repro.experiments.defaults.make_spec` field names.  Run with::

    phost-repro --batch experiments.json [--parallel N]
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Tuple, Union

from repro.experiments.defaults import make_spec
from repro.experiments.spec import ExperimentSpec

__all__ = ["load_spec_file", "SpecFileError"]


class SpecFileError(ValueError):
    """Raised when a spec file cannot be interpreted."""


def _build_one(entry: Dict[str, Any], defaults: Dict[str, Any], index: int
               ) -> Tuple[str, ExperimentSpec]:
    merged: Dict[str, Any] = dict(defaults)
    merged.update(entry)
    name = str(merged.pop("name", f"experiment-{index}"))
    scale = merged.pop("scale", "bench")
    protocol = merged.pop("protocol", None)
    workload = merged.pop("workload", None)
    if protocol is None or workload is None:
        raise SpecFileError(
            f"{name}: every experiment needs 'protocol' and 'workload' "
            "(directly or via defaults)"
        )
    try:
        spec = make_spec(protocol, workload, scale, **merged)
    except (TypeError, ValueError) as exc:
        raise SpecFileError(f"{name}: {exc}") from exc
    return name, spec


def load_spec_file(path: Union[str, Path]) -> List[Tuple[str, ExperimentSpec]]:
    """Parse a spec file into (name, spec) pairs."""
    path = Path(path)
    try:
        payload = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise SpecFileError(f"{path}: invalid JSON ({exc})") from exc
    if not isinstance(payload, dict) or "experiments" not in payload:
        raise SpecFileError(f"{path}: top level must be an object with 'experiments'")
    defaults = payload.get("defaults", {})
    if not isinstance(defaults, dict):
        raise SpecFileError(f"{path}: 'defaults' must be an object")
    entries = payload["experiments"]
    if not isinstance(entries, list) or not entries:
        raise SpecFileError(f"{path}: 'experiments' must be a non-empty list")
    out: List[Tuple[str, ExperimentSpec]] = []
    for i, entry in enumerate(entries):
        if not isinstance(entry, dict):
            raise SpecFileError(f"{path}: experiment #{i} must be an object")
        out.append(_build_one(entry, defaults, i))
    names = [n for n, _ in out]
    if len(set(names)) != len(names):
        raise SpecFileError(f"{path}: duplicate experiment names")
    return out
