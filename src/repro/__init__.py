"""pHost reproduction (CoNEXT 2015).

A packet-level datacenter network simulator with three transports —
pHost (the paper's contribution), pFabric and Fastpass — plus the
paper's workloads, metrics and a per-figure experiment harness.

Quickstart::

    from repro import ExperimentSpec, run_experiment

    spec = ExperimentSpec(protocol="phost", workload="websearch",
                          load=0.6, n_flows=500)
    result = run_experiment(spec)
    print(result.mean_slowdown())

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every figure.
"""

from repro.protocols.phost import PHostAgent, PHostConfig
from repro.experiments import (
    ExperimentResult,
    ExperimentSpec,
    IncastResult,
    run_experiment,
    run_incast,
)
from repro.experiments.defaults import make_spec
from repro.experiments.runner import run_flow_list, run_tenant_fairness
from repro.net import Fabric, FatTreeConfig, TopologyConfig
from repro.protocols import available_protocols, get_protocol
from repro.protocols.fastpass import FastpassConfig
from repro.protocols.pfabric import PFabricConfig
from repro.sim import EventLoop, SeededRng, SimContext
from repro.trace import PacketTracer, QueueMonitor
from repro.workloads.trace_io import load_flows, save_flows

__version__ = "1.0.0"

__all__ = [
    "ExperimentSpec",
    "ExperimentResult",
    "run_experiment",
    "run_flow_list",
    "run_incast",
    "run_tenant_fairness",
    "make_spec",
    "IncastResult",
    "PHostConfig",
    "PHostAgent",
    "PFabricConfig",
    "FastpassConfig",
    "TopologyConfig",
    "FatTreeConfig",
    "Fabric",
    "EventLoop",
    "SeededRng",
    "SimContext",
    "PacketTracer",
    "QueueMonitor",
    "load_flows",
    "save_flows",
    "available_protocols",
    "get_protocol",
    "__version__",
]
