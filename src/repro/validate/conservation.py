"""Packet and byte conservation auditing.

Every data packet a source injects must end up in exactly one of four
places: delivered (counted once at its destination), dropped at a named
hop, discarded as a duplicate arrival, or still in flight when the run
ends.  The :class:`ConservationAuditor` maintains per-flow send/deliver
ledgers live — so a double-counted delivery or a phantom retransmission
is flagged at the offending event — and reconciles three ledgers at
finalize: the end-to-end packet ledger, the payload-byte ledger, and a
per-port ledger built from the counters every
:class:`repro.net.port.Port` keeps (packets entering a port must equal
packets transmitted + dropped + still queued + in serialization).
"""

from __future__ import annotations

from typing import Dict, Set

from repro.net.packet import PacketType
from repro.sim.units import HEADER_BYTES
from repro.validate.base import Auditor

__all__ = ["ConservationAuditor"]


class ConservationAuditor(Auditor):
    """Per-flow and per-port conservation ledgers, reconciled live."""

    name = "conservation"

    def __init__(self) -> None:
        super().__init__()
        self._declare(
            "unique-injection",
            "each (flow, seq) is injected first_time exactly once, in range",
        )
        self._declare(
            "delivery-once",
            "each (flow, seq) is counted delivered at most once",
        )
        self._declare(
            "delivery-accounted",
            "every delivery is of a packet that was sent, with the right payload",
        )
        self._declare(
            "completion",
            "a flow completes once, only after every packet was delivered",
        )
        self._declare(
            "drop-accounted",
            "every dropped data packet was previously sent",
        )
        self._declare(
            "fault-drop-accounted",
            "every injected-dropped data packet was previously sent",
        )
        self._declare(
            "end-ledger",
            "sent == delivered + duplicates + drops + fault drops + in-flight "
            "(residual >= 0)",
        )
        self._declare(
            "port-ledger",
            "per port: packets in == transmitted + dropped + queued + in-tx",
        )
        self._declare(
            "dataplane-stage-ledger",
            "per engine port: classified == admitted + dropped-incoming, "
            "admitted == scheduled + queued + evicted, drops match the port",
        )
        self._declare(
            "dataplane-mark-ledger",
            "per engine port: marking conserves packets (marked <= classified, "
            "independent of the drop columns)",
        )
        self._flows: Dict[int, object] = {}
        self._sent: Dict[int, Set[int]] = {}
        self._delivered: Dict[int, Set[int]] = {}
        self._completed: Set[int] = set()
        self._send_events = 0
        self._deliver_events = 0
        self._dup_events = 0
        self._data_drops = 0
        self._fault_data_drops = 0
        self._payload_bytes = 0

    # ------------------------------------------------------------------
    def bind(self, ctx) -> "ConservationAuditor":
        super().bind(ctx)
        self._tap_drops()
        self._tap_fault_drops()
        return self

    # ------------------------------------------------------------------
    # Live event checks
    # ------------------------------------------------------------------
    def flow_arrived(self, flow, now: float) -> None:
        if flow.fid in self._flows and flow.fid not in self._completed:
            self._violate(
                "unique-injection",
                f"flow {flow.fid} arrived twice",
                fid=flow.fid,
            )
        self._flows[flow.fid] = flow

    def data_sent(self, pkt, first_time: bool) -> None:
        self._send_events += 1
        self._checked("unique-injection")
        fid = pkt.flow.fid
        seqs = self._sent.setdefault(fid, set())
        if not 0 <= pkt.seq < pkt.flow.n_pkts:
            self._violate(
                "unique-injection",
                f"flow {fid} sent out-of-range seq {pkt.seq}",
                fid=fid, seq=pkt.seq, n_pkts=pkt.flow.n_pkts,
            )
            return
        if first_time and pkt.seq in seqs:
            self._violate(
                "unique-injection",
                f"flow {fid} seq {pkt.seq} injected as first-time twice",
                fid=fid, seq=pkt.seq,
            )
        elif not first_time and pkt.seq not in seqs:
            self._violate(
                "unique-injection",
                f"flow {fid} seq {pkt.seq} retransmitted before any injection",
                fid=fid, seq=pkt.seq,
            )
        seqs.add(pkt.seq)

    def boundary_ingress(self, pkt) -> None:
        # Sharded runs only: this packet was injected (and audited) in
        # the sender's shard.  Register just enough sender-side state —
        # the flow object and, for data, the seq as sent — that the
        # receive-side checks (delivery-accounted, byte ledger) and the
        # end-ledger residual stay consistent in this shard.
        flow = pkt.flow
        if flow is None:
            return
        self._flows.setdefault(flow.fid, flow)
        if pkt.ptype == PacketType.DATA:
            self._send_events += 1
            self._sent.setdefault(flow.fid, set()).add(pkt.seq)

    def data_delivered(self, pkt) -> None:
        self._deliver_events += 1
        self._checked("delivery-once")
        self._checked("delivery-accounted")
        fid = pkt.flow.fid
        delivered = self._delivered.setdefault(fid, set())
        if pkt.seq in delivered:
            self._violate(
                "delivery-once",
                f"flow {fid} seq {pkt.seq} counted delivered twice",
                fid=fid, seq=pkt.seq,
            )
            return
        if pkt.seq not in self._sent.get(fid, ()):
            self._violate(
                "delivery-accounted",
                f"flow {fid} seq {pkt.seq} delivered but never sent",
                fid=fid, seq=pkt.seq,
            )
        expected = pkt.flow.payload_of(pkt.seq) if 0 <= pkt.seq < pkt.flow.n_pkts else -1
        payload = max(pkt.size - HEADER_BYTES, 0)
        if payload != expected:
            self._violate(
                "delivery-accounted",
                f"flow {fid} seq {pkt.seq} delivered {payload}B, expected {expected}B",
                fid=fid, seq=pkt.seq, payload=payload, expected=expected,
            )
        delivered.add(pkt.seq)
        self._payload_bytes += payload

    def data_duplicate(self, pkt) -> None:
        self._dup_events += 1
        self._checked("delivery-once")
        delivered = self._delivered.get(pkt.flow.fid, ())
        if pkt.seq not in delivered:
            self._violate(
                "delivery-once",
                f"flow {pkt.flow.fid} seq {pkt.seq} discarded as duplicate "
                "but was never delivered",
                fid=pkt.flow.fid, seq=pkt.seq,
            )

    def flow_completed(self, flow, now: float) -> None:
        self._checked("completion")
        if flow.fid in self._completed:
            self._violate(
                "completion",
                f"flow {flow.fid} completed twice",
                fid=flow.fid,
            )
            return
        self._completed.add(flow.fid)
        delivered = self._delivered.get(flow.fid, set())
        if len(delivered) != flow.n_pkts:
            self._violate(
                "completion",
                f"flow {flow.fid} completed with {len(delivered)}/{flow.n_pkts} "
                "packets delivered",
                fid=flow.fid, delivered=len(delivered), n_pkts=flow.n_pkts,
            )

    def on_drop(self, pkt, hop_index: int) -> None:
        if pkt.ptype != PacketType.DATA:
            return
        if pkt.seq < 0:  # pFabric probes: header-only, never ledgered as sent
            return
        self._data_drops += 1
        self._checked("drop-accounted")
        fid = pkt.flow.fid if pkt.flow is not None else None
        if fid is None or pkt.seq not in self._sent.get(fid, ()):
            self._violate(
                "drop-accounted",
                f"dropped data packet (flow {fid}, seq {pkt.seq}) was never sent",
                fid=fid, seq=pkt.seq, hop=hop_index,
            )

    def on_fault_drop(self, pkt, hop_index: int) -> None:
        """Injected (fault-layer) drop: same sent-before check, but a
        separate ledger column so fault plans do not disturb the
        congestion-drop accounting."""
        if pkt.ptype != PacketType.DATA:
            return
        if pkt.seq < 0:  # pFabric probes: header-only, never ledgered as sent
            return
        self._fault_data_drops += 1
        self._checked("fault-drop-accounted")
        fid = pkt.flow.fid if pkt.flow is not None else None
        if fid is None or pkt.seq not in self._sent.get(fid, ()):
            self._violate(
                "fault-drop-accounted",
                f"injected-dropped data packet (flow {fid}, seq {pkt.seq}) "
                "was never sent",
                fid=fid, seq=pkt.seq, hop=hop_index,
            )

    # ------------------------------------------------------------------
    # End-of-run ledger reconciliation
    # ------------------------------------------------------------------
    def finalize(self, ctx) -> None:
        self._checked("end-ledger")
        residual = (
            self._send_events - self._deliver_events - self._dup_events
            - self._data_drops - self._fault_data_drops
        )
        if residual < 0:
            self._violate(
                "end-ledger",
                f"packet ledger negative: sent={self._send_events} < delivered="
                f"{self._deliver_events} + duplicates={self._dup_events} "
                f"+ drops={self._data_drops} + fault_drops={self._fault_data_drops}",
                sent=self._send_events,
                delivered=self._deliver_events,
                duplicates=self._dup_events,
                drops=self._data_drops,
                fault_drops=self._fault_data_drops,
            )
        if self._fault_data_drops:
            self.context["fault_data_drops"] = self._fault_data_drops
            reasons = getattr(ctx.fabric, "fault_drops_by_reason", None)
            if reasons:
                self.context["fault_drops_by_reason"] = dict(sorted(reasons.items()))
        collector = ctx.collector
        expected_bytes = sum(
            self._flows[fid].size_bytes for fid in self._completed if fid in self._flows
        )
        if collector.payload_bytes_delivered != expected_bytes:
            self._violate(
                "end-ledger",
                f"byte ledger mismatch: collector says "
                f"{collector.payload_bytes_delivered}B delivered, completed flows "
                f"sum to {expected_bytes}B",
                collector_bytes=collector.payload_bytes_delivered,
                completed_bytes=expected_bytes,
            )
        for port in ctx.fabric.all_ports():
            self._checked("port-ledger")
            entered = port.pkts_enqueued + port.pkts_pulled
            exited = (
                port.pkts_sent
                + port.pkts_dropped
                + len(port.queue)
                + (1 if port.busy else 0)
            )
            if entered != exited:
                self._violate(
                    "port-ledger",
                    f"port {port.name}: {entered} packets in but {exited} accounted "
                    f"(sent={port.pkts_sent}, dropped={port.pkts_dropped}, "
                    f"queued={len(port.queue)}, in_tx={int(port.busy)})",
                    port=port.name, entered=entered, exited=exited,
                )
        self._reconcile_stage_ledgers(ctx)
        self._record_high_water(ctx)

    def _reconcile_stage_ledgers(self, ctx) -> None:
        """Audit the per-stage pipeline ledgers of generic-engine ports.

        Fused reference queues carry no ledgers (the hot path stays
        untouched), so these checks only fire for ports backed by a
        :class:`repro.dataplane.ProgramQueue` — discovered by the
        ``state`` attribute.  Marking is audited separately from the
        drop columns: a marked packet is *not* a dropped packet, and
        both ledgers must conserve on their own (fault-layer drops
        happen on the link after the port, so they never appear here).
        """
        totals: Dict[str, int] = {}
        engine_ports = 0
        for port in ctx.fabric.all_ports():
            state = getattr(port.queue, "state", None)
            if state is None:
                continue
            engine_ports += 1
            self._checked("dataplane-stage-ledger")
            self._checked("dataplane-mark-ledger")
            queued = len(port.queue)
            if state.classified != state.admitted + state.dropped_incoming:
                self._violate(
                    "dataplane-stage-ledger",
                    f"port {port.name}: classified={state.classified} != "
                    f"admitted={state.admitted} + "
                    f"dropped_incoming={state.dropped_incoming}",
                    port=port.name, **state.to_dict(),
                )
            if state.admitted != state.scheduled + queued + state.evicted:
                self._violate(
                    "dataplane-stage-ledger",
                    f"port {port.name}: admitted={state.admitted} != "
                    f"scheduled={state.scheduled} + queued={queued} + "
                    f"evicted={state.evicted}",
                    port=port.name, queued=queued, **state.to_dict(),
                )
            if state.dropped_incoming + state.evicted != port.pkts_dropped:
                self._violate(
                    "dataplane-stage-ledger",
                    f"port {port.name}: pipeline drops "
                    f"{state.dropped_incoming} + {state.evicted} != port "
                    f"pkts_dropped={port.pkts_dropped}",
                    port=port.name, pkts_dropped=port.pkts_dropped,
                    **state.to_dict(),
                )
            if state.classified != port.pkts_enqueued:
                self._violate(
                    "dataplane-stage-ledger",
                    f"port {port.name}: classified={state.classified} != port "
                    f"pkts_enqueued={port.pkts_enqueued}",
                    port=port.name, pkts_enqueued=port.pkts_enqueued,
                    **state.to_dict(),
                )
            if state.marked > state.classified:
                self._violate(
                    "dataplane-mark-ledger",
                    f"port {port.name}: marked={state.marked} > "
                    f"classified={state.classified}",
                    port=port.name, **state.to_dict(),
                )
            for key, value in state.to_dict().items():
                totals[key] = totals.get(key, 0) + value
        if engine_ports:
            self.context["dataplane_ports"] = engine_ports
            self.context["dataplane_totals"] = totals
            binding = getattr(ctx, "dataplane", None)
            if binding is not None:
                self.context["dataplane_programs"] = binding.names

    def _record_high_water(self, ctx) -> None:
        """Surface queue high-water marks through AuditReport.context.

        Not an invariant — occupancy peaks are legitimate — but the
        single most useful fact when a port ledger *does* break, and
        the paper's Fig. 9 incast analysis hinges on it.
        """
        peak_bytes_port = None
        peak_pkts_port = None
        by_hop: Dict[int, int] = {}
        for port in ctx.fabric.all_ports():
            if peak_bytes_port is None or port.max_qlen_bytes > peak_bytes_port.max_qlen_bytes:
                peak_bytes_port = port
            if peak_pkts_port is None or port.max_qlen_pkts > peak_pkts_port.max_qlen_pkts:
                peak_pkts_port = port
            hop = port.hop_index
            if port.max_qlen_bytes > by_hop.get(hop, 0):
                by_hop[hop] = port.max_qlen_bytes
        if peak_bytes_port is None:
            return
        self.context["max_qlen_bytes"] = peak_bytes_port.max_qlen_bytes
        self.context["max_qlen_bytes_port"] = peak_bytes_port.name
        self.context["max_qlen_pkts"] = peak_pkts_port.max_qlen_pkts
        self.context["max_qlen_pkts_port"] = peak_pkts_port.name
        self.context["max_qlen_bytes_by_hop"] = dict(sorted(by_hop.items()))
