"""pHost token-ledger auditing.

Tokens are pHost's currency: the destination mints them (one per data
packet, paced at one per MTU time), the wire may lose them, and the
source either spends each one on a data packet, lets it lapse, or
discards it (stale arrival for a finished flow, or unspent credit left
when the ACK lands).  The :class:`TokenLedgerAuditor` balances both
sides of that ledger:

* **mint side** — every TOKEN control packet observed on the wire is
  checked against the flow's packet range, and the wire count must
  match the destinations' ``tokens_granted`` counters;
* **spend side** — per-source, ``received == spent + expired +
  discarded + still-held``; and globally, ``minted >= received + stale
  + dropped`` (the difference being tokens still in flight when the run
  ends).  A source holding a token that was never minted — a token
  leak — makes the global ledger go negative.

The auditor is inert (all invariants vacuously pass) for non-pHost
runs.
"""

from __future__ import annotations

from repro.net.packet import PacketType
from repro.validate.base import Auditor

__all__ = ["TokenLedgerAuditor"]


class TokenLedgerAuditor(Auditor):
    """Balances pHost token mint/spend/expire/drop accounting."""

    name = "token-ledger"

    def __init__(self) -> None:
        super().__init__()
        self._declare(
            "token-range",
            "every minted token names a packet inside its flow's range",
        )
        self._declare(
            "mint-accounting",
            "tokens observed on the wire match destination grant counters",
        )
        self._declare(
            "source-balance",
            "per source: received == spent + expired + discarded + held",
        )
        self._declare(
            "global-ledger",
            "minted >= received + stale + dropped (no token appears from nowhere)",
        )
        self._active = False
        self._minted = 0
        self._ingress_tokens = 0
        self._token_drops = 0
        self._fault_token_drops = 0

    # ------------------------------------------------------------------
    def bind(self, ctx) -> "TokenLedgerAuditor":
        super().bind(ctx)
        self._tap_drops()
        self._tap_fault_drops()
        from repro.protocols.phost.agent import PHostAgent

        self._active = any(
            isinstance(host.agent, PHostAgent) for host in ctx.fabric.hosts
        )
        return self

    # ------------------------------------------------------------------
    # Live event checks
    # ------------------------------------------------------------------
    def control_sent(self, pkt) -> None:
        if not self._active or pkt.ptype != PacketType.TOKEN:
            return
        self._minted += 1
        self._checked("token-range")
        if pkt.flow is None or not 0 <= pkt.seq < pkt.flow.n_pkts:
            fid = pkt.flow.fid if pkt.flow is not None else None
            n_pkts = pkt.flow.n_pkts if pkt.flow is not None else None
            self._violate(
                "token-range",
                f"token for flow {fid} names seq {pkt.seq} outside 0..{n_pkts}",
                fid=fid, seq=pkt.seq, n_pkts=n_pkts,
            )

    def on_drop(self, pkt, hop_index: int) -> None:
        if self._active and pkt.ptype == PacketType.TOKEN:
            self._token_drops += 1

    def on_fault_drop(self, pkt, hop_index: int) -> None:
        # Injected token drops leave the global ledger exact: a token
        # lost to the fault layer was minted but never received.
        if self._active and pkt.ptype == PacketType.TOKEN:
            self._token_drops += 1
            self._fault_token_drops += 1

    def boundary_ingress(self, pkt) -> None:
        # A token minted in another shard is now headed for a local
        # source.  It is not counted in ``_minted`` (mint-accounting
        # compares against *local* destination grant counters) but must
        # enter the global ledger, or every cross-shard token would
        # look like it appeared from nowhere.
        if self._active and pkt.ptype == PacketType.TOKEN:
            self._ingress_tokens += 1

    # ------------------------------------------------------------------
    # End-of-run ledger reconciliation
    # ------------------------------------------------------------------
    def finalize(self, ctx) -> None:
        if not self._active:
            return
        from repro.protocols.phost.agent import PHostAgent

        granted = received = spent = expired = discarded = held = stale = 0
        for host in ctx.fabric.hosts:
            agent = host.agent
            if not isinstance(agent, PHostAgent):
                continue
            source, dest = agent.source, agent.destination
            granted += dest.tokens_granted
            stale += source.tokens_stale
            received += source.tokens_received_retired
            spent += source.tokens_spent_retired
            expired += source.tokens_expired_retired
            discarded += source.tokens_unspent_retired
            for state in source.flows.values():
                received += state.tokens_received
                spent += state.tokens_spent
                expired += state.tokens_expired_n
                held += len(state.tokens)

        self._checked("mint-accounting")
        if granted != self._minted:
            self._violate(
                "mint-accounting",
                f"destinations granted {granted} tokens but {self._minted} "
                "TOKEN packets were observed on the wire",
                granted=granted, observed=self._minted,
            )
        self._checked("source-balance")
        if received != spent + expired + discarded + held:
            self._violate(
                "source-balance",
                f"source token balance broken: received={received} != "
                f"spent={spent} + expired={expired} + discarded={discarded} "
                f"+ held={held}",
                received=received, spent=spent, expired=expired,
                discarded=discarded, held=held,
            )
        self._checked("global-ledger")
        observed = self._minted + self._ingress_tokens
        in_flight = observed - received - stale - self._token_drops
        if in_flight < 0:
            self._violate(
                "global-ledger",
                f"token leak: sources received {received} (+{stale} stale) tokens "
                f"but only {observed} were minted ({self._token_drops} dropped) "
                f"— {-in_flight} token(s) appeared from nowhere",
                minted=observed, received=received, stale=stale,
                dropped=self._token_drops,
            )
        if self._fault_token_drops:
            self.context["fault_token_drops"] = self._fault_token_drops
