"""Causality auditing: clock monotonicity and flow state-machine legality.

A discrete-event simulation is only trustworthy if time never runs
backwards and every event respects the lifecycle of the objects it
touches.  The :class:`CausalityAuditor` polices three things:

* **no-past-event** — via :meth:`repro.sim.engine.EventLoop.set_clock_watcher`,
  it is told whenever the loop is about to execute an event stamped
  *earlier* than the current clock.  ``schedule_at`` refuses past times,
  so this only fires if something smuggled an entry into the heap behind
  the scheduler's back;
* **monotone-clock** — the clock observed across collector events never
  decreases (a cheap end-to-end restatement of the same property at the
  metrics layer);
* **flow-lifecycle** — flows move ``arrived -> (data flows) -> completed``:
  no data is sent or delivered for a flow that has not arrived or has
  already completed, and no flow completes before it arrived.
"""

from __future__ import annotations

from typing import Set

from repro.validate.base import Auditor

__all__ = ["CausalityAuditor"]


class CausalityAuditor(Auditor):
    """Monotone clock, no past-scheduled events, legal flow lifecycles."""

    name = "causality"

    def __init__(self) -> None:
        super().__init__()
        self._declare(
            "no-past-event",
            "the event loop never executes an event stamped before the clock",
        )
        self._declare(
            "monotone-clock",
            "simulated time observed across events never decreases",
        )
        self._declare(
            "flow-lifecycle",
            "flows follow arrived -> data -> completed; no events outside that",
        )
        self._arrived: Set[int] = set()
        self._completed: Set[int] = set()
        self._last_time = float("-inf")
        self._post_completion_rtx = 0

    # ------------------------------------------------------------------
    def bind(self, ctx) -> "CausalityAuditor":
        super().bind(ctx)
        ctx.env.set_clock_watcher(self._on_clock_regression)
        return self

    def _on_clock_regression(self, now: float, when: float) -> None:
        self._violate(
            "no-past-event",
            f"event stamped t={when:.9f} executed while clock was t={now:.9f}",
            scheduled=when, clock=now,
        )

    def _observe_time(self) -> None:
        self._checked("monotone-clock")
        now = self.ctx.env.now
        if now < self._last_time:
            self._violate(
                "monotone-clock",
                f"clock went backwards: {now:.9f} after {self._last_time:.9f}",
                now=now, previous=self._last_time,
            )
        else:
            self._last_time = now

    # ------------------------------------------------------------------
    # Live event checks
    # ------------------------------------------------------------------
    def flow_arrived(self, flow, now: float) -> None:
        self._observe_time()
        self._arrived.add(flow.fid)

    def boundary_ingress(self, pkt) -> None:
        # Sharded runs only: the flow's lifecycle started in the
        # sender's shard, so mark it as arrived here before its packets
        # start flowing through the local lifecycle checks.
        if pkt.flow is not None:
            self._arrived.add(pkt.flow.fid)

    def data_sent(self, pkt, first_time: bool) -> None:
        self._observe_time()
        self._check_data_legal(pkt, "sent")

    def data_delivered(self, pkt) -> None:
        self._observe_time()
        self._check_data_legal(pkt, "delivered")

    def data_duplicate(self, pkt) -> None:
        self._observe_time()

    def control_sent(self, pkt) -> None:
        self._observe_time()

    def _check_data_legal(self, pkt, verb: str) -> None:
        self._checked("flow-lifecycle")
        fid = pkt.flow.fid
        if fid not in self._arrived:
            self._violate(
                "flow-lifecycle",
                f"data {verb} for flow {fid} before it arrived",
                fid=fid, seq=pkt.seq,
            )
        elif verb == "sent" and fid in self._completed:
            if self.ctx is not None and self.ctx.faults is not None:
                # Completion is declared at the destination.  When the
                # fault layer loses the completing ACK, the source
                # legitimately retransmits a flow the destination already
                # finished — recovery working as designed, not a
                # lifecycle break.  Tally instead of violating.
                self._post_completion_rtx += 1
            else:
                self._violate(
                    "flow-lifecycle",
                    f"data sent for flow {fid} after it completed",
                    fid=fid, seq=pkt.seq,
                )

    def flow_completed(self, flow, now: float) -> None:
        self._observe_time()
        self._checked("flow-lifecycle")
        if flow.fid not in self._arrived:
            self._violate(
                "flow-lifecycle",
                f"flow {flow.fid} completed without ever arriving",
                fid=flow.fid,
            )
        elif now < flow.arrival:
            self._violate(
                "flow-lifecycle",
                f"flow {flow.fid} completed at t={now:.9f} before its arrival "
                f"at t={flow.arrival:.9f}",
                fid=flow.fid, finish=now, arrival=flow.arrival,
            )
        self._completed.add(flow.fid)

    # ------------------------------------------------------------------
    def finalize(self, ctx) -> None:
        # Every executed event passed through the loop's regression check.
        self.checks["no-past-event"].checked = ctx.env.events_processed
        if self._post_completion_rtx:
            self.context["post_completion_retransmits"] = self._post_completion_rtx
