"""Run-time invariant auditing and golden-trace fingerprints.

Auditors attach to a run through the standard instrumentation path::

    from repro.experiments import ExperimentSpec, run_experiment
    from repro.validate import standard_auditors

    spec = ExperimentSpec(protocol="phost", instruments=standard_auditors())
    result = run_experiment(spec)
    assert result.audit.ok, result.audit.summary()

or via ``--audit`` on ``python -m repro.experiments.cli``.  See
``docs/TESTING.md`` for the invariant catalogue and the golden-digest
refresh workflow.
"""

from repro.validate.base import AuditReport, Auditor, InvariantCheck, Violation
from repro.validate.causality import CausalityAuditor
from repro.validate.conservation import ConservationAuditor
from repro.validate.digest import incast_digest, run_digest
from repro.validate.tokens import TokenLedgerAuditor

__all__ = [
    "AuditReport",
    "Auditor",
    "CausalityAuditor",
    "ConservationAuditor",
    "InvariantCheck",
    "TokenLedgerAuditor",
    "Violation",
    "incast_digest",
    "run_digest",
    "standard_auditors",
]


def standard_auditors():
    """Fresh instances of every built-in auditor (one run's worth)."""
    return (ConservationAuditor(), TokenLedgerAuditor(), CausalityAuditor())
