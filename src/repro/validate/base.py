"""Auditor base machinery: violations, per-invariant checks, reports.

An :class:`Auditor` is an instrumentation hook (it binds to a run's
:class:`~repro.sim.context.SimContext` via ``ExperimentSpec.instruments``
/ ``SimContext.add_hook``) that watches the event stream *while the
simulation runs* and records :class:`Violation`\\ s the moment an
invariant breaks — with the simulated time and event context of the
first offending event, not a post-hoc diff of summary counters.

Auditors never raise into the simulation: a broken invariant is
evidence to report, and aborting mid-run would destroy the very state
worth inspecting.  After the run, the experiment runner calls
``finalize(ctx)`` (end-of-run ledger reconciliation) and collects every
auditor's checks into one :class:`AuditReport`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

__all__ = ["Violation", "InvariantCheck", "Auditor", "AuditReport"]

#: Violations kept verbatim per invariant; later ones only bump the count.
_KEEP_VIOLATIONS = 20


@dataclass(frozen=True)
class Violation:
    """One observed invariant breach.

    ``time`` is the simulated clock at the offending event; ``context``
    carries event-specific fields (fid, seq, port name, counters...).
    """

    auditor: str
    invariant: str
    time: float
    message: str
    context: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "auditor": self.auditor,
            "invariant": self.invariant,
            "time": self.time,
            "message": self.message,
            "context": dict(self.context),
        }

    def __str__(self) -> str:
        ctx = ", ".join(f"{k}={v}" for k, v in self.context.items())
        return (
            f"[{self.auditor}/{self.invariant}] t={self.time:.9f}: "
            f"{self.message}" + (f" ({ctx})" if ctx else "")
        )


class InvariantCheck:
    """Pass/fail state of one named invariant within one auditor."""

    __slots__ = ("name", "description", "checked", "violation_count", "violations")

    def __init__(self, name: str, description: str) -> None:
        self.name = name
        self.description = description
        self.checked = 0
        self.violation_count = 0
        self.violations: List[Violation] = []

    @property
    def ok(self) -> bool:
        return self.violation_count == 0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "description": self.description,
            "ok": self.ok,
            "checked": self.checked,
            "violations": self.violation_count,
            "first_violations": [v.to_dict() for v in self.violations],
        }


class Auditor:
    """Base class for run-time invariant auditors.

    Subclasses declare ``name`` and the invariants they police (via
    :meth:`_declare`), implement whichever collector-observer callbacks
    they need, and optionally :meth:`finalize` for end-of-run ledger
    reconciliation.  The base class handles hook wiring: binding to the
    context registers the auditor as a collector observer, and
    :meth:`_tap_drops` chains it onto the fabric's drop hook.
    """

    name = "auditor"

    def __init__(self) -> None:
        self.ctx = None
        self.checks: Dict[str, InvariantCheck] = {}
        self._order: List[Violation] = []  # all violations, in event order
        self._chained_drop_hook = None
        self._chained_fault_hook = None
        #: Free-form end-of-run facts (not violations) the auditor wants
        #: to surface — e.g. queue high-water marks.  Filled by
        #: :meth:`finalize`; aggregated into ``AuditReport.context``.
        self.context: Dict[str, Any] = {}

    # ------------------------------------------------------------------
    # Hook wiring
    # ------------------------------------------------------------------
    def bind(self, ctx) -> "Auditor":
        """Attach to a run (SimContext hook protocol entry point)."""
        self.ctx = ctx
        ctx.collector.add_observer(self)
        return self

    def _tap_drops(self) -> None:
        """Chain onto the fabric drop hook (preserving any prior hook)."""
        fabric = self.ctx.fabric
        self._chained_drop_hook = fabric.drop_hook
        fabric.drop_hook = self._on_drop_hook

    def _on_drop_hook(self, pkt, hop_index: int) -> None:
        self.on_drop(pkt, hop_index)
        if self._chained_drop_hook is not None:
            self._chained_drop_hook(pkt, hop_index)

    def _tap_fault_drops(self) -> None:
        """Chain onto the fabric's injected-fault drop hook (see
        :meth:`repro.net.topology.Fabric.record_fault_drop`) so the
        auditor can ledger fault-layer drops separately from
        congestion drops."""
        fabric = self.ctx.fabric
        self._chained_fault_hook = getattr(fabric, "fault_drop_hook", None)
        fabric.fault_drop_hook = self._on_fault_drop_hook

    def _on_fault_drop_hook(self, pkt, hop_index: int) -> None:
        self.on_fault_drop(pkt, hop_index)
        if self._chained_fault_hook is not None:
            self._chained_fault_hook(pkt, hop_index)

    # ------------------------------------------------------------------
    # Invariant bookkeeping
    # ------------------------------------------------------------------
    def _declare(self, name: str, description: str) -> InvariantCheck:
        check = InvariantCheck(name, description)
        self.checks[name] = check
        return check

    def _checked(self, name: str, n: int = 1) -> None:
        self.checks[name].checked += n

    def _violate(self, name: str, message: str, **context: Any) -> Violation:
        now = self.ctx.env.now if self.ctx is not None else 0.0
        violation = Violation(self.name, name, now, message, context)
        check = self.checks[name]
        check.violation_count += 1
        if len(check.violations) < _KEEP_VIOLATIONS:
            check.violations.append(violation)
        self._order.append(violation)
        return violation

    @property
    def ok(self) -> bool:
        return all(c.ok for c in self.checks.values())

    @property
    def violations(self) -> List[Violation]:
        return list(self._order)

    # ------------------------------------------------------------------
    # Collector-observer interface (subclasses override what they need)
    # ------------------------------------------------------------------
    def flow_arrived(self, flow, now: float) -> None:
        pass

    def flow_completed(self, flow, now: float) -> None:
        pass

    def data_sent(self, pkt, first_time: bool) -> None:
        pass

    def data_delivered(self, pkt) -> None:
        pass

    def data_duplicate(self, pkt) -> None:
        pass

    def control_sent(self, pkt) -> None:
        pass

    def on_drop(self, pkt, hop_index: int) -> None:
        pass

    def on_fault_drop(self, pkt, hop_index: int) -> None:
        pass

    def boundary_ingress(self, pkt) -> None:
        """A packet entered this auditor's shard from another shard.

        Only called by the sharded executor (:mod:`repro.sim.shard`);
        serial runs never see it.  Auditors that keep sender-side state
        (minted tokens, injected seqs) override this so their ledgers
        stay consistent when the send happened in a different shard.
        """

    # ------------------------------------------------------------------
    def finalize(self, ctx) -> None:
        """End-of-run reconciliation; called once by the runner."""

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        bad = sum(c.violation_count for c in self.checks.values())
        return f"{type(self).__name__}(ok={self.ok}, violations={bad})"


class AuditReport:
    """Aggregated pass/fail verdict across a run's auditors."""

    def __init__(self, auditors: List[Auditor]) -> None:
        self.auditors = list(auditors)

    @classmethod
    def from_hooks(cls, hooks) -> Optional["AuditReport"]:
        """Build a report from a context's hook list (None if no auditors)."""
        auditors = [h for h in hooks if isinstance(h, Auditor)]
        if not auditors:
            return None
        return cls(auditors)

    # ------------------------------------------------------------------
    @property
    def ok(self) -> bool:
        return all(a.ok for a in self.auditors)

    @property
    def total_violations(self) -> int:
        return sum(c.violation_count for a in self.auditors for c in a.checks.values())

    def first_violation(self) -> Optional[Violation]:
        """The earliest-recorded violation (event order, then sim time)."""
        candidates = [a._order[0] for a in self.auditors if a._order]
        if not candidates:
            return None
        return min(candidates, key=lambda v: v.time)

    def violations(self) -> List[Violation]:
        out: List[Violation] = []
        for auditor in self.auditors:
            out.extend(auditor._order)
        out.sort(key=lambda v: v.time)
        return out

    @property
    def context(self) -> Dict[str, Dict[str, Any]]:
        """Per-auditor end-of-run facts (only auditors that set any)."""
        return {a.name: dict(a.context) for a in self.auditors if a.context}

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        first = self.first_violation()
        return {
            "ok": self.ok,
            "total_violations": self.total_violations,
            "first_violation": first.to_dict() if first is not None else None,
            "context": self.context,
            "auditors": {
                a.name: {
                    "ok": a.ok,
                    "invariants": {n: c.to_dict() for n, c in a.checks.items()},
                }
                for a in self.auditors
            },
        }

    def summary(self) -> str:
        """Human-readable per-invariant table."""
        lines = [f"audit: {'PASS' if self.ok else 'FAIL'} "
                 f"({self.total_violations} violations)"]
        for auditor in self.auditors:
            for name, check in auditor.checks.items():
                status = "ok " if check.ok else "FAIL"
                lines.append(
                    f"  [{status}] {auditor.name}/{name}: "
                    f"checked={check.checked} violations={check.violation_count}"
                )
                if check.violations:
                    lines.append(f"         first: {check.violations[0]}")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"AuditReport(ok={self.ok}, violations={self.total_violations})"
