"""Deterministic run digests for golden-trace regression testing.

A digest is an *order-independent* sha256 fingerprint of what a run
produced: the per-flow completion records, the per-hop drop ledger, and
the headline packet counters.  Two runs of the same spec on the same
code must produce the same digest; a behavioural change anywhere in the
pipeline (scheduling order, drop policy, token pacing, RNG consumption)
shows up as a digest change even when summary statistics barely move.

Floats are serialised with ``repr`` — exact shortest-round-trip decimal,
stable across CPython versions — so digests can be committed as golden
fingerprints (see ``tests/validate/golden_digests.json``).
"""

from __future__ import annotations

import hashlib
from typing import Iterable

__all__ = ["run_digest", "incast_digest"]


def _sha256_of(lines: Iterable[str]) -> str:
    h = hashlib.sha256()
    for line in lines:
        h.update(line.encode("ascii"))
        h.update(b"\n")
    return h.hexdigest()


def run_digest(result) -> str:
    """Fingerprint an :class:`~repro.experiments.spec.ExperimentResult`.

    Record lines are sorted before hashing, so the digest is independent
    of completion order bookkeeping (but not of the completion *times*
    themselves, which are part of each line).
    """
    lines = sorted(
        f"flow:{r.fid},{r.src},{r.dst},{r.size_bytes},{r.n_pkts},{r.tenant},"
        f"{r.arrival!r},{'' if r.finish is None else repr(r.finish)}"
        for r in result.records
    )
    lines.extend(
        f"drops:hop{hop}={count}" for hop, count in sorted(result.drops.by_hop.items())
    )
    lines.append(
        "counters:"
        f"injected={result.data_pkts_injected},"
        f"retx={result.data_pkts_retransmitted},"
        f"control={result.control_pkts_sent},"
        f"payload_bytes={result.payload_bytes_delivered}"
    )
    return _sha256_of(lines)


def incast_digest(result) -> str:
    """Fingerprint an :class:`~repro.experiments.runner.IncastResult`.

    FCT/RCT lists are hashed in order — the closed-loop driver's
    request sequence is part of the behaviour under test.
    """
    lines = [
        f"incast:senders={result.n_senders},bytes={result.total_bytes},"
        f"requests={result.n_requests}"
    ]
    lines.extend(f"fct:{i},{fct!r}" for i, fct in enumerate(result.fcts))
    lines.extend(f"rct:{i},{rct!r}" for i, rct in enumerate(result.rcts))
    return _sha256_of(lines)
