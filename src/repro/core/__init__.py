"""Deprecated alias package — pHost moved to :mod:`repro.protocols.phost`.

pHost now lives alongside the other transports in the protocols package
(``repro.protocols.phost``).  Importing ``repro.core`` (or any of its
old submodules: ``agent``, ``config``, ``destination``, ``policies``,
``source``, ``tokens``) keeps working, but emits a single
:class:`DeprecationWarning` and simply re-exports the relocated modules.
Update imports::

    from repro.core import PHostAgent          # deprecated
    from repro.protocols.phost import PHostAgent  # canonical

This shim will be removed in a future release.
"""

from __future__ import annotations

import sys
import warnings

warnings.warn(
    "repro.core has moved to repro.protocols.phost; the repro.core alias "
    "will be removed in a future release",
    DeprecationWarning,
    stacklevel=2,
)

from repro.protocols.phost import (  # noqa: E402
    EDFPolicy,
    FIFOPolicy,
    PHOST_SPEC,
    PHostAgent,
    PHostConfig,
    SRPTPolicy,
    TenantFairPolicy,
    make_policy,
    register_policy,
)
from repro.protocols.phost import (  # noqa: E402
    agent,
    config,
    destination,
    policies,
    source,
    tokens,
)

# Alias the old submodule names so `import repro.core.agent` and
# `from repro.core.config import PHostConfig` still resolve — to the
# *same* module objects as the canonical package (no duplicated state:
# registries like policies._POLICIES stay singletons).
for _name, _module in (
    ("agent", agent),
    ("config", config),
    ("destination", destination),
    ("policies", policies),
    ("source", source),
    ("tokens", tokens),
):
    sys.modules[__name__ + "." + _name] = _module

__all__ = [
    "PHostConfig",
    "PHostAgent",
    "PHOST_SPEC",
    "SRPTPolicy",
    "EDFPolicy",
    "FIFOPolicy",
    "TenantFairPolicy",
    "make_policy",
    "register_policy",
]
