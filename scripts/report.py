#!/usr/bin/env python
"""Render the HTML dashboard and regression diffs from a run ledger.

Everything here re-reads the content-addressed ledger written by
``phost-repro --ledger`` / ``scripts/bench.py`` — no re-simulation.

Usage::

    PYTHONPATH=src python scripts/report.py --ledger ledger \\
        --out report/dashboard.html                # build the dashboard
    PYTHONPATH=src python scripts/report.py --ledger ledger --validate
    PYTHONPATH=src python scripts/report.py --ledger ledger \\
        --diff <key-A> <key-B>                     # two entries, per-metric deltas
    PYTHONPATH=src python scripts/report.py --ledger ledger \\
        --diff-latest --strict                     # newest pair per family; exit 1
                                                   # on non-advisory regressions

Keys are ``<spec_hash>/<run_digest>`` prefixes as printed by
``--list``.  ``--diff-latest`` pairs the two most recent entries of
every spec family (same experiment, any seed) — the cross-seed
regression check the CI ``report-smoke`` job gates on.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.obs.report import diff_entries, render_dashboard, validate_dashboard  # noqa: E402
from repro.obs.store import RunLedger  # noqa: E402


def _list_entries(ledger: RunLedger) -> int:
    entries = ledger.entries()
    if not entries:
        print(f"ledger {ledger.root} is empty")
        return 0
    for e in entries:
        m = e.meta
        audit = e.audit
        audit_str = "-" if audit is None else ("pass" if audit.get("ok") else "FAIL")
        print(
            f"{e.key}  {str(m.get('protocol')):8s} {str(m.get('workload')):12s} "
            f"load={m.get('load')} seed={m.get('seed')} "
            f"events={e.metrics.get('events_processed')} audit={audit_str}"
        )
    print(f"{len(entries)} entries")
    return 0


def _diff_pair(ledger: RunLedger, key_a: str, key_b: str, strict: bool) -> int:
    diff = diff_entries(ledger.get(key_a), ledger.get(key_b))
    print(diff.summary())
    return 1 if strict and not diff.ok else 0


def _diff_latest(ledger: RunLedger, strict: bool) -> int:
    families = {
        fam: members
        for fam, members in ledger.families().items()
        if len(members) >= 2
    }
    if not families:
        print("no spec family has two or more entries; nothing to diff")
        return 0
    failed = 0
    for _, members in sorted(families.items()):
        diff = diff_entries(members[-2], members[-1])
        print(diff.summary())
        print()
        if not diff.ok:
            failed += 1
    print(f"{len(families)} families diffed, {failed} with regressions")
    return 1 if strict and failed else 0


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument(
        "--ledger",
        default=str(REPO_ROOT / "ledger"),
        metavar="DIR",
        help="run-ledger directory (default: <repo>/ledger)",
    )
    ap.add_argument(
        "--out",
        default=str(REPO_ROOT / "report" / "dashboard.html"),
        metavar="FILE.html",
        help="dashboard output path (default: <repo>/report/dashboard.html)",
    )
    ap.add_argument("--title", default="pHost repro — run ledger dashboard")
    ap.add_argument(
        "--figures-dir",
        default=None,
        metavar="DIR",
        help="also inline fig*.txt acceptance tables from this directory "
        "(e.g. benchmarks/results/smoke)",
    )
    ap.add_argument(
        "--max-heatmaps",
        type=int,
        default=4,
        help="queue-depth heatmap panels to render, newest runs first "
        "(default 4; the dashboard notes any truncation)",
    )
    mode = ap.add_mutually_exclusive_group()
    mode.add_argument("--list", action="store_true", help="list ledger entries")
    mode.add_argument(
        "--diff",
        nargs=2,
        metavar=("KEY_A", "KEY_B"),
        help="per-metric regression diff of entry B against baseline A",
    )
    mode.add_argument(
        "--diff-latest",
        action="store_true",
        help="diff the two newest entries of every spec family",
    )
    mode.add_argument(
        "--validate",
        action="store_true",
        help="validate an already-rendered dashboard at --out "
        "(artifacts exist, no empty panels) and exit non-zero on problems",
    )
    ap.add_argument(
        "--strict",
        action="store_true",
        help="with --diff/--diff-latest: exit 1 on any non-advisory regression",
    )
    args = ap.parse_args(argv)

    ledger = RunLedger(args.ledger)
    if args.list:
        return _list_entries(ledger)
    if args.diff:
        return _diff_pair(ledger, args.diff[0], args.diff[1], args.strict)
    if args.diff_latest:
        return _diff_latest(ledger, args.strict)
    if args.validate:
        problems = validate_dashboard(args.out)
        for problem in problems:
            print(f"FAIL: {problem}", file=sys.stderr)
        if not problems:
            print(f"{args.out}: dashboard is valid")
        return 1 if problems else 0

    out = render_dashboard(
        ledger,
        args.out,
        title=args.title,
        figures_dir=args.figures_dir,
        max_heatmaps=args.max_heatmaps,
    )
    n = len(ledger.entries())
    print(f"wrote {out} ({n} ledger entries)")
    problems = validate_dashboard(out)
    for problem in problems:
        print(f"WARN: {problem}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
