#!/usr/bin/env python
"""Regenerate the committed golden run digests.

Run after any *intentional* behaviour change (scheduling, drop policy,
token pacing, RNG consumption) and commit the updated JSON together
with the change::

    PYTHONPATH=src python scripts/refresh_goldens.py

The digests are defined in :mod:`tests.validate.test_golden_trace`; this
script runs the same tiny-scale scenarios, verifies they pass every
auditor, and rewrites ``tests/validate/golden_digests.json``.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))
sys.path.insert(0, str(REPO))

from tests.validate.test_golden_trace import GOLDEN_PATH, compute_goldens  # noqa: E402


def main() -> int:
    digests, reports = compute_goldens()
    for name, report in reports.items():
        if not report.ok:
            print(f"refusing to refresh: {name} fails its audit", file=sys.stderr)
            print(report.summary(), file=sys.stderr)
            return 1
    GOLDEN_PATH.write_text(json.dumps(digests, indent=2, sort_keys=True) + "\n")
    for name, digest in sorted(digests.items()):
        print(f"{name}: {digest}")
    print(f"wrote {GOLDEN_PATH}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
