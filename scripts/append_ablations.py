#!/usr/bin/env python3
"""Append the ablation tables (benchmarks/results/ablation_*.txt) to
EXPERIMENTS.md as an appendix.  Run after a bench-scale
``pytest benchmarks/ --benchmark-only`` so the archived tables are at
bench scale.  Idempotent: replaces any existing appendix.
"""

from __future__ import annotations

from pathlib import Path

ROOT = Path(__file__).parent.parent
EXPERIMENTS = ROOT / "EXPERIMENTS.md"
RESULTS = ROOT / "benchmarks" / "results"

MARKER = "\n## Appendix: ablations beyond the paper\n"

INTRO = """
These experiments are not in the paper; they probe the design choices
the paper asserts (DESIGN.md lists them).  Regenerate with
`pytest benchmarks/test_ablation_*.py --benchmark-only`.
"""

ORDER = [
    "ablation_fastpass",
    "ablation_phost_knobs",
    "ablation_oversubscription",
    "ablation_load_balancing",
    "ablation_topology",
    "ablation_token_rate",
]


def main() -> None:
    text = EXPERIMENTS.read_text()
    if MARKER in text:
        text = text.split(MARKER)[0]
    blocks = []
    for name in ORDER:
        path = RESULTS / f"{name}.txt"
        if not path.exists():
            print(f"warning: {path} missing; skipped")
            continue
        blocks.append(f"```\n{path.read_text().rstrip()}\n```\n")
    EXPERIMENTS.write_text(text.rstrip() + "\n" + MARKER + INTRO + "\n" + "\n".join(blocks))
    print(f"appended {len(blocks)} ablation tables to {EXPERIMENTS}")


if __name__ == "__main__":
    main()
