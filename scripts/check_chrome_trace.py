#!/usr/bin/env python
"""Schema-validate a Chrome trace_event file produced by --chrome-trace.

Usage::

    PYTHONPATH=src python scripts/check_chrome_trace.py out/trace.json [...]

Exit status 0 if every file is a loadable trace (valid JSON, a
``traceEvents`` array or bare-array form, and ``ph``/``ts``/``pid`` on
every event), 1 otherwise.  This is the same check CI runs on the smoke
job's artifact.
"""

from __future__ import annotations

import sys

from repro.obs import validate_chrome_trace


def main(argv) -> int:
    if not argv:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    status = 0
    for path in argv:
        try:
            events = validate_chrome_trace(path)
        except (OSError, ValueError) as exc:
            print(f"{path}: INVALID — {exc}", file=sys.stderr)
            status = 1
            continue
        kinds = {}
        for event in events:
            kinds[event["ph"]] = kinds.get(event["ph"], 0) + 1
        breakdown = ", ".join(f"{n} {ph!r}" for ph, n in sorted(kinds.items()))
        print(f"{path}: ok — {len(events)} events ({breakdown})")
    return status


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
