#!/usr/bin/env python
"""Schema-validate a Chrome trace_event file produced by --chrome-trace.

Usage::

    PYTHONPATH=src python scripts/check_chrome_trace.py out/trace.json [...]

Exit status 0 if every file is a loadable, non-trivial trace (valid
JSON, a ``traceEvents`` array or bare-array form, ``ph``/``ts``/``pid``
on every event, and at least ``--min-events`` events — an empty trace
means the sink was never wired up, so it fails by default), non-zero
otherwise.  On schema failures the first offending event is printed so
the CI log shows what broke, not just that something did.  This is the
check CI gates on for the smoke job's artifact.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.obs import validate_chrome_trace
from repro.obs.chrome import ChromeTraceError


def main(argv) -> int:
    parser = argparse.ArgumentParser(
        description="Schema-validate Chrome trace_event files."
    )
    parser.add_argument("paths", nargs="+", help="trace files to validate")
    parser.add_argument(
        "--min-events",
        type=int,
        default=1,
        metavar="N",
        help="fail traces with fewer than N events (default 1; an empty "
        "trace usually means the sink never attached)",
    )
    args = parser.parse_args(argv)
    status = 0
    for path in args.paths:
        try:
            events = validate_chrome_trace(path)
        except ChromeTraceError as exc:
            print(f"{path}: INVALID — {exc}", file=sys.stderr)
            if exc.event is not None:
                print(
                    f"{path}: first offending event "
                    f"(index {exc.index}): {json.dumps(exc.event)}",
                    file=sys.stderr,
                )
            status = 1
            continue
        except (OSError, ValueError) as exc:
            print(f"{path}: INVALID — {exc}", file=sys.stderr)
            status = 1
            continue
        if len(events) < args.min_events:
            print(
                f"{path}: INVALID — only {len(events)} events "
                f"(--min-events {args.min_events})",
                file=sys.stderr,
            )
            status = 1
            continue
        kinds = {}
        for event in events:
            kinds[event["ph"]] = kinds.get(event["ph"], 0) + 1
        breakdown = ", ".join(f"{n} {ph!r}" for ph, n in sorted(kinds.items()))
        print(f"{path}: ok — {len(events)} events ({breakdown})")
    return status


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
