#!/usr/bin/env python
"""Wall-clock benchmark harness for the simulator hot path.

Runs pinned instances of the paper's anchor scenarios (fig3 mean
slowdown, fig5 datamining, fig9c incast) per protocol, reports
events/s, packets/s, and wall-clock, and writes a ``BENCH_<date>.json``
at the repository root.  A committed baseline
(``benchmarks/results/bench_baseline.json``) makes speedups and
regressions visible across PRs.

Honest measurement notes:

* every instance's digest is computed and compared against the golden
  fingerprints where one exists — a benchmark that changed behaviour is
  reported as INVALID, not as a speedup;
* wall-clock on shared machines drifts: the committed baseline carries
  the ratio context, and ``--tuning-baseline`` measures the unoptimized
  path (``SimTuning.baseline()``: wheel, fusion, drain, and pooling all
  off) back-to-back in the same process, which is the fairest
  same-machine comparison;
* the first run of a workload pays one-time distribution setup costs;
  ``--repeats N`` (default 3) keeps the best, which is the standard
  low-noise estimator for deterministic workloads.

Usage:
    PYTHONPATH=src python scripts/bench.py                 # small tier
    PYTHONPATH=src python scripts/bench.py --scale medium  # bench scale
    PYTHONPATH=src python scripts/bench.py --profile       # + event-loop profile
    PYTHONPATH=src python scripts/bench.py --tuning-baseline
    PYTHONPATH=src python scripts/bench.py --update-baseline
    PYTHONPATH=src python scripts/bench.py --check         # CI regression gate
"""

from __future__ import annotations

import argparse
import datetime
import json
import platform
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.experiments.defaults import SCALES, make_spec  # noqa: E402
from repro.experiments.runner import run_experiment, run_incast  # noqa: E402
from repro.sim.tuning import SimTuning  # noqa: E402
from repro.validate import incast_digest, run_digest  # noqa: E402

BASELINE_PATH = REPO_ROOT / "benchmarks" / "results" / "bench_baseline.json"
GOLDEN_PATH = REPO_ROOT / "tests" / "validate" / "golden_digests.json"

#: CI gate: fail when the smoke instance is this much slower than the
#: committed baseline.
REGRESSION_FACTOR = 1.25
#: The headline instance for the regression gate.
SMOKE_INSTANCE = "fig3-phost"

PROTOCOLS = ("phost", "pfabric", "fastpass", "dctcp")
#: ``large`` is the paper-scale 144-host instance — minutes, not
#: seconds; its baseline lives under the per-scale ``"scales"`` key.
SIZE_TO_SCALE = {"small": "tiny", "medium": "bench", "large": "full"}


def _instances(size: str, backend: str = "pure"):
    """Pinned benchmark instances: name -> zero-arg runner.

    Each runner returns ``(wall_excluded_result, digest, events, pkts)``.
    ``backend`` selects the inner-loop implementation (digest-inert by
    contract; the A/B mode asserts that).
    """
    scale = SIZE_TO_SCALE[size]
    preset = SCALES[scale]
    tuning = SimTuning(backend=backend)
    out = {}
    for proto in PROTOCOLS:

        def run_fig3(proto=proto):
            res = run_experiment(
                make_spec(proto, "websearch", scale, seed=42).variant(tuning=tuning)
            )
            pkts = res.data_pkts_injected + res.control_pkts_sent
            return res, run_digest(res), res.events_processed, pkts

        def run_fig5(proto=proto):
            res = run_experiment(
                make_spec(proto, "datamining", scale, seed=42).variant(tuning=tuning)
            )
            pkts = res.data_pkts_injected + res.control_pkts_sent
            return res, run_digest(res), res.events_processed, pkts

        def run_fig9c(proto=proto):
            res = run_incast(
                proto,
                n_senders=9,
                total_bytes=preset.incast_bytes,
                n_requests=preset.incast_requests,
                topology=preset.topology,
                seed=42,
                tuning=tuning,
            )
            return res, incast_digest(res), None, None

        out[f"fig3-{proto}"] = run_fig3
        out[f"fig5-{proto}"] = run_fig5
        out[f"fig9c-{proto}"] = run_fig9c

        if size != "small":

            def run_fig3_sharded(proto=proto):
                # Stability sampling is digest-inert but unsupported
                # under sharding; zeroed so the digest stays comparable
                # with the serial fig3 row.
                res = run_experiment(
                    make_spec(proto, "websearch", scale, seed=42).variant(
                        stability_samples=0,
                        tuning=SimTuning(
                            backend=backend,
                            shards=4,
                            shard_transport="processes",
                        ),
                    )
                )
                pkts = res.data_pkts_injected + res.control_pkts_sent
                return res, run_digest(res), res.events_processed, pkts

            out[f"fig3-{proto}-shards4"] = run_fig3_sharded
    return out


def _time_runner(runner, repeats: int):
    """Best-of-N wall clock; digests must agree across repeats.

    Also returns the last run's result object so it can be persisted
    into the run ledger (identical across repeats by determinism).
    """
    best = None
    result = digest = events = pkts = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        res, d, ev, pk = runner()
        wall = time.perf_counter() - t0
        if digest is not None and d != digest:
            raise RuntimeError("nondeterministic benchmark run (digest drift)")
        result, digest, events, pkts = res, d, ev, pk
        if best is None or wall < best:
            best = wall
    return best, result, digest, events, pkts


def _tuning_baseline_wall(name: str, size: str, repeats: int):
    """Same instance with every hot-path optimization disabled."""
    scale = SIZE_TO_SCALE[size]
    preset = SCALES[scale]
    fig, proto = name.split("-", 1)
    workload = {"fig3": "websearch", "fig5": "datamining"}.get(fig)
    best = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        if fig == "fig9c":
            run_incast(
                proto,
                n_senders=9,
                total_bytes=preset.incast_bytes,
                n_requests=preset.incast_requests,
                topology=preset.topology,
                seed=42,
                tuning=SimTuning.baseline(),
            )
        else:
            run_experiment(
                make_spec(proto, workload, scale, seed=42).variant(
                    tuning=SimTuning.baseline()
                )
            )
        wall = time.perf_counter() - t0
        if best is None or wall < best:
            best = wall
    return best


def _golden_digests():
    if not GOLDEN_PATH.exists():
        return {}
    data = json.loads(GOLDEN_PATH.read_text())
    return data if isinstance(data, dict) else {}


def _profile_instance(name: str, size: str) -> str:
    """One profiled run of an instance; returns the profiler report."""
    from repro.obs import EventLoopProfiler

    scale = SIZE_TO_SCALE[size]
    preset = SCALES[scale]
    fig, proto = name.split("-", 1)
    profiler = EventLoopProfiler()
    if fig == "fig9c":
        run_incast(
            proto,
            n_senders=9,
            total_bytes=preset.incast_bytes,
            n_requests=preset.incast_requests,
            topology=preset.topology,
            seed=42,
            instruments=(profiler,),
        )
    else:
        workload = {"fig3": "websearch", "fig5": "datamining"}[fig]
        spec = make_spec(proto, workload, scale, seed=42).variant(
            instruments=(profiler,)
        )
        run_experiment(spec)
    return profiler.report()


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--scale", choices=("small", "medium", "large"), default="small")
    ap.add_argument("--repeats", type=int, default=3)
    ap.add_argument(
        "--backend",
        choices=("pure", "compiled", "both"),
        default="pure",
        help="inner-loop backend to time; 'both' times pure and compiled "
        "back-to-back and fails if their digests differ (falls back to "
        "pure-only with a warning when no compiled extension imports)",
    )
    ap.add_argument(
        "--instances",
        default=None,
        help="comma-separated subset (e.g. fig3-phost,fig9c-pfabric)",
    )
    ap.add_argument(
        "--profile",
        action="store_true",
        help="also print the event-loop profiler report (with the "
        "timer-wheel breakdown) for each timed instance",
    )
    ap.add_argument(
        "--tuning-baseline",
        action="store_true",
        help="also time each instance with SimTuning.baseline() "
        "(all hot-path optimizations off) for a same-machine speedup ratio",
    )
    ap.add_argument(
        "--update-baseline",
        action="store_true",
        help=f"rewrite {BASELINE_PATH.relative_to(REPO_ROOT)}",
    )
    ap.add_argument(
        "--check",
        action="store_true",
        help=f"exit 1 if {SMOKE_INSTANCE} regressed more than "
        f"{REGRESSION_FACTOR:.0%} vs the committed baseline",
    )
    ap.add_argument("--out", default=None, help="output JSON path")
    ap.add_argument(
        "--ledger",
        default=str(REPO_ROOT / "ledger"),
        metavar="DIR",
        help="run-ledger directory (repro.obs.store); every report is "
        "appended there and each fig3/fig5 run is stored content-"
        "addressed (default: <repo>/ledger)",
    )
    ap.add_argument(
        "--no-ledger",
        action="store_true",
        help="skip the run ledger entirely",
    )
    args = ap.parse_args(argv)

    backend = args.backend
    if backend in ("compiled", "both"):
        from repro.sim.backend import backend_info

        info = backend_info()
        if not info["compiled_available"]:
            print(
                "WARNING: --backend "
                f"{backend} requested but no compiled extension imports; "
                "running pure only. Build one with: "
                "python scripts/build_backend.py",
                file=sys.stderr,
            )
            backend = "pure"
        else:
            print(f"compiled backend: {info['source']}")

    primary = "compiled" if backend == "compiled" else "pure"
    runners = _instances(args.scale, primary)
    ab_runners = _instances(args.scale, "compiled") if backend == "both" else {}
    if args.instances:
        wanted = args.instances.split(",")
        unknown = [w for w in wanted if w not in runners]
        if unknown:
            ap.error(f"unknown instances {unknown}; known: {sorted(runners)}")
        runners = {k: runners[k] for k in wanted}

    ledger = None
    ledger_baseline = None
    if not args.no_ledger:
        from repro.obs.store import RunLedger

        ledger = RunLedger(args.ledger)
        # Captured before this run is appended, so --check compares
        # against the *previous* stored report.
        ledger_baseline = ledger.latest_bench(args.scale)
        # Wall clocks only compare within one backend: a compiled run
        # in the ledger must not make a pure run look like a regression.
        if (
            ledger_baseline is not None
            and ledger_baseline.get("backend", "pure") != primary
        ):
            ledger_baseline = None

    baseline = (
        json.loads(BASELINE_PATH.read_text()) if BASELINE_PATH.exists() else {}
    )
    # Wall-clock only compares within a scale; a small-tier baseline says
    # nothing about medium-tier runs.  Non-default scales live under the
    # per-scale "scales" key (the top level stays the small tier, which
    # older tooling reads directly).
    base_instances = (
        baseline.get("instances", {})
        if baseline.get("scale") == args.scale
        else baseline.get("scales", {}).get(args.scale, {}).get("instances", {})
    )
    # The ledger's most recent same-scale report (this machine's own
    # history) beats the committed baseline when present.
    check_instances = base_instances
    check_source = str(BASELINE_PATH.relative_to(REPO_ROOT))
    if ledger_baseline is not None:
        check_instances = ledger_baseline.get("instances", {})
        check_source = f"ledger {args.ledger} ({ledger_baseline.get('date')})"
    goldens = _golden_digests()

    report = {
        "date": datetime.date.today().isoformat(),
        "scale": args.scale,
        "repeats": args.repeats,
        "backend": backend,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "instances": {},
    }
    failures = []

    for name, runner in runners.items():
        wall, result, digest, events, pkts = _time_runner(runner, args.repeats)
        row = {"wall_seconds": round(wall, 4), "digest": digest}
        if name in ab_runners:
            c_wall, _, c_digest, _, _ = _time_runner(
                ab_runners[name], args.repeats
            )
            row["compiled_wall_seconds"] = round(c_wall, 4)
            row["compiled_speedup"] = round(wall / c_wall, 3)
            if c_digest != digest:
                row["compiled_digest"] = c_digest
                failures.append(
                    f"{name}: compiled backend digest differs from pure "
                    "(behaviour drift — the compiled core is broken)"
                )
        if ledger is not None and hasattr(result, "spec"):
            # fig3/fig5 rows are ExperimentResults; store them content-
            # addressed so dashboards/diffs can consume bench runs too.
            row["ledger_key"] = ledger.put(result, digest=digest).key
        if events is not None:
            row["events"] = events
            row["events_per_sec"] = round(events / wall)
        if pkts is not None:
            row["packets"] = pkts
            row["packets_per_sec"] = round(pkts / wall)
        golden_key = None
        if args.scale == "small":
            golden_key = {
                "fig3-phost": "fig3-tiny-phost-websearch-seed42",
                "fig9c-phost": "fig9c-tiny-phost-incast9-seed42",
                "fig3-dctcp": "fig3-tiny-dctcp-websearch-seed42",
                "fig9c-dctcp": "fig9c-tiny-dctcp-incast9-seed42",
            }.get(name)
        if golden_key and golden_key in goldens:
            ok = goldens[golden_key] == digest
            row["golden"] = "ok" if ok else "MISMATCH"
            if not ok:
                failures.append(f"{name}: digest does not match golden")
        prev = base_instances.get(name)
        if prev:
            row["baseline_wall_seconds"] = prev["wall_seconds"]
            row["vs_baseline"] = round(prev["wall_seconds"] / wall, 3)
        if args.tuning_baseline:
            off = _tuning_baseline_wall(name, args.scale, args.repeats)
            row["tuning_baseline_wall_seconds"] = round(off, 4)
            row["speedup_vs_tuning_baseline"] = round(off / wall, 3)
        report["instances"][name] = row
        extra = ""
        if "compiled_speedup" in row:
            extra += f"  {row['compiled_speedup']:.2f}x compiled"
        if "vs_baseline" in row:
            extra += f"  {row['vs_baseline']:.2f}x vs committed baseline"
        if "speedup_vs_tuning_baseline" in row:
            extra += (
                f"  {row['speedup_vs_tuning_baseline']:.2f}x vs tuning-off"
            )
        rate = f"{row.get('events_per_sec', 0):,} ev/s" if events else ""
        print(f"{name:18s} {wall * 1e3:9.1f} ms  {rate:>14s}{extra}")
        if args.profile:
            print(_profile_instance(name, args.scale))
            print()

    out_path = Path(args.out) if args.out else REPO_ROOT / (
        f"BENCH_{report['date']}.json"
    )
    out_path.parent.mkdir(parents=True, exist_ok=True)
    # BENCH_<date>.json is a cumulative trajectory: same-day reports
    # append rather than overwrite, so a day's runs stay comparable.
    # Legacy single-report files are converted in place.
    trajectory = {"schema": "bench-trajectory/v1", "runs": []}
    if out_path.exists():
        try:
            existing = json.loads(out_path.read_text())
        except json.JSONDecodeError:
            existing = None
        if isinstance(existing, dict):
            if existing.get("schema") == "bench-trajectory/v1":
                trajectory["runs"] = list(existing.get("runs", []))
            elif "instances" in existing:
                trajectory["runs"] = [existing]
    trajectory["runs"].append(report)
    out_path.write_text(json.dumps(trajectory, indent=2, sort_keys=True) + "\n")
    print(f"\nwrote {out_path} ({len(trajectory['runs'])} runs)")

    if ledger is not None:
        bench_path = ledger.put_bench(report)
        print(f"ledger: appended bench report {bench_path}")

    if args.update_baseline:
        BASELINE_PATH.parent.mkdir(parents=True, exist_ok=True)
        slim_instances = {
            k: (
                {"wall_seconds": v["wall_seconds"], "events": v["events"]}
                if "events" in v
                else {"wall_seconds": v["wall_seconds"]}
            )
            for k, v in report["instances"].items()
        }
        updated = baseline if isinstance(baseline, dict) else {}
        if updated.get("scale") in (None, args.scale):
            # Default (small) tier: top-level entry, as older tooling
            # and tests/perf/test_bench_smoke.py expect.
            updated.update(
                {
                    "note": (
                        "Committed wall-clock baseline for scripts/bench.py. "
                        "Refresh with --update-baseline on a quiet machine."
                    ),
                    "date": report["date"],
                    "scale": args.scale,
                    "python": report["python"],
                    "instances": slim_instances,
                }
            )
        else:
            # Other tiers nest under "scales" so one file carries every
            # scale without clobbering the default entry.
            updated.setdefault("scales", {})[args.scale] = {
                "date": report["date"],
                "python": report["python"],
                "instances": slim_instances,
            }
        BASELINE_PATH.write_text(
            json.dumps(updated, indent=2, sort_keys=True) + "\n"
        )
        print(f"updated {BASELINE_PATH}")

    if args.check:
        row = report["instances"].get(SMOKE_INSTANCE)
        prev = check_instances.get(SMOKE_INSTANCE)
        if prev is None:
            # A ledger whose last report lacks the smoke instance (e.g. a
            # filtered --instances run) falls back to the committed file.
            prev = base_instances.get(SMOKE_INSTANCE)
            check_source = str(BASELINE_PATH.relative_to(REPO_ROOT))
        if row is None or prev is None:
            failures.append(
                f"--check needs {SMOKE_INSTANCE} in both the run and the baseline"
            )
        else:
            print(f"--check baseline: {check_source}")
            if row["wall_seconds"] > prev["wall_seconds"] * REGRESSION_FACTOR:
                failures.append(
                    f"{SMOKE_INSTANCE} regressed: {row['wall_seconds']:.3f}s vs "
                    f"baseline {prev['wall_seconds']:.3f}s "
                    f"(> {REGRESSION_FACTOR:.0%})"
                )
            # The event-count pin: wall clock is machine-dependent but
            # the number of simulator events is not.  Any drift means the
            # behaviour changed, which a perf PR must never do silently.
            if "events" in prev and row.get("events") != prev["events"]:
                failures.append(
                    f"{SMOKE_INSTANCE} event count drifted: "
                    f"{row.get('events')} vs pinned {prev['events']}"
                )

    for f in failures:
        print(f"FAIL: {f}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
