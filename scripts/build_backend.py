#!/usr/bin/env python
"""Build the optional compiled inner-loop backend.

Tries, in order, stopping at the first success:

1. **mypyc** on ``src/repro/sim/hotpath.py`` -> ``repro.sim._hotpath_compiled``
2. **Cython** (pure-Python mode) on the same file -> same module name
3. the hand-written **C core** ``src/repro/sim/_hotcore.c``
   -> ``repro.sim._hotcore``

All three land the built shared object next to the sources under
``src/repro/sim/`` so a plain ``PYTHONPATH=src`` run picks it up; the
selector (:mod:`repro.sim.backend`) prefers ``_hotcore`` when both
exist.  Nothing is installed into site-packages and no package is
downloaded — only the local toolchain (gcc + Python headers) is used.

When no toolchain variant works the script exits 0 with a visible
warning: the compiled backend is *optional* by design and every caller
(bench, CI, SimTuning) degrades to the pure loop.

Usage::

    python scripts/build_backend.py            # build (or rebuild)
    python scripts/build_backend.py --check    # report what would import
    python scripts/build_backend.py --clean    # remove built artifacts
"""

from __future__ import annotations

import argparse
import shutil
import subprocess
import sys
import sysconfig
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
SIM_DIR = ROOT / "src" / "repro" / "sim"
HOTPATH = SIM_DIR / "hotpath.py"
HOTCORE_C = SIM_DIR / "_hotcore.c"

EXT_SUFFIXES = (".so", ".pyd", ".dylib")


def _built_artifacts() -> list:
    out = []
    for stem in ("_hotcore", "_hotpath_compiled"):
        for p in SIM_DIR.glob(f"{stem}*"):
            if p.suffix in EXT_SUFFIXES or p.name.endswith(
                tuple(s + ".py" for s in ())
            ):
                out.append(p)
        # mypyc also emits a <stem>__mypyc shim and build dirs
        for p in SIM_DIR.glob(f"{stem}__mypyc*"):
            out.append(p)
    return sorted(set(out))


def clean() -> None:
    for p in _built_artifacts():
        print(f"removing {p.relative_to(ROOT)}")
        p.unlink()
    for d in (ROOT / "build",):
        if d.is_dir():
            shutil.rmtree(d)


def _verify(module: str) -> bool:
    """Import the freshly built module in a clean subprocess."""
    code = (
        f"import {module} as m; "
        "assert hasattr(m, 'drive'), 'drive missing'; "
        f"print('{module}: OK,', [n for n in dir(m) if not n.startswith('_')])"
    )
    proc = subprocess.run(
        [sys.executable, "-c", code],
        env={"PYTHONPATH": str(ROOT / "src")},
        capture_output=True,
        text=True,
    )
    sys.stdout.write(proc.stdout)
    if proc.returncode != 0:
        sys.stderr.write(proc.stderr)
    return proc.returncode == 0


def try_mypyc() -> bool:
    try:
        import mypyc  # noqa: F401
    except ImportError:
        print("mypyc: not installed, skipping")
        return False
    # mypyc compiles <name>.py into <name>.<abi>.so; compile a copy so
    # the extension shadows nothing and gets the right module name.
    target = SIM_DIR / "_hotpath_compiled.py"
    target.write_text(HOTPATH.read_text())
    try:
        proc = subprocess.run(
            [sys.executable, "-m", "mypyc", str(target)],
            cwd=SIM_DIR,
            capture_output=True,
            text=True,
        )
        if proc.returncode != 0:
            sys.stderr.write(proc.stdout + proc.stderr)
            print("mypyc: build failed, falling through")
            return False
    finally:
        target.unlink(missing_ok=True)
    return _verify("repro.sim._hotpath_compiled")


def try_cython() -> bool:
    try:
        import Cython  # noqa: F401
    except ImportError:
        print("Cython: not installed, skipping")
        return False
    from setuptools import Extension
    from Cython.Build import cythonize  # type: ignore

    target = SIM_DIR / "_hotpath_compiled.py"
    target.write_text(HOTPATH.read_text())
    try:
        ext = Extension(
            "repro.sim._hotpath_compiled", [str(target.relative_to(ROOT))]
        )
        ok = _build_ext(cythonize(ext, language_level=3))
    finally:
        target.unlink(missing_ok=True)
        (SIM_DIR / "_hotpath_compiled.c").unlink(missing_ok=True)
    return ok and _verify("repro.sim._hotpath_compiled")


def try_c_core() -> bool:
    if not HOTCORE_C.is_file():
        print("_hotcore.c: source missing, skipping")
        return False
    if not (Path(sysconfig.get_path("include")) / "Python.h").is_file():
        print("C core: Python.h not found, skipping")
        return False
    from setuptools import Extension

    ext = Extension(
        "repro.sim._hotcore", [str(HOTCORE_C.relative_to(ROOT))]
    )
    return _build_ext([ext]) and _verify("repro.sim._hotcore")


def _build_ext(extensions) -> bool:
    """Run setuptools build_ext --inplace for the given extensions."""
    from setuptools import Distribution

    dist = Distribution(
        {
            "name": "repro-hotcore-build",
            "ext_modules": extensions,
            "package_dir": {"": "src"},
        }
    )
    import os

    old_cwd = os.getcwd()
    os.chdir(ROOT)  # relative source paths + inplace output under src/
    try:
        cmd = dist.get_command_obj("build_ext")
        cmd.inplace = True
        dist.run_command("build_ext")
    except Exception as exc:  # compiler errors surface here
        print(f"build_ext failed: {exc}", file=sys.stderr)
        return False
    finally:
        os.chdir(old_cwd)
    return True


def check() -> int:
    sys.path.insert(0, str(ROOT / "src"))
    from repro.sim.backend import backend_info

    info = backend_info()
    for key, val in sorted(info.items()):
        print(f"{key}: {val}")
    return 0 if info["compiled_available"] else 1


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--check",
        action="store_true",
        help="report whether a compiled backend imports (exit 1 if not)",
    )
    parser.add_argument(
        "--clean", action="store_true", help="remove built artifacts"
    )
    args = parser.parse_args()
    if args.clean:
        clean()
        return 0
    if args.check:
        return check()

    for name, builder in (
        ("mypyc", try_mypyc),
        ("Cython", try_cython),
        ("C core", try_c_core),
    ):
        print(f"--- trying {name} ---")
        if builder():
            print(f"compiled backend built via {name}")
            return 0
    print(
        "WARNING: no compiler toolchain produced a backend "
        "(tried mypyc, Cython, C core); the simulator will run the "
        "pure-Python loop. This affects speed only — results are "
        "digest-identical by contract.",
        file=sys.stderr,
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
