"""Shim for legacy editable installs (this environment lacks the
``wheel`` package, so PEP-660 editable builds are unavailable).
All real metadata lives in pyproject.toml."""

from setuptools import setup

setup()
