"""Figure 3 — mean slowdown of pHost, pFabric and Fastpass across the
three workloads (load 0.6, 36 kB buffers, all-to-all).

The paper's headline: pHost performs comparable to pFabric and 1.3-4x
better than Fastpass.  The assertions check the *shape* (ordering and
rough factors), not absolute values — our substrate is a scaled-down
simulator (see DESIGN.md §2).
"""

import pytest


def test_fig3(regen):
    result = regen("fig3")
    for row in result.rows:
        assert row["phost"] >= 1.0 and row["pfabric"] >= 1.0
        # pHost in pFabric's ballpark, never in Fastpass's regime
        assert row["phost"] <= 1.6 * row["pfabric"]
    # short-flow-heavy workloads expose Fastpass's epoch+RTT penalty
    for workload in ("datamining", "imc10"):
        row = result.row_where(workload=workload)
        assert row["fastpass"] > 2.0 * row["phost"]
@pytest.mark.smoke
def test_fig3_smoke(smoke_regen, audit_artifact):
    """Tiny-scale sanity pass for the CI smoke tier; also archives the
    invariant-audit report as a CI artifact and fails on violations."""
    smoke_regen("fig3")
    audit_artifact("fig3")
