"""Figure 4 — mean slowdown split into short and long flows.

Paper: all three protocols are comparable on long flows; on short flows
pHost matches pFabric while Fastpass is 1.3-4x worse.  (Long flows are
>10 MB for Web Search/Data Mining and >100 kB for IMC10.)
"""

import pytest

import math


def test_fig4(regen):
    result = regen("fig4")
    for workload in ("datamining", "imc10"):
        short = result.row_where(workload=workload, **{"class": "short"})
        assert short["fastpass"] > 1.5 * short["phost"]
        long_ = result.row_where(workload=workload, **{"class": "long"})
        vals = [long_[p] for p in ("phost", "pfabric", "fastpass")
                if long_[p] == long_[p]]  # drop NaN (no long flows sampled)
        if len(vals) >= 2:
            assert max(vals) <= 3.0 * min(vals)  # "similar performance"
@pytest.mark.smoke
def test_fig4_smoke(smoke_regen):
    """Tiny-scale sanity pass for the CI smoke tier."""
    smoke_regen("fig4")
