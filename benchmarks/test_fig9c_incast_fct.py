"""Figure 9(c) — incast: average FCT vs number of senders.

Each request splits a fixed payload over N senders into one receiver.
Paper: the three protocols land within ~7% of each other; we assert
they form one cluster at every N.
"""

import pytest


def test_fig9c(regen):
    result = regen("fig9c")
    for row in result.rows:
        vals = [row[p] for p in ("phost", "pfabric", "fastpass")]
        assert all(v > 0 for v in vals)
        assert max(vals) <= 1.6 * min(vals)
@pytest.mark.smoke
def test_fig9c_smoke(smoke_regen, audit_artifact):
    """Tiny-scale sanity pass for the CI smoke tier; also archives the
    invariant-audit report as a CI artifact and fails on violations."""
    smoke_regen("fig9c")
    audit_artifact("fig9c")
