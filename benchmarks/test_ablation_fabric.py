"""Ablation — the fabric assumptions behind "why pHost works" (§2.3).

The paper's argument rests on two fabric properties: *full bisection
bandwidth* and *per-packet spraying*.  This bench removes each:

* oversubscribing the core (2:1, 4:1) re-creates core congestion that
  no end-host scheduler can see;
* replacing spraying with per-flow ECMP lets elephant collisions build
  core hotspots.

Expected: slowdown grows with oversubscription for every protocol, and
spraying beats ECMP on the long-flow-heavy mix.
"""

from dataclasses import replace

from repro.experiments.defaults import SCALES, make_spec
from repro.experiments.report import FigureResult
from repro.experiments.runner import run_experiment
from repro.net.routing import ECMP, SPRAY


def _build_oversub(scale: str, seed: int = 42) -> FigureResult:
    preset = SCALES[scale]
    result = FigureResult(
        figure="ablation_oversubscription",
        title="Core oversubscription vs slowdown (IMC10, 0.6 load)",
        columns=["oversubscription", "phost", "pfabric"],
    )
    for factor in (1.0, 2.0, 4.0):
        topo = replace(preset.topology, oversubscription=factor)
        row = {"oversubscription": factor}
        for protocol in ("phost", "pfabric"):
            spec = make_spec(protocol, "imc10", scale, seed=seed, topology=topo)
            row[protocol] = run_experiment(spec).mean_slowdown()
        result.add_row(**row)
    result.notes.append(
        "the paper assumes full bisection (factor 1); end-host scheduling "
        "cannot compensate for a congested core"
    )
    return result


def _build_lb(scale: str, seed: int = 42) -> FigureResult:
    preset = SCALES[scale]
    result = FigureResult(
        figure="ablation_load_balancing",
        title="Packet spraying vs per-flow ECMP (bimodal 50% short, 0.6 load)",
        columns=["mode", "phost", "pfabric"],
    )
    for mode in (SPRAY, ECMP):
        topo = replace(preset.topology, load_balancing=mode)
        row = {"mode": mode}
        for protocol in ("phost", "pfabric"):
            spec = make_spec(
                protocol, "bimodal", scale, seed=seed, topology=topo,
                bimodal_fraction_short=0.5,
            )
            row[protocol] = run_experiment(spec).mean_slowdown()
        result.add_row(**row)
    result.notes.append("per-packet spraying is what keeps the core empty (§2.3)")
    return result


def test_ablation_oversubscription(record_table, figure_scale):
    result = record_table(
        lambda: _build_oversub(figure_scale), "ablation_oversubscription"
    )
    for protocol in ("phost", "pfabric"):
        series = [row[protocol] for row in result.rows]
        assert series[-1] > series[0]  # 4:1 oversubscription hurts


def test_ablation_load_balancing(record_table, figure_scale):
    result = record_table(lambda: _build_lb(figure_scale), "ablation_load_balancing")
    spray = result.row_where(mode=SPRAY)
    ecmp = result.row_where(mode=ECMP)
    for protocol in ("phost", "pfabric"):
        # ECMP is never better than spraying here (collisions), and the
        # fabric stays functional under both
        assert ecmp[protocol] >= 0.95 * spray[protocol]
        assert spray[protocol] >= 1.0
