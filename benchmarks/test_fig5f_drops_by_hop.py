"""Figure 5(f) — where packets are dropped (Web Search, load 0.6).

Paper: pFabric concentrates drops at the first (NIC) and last (ToR
down) hops; pHost and Fastpass eliminate first-hop drops entirely, and
drops *inside* the fabric are negligible for everyone — packet spraying
plus full bisection bandwidth keeps the core clean.
"""

import pytest


def test_fig5f(regen):
    result = regen("fig5f")
    pfabric = result.row_where(protocol="pfabric")
    assert pfabric["hop1"] + pfabric["hop4"] > 10 * (pfabric["hop2"] + pfabric["hop3"])
    phost = result.row_where(protocol="phost")
    fastpass = result.row_where(protocol="fastpass")
    assert phost["hop1"] == 0          # receiver-driven: no NIC overflow
    assert fastpass["hop1"] == 0       # arbiter-scheduled: no NIC overflow
    for row in result.rows:
        fabric_drops = row["hop2"] + row["hop3"]
        assert fabric_drops <= max(5, row["injected"] // 10_000)
@pytest.mark.smoke
def test_fig5f_smoke(smoke_regen):
    """Tiny-scale sanity pass for the CI smoke tier."""
    smoke_regen("fig5f")
