"""Figure 7 — stability analysis (pFabric, Web Search).

x = fraction of packets arrived at sources, y = fraction arrived but
not yet injected.  Paper: flat at 0.6 load, rising beyond 0.7.  At
reproduction scale the onset shifts upward, so the driver adds a
clearly-overloaded point; we assert the flat-vs-rising contrast.
"""

import pytest

from repro.metrics.stability import StabilitySample, samples_stable


def _series(result, load):
    return [
        StabilitySample(time=0.0, frac_arrived=row["frac_arrived"],
                        frac_pending=row["frac_pending"])
        for row in result.rows
        if row["load"] == load
    ]


def test_fig7(regen):
    result = regen("fig7")
    assert samples_stable(_series(result, 0.6))
    assert not samples_stable(_series(result, 1.1))
    # pending backlog at the end of arrivals is far larger when unstable
    def final_pending(load):
        phase = [r for r in result.rows if r["load"] == load and r["frac_arrived"] < 1]
        return phase[-1]["frac_pending"] if phase else 0.0

    assert final_pending(1.1) > 3 * max(final_pending(0.6), 0.01)
@pytest.mark.smoke
def test_fig7_smoke(smoke_regen):
    """Tiny-scale sanity pass for the CI smoke tier."""
    smoke_regen("fig7")
