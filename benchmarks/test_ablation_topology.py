"""Ablation — topology robustness (§2.1's full-bisection grounding).

The paper evaluates on a two-tier multi-rooted tree but grounds its
assumptions in "topologies such as Fat-Tree [3] or VL2 [11]".  This
bench repeats the headline comparison on a three-tier k-ary fat-tree
(two levels of packet spraying, six-hop cross-pod paths) and asserts
the conclusions transfer: pHost stays in pFabric's regime and Fastpass
keeps its short-flow penalty.
"""

from repro.experiments.report import FigureResult
from repro.experiments.runner import run_experiment
from repro.experiments.spec import ExperimentSpec
from repro.net.fattree import FatTreeConfig
from repro.net.topology import TopologyConfig


def _build(scale: str, seed: int = 42) -> FigureResult:
    if scale == "tiny":
        two_tier = TopologyConfig.small()
        fat_tree = FatTreeConfig(k=4)        # 16 hosts
        n_flows, trunc = 150, 150_000
    else:
        two_tier = TopologyConfig.paper()
        fat_tree = FatTreeConfig(k=8)        # 128 hosts, 16 cores
        n_flows, trunc = 400, 500_000
    result = FigureResult(
        figure="ablation_topology",
        title="Two-tier tree vs three-tier fat-tree (IMC10, 0.6 load)",
        columns=["topology", "phost", "pfabric", "fastpass"],
    )
    for label, topo in (("two-tier (paper)", two_tier), ("fat-tree k-ary", fat_tree)):
        row = {"topology": label}
        for protocol in ("phost", "pfabric", "fastpass"):
            spec = ExperimentSpec(
                protocol=protocol, workload="imc10", load=0.6,
                n_flows=n_flows, topology=topo, max_flow_bytes=trunc, seed=seed,
            )
            row[protocol] = run_experiment(spec).mean_slowdown()
        result.add_row(**row)
    result.notes.append(
        "conclusions must transfer to any full-bisection fabric with "
        "per-packet load balancing (paper §2.1/§2.3)"
    )
    return result


def test_ablation_topology(record_table, figure_scale):
    result = record_table(lambda: _build(figure_scale), "ablation_topology")
    for row in result.rows:
        assert row["phost"] <= 1.6 * row["pfabric"]
        assert row["fastpass"] > 1.5 * row["phost"]
