"""Ablation — the paper's open question (§4.3, Figure 8 discussion).

"the absolute value of slowdown (for all protocols) varies significantly
as the distribution of short vs. long flows changes ... Whether and how
one might achieve better performance for such workloads remains an open
question for future work."

This bench probes the knob pHost exposes for exactly that regime:
``token_rate_factor`` lets destinations over-commit tokens (grant
faster than one per MTU-time) to compensate for token waste when many
sources juggle competing grants.  The point of the table is the shape:
whether over-committing helps, hurts, or washes out on the bimodal
worst case (50% short flows) — an experiment the paper left open.
"""

from repro.protocols.phost.config import PHostConfig
from repro.experiments.defaults import make_spec
from repro.experiments.report import FigureResult
from repro.experiments.runner import run_experiment


def _build(scale: str, seed: int = 42) -> FigureResult:
    result = FigureResult(
        figure="ablation_token_rate",
        title="pHost token over-commit on the bimodal worst case (50% short)",
        columns=["token_rate_factor", "mean_slowdown", "retransmissions"],
    )
    for factor in (1.0, 1.25, 1.5, 2.0):
        cfg = PHostConfig(token_rate_factor=factor)
        spec = make_spec(
            "phost", "bimodal", scale, seed=seed,
            bimodal_fraction_short=0.5, protocol_config=cfg,
        )
        r = run_experiment(spec)
        result.add_row(
            token_rate_factor=factor,
            mean_slowdown=r.mean_slowdown(),
            retransmissions=r.data_pkts_retransmitted,
        )
    result.notes.append(
        "over-committing tokens trades receiver-downlink contention for "
        "source-side choice; the paper left this regime open (fig 8)"
    )
    return result


def test_ablation_token_rate(record_table, figure_scale):
    result = record_table(lambda: _build(figure_scale), "ablation_token_rate")
    rows = result.rows
    base = rows[0]["mean_slowdown"]
    # every configuration must remain functional and in the same regime
    for row in rows:
        assert row["mean_slowdown"] >= 1.0
        assert row["mean_slowdown"] <= 2.5 * base
