"""Figure 2 — flow-size CDFs of the three workloads.

Regenerates the distribution table behind the paper's Figure 2 and
checks the structural claims the evaluation relies on: every workload
is short-flow dominated, Data Mining/IMC10 are far heavier in tiny
flows than Web Search, and IMC10's tail stops at 3 MB.
"""

import pytest


def test_fig2(regen):
    result = regen("fig2")
    row_1kb = result.row_where(size_bytes=1000)
    assert row_1kb["datamining"] >= 0.5
    assert row_1kb["imc10"] >= 0.5
    assert row_1kb["websearch"] < 0.1
    row_3mb = result.row_where(size_bytes=10_000_000)
    assert row_3mb["imc10"] == 1.0          # tail capped at 3 MB
    assert row_3mb["datamining"] < 1.0      # tail continues to 1 GB
@pytest.mark.smoke
def test_fig2_smoke(smoke_regen):
    """Tiny-scale sanity pass for the CI smoke tier."""
    smoke_regen("fig2")
