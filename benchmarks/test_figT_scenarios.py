"""Figure T — adversarial workloads beyond the paper (not a paper figure).

The paper evaluates homogeneous Poisson arrivals over uniform traffic
matrices; fig-T stresses everything the paper held fixed: trace replay,
hot-rack skew with rack affinity, a 4x mid-run load burst, job-structured
coflows scored by JCT, and a deadline/loss/arbiter-blackout storm — each
against all four protocols (the paper's three plus the repository-added
DCTCP baseline).  The table's "best protocol" notes record which
transport wins where; the acceptance bounds below pin the qualitative
claims (near-full completion everywhere, faults only where injected,
job metrics only where jobs exist).
"""

import math

import pytest

from repro.experiments.defaults import make_spec
from repro.experiments.runner import run_experiment
from repro.faults import ArbiterBlackout, FaultPlan
from repro.validate import (
    CausalityAuditor,
    ConservationAuditor,
    TokenLedgerAuditor,
    standard_auditors,
)
from repro.workloads.skew import SkewConfig

SCENARIOS = ("traced", "hotrack", "ramp", "coflow", "storm")
PROTOCOLS = ("phost", "pfabric", "fastpass", "dctcp")


def _assert_adversarial(result):
    assert {r["scenario"] for r in result.rows} == set(SCENARIOS)
    assert len(result.rows) == len(SCENARIOS) * len(PROTOCOLS)
    for row in result.rows:
        scenario, protocol = row["scenario"], row["protocol"]
        where = f"{protocol} under {scenario}"
        # Near-full completion even under adversarial pressure: the
        # storm may strand a few deadline flows, everything else drains.
        floor = 0.90 if scenario == "storm" else 0.95
        assert row["completion"] >= floor, f"{where}: completion {row['completion']}"
        assert row["mean_slowdown"] >= 1.0, where
        assert row["p99_slowdown"] >= row["mean_slowdown"] * 0.99, where

        # Job metrics exist exactly where jobs exist.
        if scenario == "coflow":
            assert math.isfinite(row["mean_jct_ms"]) and row["mean_jct_ms"] > 0, where
        else:
            assert math.isnan(row["mean_jct_ms"]), where

        # Deadlines exist only in the storm; injected faults likewise.
        if scenario == "storm":
            assert 0.5 <= row["deadline_met"] <= 1.0, (
                f"{where}: deadline_met {row['deadline_met']}"
            )
            assert row["fault_drops"] > 0, where
        else:
            assert math.isnan(row["deadline_met"]), where
            assert row["fault_drops"] == 0, where

    # The replayed trace is the plain generated workload: it must not be
    # harder than the skewed scenario built from the same size mix.
    for protocol in PROTOCOLS:
        traced = result.row_where(scenario="traced", protocol=protocol)
        hot = result.row_where(scenario="hotrack", protocol=protocol)
        assert traced["mean_slowdown"] <= hot["mean_slowdown"] * 1.5, protocol

    winners = [n for n in result.notes if "best protocol" in n]
    assert len(winners) == len(SCENARIOS)
    for note in winners:
        assert note.split("best protocol ")[1] in PROTOCOLS


def test_figT(regen):
    result = regen("figT")
    _assert_adversarial(result)


@pytest.mark.smoke
@pytest.mark.figT
def test_figT_smoke(smoke_regen):
    """Tiny-scale fig-T for the CI figT-smoke tier."""
    result = smoke_regen("figT")
    _assert_adversarial(result)


@pytest.mark.smoke
@pytest.mark.figT
@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_storm_scenario_completes_with_clean_audits(protocol):
    """The acceptance bar for the nastiest composition: hot-rack incast
    skew + deadlines + 0.5% wire loss + an arbiter blackout, and the
    conservation, token-ledger and causality auditors must all balance
    (injected drops ledgered, no token leaks during the blackout, no
    effect preceding its cause)."""
    spec = make_spec(
        protocol, "websearch", "tiny", seed=42,
        traffic_matrix="skewed",
        skew=SkewConfig(hot_racks=(0,), src_hot_fraction=0.2, dst_hot_fraction=0.9),
        with_deadlines=True,
        faults=FaultPlan(
            loss_rate=0.005,
            arbiter_blackouts=(ArbiterBlackout(start=0.002, end=0.004),),
            seed=42,
        ),
        instruments=standard_auditors(),
    )
    result = run_experiment(spec)
    assert result.n_completed >= 0.9 * result.n_flows
    assert result.fault_drops > 0
    report = result.audit
    assert report.ok, report.summary()
    for auditor_name in (
        ConservationAuditor.name,
        TokenLedgerAuditor.name,
        CausalityAuditor.name,
    ):
        assert not [v for v in report.violations() if v.auditor == auditor_name]
