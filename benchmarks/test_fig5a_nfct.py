"""Figure 5(a) — normalized FCT (mean FCT / mean OPT).

NFCT is dominated by long flows, so the paper finds all three protocols
within ~15% of each other; at reproduction scale we allow a wider band
but the protocols must remain in one cluster, unlike mean slowdown.
"""

import pytest


def test_fig5a(regen):
    result = regen("fig5a")
    for row in result.rows:
        vals = [row[p] for p in ("phost", "pfabric", "fastpass")]
        assert all(v >= 1.0 for v in vals)
        assert max(vals) <= 2.5 * min(vals)
@pytest.mark.smoke
def test_fig5a_smoke(smoke_regen):
    """Tiny-scale sanity pass for the CI smoke tier."""
    smoke_regen("fig5a")
