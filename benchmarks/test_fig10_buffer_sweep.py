"""Figure 10 — sensitivity to per-port switch buffers (Data Mining).

Paper: none of the three protocols is sensitive to buffer size, even
with tiny 6 kB buffers.
"""

import pytest


def test_fig10(regen):
    result = regen("fig10")
    for protocol in ("phost", "pfabric", "fastpass"):
        series = [row[protocol] for row in result.rows]
        # no collapse anywhere in the sweep, even at 6 kB
        assert max(series) <= 2.5 * min(series), protocol
        # and flat across the commodity range (>= 18 kB)
        main = [row[protocol] for row in result.rows if row["buffer_bytes"] >= 18_000]
        assert max(main) <= 1.6 * min(main), protocol
@pytest.mark.smoke
def test_fig10_smoke(smoke_regen):
    """Tiny-scale sanity pass for the CI smoke tier."""
    smoke_regen("fig10")
