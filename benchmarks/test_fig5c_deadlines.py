"""Figure 5(c) — fraction of flows meeting deadlines.

Deadlines are exponential (mean 1000 us) floored at 1.25x the ideal
FCT; pHost switches its grant/spend policies to EDF.  Paper: all three
protocols land within ~2% of each other; we assert every protocol meets
a solid majority and no protocol craters.
"""

import pytest


def test_fig5c(regen):
    result = regen("fig5c")
    for row in result.rows:
        for protocol in ("phost", "pfabric", "fastpass"):
            assert row[protocol] >= 0.5, (row["workload"], protocol)
        assert row["phost"] >= row["fastpass"] - 0.25
@pytest.mark.smoke
def test_fig5c_smoke(smoke_regen):
    """Tiny-scale sanity pass for the CI smoke tier."""
    smoke_regen("fig5c")
