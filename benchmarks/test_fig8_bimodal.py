"""Figure 8 — synthetic bimodal workload (3-pkt vs 700-pkt flows),
sweeping the short-flow fraction.

Paper: pHost tracks pFabric across the sweep; Fastpass matches them
when long flows dominate but degrades sharply as short flows take over.
"""

import pytest


def test_fig8(regen):
    result = regen("fig8")
    all_long = result.row_where(pct_short=0.0)
    mostly_short = result.row_where(pct_short=99.5)
    # with only long flows everyone is close
    vals = [all_long[p] for p in ("phost", "pfabric", "fastpass")]
    assert max(vals) <= 2.0 * min(vals)
    # Fastpass's penalty appears as short flows dominate
    assert mostly_short["fastpass"] > 1.5 * mostly_short["phost"]
    # pHost stays in pFabric's regime everywhere
    for row in result.rows:
        assert row["phost"] <= 2.0 * row["pfabric"] + 0.5
@pytest.mark.smoke
def test_fig8_smoke(smoke_regen):
    """Tiny-scale sanity pass for the CI smoke tier."""
    smoke_regen("fig8")
