"""Figure 11 — multi-tenant throughput shares.

One tenant runs IMC10 (short flows), the other Web Search (long
flows); both inject equal byte budgets at t=0.  Paper: pFabric's
in-fabric SRPT favours the short-flow tenant, while pHost with its
tenant-fair token policy splits throughput roughly evenly.
"""

import pytest


def test_fig11(regen):
    result = regen("fig11")
    phost = result.row_where(protocol="phost")
    pfabric = result.row_where(protocol="pfabric")
    # pHost: near-even split
    assert abs(phost["imc10_share"] - 0.5) < 0.1
    # pFabric: visibly biased toward the short-flow tenant, and more
    # biased than pHost
    assert pfabric["imc10_share"] > 0.53
    assert pfabric["imc10_share"] > phost["imc10_share"]
@pytest.mark.smoke
def test_fig11_smoke(smoke_regen):
    """Tiny-scale sanity pass for the CI smoke tier."""
    smoke_regen("fig11")
