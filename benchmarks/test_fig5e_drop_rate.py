"""Figure 5(e) — packet drop rate vs load (Web Search).

Paper: pFabric's drop rate is substantial and grows with load; pHost
and Fastpass, which explicitly schedule packets, stay near zero.
"""

import pytest


def test_fig5e(regen):
    result = regen("fig5e")
    hi = result.row_where(load=0.8)
    lo = result.row_where(load=0.5)
    assert hi["pfabric"] > lo["pfabric"]          # grows with load
    assert hi["pfabric"] > hi["phost"]            # scheduled >> aggressive
    assert hi["pfabric"] > hi["fastpass"]
    for row in result.rows:
        assert row["phost"] < 0.05
        assert row["fastpass"] < 0.01
@pytest.mark.smoke
def test_fig5e_smoke(smoke_regen):
    """Tiny-scale sanity pass for the CI smoke tier."""
    smoke_regen("fig5e")
