"""Shared machinery for the per-figure benchmarks.

Each benchmark regenerates one figure of the paper at the ``bench``
scale preset (144-host fabric, truncated tails — see
``repro.experiments.defaults``), times it with pytest-benchmark
(one round: a simulation is deterministic, re-running it only burns
time), prints the paper-style table, and archives it under
``benchmarks/results/``.

Select the scale with ``--figure-scale {tiny,bench,full}`` — tiny for a
quick smoke, full for a faithful (hours-long) regeneration.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.experiments.figures import run_figure
from repro.experiments.report import FigureResult, render

RESULTS_DIR = Path(__file__).parent / "results"
SMOKE_DIR = RESULTS_DIR / "smoke"


def pytest_collection_modifyitems(items):
    """Everything in benchmarks/ that is not a smoke test is a full
    sweep: auto-mark it ``slow`` so CI can select ``-m smoke`` and the
    expensive tier stays opt-in (``-m slow`` or no marker filter)."""
    for item in items:
        if "smoke" not in item.keywords:
            item.add_marker(pytest.mark.slow)


def pytest_addoption(parser):
    parser.addoption(
        "--figure-scale",
        default=os.environ.get("REPRO_SCALE", "bench"),
        choices=["tiny", "bench", "full"],
        help="scale preset for figure regeneration (default: bench)",
    )


@pytest.fixture(scope="session")
def figure_scale(request) -> str:
    return request.config.getoption("--figure-scale")


@pytest.fixture
def regen(benchmark, figure_scale):
    """Run a figure driver once under the benchmark timer and report it."""

    def _run(figure_name: str, seed: int = 42) -> FigureResult:
        result = benchmark.pedantic(
            run_figure,
            args=(figure_name,),
            kwargs={"scale": figure_scale, "seed": seed},
            rounds=1,
            iterations=1,
        )
        text = render(result)
        print("\n" + text)
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{figure_name}.txt").write_text(text + "\n")
        return result

    return _run


@pytest.fixture
def smoke_regen():
    """Tiny-scale figure regeneration for the smoke tier.

    No benchmark timer: the point is a fast end-to-end sanity pass of
    every figure driver (tables render, rows exist) on each CI push,
    not performance numbers.  Results land in ``results/smoke/`` so CI
    can upload them as an artifact.
    """

    def _run(figure_name: str, seed: int = 42) -> FigureResult:
        result = run_figure(figure_name, scale="tiny", seed=seed)
        assert result.rows, f"{figure_name}: no rows at tiny scale"
        assert result.columns, f"{figure_name}: no columns at tiny scale"
        text = render(result)
        SMOKE_DIR.mkdir(parents=True, exist_ok=True)
        (SMOKE_DIR / f"{figure_name}.txt").write_text(text + "\n")
        return result

    return _run


@pytest.fixture
def audit_artifact():
    """Run a figure's tiny-scale anchor scenario under the full auditor
    set, archive the report JSON for CI upload, and fail on violations."""

    def _run(figure_name: str):
        from repro.experiments.defaults import SCALES, make_spec
        from repro.experiments.runner import run_experiment, run_incast
        from repro.metrics.export import audit_report_to_json
        from repro.validate import standard_auditors

        if figure_name == "fig3":
            spec = make_spec("phost", "websearch", "tiny", seed=42)
            spec = spec.variant(instruments=standard_auditors())
            report = run_experiment(spec).audit
        elif figure_name == "fig9c":
            report = run_incast(
                "phost",
                n_senders=9,
                total_bytes=SCALES["tiny"].incast_bytes,
                n_requests=SCALES["tiny"].incast_requests,
                topology=SCALES["tiny"].topology,
                seed=42,
                instruments=standard_auditors(),
            ).audit
        else:
            raise ValueError(f"no audit anchor defined for {figure_name}")
        SMOKE_DIR.mkdir(parents=True, exist_ok=True)
        audit_report_to_json(report, SMOKE_DIR / f"audit_{figure_name}.json")
        assert report.ok, report.summary()
        return report

    return _run


@pytest.fixture
def record_table(benchmark):
    """For ablation benches: time a builder returning a FigureResult,
    print and archive it like the figure benches do."""

    def _run(builder, name: str) -> FigureResult:
        result = benchmark.pedantic(builder, rounds=1, iterations=1)
        text = render(result)
        print("\n" + text)
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        return result

    return _run
