"""Shared machinery for the per-figure benchmarks.

Each benchmark regenerates one figure of the paper at the ``bench``
scale preset (144-host fabric, truncated tails — see
``repro.experiments.defaults``), times it with pytest-benchmark
(one round: a simulation is deterministic, re-running it only burns
time), prints the paper-style table, and archives it under
``benchmarks/results/``.

Select the scale with ``--figure-scale {tiny,bench,full}`` — tiny for a
quick smoke, full for a faithful (hours-long) regeneration.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.experiments.figures import run_figure
from repro.experiments.report import FigureResult, render

RESULTS_DIR = Path(__file__).parent / "results"


def pytest_addoption(parser):
    parser.addoption(
        "--figure-scale",
        default=os.environ.get("REPRO_SCALE", "bench"),
        choices=["tiny", "bench", "full"],
        help="scale preset for figure regeneration (default: bench)",
    )


@pytest.fixture(scope="session")
def figure_scale(request) -> str:
    return request.config.getoption("--figure-scale")


@pytest.fixture
def regen(benchmark, figure_scale):
    """Run a figure driver once under the benchmark timer and report it."""

    def _run(figure_name: str, seed: int = 42) -> FigureResult:
        result = benchmark.pedantic(
            run_figure,
            args=(figure_name,),
            kwargs={"scale": figure_scale, "seed": seed},
            rounds=1,
            iterations=1,
        )
        text = render(result)
        print("\n" + text)
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{figure_name}.txt").write_text(text + "\n")
        return result

    return _run


@pytest.fixture
def record_table(benchmark):
    """For ablation benches: time a builder returning a FigureResult,
    print and archive it like the figure benches do."""

    def _run(builder, name: str) -> FigureResult:
        result = benchmark.pedantic(builder, rounds=1, iterations=1)
        text = render(result)
        print("\n" + text)
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        return result

    return _run
