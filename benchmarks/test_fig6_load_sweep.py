"""Figure 6 — mean slowdown vs network load, per workload.

Paper: the protocol ordering is consistent across loads and absolute
slowdown grows with load (0.8 is beyond the stable regime).
"""

import pytest


def test_fig6(regen):
    result = regen("fig6")
    for workload in ("datamining", "imc10"):
        lo = result.row_where(workload=workload, load=0.5)
        hi = result.row_where(workload=workload, load=0.8)
        for protocol in ("phost", "pfabric", "fastpass"):
            assert hi[protocol] >= 0.9 * lo[protocol]  # grows (mod noise)
        # ordering consistent: Fastpass stays the outlier at every load
        for load in (0.5, 0.6, 0.7, 0.8):
            row = result.row_where(workload=workload, load=load)
            assert row["fastpass"] > row["phost"]
@pytest.mark.smoke
def test_fig6_smoke(smoke_regen):
    """Tiny-scale sanity pass for the CI smoke tier."""
    smoke_regen("fig6")
