"""Figure R — robustness under injected faults (not a paper figure).

The paper's fabric only loses packets to queue overflow; fig-R stresses
the recovery machinery instead: Bernoulli wire loss at two rates plus
one and two failed ToR uplinks, across the three paper protocols plus
the repository-added DCTCP baseline (WebSearch, default config).  The
headline assertion is the pHost robustness claim
generalized: every protocol still completes 100% of the workload, loss
costs tail slowdown, and link failures cost almost nothing because
packet spraying excludes dead uplinks.
"""

import pytest

from repro.experiments.defaults import make_spec
from repro.experiments.runner import run_experiment
from repro.faults import FaultPlan
from repro.validate import ConservationAuditor, TokenLedgerAuditor, standard_auditors


def _assert_robust(result):
    for row in result.rows:
        assert row["completion"] == 1.0, (
            f"{row['protocol']} lost flows under {row['scenario']}"
        )
    for protocol in ("phost", "pfabric", "fastpass", "dctcp"):
        base = result.row_where(scenario="baseline", protocol=protocol)
        lossy = result.row_where(scenario="loss-1%", protocol=protocol)
        # Loss is recovered, not free: retransmission timers cost tail
        # latency, and injected drops are ledgered.
        assert lossy["fault_drops"] > 0
        assert lossy["p99_slowdown"] >= base["p99_slowdown"]
        # Spraying routes around dead uplinks: nothing is ever offered
        # to a link that is down from t=0.
        for scenario in ("linkdown-1", "linkdown-2"):
            assert result.row_where(scenario=scenario, protocol=protocol)["fault_drops"] == 0


def test_figR(regen):
    result = regen("figR")
    _assert_robust(result)


@pytest.mark.smoke
@pytest.mark.faults
def test_figR_smoke(smoke_regen):
    """Tiny-scale fig-R for the CI faults-smoke tier."""
    result = smoke_regen("figR")
    _assert_robust(result)


@pytest.mark.smoke
@pytest.mark.faults
@pytest.mark.parametrize("protocol", ["phost", "pfabric", "fastpass", "dctcp"])
def test_one_percent_loss_completes_with_clean_audits(protocol):
    """The acceptance bar: 1% random loss, full completion, and the
    conservation + token ledgers balance with injected drops accounted
    in their own column."""
    spec = make_spec(
        protocol, "websearch", "tiny", seed=42,
        faults=FaultPlan(loss_rate=0.01, seed=3),
        instruments=standard_auditors(),
    )
    result = run_experiment(spec)
    assert result.n_completed == result.n_flows
    assert result.fault_drops > 0
    report = result.audit
    assert report.ok, report.summary()
    for auditor_name in (ConservationAuditor.name, TokenLedgerAuditor.name):
        assert not [v for v in report.violations() if v.auditor == auditor_name]
