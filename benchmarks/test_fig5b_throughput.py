"""Figure 5(b) — per-host goodput.

Throughput is dominated by long flows, so the three protocols are
similar, and (because slowdown > 1) goodput stays below
load x access rate = 6 Gbps.
"""

import pytest


def test_fig5b(regen):
    result = regen("fig5b")
    for row in result.rows:
        vals = [row[p] for p in ("phost", "pfabric", "fastpass")]
        assert all(0 < v < 6.5 for v in vals)
        assert max(vals) <= 3.0 * min(vals)
@pytest.mark.smoke
def test_fig5b_smoke(smoke_regen):
    """Tiny-scale sanity pass for the CI smoke tier."""
    smoke_regen("fig5b")
