"""Figure 5(d) — 99th-percentile slowdown of short flows.

Paper: pHost and pFabric keep tails near their means (~1.3x), Fastpass
roughly doubles.  We assert the ordering on the short-flow-heavy
workloads.
"""

import pytest


def test_fig5d(regen):
    result = regen("fig5d")
    for workload in ("datamining", "imc10"):
        row = result.row_where(workload=workload)
        assert row["fastpass"] > row["phost"]
        assert row["phost"] >= 1.0
@pytest.mark.smoke
def test_fig5d_smoke(smoke_regen):
    """Tiny-scale sanity pass for the CI smoke tier."""
    smoke_regen("fig5d")
