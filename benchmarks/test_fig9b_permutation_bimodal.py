"""Figure 9(b) — permutation traffic matrix, bimodal sweep.

Same sweep as Figure 8 but with the permutation matrix: contention is
minimal, so pHost stays near-optimal throughout while Fastpass's
epoch+RTT overhead still penalizes short-flow mixes.
"""

import pytest


def test_fig9b(regen):
    result = regen("fig9b")
    mostly_short = result.row_where(pct_short=99.5)
    assert mostly_short["fastpass"] > 1.3 * mostly_short["phost"]
    for row in result.rows:
        assert row["phost"] >= 1.0
@pytest.mark.smoke
def test_fig9b_smoke(smoke_regen):
    """Tiny-scale sanity pass for the CI smoke tier."""
    smoke_regen("fig9b")
