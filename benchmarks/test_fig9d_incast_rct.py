"""Figure 9(d) — incast: average request completion time vs senders.

Paper: <4% spread across protocols and RCT nearly flat in N — the
receiver access link carries the same bytes regardless of fan-in.
"""

import pytest


def test_fig9d(regen):
    result = regen("fig9d")
    cols = ("phost", "pfabric", "fastpass")
    for row in result.rows:
        vals = [row[p] for p in cols]
        assert max(vals) <= 1.5 * min(vals)
    # flat in N: max over the sweep within 50% of min, per protocol
    for p in cols:
        series = [row[p] for row in result.rows]
        assert max(series) <= 1.5 * min(series)
@pytest.mark.smoke
def test_fig9d_smoke(smoke_regen):
    """Tiny-scale sanity pass for the CI smoke tier."""
    smoke_regen("fig9d")
