"""Figure 9(a) — permutation traffic matrix, trace workloads.

Paper: with one destination per source there is almost no contention in
the core or at receivers, and pHost outperforms both baselines.
"""

import pytest


def test_fig9a(regen):
    result = regen("fig9a")
    for row in result.rows:
        assert row["phost"] >= 1.0
        # under permutation pHost at least matches pFabric's regime and
        # clearly beats Fastpass on short-flow workloads
        assert row["phost"] <= 1.5 * row["pfabric"] + 0.2
    for workload in ("datamining", "imc10"):
        row = result.row_where(workload=workload)
        assert row["fastpass"] > row["phost"]
@pytest.mark.smoke
def test_fig9a_smoke(smoke_regen):
    """Tiny-scale sanity pass for the CI smoke tier."""
    smoke_regen("fig9a")
