"""Ablation — decomposing Fastpass's short-flow penalty.

The paper (§4.2, §5) attributes Fastpass's 4x short-flow slowdown to
two overheads: the 8-packet epoch wait and the control-plane round
trip.  This bench separates them:

* ``fastpass``            — 8-slot epochs + control latency (paper model)
* ``fastpass epoch=1``    — per-slot scheduling, control latency kept
* ``ideal``               — per-slot scheduling, zero control latency

and adds pHost, which starts short flows instantly via free tokens.
Expected ordering on a short-flow-dominated workload:
fastpass > epoch=1 > ideal >= ~pHost.
"""

from repro.experiments.defaults import SCALES, make_spec
from repro.experiments.report import FigureResult
from repro.experiments.runner import run_experiment
from repro.protocols.fastpass.config import FastpassConfig


def _build(scale: str, seed: int = 42) -> FigureResult:
    variants = [
        ("fastpass (paper)", "fastpass", None),
        ("fastpass epoch=1", "fastpass", FastpassConfig(epoch_pkts=1)),
        ("ideal (epoch=1, ctrl=0)", "ideal", None),
        ("phost", "phost", None),
    ]
    result = FigureResult(
        figure="ablation_fastpass",
        title="Decomposing the Fastpass short-flow penalty (IMC10, 0.6 load)",
        columns=["variant", "mean_slowdown"],
    )
    for label, protocol, cfg in variants:
        spec = make_spec(protocol, "imc10", scale, seed=seed, protocol_config=cfg)
        result.add_row(variant=label, mean_slowdown=run_experiment(spec).mean_slowdown())
    result.notes.append(
        "gap(paper->epoch=1) = epoch-granularity cost; "
        "gap(epoch=1->ideal) = signaling round-trip cost"
    )
    return result


def test_ablation_fastpass(record_table, figure_scale):
    result = record_table(lambda: _build(figure_scale), "ablation_fastpass")
    rows = {r["variant"]: r["mean_slowdown"] for r in result.rows}
    assert rows["fastpass (paper)"] > rows["fastpass epoch=1"]
    assert rows["fastpass epoch=1"] >= rows["ideal (epoch=1, ctrl=0)"] * 0.95
    assert rows["fastpass (paper)"] > 1.5 * rows["ideal (epoch=1, ctrl=0)"]
    # pHost needs no central scheduler to play in the ideal's league
    assert rows["phost"] <= 1.3 * rows["ideal (epoch=1, ctrl=0)"]
