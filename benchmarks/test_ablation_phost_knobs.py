"""Ablation — pHost's own design knobs (§3.2's mechanisms).

Turns pHost's utilization mechanisms off one at a time:

* ``no free tokens``  — every flow waits an RTT for its first grant
  (paper: free tokens exist precisely to spare short flows that wait);
* ``no token expiry`` — tokens live "forever" (1000 MTU-times), so a
  busy source hoards grants and receiver downlinks go idle;
* ``no downgrading``  — threshold effectively infinite, so receivers
  keep granting to unresponsive sources.

Expected: the paper default is the best configuration; removing free
tokens visibly hurts mean slowdown on short-flow workloads.
"""

from repro.protocols.phost.config import PHostConfig
from repro.experiments.defaults import make_spec
from repro.experiments.report import FigureResult
from repro.experiments.runner import run_experiment
from repro.workloads.distributions import LONG_FLOW_THRESHOLD


def _build(scale: str, seed: int = 42) -> FigureResult:
    variants = [
        ("paper default", PHostConfig.paper_default()),
        ("no free tokens", PHostConfig(free_tokens=0)),
        ("no token expiry", PHostConfig(token_expiry_mtus=1000.0)),
        ("no downgrading", PHostConfig(downgrade_threshold=10**9)),
    ]
    result = FigureResult(
        figure="ablation_phost_knobs",
        title="pHost mechanism ablation (IMC10, 0.6 load)",
        columns=["variant", "mean_slowdown", "short_slowdown"],
    )
    threshold = LONG_FLOW_THRESHOLD["imc10"]
    for label, cfg in variants:
        spec = make_spec("phost", "imc10", scale, seed=seed, protocol_config=cfg)
        r = run_experiment(spec)
        short, _ = r.short_long_slowdown(threshold)
        result.add_row(
            variant=label,
            mean_slowdown=r.mean_slowdown(),
            short_slowdown=short,
        )
    result.notes.append(
        "free tokens are the short-flow fast path; expiry+downgrading "
        "protect receiver downlinks from hoarding sources"
    )
    return result


def test_ablation_phost_knobs(record_table, figure_scale):
    result = record_table(lambda: _build(figure_scale), "ablation_phost_knobs")
    rows = {r["variant"]: r for r in result.rows}
    default = rows["paper default"]
    # removing the short-flow fast path costs short flows dearly
    assert rows["no free tokens"]["short_slowdown"] > default["short_slowdown"]
    # every ablated variant completes, and none beats the default by much
    for label, row in rows.items():
        assert row["mean_slowdown"] >= 0.9 * default["mean_slowdown"]
