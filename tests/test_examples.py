"""Smoke tests: the fast examples must run end to end.

The heavier demo scripts (protocol_comparison, multi_tenant_fairness,
incast_pattern, deadline_scheduling, custom_policy) are exercised by the
benchmark-scale figure drivers they mirror; here we execute the quick
ones exactly as a user would (as __main__).
"""

from __future__ import annotations

import runpy
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"


def run_example(name: str, capsys) -> str:
    runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    return capsys.readouterr().out


def test_quickstart(capsys):
    out = run_example("quickstart.py", capsys)
    assert "mean slowdown" in out
    assert "completed        : 300/300" in out


def test_token_dynamics(capsys):
    out = run_example("token_dynamics.py", capsys)
    assert "tokens expired unused at the sender" in out
    assert "FCT" in out


def test_replay_trace(capsys):
    out = run_example("replay_trace.py", capsys)
    assert "bit-identical" in out


def test_examples_all_have_main_guard():
    for path in EXAMPLES.glob("*.py"):
        text = path.read_text()
        assert '__name__ == "__main__"' in text, path.name
        assert '"""' in text.split("\n", 2)[1] or text.startswith("#!"), path.name
