"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.net.topology import Fabric, TopologyConfig
from repro.sim.engine import EventLoop
from repro.sim.randoms import SeededRng


@pytest.fixture
def env() -> EventLoop:
    return EventLoop()


@pytest.fixture
def rng() -> SeededRng:
    return SeededRng(1234)


@pytest.fixture
def small_topo() -> TopologyConfig:
    return TopologyConfig.small()


@pytest.fixture
def fabric(env, small_topo, rng) -> Fabric:
    return Fabric(env, small_topo, rng)


def make_fabric(env, rng, **kwargs) -> Fabric:
    """Helper for tests needing custom queue factories or dimensions."""
    topo_kwargs = {}
    for key in ("n_racks", "hosts_per_rack", "n_cores", "buffer_bytes",
                "access_gbps", "core_gbps", "load_balancing"):
        if key in kwargs:
            topo_kwargs[key] = kwargs.pop(key)
    topo = TopologyConfig.small() if not topo_kwargs else TopologyConfig(
        n_racks=topo_kwargs.pop("n_racks", 3),
        hosts_per_rack=topo_kwargs.pop("hosts_per_rack", 4),
        n_cores=topo_kwargs.pop("n_cores", 2),
        **topo_kwargs,
    )
    return Fabric(env, topo, rng, **kwargs)
