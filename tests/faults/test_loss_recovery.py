"""Loss-recovery battery: force-drop each packet class a protocol
depends on and assert the recovery path fires *and* the flow completes.

Each test runs one explicit flow through :func:`build_simulation` /
:func:`run_flow_list` with a :class:`ScriptedDrop` aimed at a single
packet class.  All scripted rules pin ``hop=1`` (the sending host's
NIC) so one logical packet matches exactly once even though it transits
up to four links.
"""

from __future__ import annotations

import pytest

from repro.experiments.runner import build_simulation, run_flow_list
from repro.experiments.spec import ExperimentSpec
from repro.faults import ArbiterBlackout, FaultPlan, HostPause, ScriptedDrop
from repro.net.packet import Flow
from repro.net.topology import TopologyConfig
from repro.protocols.phost.config import PHostConfig
from repro.sim.units import MSS_BYTES

pytestmark = pytest.mark.faults

GUARD = 0.05  # seconds; >> every recovery timer at tiny scale


def _run_one(protocol, plan, *, protocol_config=None, n_pkts=10, before_run=None):
    """One flow h0 -> h1 on the small fabric under ``plan``.

    ``before_run(ctx)`` can instrument the built context (e.g. wrap a
    recovery entry point with a counter) before the clock starts.
    """
    spec = ExperimentSpec(
        protocol=protocol,
        topology=TopologyConfig.small(),
        n_flows=1,
        faults=plan,
        protocol_config=protocol_config,
        max_sim_time=GUARD,
    )
    ctx = build_simulation(spec)
    if before_run is not None:
        before_run(ctx)
    flow = Flow(0, 0, 1, n_pkts * MSS_BYTES, 0.0)
    result = run_flow_list(spec, [flow], ctx)
    return ctx, result


def _drop(ptype, count=1, skip=0):
    return FaultPlan(scripted=(ScriptedDrop(ptype, count=count, skip=skip, hop=1),))


# ----------------------------------------------------------------------
# pHost: RTS, TOKEN, DATA
# ----------------------------------------------------------------------

def test_phost_lost_rts_is_retried():
    # free_tokens=0 forces the token path: without the RTS reaching the
    # destination no data can ever flow, so completion proves recovery.
    rts_sends = []

    def count_rts(ctx):
        source = ctx.fabric.hosts[0].agent.source
        orig = source._send_rts
        source._send_rts = lambda state: (rts_sends.append(state.flow.fid), orig(state))[1]

    ctx, result = _run_one(
        "phost", _drop("rts"),
        protocol_config=PHostConfig(free_tokens=0),
        before_run=count_rts,
    )
    assert ctx.faults.drops_by_reason["scripted"] == 1
    assert len(rts_sends) >= 2, "lost RTS was never retransmitted"
    assert result.n_completed == 1


def test_phost_lost_rts_and_free_burst_still_recovers():
    # The nastiest pHost loss pattern: the RTS *and* every free-token
    # data packet die before the destination ever learns the flow
    # exists.  Nothing downstream can help (no dest state => no grants,
    # no re-ACK), so the only way out is the source-side lost-RTS
    # watchdog — which is armed under an active fault plan even when
    # the free budget is non-zero.  Regression for a silent-forever
    # flow first seen under bursty Gilbert-Elliott loss.
    plan = FaultPlan(scripted=(
        ScriptedDrop("rts", count=1, hop=1),
        ScriptedDrop("data", count=8, hop=1),  # the whole free budget
    ))
    rts_sends = []

    def count_rts(ctx):
        source = ctx.fabric.hosts[0].agent.source
        orig = source._send_rts
        source._send_rts = lambda state: (rts_sends.append(state.flow.fid), orig(state))[1]

    ctx, result = _run_one("phost", plan, n_pkts=20, before_run=count_rts)
    assert ctx.faults.drops_by_reason["scripted"] == 9
    assert len(rts_sends) >= 2, "watchdog never re-sent the RTS"
    assert result.n_completed == 1


def test_phost_lost_token_is_regranted():
    ctx, result = _run_one(
        "phost", _drop("token"), protocol_config=PHostConfig(free_tokens=0)
    )
    assert ctx.faults.drops_by_reason["scripted"] == 1
    dest = ctx.fabric.hosts[1].agent.destination
    # The destination's retx timeout re-granted the lost credit: more
    # tokens were minted than the flow has packets.
    assert dest.tokens_granted > result.records[0].n_pkts if result.records else True
    assert dest.tokens_granted >= 11  # 10 pkts + at least 1 regrant
    assert result.n_completed == 1


@pytest.mark.parametrize("skip", [0, 8], ids=["free-token-data", "granted-data"])
def test_phost_lost_data_is_retransmitted(skip):
    # skip=0 drops a free-token packet, skip=8 a granted-token packet
    # (the default config fronts 8 free tokens).
    ctx, result = _run_one("phost", _drop("data", skip=skip))
    assert ctx.faults.drops_by_reason["scripted"] == 1
    assert result.data_pkts_retransmitted >= 1, "recovery never resent the lost DATA"
    assert result.n_completed == 1


# ----------------------------------------------------------------------
# pFabric: DATA and ACK
# ----------------------------------------------------------------------

def test_pfabric_lost_data_triggers_rto():
    ctx, result = _run_one("pfabric", _drop("data", skip=9))  # drop the tail pkt
    agent = ctx.fabric.hosts[0].agent
    assert ctx.faults.drops_by_reason["scripted"] == 1
    assert agent.timeouts >= 1, "RTO never fired for the lost DATA"
    assert result.data_pkts_retransmitted >= 1
    assert result.n_completed == 1


def test_pfabric_lost_ack_is_survived():
    # ACKs transit hop 1 at the *receiver's* NIC.  Drop one mid-stream
    # ACK of flow 0; a second, longer flow keeps the simulation alive
    # past the victim source's RTO so the recovery actually runs (the
    # run otherwise stops the instant every destination is satisfied).
    plan = FaultPlan(scripted=(ScriptedDrop("ack", flow=0, seq=5, hop=1),))
    spec = ExperimentSpec(
        protocol="pfabric",
        topology=TopologyConfig.small(),
        n_flows=2,
        faults=plan,
        max_sim_time=GUARD,
    )
    ctx = build_simulation(spec)
    flows = [
        Flow(0, 0, 1, 10 * MSS_BYTES, 0.0),
        Flow(1, 2, 3, 200 * MSS_BYTES, 0.0),
    ]
    result = run_flow_list(spec, flows, ctx)
    agent = ctx.fabric.hosts[0].agent
    assert ctx.faults.drops_by_reason["scripted"] == 1
    assert agent.timeouts >= 1, "RTO never fired for the lost ACK"
    assert result.data_pkts_retransmitted >= 1
    assert result.n_completed == 2


# ----------------------------------------------------------------------
# Fastpass: DATA loss and allocation loss (arbiter blackout)
# ----------------------------------------------------------------------

def test_fastpass_lost_data_is_rerequested():
    ctx, result = _run_one("fastpass", _drop("data", skip=9))
    assert ctx.faults.drops_by_reason["scripted"] == 1
    # Recovery re-reports demand to the arbiter and resends in the
    # newly allocated slot.
    assert ctx.shared.requests_received >= 2
    assert result.data_pkts_retransmitted >= 1
    assert result.n_completed == 1


def test_fastpass_blackout_loses_allocation_then_recovers():
    # The flow arrives during the blackout: its REQUEST is lost and the
    # first epochs elapse unallocated.  The agent's recheck timer must
    # re-report the demand once the arbiter is back.
    plan = FaultPlan(arbiter_blackouts=(ArbiterBlackout(0.0, 150e-6),))
    ctx, result = _run_one("fastpass", plan)
    arbiter = ctx.shared
    agent = ctx.fabric.hosts[0].agent
    assert arbiter.requests_lost >= 1
    assert agent.requests_retried >= 1, "lost REQUEST was never re-reported"
    assert result.n_completed == 1
    # Data only ever flowed after the blackout lifted.
    assert result.records[0].finish > 150e-6


# ----------------------------------------------------------------------
# Host pause: both of a host's links dark for a window
# ----------------------------------------------------------------------

def test_host_pause_recovers_after_resume():
    plan = FaultPlan(host_pauses=(HostPause(host=1, pause_at=0.0, resume_at=200e-6),))
    ctx, result = _run_one(
        "phost", plan, protocol_config=PHostConfig(free_tokens=0)
    )
    # Everything sent into the paused host was black-holed...
    assert ctx.faults.drops_by_reason["link_down"] >= 1
    # ...yet the RTS retry carried the flow across the outage.
    assert result.n_completed == 1
    assert result.records[0].finish > 200e-6
