"""Hypothesis property tests for the fault layer.

Two families:

* the Gilbert–Elliott chain's empirical bad-state occupancy converges
  to the stationary distribution ``p / (p + r)`` for any parameters —
  checked against the exact asymptotic variance of a two-state Markov
  chain (a broken transition rule fails this everywhere, not just at a
  hand-picked operating point);
* link down/up schedules: no packet ever transits a link inside its
  down window, and spraying never selects a dead uplink while it is
  down (the route table's live set excludes it, and re-includes it
  after the link comes back).
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.runner import build_simulation, run_flow_list
from repro.experiments.spec import ExperimentSpec
from repro.faults import FaultPlan, GilbertElliott, LinkDown
from repro.faults.models import GilbertElliottLoss
from repro.net.packet import Flow
from repro.net.topology import TopologyConfig
from repro.sim.randoms import SeededRng
from repro.sim.units import MSS_BYTES

pytestmark = pytest.mark.faults


# ----------------------------------------------------------------------
# Gilbert–Elliott stationarity
# ----------------------------------------------------------------------

@given(
    p=st.floats(0.1, 0.9),
    r=st.floats(0.1, 0.9),
    seed=st.integers(0, 2**32 - 1),
)
@settings(deadline=None, max_examples=25)
def test_ge_occupancy_converges_to_stationary(p, r, seed):
    params = GilbertElliott(p, r)
    model = GilbertElliottLoss(params)
    rng = SeededRng(seed).stream("ge-property")
    n = 20_000
    for _ in range(n):
        model.lose(rng)
    pi = params.stationary_bad
    # Asymptotic variance of the occupancy of a two-state chain with
    # second eigenvalue lambda = 1 - p - r:
    # var ~ pi (1 - pi) / n * (1 + lambda) / (1 - lambda).
    lam = 1.0 - p - r
    sigma = math.sqrt(pi * (1.0 - pi) / n * (1.0 + lam) / (1.0 - lam))
    assert abs(model.occupancy_bad - pi) < 6.0 * sigma + 1e-9


@given(p=st.floats(0.01, 0.99), r=st.floats(0.01, 0.99))
@settings(deadline=None, max_examples=25)
def test_ge_draw_discipline_is_one_transition_per_packet(p, r):
    # loss_bad=1, loss_good=0 (the defaults) are degenerate: exactly one
    # uniform per packet, so two identically seeded chains stay in
    # lockstep regardless of loss outcomes.
    a, b = GilbertElliottLoss(GilbertElliott(p, r)), GilbertElliottLoss(GilbertElliott(p, r))
    ra, rb = SeededRng(5).stream("x"), SeededRng(5).stream("x")
    for _ in range(500):
        assert a.lose(ra) == b.lose(rb)
        assert a.bad == b.bad


# ----------------------------------------------------------------------
# Link down/up schedules
# ----------------------------------------------------------------------

def _cross_rack_flows(n=8, n_pkts=12):
    # rack0 (hosts 0-3) -> rack1 (hosts 4-7): every flow must cross a
    # tor0 uplink, exercising the spray choice on each packet.
    return [
        Flow(i, i % 4, 4 + (i % 4), n_pkts * MSS_BYTES, i * 2e-6)
        for i in range(n)
    ]


# Windows are bounded so the workload (~290us of cross-rack transfer)
# always outlasts the outage: both probes below must actually run
# before the simulation stops at all-flows-complete.
@given(
    down_at=st.floats(0.0, 60e-6),
    width=st.floats(10e-6, 120e-6),
)
@settings(deadline=None, max_examples=10)
def test_no_packet_transits_a_down_link(down_at, width):
    up_at = down_at + width
    plan = FaultPlan(link_downs=(LinkDown("tor0.up.c0", down_at, up_at),))
    spec = ExperimentSpec(
        protocol="phost",
        topology=TopologyConfig.small(),
        n_flows=8,
        faults=plan,
        max_sim_time=0.05,
    )
    ctx = build_simulation(spec)
    tap = ctx.faults.taps["tor0.up.c0"]
    transits = []
    tap.forward_hook = lambda pkt, t: transits.append(ctx.env.now)

    tor = ctx.fabric.tors[0]
    dead_port = next(p for p in tor.ports if p.name == "tor0.up.c0")
    probes = {}

    def probe(label):
        live = tor.route.live_uplinks()
        probes[label] = any(p is dead_port for p in live)

    ctx.env.schedule_at(down_at + width / 2.0, probe, "mid-window")
    ctx.env.schedule_at(up_at + 1e-6, probe, "after-up")

    result = run_flow_list(spec, _cross_rack_flows(n_pkts=120), ctx)
    assert result.n_completed == result.n_flows
    # The wire was silent for the whole down window...
    assert not [t for t in transits if down_at <= t < up_at]
    # ...because the spray table excluded the port while it was down
    # and restored it afterwards.
    assert probes == {"mid-window": False, "after-up": True}


def test_down_forever_link_never_forwards_again():
    plan = FaultPlan(link_downs=(LinkDown("tor0.up.c0", down_at=0.0),))
    spec = ExperimentSpec(
        protocol="phost",
        topology=TopologyConfig.small(),
        n_flows=8,
        faults=plan,
        max_sim_time=0.05,
    )
    ctx = build_simulation(spec)
    tap = ctx.faults.taps["tor0.up.c0"]
    tap.forward_hook = lambda pkt, t: pytest.fail("packet crossed a dead link")
    result = run_flow_list(spec, _cross_rack_flows(), ctx)
    assert result.n_completed == result.n_flows
    # Down from t=0 with spray exclusion: nothing is even *offered* to
    # the dead link, so the fault ledger stays empty too.
    assert tap.fault_drops == 0
