"""Regression: a corrupting fault plan must disable the PacketPool.

The injector retains corrupted packets for replay/inspection, so it
declares ``retains_packets`` — the same instrument contract tracers
use — and the runner must gate pooling off, otherwise retained packets
get recycled under the inspector's feet.  Loss-only plans hold no
references and must keep pooling on.
"""

from __future__ import annotations

import pytest

from repro.experiments.defaults import make_spec
from repro.experiments.runner import build_simulation, run_experiment
from repro.faults import FaultPlan
from repro.faults.injector import FaultInjector
from repro.validate import standard_auditors

pytestmark = pytest.mark.faults


def _build(plan):
    return build_simulation(make_spec("phost", "websearch", "tiny", seed=42, faults=plan))


def test_corrupting_plan_disables_pool():
    ctx = _build(FaultPlan(corrupt_rate=0.001))
    assert ctx.faults.retains_packets
    assert not ctx.pool.enabled
    # Hosts must not have been handed the pool either.
    assert all(host.pool is not ctx.pool for host in ctx.fabric.hosts)


def test_loss_only_plan_keeps_pool_enabled():
    ctx = _build(FaultPlan(loss_rate=0.01))
    assert not ctx.faults.retains_packets
    assert ctx.pool.enabled


def test_no_faults_keeps_pool_enabled():
    ctx = _build(None)
    assert ctx.faults is None
    assert ctx.pool.enabled


def test_corruption_run_completes_with_clean_audits():
    spec = make_spec(
        "phost", "websearch", "tiny", seed=42,
        faults=FaultPlan(corrupt_rate=0.005, seed=3),
        instruments=standard_auditors(),
    )
    result = run_experiment(spec)
    assert result.n_completed == result.n_flows
    assert result.audit.ok, result.audit.summary()
    assert result.fault_drops > 0


def test_injector_retains_corrupted_packets():
    spec = make_spec(
        "phost", "websearch", "tiny", seed=42,
        faults=FaultPlan(corrupt_rate=0.005, seed=3),
    )
    ctx = build_simulation(spec)
    from repro.experiments.runner import _generate_flows, run_flow_list
    from repro.sim.randoms import SeededRng

    flows = _generate_flows(spec, ctx.fabric, SeededRng(spec.seed))
    run_flow_list(spec, flows, ctx)
    inj = ctx.faults
    assert isinstance(inj, FaultInjector)
    assert inj.pkts_corrupted > 0
    assert len(inj.corrupted) == min(inj.pkts_corrupted, 4096)
    # Retained packets are real distinct objects, not pool-recycled
    # aliases: corruption implies the pool was off.
    assert len({id(p) for p in inj.corrupted}) == len(inj.corrupted)
