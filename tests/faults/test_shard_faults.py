"""Fault injection under sharded execution.

A downed inter-rack uplink is exactly the event a shard boundary must
get right: the link's tap lives at hop 2, so under sharding the drop
verdict is recomputed on the *sender* side from the plan's replayed
timeline (:class:`repro.sim.shard._LinkStateTimeline`) instead of the
receiver's tap state.  These tests pin that

* a :class:`FaultPlan` with a mid-run inter-rack ``LinkDown`` produces
  the same digest, a clean :class:`ConservationAuditor` report, and an
  identical fault-drop ledger whether the run is serial or sharded;
* spray exclusion is consistent across shards: the injector's toggle
  events are roots replayed in *every* shard's fabric replica, so each
  shard's ToR routing closure sees the same ``live_uplinks`` view at
  the same simulated time.
"""

from __future__ import annotations

import warnings

import pytest

from repro.experiments.defaults import make_spec
from repro.experiments.runner import run_experiment
from repro.faults import FaultPlan, LinkDown
from repro.sim.tuning import SimTuning
from repro.sim.shard import ShardPlan, ShardRuntime
from repro.validate import run_digest, standard_auditors

pytestmark = pytest.mark.faults

#: One inter-rack uplink dark for a 100us window mid-run, plus the
#: reverse-direction core downlink: spray exclusion steers traffic off
#: the uplink (few in-flight losses), but nothing can steer around a
#: dead core->ToR hop, so the ledger records real drops.
UPLINK = "tor1.up.c1"
PLAN = FaultPlan(
    link_downs=(
        LinkDown(UPLINK, down_at=20e-6, up_at=120e-6),
        LinkDown("core1.down.tor1", down_at=30e-6, up_at=200e-6),
    ),
    seed=11,
)


def _spec(protocol: str = "phost"):
    return make_spec(protocol, "websearch", "tiny", seed=42).variant(
        faults=PLAN, instruments=standard_auditors()
    )


@pytest.mark.parametrize("protocol", ("phost", "pfabric"))
def test_sharded_fault_run_matches_serial_and_audits_clean(protocol):
    serial = run_experiment(_spec(protocol))
    with warnings.catch_warnings():
        # A silent serial fallback would make this test vacuous.
        warnings.simplefilter("error", RuntimeWarning)
        sharded = run_experiment(
            _spec(protocol).variant(tuning=SimTuning(shards=2))
        )

    assert run_digest(sharded) == run_digest(serial)
    # The down window genuinely bites (packets in flight at down_at are
    # dropped), and the merged ledger reproduces it exactly.
    assert serial.fault_drops > 0
    assert sharded.fault_drops == serial.fault_drops
    # Conservation (offered = delivered + dropped + in-flight) holds on
    # both sides: injected drops are ledgered, never leaked.
    assert serial.audit is not None and serial.audit.ok, serial.audit
    assert sharded.audit is not None and sharded.audit.ok, sharded.audit


def test_live_uplinks_consistent_from_every_shard():
    """Every shard's replica of tor1 excludes the downed uplink."""
    spec = _spec("phost")
    plan = ShardPlan.build(spec.topology, 2)
    probe_at = 60e-6  # inside the [20us, 120us) down window

    for sid in range(plan.n_shards):
        rt = ShardRuntime(spec, plan, sid)
        tor = rt.fabric.tors[1]
        live_before = {p.name for p in tor.route.live_uplinks()}
        assert UPLINK in live_before, "uplink should start live"

        rt.env.run_window(probe_at, rt.guard)
        live = {p.name for p in tor.route.live_uplinks()}
        assert UPLINK not in live, (
            f"shard {sid} still sprays over downed uplink {UPLINK}"
        )
        # The other uplink stays in the spray set — exclusion, not
        # shutdown.
        assert live, f"shard {sid} lost all uplinks"

        rt.env.run_window(150e-6, rt.guard)
        assert UPLINK in {p.name for p in tor.route.live_uplinks()}, (
            f"shard {sid} did not restore the uplink after up_at"
        )
