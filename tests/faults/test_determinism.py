"""Determinism contract of the fault layer.

Three properties anchor the whole design:

1. the same :class:`FaultPlan` + fault seed replays byte-identically
   (same ``run_digest`` across repeats);
2. an *empty* plan is indistinguishable from no plan at all — digests
   equal the committed goldens and ``events_processed`` matches exactly
   (the runner installs no injector for empty plans);
3. each fault knob is individually inert at zero, and faults that do
   not apply to a protocol (an arbiter blackout under pHost) leave the
   run on the golden trajectory.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.experiments.defaults import SCALES, make_spec
from repro.experiments.runner import run_experiment, run_incast
from repro.faults import ArbiterBlackout, FaultPlan, GilbertElliott, LinkDown
from repro.validate import incast_digest, run_digest

pytestmark = pytest.mark.faults

GOLDEN_PATH = Path(__file__).parent.parent / "validate" / "golden_digests.json"
GOLDENS = json.loads(GOLDEN_PATH.read_text())

RICH_PLAN = FaultPlan(
    gilbert_elliott=GilbertElliott(0.05, 0.3),
    link_downs=(LinkDown("tor1.up.c1", down_at=20e-6, up_at=120e-6),),
    seed=11,
)


def _fig3_tiny(faults=None):
    return run_experiment(make_spec("phost", "websearch", "tiny", seed=42, faults=faults))


def _fig9c_tiny(faults=None):
    return run_incast(
        "phost",
        n_senders=9,
        total_bytes=SCALES["tiny"].incast_bytes,
        n_requests=SCALES["tiny"].incast_requests,
        topology=SCALES["tiny"].topology,
        seed=42,
        faults=faults,
    )


# ----------------------------------------------------------------------
# Same plan + seed => identical trajectory
# ----------------------------------------------------------------------

def test_rich_plan_replays_byte_identically():
    a = _fig3_tiny(RICH_PLAN)
    b = _fig3_tiny(RICH_PLAN)
    assert run_digest(a) == run_digest(b)
    assert a.events_processed == b.events_processed
    assert a.fault_drops == b.fault_drops > 0


def test_fault_seed_changes_draws_not_structure():
    a = _fig3_tiny(FaultPlan(loss_rate=0.01, seed=1))
    b = _fig3_tiny(FaultPlan(loss_rate=0.01, seed=2))
    # Different fault seeds lose different packets...
    assert run_digest(a) != run_digest(b)
    # ...but both runs still deliver the whole workload.
    assert a.n_completed == a.n_flows
    assert b.n_completed == b.n_flows


# ----------------------------------------------------------------------
# Empty plan == committed goldens
# ----------------------------------------------------------------------

def test_empty_plan_matches_fig3_golden():
    baseline = _fig3_tiny(None)
    empty = _fig3_tiny(FaultPlan())
    assert run_digest(empty) == GOLDENS["fig3-tiny-phost-websearch-seed42"]
    assert empty.events_processed == baseline.events_processed
    assert empty.fault_drops == 0


def test_empty_plan_matches_fig9c_golden():
    empty = _fig9c_tiny(FaultPlan())
    assert incast_digest(empty) == GOLDENS["fig9c-tiny-phost-incast9-seed42"]


# ----------------------------------------------------------------------
# Individually zeroed / inapplicable knobs are inert
# ----------------------------------------------------------------------

def test_zeroed_knobs_install_nothing():
    plan = FaultPlan(loss_rate=0.0, corrupt_rate=0.0, link_downs=(),
                     host_pauses=(), arbiter_blackouts=(), scripted=(), seed=99)
    assert plan.is_empty()
    result = _fig3_tiny(plan)
    assert run_digest(result) == GOLDENS["fig3-tiny-phost-websearch-seed42"]


def test_blackout_is_inert_without_an_arbiter():
    # A non-empty plan installs the injector, but an arbiter blackout
    # has nothing to act on under pHost: the trajectory must stay on
    # the golden digest (no taps, no extra events beyond none).
    plan = FaultPlan(arbiter_blackouts=(ArbiterBlackout(0.0, 100e-6),))
    result = _fig3_tiny(plan)
    assert run_digest(result) == GOLDENS["fig3-tiny-phost-websearch-seed42"]
    assert result.fault_drops == 0
