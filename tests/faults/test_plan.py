"""FaultPlan validation, emptiness semantics, and the CLI spec parser."""

from __future__ import annotations

import pytest

from repro.faults import (
    ArbiterBlackout,
    FaultPlan,
    GilbertElliott,
    HostPause,
    LinkDown,
    ScriptedDrop,
    parse_fault_plan,
)
from repro.net.packet import PacketType

pytestmark = pytest.mark.faults


# ----------------------------------------------------------------------
# Field validation
# ----------------------------------------------------------------------

def test_empty_plan_is_empty():
    assert FaultPlan().is_empty()
    assert not FaultPlan().wire_faults_active()


def test_zeroed_knobs_are_inert():
    # Explicit zeros must behave exactly like the defaults.
    plan = FaultPlan(loss_rate=0.0, corrupt_rate=0.0, link_downs=(),
                     host_pauses=(), arbiter_blackouts=(), scripted=())
    assert plan.is_empty()
    assert plan == FaultPlan()


@pytest.mark.parametrize("kwargs", [
    {"loss_rate": -0.1},
    {"loss_rate": 1.0},
    {"corrupt_rate": 1.5},
    {"loss_rate": 0.1, "gilbert_elliott": GilbertElliott(0.1, 0.5)},
])
def test_bad_plan_rejected(kwargs):
    with pytest.raises(ValueError):
        FaultPlan(**kwargs)


def test_ge_validation():
    with pytest.raises(ValueError):
        GilbertElliott(0.0, 0.5)  # p_enter must be > 0
    with pytest.raises(ValueError):
        GilbertElliott(0.1, 0.5, loss_bad=1.5)
    ge = GilbertElliott(0.1, 0.3)
    assert ge.stationary_bad == pytest.approx(0.25)
    assert ge.mean_loss == pytest.approx(0.25)  # loss_bad defaults to 1


def test_outage_validation():
    with pytest.raises(ValueError):
        LinkDown("h0.nic", down_at=0.5, up_at=0.5)
    with pytest.raises(ValueError):
        HostPause(host=-1, pause_at=0.0, resume_at=1.0)
    with pytest.raises(ValueError):
        ArbiterBlackout(start=1.0, end=0.5)
    with pytest.raises(ValueError):
        ScriptedDrop(ptype="no-such-type")
    assert ScriptedDrop(ptype="rts").packet_type is PacketType.RTS


def test_plan_coerces_lists_and_freezes():
    # Lists coerce to tuples so equal plans repr (and hash for the
    # figure memoizer) identically.
    a = FaultPlan(link_downs=[LinkDown("h0.nic", 0.0)])
    b = FaultPlan(link_downs=(LinkDown("h0.nic", 0.0),))
    assert a == b and repr(a) == repr(b)
    with pytest.raises(Exception):
        a.loss_rate = 0.5  # frozen


def test_models_link_restriction():
    plan = FaultPlan(loss_rate=0.01, loss_links=("tor0.up.c0",))
    assert plan.models_link("tor0.up.c0")
    assert not plan.models_link("h3.nic")
    assert FaultPlan(loss_rate=0.01).models_link("anything")


# ----------------------------------------------------------------------
# CLI spec parser
# ----------------------------------------------------------------------

def test_parse_full_spec():
    plan = parse_fault_plan(
        "loss=0.01, links=tor0.up.c0+tor0.up.c1, "
        "down=tor0.up.c1@0.001:0.002, pause=3@0.001:0.002, "
        "blackout=0:0.0005, drop=rts:2:1",
        seed=7,
    )
    assert plan.loss_rate == 0.01
    assert plan.loss_links == ("tor0.up.c0", "tor0.up.c1")
    assert plan.link_downs == (LinkDown("tor0.up.c1", 0.001, 0.002),)
    assert plan.host_pauses == (HostPause(3, 0.001, 0.002),)
    assert plan.arbiter_blackouts == (ArbiterBlackout(0.0, 0.0005),)
    assert plan.scripted == (ScriptedDrop("rts", count=2, skip=1, hop=1),)
    assert plan.seed == 7


def test_parse_ge_and_down_forever():
    plan = parse_fault_plan("ge=0.05:0.3:0.001:0.5, down=h0.nic@0.001")
    assert plan.gilbert_elliott == GilbertElliott(0.05, 0.3, 0.001, 0.5)
    assert plan.link_downs[0].up_at == float("inf")


def test_parse_empty_and_errors():
    assert parse_fault_plan("").is_empty()
    for bad in ("loss", "wat=1", "ge=0.1", "down=h0.nic", "loss=2.0"):
        with pytest.raises(ValueError):
            parse_fault_plan(bad)
