"""Tests for switches and the spraying/ECMP routing closures.

These exercise real fabrics end to end at the packet level: a raw data
packet is injected at a host NIC and must arrive at the right host,
taking randomized core paths when racks differ.
"""

from __future__ import annotations

import pytest

from repro.net.packet import Flow, Packet, PacketType
from repro.net.routing import ECMP, make_core_route, make_tor_route
from repro.net.topology import Fabric, TopologyConfig
from repro.sim.engine import EventLoop
from repro.sim.randoms import SeededRng


class Recorder:
    """Stand-in agent capturing deliveries at a host."""

    def __init__(self):
        self.packets = []
        self.nic_pull = None

    def on_packet(self, pkt):
        self.packets.append(pkt)


def fabric_with_recorders(topo=None, seed=1):
    env = EventLoop()
    fabric = Fabric(env, topo or TopologyConfig.small(), SeededRng(seed))
    recorders = []
    for host in fabric.hosts:
        rec = Recorder()
        host.install_agent(rec)
        recorders.append(rec)
    return env, fabric, recorders


def send_raw(fabric, src, dst, seq=0):
    flow = Flow(seq, src, dst, 1460, 0.0)
    pkt = Packet(PacketType.DATA, flow, seq, src, dst, 1500, priority=1)
    fabric.hosts[src].send(pkt)
    return pkt


def send_paced(env, fabric, src, dst, n, flow=None):
    """Inject n packets at line rate so the 36kB NIC never overflows."""
    interval = 1.3e-6
    for seq in range(n):
        if flow is None:
            f = Flow(seq, src, dst, 1460, 0.0)
        else:
            f = flow
        pkt = Packet(PacketType.DATA, f, seq, src, dst, 1500, priority=1)
        env.schedule_at(seq * interval, fabric.hosts[src].send, pkt)


def test_intra_rack_delivery():
    env, fabric, recorders = fabric_with_recorders()
    send_raw(fabric, 0, 1)
    env.run()
    assert len(recorders[1].packets) == 1
    assert recorders[1].packets[0].hops == 1  # only the ToR forwarded it


def test_inter_rack_delivery_crosses_two_switches():
    env, fabric, recorders = fabric_with_recorders()
    dst = fabric.config.hosts_per_rack  # next rack
    send_raw(fabric, 0, dst)
    env.run()
    assert len(recorders[dst].packets) == 1
    assert recorders[dst].packets[0].hops == 3  # ToR up, core, ToR down


def test_every_pair_is_deliverable():
    env, fabric, recorders = fabric_with_recorders()
    n = fabric.config.n_hosts
    seq = 0
    for src in range(n):
        for dst in range(n):
            if src != dst:
                send_raw(fabric, src, dst, seq)
                seq += 1
    env.run()
    for dst, rec in enumerate(recorders):
        assert len(rec.packets) == n - 1
        assert all(p.dst == dst for p in rec.packets)


def test_packet_spraying_uses_all_cores():
    env, fabric, _ = fabric_with_recorders(seed=7)
    dst = fabric.config.hosts_per_rack
    send_paced(env, fabric, 0, dst, 200)
    env.run()
    forwarded = [core.pkts_forwarded for core in fabric.cores]
    assert sum(forwarded) == 200
    # uniform spraying: every core carries a healthy share
    for count in forwarded:
        assert count > 200 / len(forwarded) / 3


def test_ecmp_pins_flow_to_one_core():
    topo = TopologyConfig.small()
    topo = TopologyConfig(
        n_racks=topo.n_racks,
        hosts_per_rack=topo.hosts_per_rack,
        n_cores=topo.n_cores,
        load_balancing=ECMP,
    )
    env, fabric, _ = fabric_with_recorders(topo)
    dst = fabric.config.hosts_per_rack
    flow = Flow(77, 0, dst, 100_000, 0.0)
    send_paced(env, fabric, 0, dst, 50, flow=flow)
    env.run()
    used = [core for core in fabric.cores if core.pkts_forwarded > 0]
    assert len(used) == 1
    assert used[0].pkts_forwarded == 50


def test_unknown_lb_mode_rejected(rng):
    with pytest.raises(ValueError):
        make_tor_route({}, [], lambda h: 0, 0, rng, mode="magic")


def test_switch_without_route_raises(env):
    from repro.net.switch import Switch

    sw = Switch(0, "tor")
    pkt = Packet(PacketType.DATA, None, 0, 0, 1, 1500)
    with pytest.raises(RuntimeError):
        sw.receive(pkt)
