"""Unit tests for the packet freelist (repro.net.pool)."""

from __future__ import annotations

from repro.net.packet import Flow, PacketType
from repro.net.pool import PacketPool


def make_flow(fid=1, n_pkts=4):
    return Flow(fid=fid, src=0, dst=1, size_bytes=n_pkts * 1460, arrival=0.0)


def test_disabled_pool_is_a_plain_factory():
    pool = PacketPool(enabled=False)
    flow = make_flow()
    a = pool.data(flow, 0, flow.src, flow.dst, 1500, 1, 0.0)
    pool.release(a)
    b = pool.data(flow, 1, flow.src, flow.dst, 1500, 1, 0.0)
    assert b is not a  # release was a no-op
    assert pool.reused == 0
    assert pool.stats()["free"] == 0


def test_enabled_pool_recycles_released_packets():
    pool = PacketPool(enabled=True)
    flow = make_flow()
    a = pool.data(flow, 0, flow.src, flow.dst, 1500, 1, 0.0)
    pool.release(a)
    b = pool.data(flow, 1, flow.src, flow.dst, 1460, 3, 2.5)
    assert b is a  # same object back
    assert pool.allocated == 1
    assert pool.reused == 1
    # all fields re-stamped for the new life
    assert (b.seq, b.size, b.priority, b.born) == (1, 1460, 3, 2.5)


def test_release_clears_references_and_scratch_fields():
    pool = PacketPool(enabled=True)
    flow = make_flow()
    pkt = pool.data(flow, 2, flow.src, flow.dst, 1500, 1, 0.0)
    pkt.payload = object()
    pkt.remaining = 7
    pkt.data_prio = 5
    pkt.expiry = 9.9
    pkt.hops = 3
    pool.release(pkt)
    assert pkt.flow is None and pkt.payload is None
    assert pkt.remaining == 0 and pkt.data_prio == 0
    assert pkt.expiry == 0.0 and pkt.hops == 0


def test_control_packets_recycle_too():
    pool = PacketPool(enabled=True)
    flow = make_flow()
    rts = pool.control(PacketType.RTS, flow, 0, flow.src, flow.dst, 0.0)
    pool.release(rts)
    tok = pool.control(PacketType.TOKEN, flow, 3, flow.dst, flow.src, 1.0)
    assert tok is rts
    assert tok.ptype is PacketType.TOKEN
    assert (tok.seq, tok.src, tok.dst, tok.born) == (3, flow.dst, flow.src, 1.0)


def test_freelist_is_bounded():
    pool = PacketPool(enabled=True, max_free=2)
    flow = make_flow()
    pkts = [pool.data(flow, i, flow.src, flow.dst, 1500, 1, 0.0) for i in range(5)]
    for p in pkts:
        pool.release(p)
    assert pool.stats()["free"] == 2  # cap respected
    assert pool.released == 2


def test_runner_disables_pooling_for_packet_retaining_hooks():
    from repro.experiments.defaults import make_spec
    from repro.experiments.runner import build_simulation

    class Keeper:
        retains_packets = True

        def bind(self, ctx):
            return self

    spec = make_spec("phost", "websearch", "tiny", seed=42)
    assert build_simulation(spec).pool.enabled
    keeper_ctx = build_simulation(spec.variant(instruments=(Keeper(),)))
    assert not keeper_ctx.pool.enabled
    assert all(h.pool is None for h in keeper_ctx.fabric.hosts)
