"""Unit tests for the fabric builder and ideal-FCT computation."""

from __future__ import annotations

import pytest

from repro.net.packet import Flow, Packet, PacketType
from repro.net.topology import Fabric, TopologyConfig
from repro.sim.engine import EventLoop
from repro.sim.randoms import SeededRng
from repro.sim.units import HEADER_BYTES, MSS_BYTES


def build(topo=None, seed=1):
    env = EventLoop()
    fabric = Fabric(env, topo or TopologyConfig.small(), SeededRng(seed))
    return env, fabric


def test_paper_topology_dimensions():
    topo = TopologyConfig.paper()
    assert topo.n_hosts == 144
    assert topo.n_racks == 9
    assert topo.n_cores == 4
    assert topo.access_gbps == 10.0
    assert topo.core_gbps == 40.0
    assert topo.buffer_bytes == 36_000
    assert topo.mtu_tx_time == pytest.approx(1.2e-6)


def test_fabric_wiring_counts():
    env, fabric = build()
    topo = fabric.config
    assert len(fabric.hosts) == topo.n_hosts
    assert len(fabric.tors) == topo.n_racks
    assert len(fabric.cores) == topo.n_cores
    for tor in fabric.tors:
        assert len(tor.ports) == topo.hosts_per_rack + topo.n_cores
    for core in fabric.cores:
        assert len(core.ports) == topo.n_racks


def test_rack_membership_and_hop_count():
    env, fabric = build()
    hpr = fabric.config.hosts_per_rack
    assert fabric.same_rack(0, hpr - 1)
    assert not fabric.same_rack(0, hpr)
    assert fabric.hop_count(0, 1) == 2
    assert fabric.hop_count(0, hpr) == 4


def test_topology_validation():
    with pytest.raises(ValueError):
        TopologyConfig(n_racks=0)
    with pytest.raises(ValueError):
        TopologyConfig(access_gbps=-1)
    with pytest.raises(ValueError):
        TopologyConfig(buffer_bytes=1000)  # under two MTUs


def test_opt_fct_single_packet_interrack():
    env, fabric = build()
    topo = fabric.config
    src, dst = 0, topo.hosts_per_rack  # different racks
    size = 1000
    wire = (size + HEADER_BYTES) * 8.0
    expected = (
        wire / topo.access_bps * 2
        + wire / topo.core_bps * 2
        + 4 * topo.propagation_delay
    )
    assert fabric.opt_fct(size, src, dst) == pytest.approx(expected)


def test_opt_fct_multi_packet_pipelines_on_access_link():
    env, fabric = build()
    topo = fabric.config
    src, dst = 0, topo.hosts_per_rack
    one = fabric.opt_fct(MSS_BYTES, src, dst)
    two = fabric.opt_fct(2 * MSS_BYTES, src, dst)
    # adding one full packet costs exactly one access serialization
    assert two - one == pytest.approx(1500 * 8 / topo.access_bps)


def test_opt_fct_monotone_in_size():
    env, fabric = build()
    sizes = [1, 1460, 10_000, 100_000, 1_000_000]
    opts = [fabric.opt_fct(s, 0, 5) for s in sizes]
    assert opts == sorted(opts)
    assert all(o > 0 for o in opts)


def test_opt_fct_intra_rack_faster_than_inter_rack():
    env, fabric = build()
    hpr = fabric.config.hosts_per_rack
    assert fabric.opt_fct(10_000, 0, 1) < fabric.opt_fct(10_000, 0, hpr)


def test_drop_accounting_by_hop():
    env, fabric = build()
    flow = Flow(1, 0, 1, 1500, 0.0)
    pkt = Packet(PacketType.DATA, flow, 0, 0, 1, 1500)
    fabric._record_drop(pkt, 3)
    fabric._record_drop(pkt, 3)
    fabric._record_drop(pkt, 1)
    assert fabric.drops_by_hop[3] == 2
    assert fabric.drops_by_hop[1] == 1
    assert fabric.drops_total == 3
    fabric.reset_counters()
    assert fabric.drops_total == 0


def test_drop_hook_invoked():
    env, fabric = build()
    seen = []
    fabric.drop_hook = lambda pkt, hop: seen.append(hop)
    pkt = Packet(PacketType.DATA, None, 0, 0, 1, 1500)
    fabric._record_drop(pkt, 2)
    assert seen == [2]


def test_base_rtt_positive_and_symmetric():
    env, fabric = build()
    hpr = fabric.config.hosts_per_rack
    assert fabric.base_rtt(0, hpr) == pytest.approx(fabric.base_rtt(hpr, 0))
    assert fabric.base_rtt(0, 1) < fabric.base_rtt(0, hpr)
