"""Unit tests for the struct-of-arrays packet store (repro.net.columns)."""

from __future__ import annotations

import pytest

from repro.net.columns import COLUMN_TYPECODES, PacketColumns
from repro.net.packet import Flow, PacketType
from repro.net.pool import PacketPool


def make_flow(fid=7, n_pkts=4):
    return Flow(fid=fid, src=0, dst=1, size_bytes=n_pkts * 1460, arrival=0.0)


def test_acquire_release_recycles_slots_lifo():
    cols = PacketColumns(capacity=4)
    a = cols.acquire()
    b = cols.acquire()
    assert (a, b) == (0, 1)
    cols.release(a)
    assert cols.acquire() == a  # LIFO reuse
    assert cols.stats()["in_use"] == 2


def test_capacity_grows_geometrically():
    cols = PacketColumns(capacity=2)
    slots = [cols.acquire() for _ in range(5)]
    assert slots == [0, 1, 2, 3, 4]
    assert cols.capacity == 8  # 2 -> 4 -> 8
    assert cols.grows == 2
    # every column and the ref lists grew in lockstep
    for name, _ in COLUMN_TYPECODES:
        assert len(getattr(cols, name)) == cols.capacity
    assert len(cols.flows) == len(cols.views) == cols.capacity


def test_stamp_writes_identity_columns_and_view():
    cols = PacketColumns()
    flow = make_flow(fid=11)
    slot = cols.acquire()
    pkt = cols.stamp(slot, PacketType.DATA, flow, 3, 0, 1, 1500, 2, 4.5)
    assert pkt.slot == slot
    assert (pkt.ptype, pkt.flow, pkt.seq) == (PacketType.DATA, flow, 3)
    assert (pkt.src, pkt.dst, pkt.size, pkt.priority, pkt.born) == (0, 1, 1500, 2, 4.5)
    row = cols.row(slot)
    assert row["fid"] == 11 and row["seq"] == 3 and row["size"] == 1500
    assert row["priority"] == 2 and row["born"] == 4.5 and row["flow"] is flow


def test_view_is_cached_across_lives():
    cols = PacketColumns()
    flow = make_flow()
    slot = cols.acquire()
    first = cols.stamp(slot, PacketType.DATA, flow, 0, 0, 1, 1500, 1, 0.0)
    cols.reset(slot)
    cols.release(slot)
    again = cols.stamp(cols.acquire(), PacketType.TOKEN, flow, 9, 1, 0, 40, 0, 2.0)
    assert again is first  # same materialized view, new life
    assert again.ptype is PacketType.TOKEN and again.seq == 9


def test_reset_clears_view_and_columns():
    cols = PacketColumns()
    flow = make_flow()
    slot = cols.acquire()
    pkt = cols.stamp(slot, PacketType.DATA, flow, 0, 0, 1, 1500, 1, 0.0)
    pkt.remaining = 5
    pkt.ecn = 1
    pkt.hops = 3
    pkt.payload = object()
    cols.writeback(slot)
    assert cols.row(slot)["remaining"] == 5 and cols.row(slot)["hops"] == 3
    cols.reset(slot)
    assert pkt.flow is None and pkt.payload is None
    assert pkt.remaining == 0 and pkt.ecn == 0 and pkt.hops == 0
    row = cols.row(slot)
    assert row["fid"] == -1 and row["remaining"] == 0 and row["ecn"] == 0


def test_writeback_syncs_dynamic_columns_only_on_demand():
    cols = PacketColumns()
    slot = cols.acquire()
    pkt = cols.stamp(slot, PacketType.DATA, make_flow(), 0, 0, 1, 1500, 1, 0.0)
    pkt.remaining = 7  # in-flight mutation: view-authoritative
    assert cols.row(slot)["remaining"] == 0  # column is stale by contract
    cols.writeback(slot)
    assert cols.row(slot)["remaining"] == 7


def test_lazy_view_materializes_from_columns():
    cols = PacketColumns()
    flow = make_flow(fid=3)
    slot = cols.acquire()
    cols.stamp(slot, PacketType.ACK, flow, 2, 1, 0, 40, 0, 1.25)
    cols.views[slot] = None  # simulate a never-materialized row
    pkt = cols.view(slot)
    assert pkt.slot == slot
    assert pkt.ptype is PacketType.ACK and pkt.flow is flow
    assert (pkt.seq, pkt.src, pkt.dst, pkt.size, pkt.born) == (2, 1, 0, 40, 1.25)


def test_buffer_and_numpy_export_are_zero_copy():
    np = pytest.importorskip("numpy")
    cols = PacketColumns(capacity=4)
    slot = cols.acquire()
    cols.stamp(slot, PacketType.DATA, make_flow(), 0, 0, 1, 1500, 1, 0.0)
    arrays = cols.as_arrays()
    assert arrays["size"].dtype == np.int64
    assert int(arrays["size"][slot]) == 1500
    mv = cols.buffer("size")
    mv[slot] = 999  # writable buffer seam
    assert int(cols.as_arrays()["size"][slot]) == 999


def test_pool_freelist_holds_integers_not_objects():
    pool = PacketPool(enabled=True)
    flow = make_flow()
    pkts = [pool.data(flow, i, flow.src, flow.dst, 1500, 1, 0.0) for i in range(3)]
    assert [p.slot for p in pkts] == [0, 1, 2]
    for p in pkts:
        pool.release(p)
    assert pool._free == [0, 1, 2]  # ints, LIFO stack
    assert all(isinstance(s, int) for s in pool._free)
    again = pool.data(flow, 9, flow.src, flow.dst, 1500, 1, 0.0)
    assert again is pkts[2] and again.slot == 2


def test_disabled_pool_hands_out_plain_packets_without_slots():
    pool = PacketPool(enabled=False)
    flow = make_flow()
    pkt = pool.data(flow, 0, flow.src, flow.dst, 1500, 1, 0.0)
    assert pkt.slot == -1
    assert pool.columns.stats()["in_use"] == 0
