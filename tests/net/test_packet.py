"""Unit tests for flows and packets."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.net.packet import CONTROL_TYPES, Flow, Packet, PacketType, control_packet
from repro.sim.units import HEADER_BYTES, MSS_BYTES


def test_flow_packetization():
    flow = Flow(1, 0, 1, 3000, 0.0)
    assert flow.n_pkts == 3
    assert flow.payload_of(0) == MSS_BYTES
    assert flow.payload_of(1) == MSS_BYTES
    assert flow.payload_of(2) == 3000 - 2 * MSS_BYTES
    assert flow.wire_bytes_of(2) == 3000 - 2 * MSS_BYTES + HEADER_BYTES


def test_flow_exact_multiple_has_full_last_packet():
    flow = Flow(1, 0, 1, 2 * MSS_BYTES, 0.0)
    assert flow.n_pkts == 2
    assert flow.payload_of(1) == MSS_BYTES


def test_zero_byte_flow_occupies_one_packet():
    flow = Flow(1, 0, 1, 0, 0.0)
    assert flow.n_pkts == 1
    assert flow.payload_of(0) == 0
    assert flow.wire_bytes_of(0) == HEADER_BYTES


def test_flow_rejects_self_loop_and_negative_size():
    with pytest.raises(ValueError):
        Flow(1, 3, 3, 100, 0.0)
    with pytest.raises(ValueError):
        Flow(1, 0, 1, -5, 0.0)


def test_payload_of_bounds_checked():
    flow = Flow(1, 0, 1, 3000, 0.0)
    with pytest.raises(ValueError):
        flow.payload_of(3)
    with pytest.raises(ValueError):
        flow.payload_of(-1)


def test_flow_completion_flag():
    flow = Flow(1, 0, 1, 100, 0.0)
    assert not flow.completed
    flow.finish = 1.0
    assert flow.completed


def test_control_packet_shape():
    flow = Flow(9, 2, 5, 100, 0.0)
    pkt = control_packet(PacketType.TOKEN, flow, 4, 5, 2, born=1e-6)
    assert pkt.size == HEADER_BYTES
    assert pkt.priority == 0
    assert pkt.is_control
    assert pkt.seq == 4
    assert (pkt.src, pkt.dst) == (5, 2)


def test_data_packet_is_not_control():
    flow = Flow(9, 2, 5, 100, 0.0)
    pkt = Packet(PacketType.DATA, flow, 0, 2, 5, flow.wire_bytes_of(0))
    assert not pkt.is_control
    assert PacketType.DATA not in CONTROL_TYPES


@given(st.integers(min_value=1, max_value=10_000_000))
def test_property_payload_sums_to_flow_size(size):
    flow = Flow(1, 0, 1, size, 0.0)
    assert sum(flow.payload_of(i) for i in range(flow.n_pkts)) == size
    assert all(0 < flow.payload_of(i) <= MSS_BYTES for i in range(flow.n_pkts - 1))
