"""Unit + property tests for the two queue disciplines."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.net.packet import Flow, Packet, PacketType
from repro.net.queues import PFabricQueue, PriorityQueue


def make_pkt(size=1500, priority=1, remaining=0, flow=None, seq=0):
    pkt = Packet(PacketType.DATA, flow, seq, 0, 1, size, priority=priority)
    pkt.remaining = remaining
    return pkt


# ----------------------------------------------------------------------
# PriorityQueue (commodity strict-priority, drop-tail)
# ----------------------------------------------------------------------

def test_priority_queue_serves_bands_strictly():
    q = PriorityQueue(capacity_bytes=100_000, n_bands=4)
    low = make_pkt(priority=3)
    mid = make_pkt(priority=1)
    high = make_pkt(priority=0)
    q.push(low)
    q.push(mid)
    q.push(high)
    assert q.pop() is high
    assert q.pop() is mid
    assert q.pop() is low
    assert q.pop() is None


def test_priority_queue_fifo_within_band():
    q = PriorityQueue(100_000)
    first, second = make_pkt(priority=2), make_pkt(priority=2)
    q.push(first)
    q.push(second)
    assert q.pop() is first
    assert q.pop() is second


def test_priority_queue_drop_tail_on_overflow():
    q = PriorityQueue(capacity_bytes=3000)
    a, b = make_pkt(1500), make_pkt(1500)
    assert q.push(a) == []
    assert q.push(b) == []
    victim = make_pkt(1500)
    assert q.push(victim) == [victim]  # incoming dropped, queued kept
    assert len(q) == 2


def test_priority_queue_out_of_range_bands_clamped():
    q = PriorityQueue(100_000, n_bands=2)
    q.push(make_pkt(priority=-3))
    q.push(make_pkt(priority=99))
    assert len(q) == 2
    assert q.pop().priority == -3  # clamped into band 0 (highest)


def test_priority_queue_requires_a_band():
    with pytest.raises(ValueError):
        PriorityQueue(1000, n_bands=0)


def test_priority_queue_small_control_fits_when_data_does_not():
    q = PriorityQueue(capacity_bytes=1600)
    q.push(make_pkt(1500))
    dropped = q.push(make_pkt(1500))
    assert dropped  # data overflows
    assert q.push(make_pkt(40, priority=0)) == []  # control squeezes in


# ----------------------------------------------------------------------
# PFabricQueue (priority drop / priority dequeue)
# ----------------------------------------------------------------------

def test_pfabric_evicts_largest_remaining_on_overflow():
    q = PFabricQueue(capacity_bytes=3000)
    urgent = make_pkt(1500, remaining=1)
    bulk = make_pkt(1500, remaining=500)
    q.push(urgent)
    q.push(bulk)
    newcomer = make_pkt(1500, remaining=10)
    dropped = q.push(newcomer)
    assert dropped == [bulk]
    assert set(q.pkts) == {urgent, newcomer}


def test_pfabric_drops_incoming_when_it_is_least_urgent():
    q = PFabricQueue(capacity_bytes=3000)
    a = make_pkt(1500, remaining=1)
    b = make_pkt(1500, remaining=2)
    q.push(a)
    q.push(b)
    worst = make_pkt(1500, remaining=99)
    assert q.push(worst) == [worst]


def test_pfabric_dequeues_most_urgent():
    q = PFabricQueue(100_000)
    f1 = Flow(1, 0, 1, 10_000, 0.0)
    f2 = Flow(2, 0, 1, 10_000, 0.0)
    q.push(make_pkt(remaining=7, flow=f1, seq=0))
    q.push(make_pkt(remaining=3, flow=f2, seq=0))
    assert q.pop().flow is f2


def test_pfabric_starvation_avoidance_sends_oldest_of_best_flow():
    """The most urgent packet selects the flow; the flow's earliest
    queued packet is transmitted (pHost paper, footnote 1)."""
    q = PFabricQueue(100_000)
    flow = Flow(1, 0, 1, 100_000, 0.0)
    older = make_pkt(remaining=9, flow=flow, seq=0)   # sent earlier, larger remaining
    newer = make_pkt(remaining=2, flow=flow, seq=7)   # more urgent stamp
    other = make_pkt(remaining=5, flow=Flow(2, 0, 1, 100_000, 0.0), seq=0)
    q.push(older)
    q.push(other)
    q.push(newer)
    popped = q.pop()
    assert popped is older  # flow chosen via `newer`, but oldest pkt goes


def test_pfabric_control_with_remaining_zero_never_dropped():
    q = PFabricQueue(capacity_bytes=3000)
    q.push(make_pkt(1500, remaining=5))
    bulk = make_pkt(1500, remaining=6)
    q.push(bulk)
    ack = make_pkt(40, remaining=0)
    dropped = q.push(ack)
    # the full queue evicts its least-urgent *data*, never the ACK
    assert dropped == [bulk]
    assert q.pop() is ack


def test_pfabric_tie_break_drops_most_recent_arrival():
    q = PFabricQueue(capacity_bytes=3000)
    first = make_pkt(1500, remaining=5)
    second = make_pkt(1500, remaining=5)
    q.push(first)
    q.push(second)
    third = make_pkt(1500, remaining=5)
    assert q.push(third) == [third]  # newest of the equal-priority set


@st.composite
def queue_ops(draw):
    return draw(
        st.lists(
            st.tuples(
                st.sampled_from(["push", "pop"]),
                st.integers(min_value=40, max_value=1500),
                st.integers(min_value=0, max_value=100),
            ),
            max_size=80,
        )
    )


@given(queue_ops(), st.sampled_from(["priority", "pfabric"]))
def test_property_byte_accounting_and_capacity(ops, kind):
    cap = 6000
    q = PriorityQueue(cap) if kind == "priority" else PFabricQueue(cap)
    for op, size, rem in ops:
        if op == "push":
            pkt = make_pkt(size, priority=rem % 8, remaining=rem)
            q.push(pkt)
        else:
            q.pop()
        if kind == "pfabric":
            expected = sum(p.size for p in q.pkts)
        else:
            expected = sum(p.size for band in q.bands for p in band)
        assert q.bytes_queued == expected
        assert q.bytes_queued <= cap
        assert (len(q) == 0) == (not q)
