"""Unit tests for the output port (queue + serializer + link)."""

from __future__ import annotations

import pytest

from repro.net.packet import Flow, Packet, PacketType
from repro.net.port import Port
from repro.net.queues import PriorityQueue
from repro.sim.engine import EventLoop


class Sink:
    def __init__(self):
        self.received = []
        self.times = []

    def receive(self, pkt):
        self.received.append(pkt)


class TimedSink(Sink):
    def __init__(self, env):
        super().__init__()
        self.env = env

    def receive(self, pkt):
        super().receive(pkt)
        self.times.append(self.env.now)


def make_port(env, rate=10e9, prop=200e-9, cap=36_000, **kwargs):
    port = Port(env, rate, prop, PriorityQueue(cap), **kwargs)
    sink = TimedSink(env)
    port.connect(sink)
    return port, sink


def data_pkt(size=1500, priority=1, seq=0):
    return Packet(PacketType.DATA, None, seq, 0, 1, size, priority=priority)


def test_single_packet_timing():
    env = EventLoop()
    port, sink = make_port(env)
    pkt = data_pkt(1500)
    port.send(pkt)
    env.run()
    # arrival = serialization (1.2us) + propagation (200ns)
    assert sink.times == [pytest.approx(1.2e-6 + 200e-9)]
    assert port.bytes_sent == 1500
    assert port.pkts_sent == 1


def test_back_to_back_packets_serialize_sequentially():
    env = EventLoop()
    port, sink = make_port(env)
    port.send(data_pkt(1500, seq=0))
    port.send(data_pkt(1500, seq=1))
    env.run()
    assert sink.times[0] == pytest.approx(1.4e-6)
    assert sink.times[1] == pytest.approx(2.6e-6)  # +1 serialization


def test_priority_band_preempts_between_packets():
    env = EventLoop()
    port, sink = make_port(env)
    port.send(data_pkt(1500, priority=2, seq=0))  # starts transmitting
    port.send(data_pkt(1500, priority=2, seq=1))
    port.send(data_pkt(40, priority=0, seq=99))   # control arrives later
    env.run()
    # control jumps ahead of the queued data packet (not the in-flight one)
    assert [p.seq for p in sink.received] == [0, 99, 1]


def test_drop_callback_reports_hop():
    env = EventLoop()
    drops = []
    port = Port(
        env, 10e9, 0.0, PriorityQueue(3000), hop_index=4,
        on_drop=lambda pkt, hop: drops.append((pkt, hop)),
    )
    port.connect(Sink())
    for seq in range(4):
        port.send(data_pkt(1500, seq=seq))
    env.run()
    # one in flight + two queued fit (3000B); the fourth drops
    assert len(drops) == 1
    assert drops[0][1] == 4


def test_pull_source_feeds_idle_port():
    env = EventLoop()
    port, sink = make_port(env)
    supply = [data_pkt(1500, seq=i) for i in range(3)]

    def pull():
        return supply.pop(0) if supply else None

    port.pull_source = pull
    port.kick()
    env.run()
    assert [p.seq for p in sink.received] == [0, 1, 2]


def test_queued_control_beats_pull_data():
    env = EventLoop()
    port, sink = make_port(env)
    supply = [data_pkt(1500, seq=1)]
    port.pull_source = lambda: supply.pop(0) if supply else None
    port.send(data_pkt(40, priority=0, seq=0))
    env.run()
    assert [p.seq for p in sink.received] == [0, 1]


def test_kick_while_busy_is_harmless():
    env = EventLoop()
    port, sink = make_port(env)
    port.send(data_pkt(1500))
    port.kick()
    port.kick()
    env.run()
    assert len(sink.received) == 1


def test_unconnected_port_drops_silently():
    env = EventLoop()
    port = Port(env, 10e9, 0.0, PriorityQueue(36_000))
    port.send(data_pkt())
    env.run()  # no exception
    assert port.pkts_sent == 1


def test_queue_high_water_marks():
    env = EventLoop()
    port, sink = make_port(env)
    # Three packets back-to-back: the first starts transmitting
    # immediately, so at most two sit in the queue at once.
    for seq in range(3):
        port.send(data_pkt(1500, seq=seq))
    assert port.max_qlen_pkts == 2
    assert port.max_qlen_bytes == 3000
    env.run()
    # Draining never lowers a high-water mark.
    assert port.max_qlen_pkts == 2
    assert port.max_qlen_bytes == 3000
    assert len(port.queue) == 0


def test_high_water_reflects_post_drop_occupancy():
    env = EventLoop()
    # Capacity of two packets: the third push overflows and is dropped.
    port, sink = make_port(env, cap=3_000)
    for seq in range(6):
        port.send(data_pkt(1500, seq=seq))
    assert port.pkts_dropped > 0
    assert port.max_qlen_bytes <= 3_000
    assert port.max_qlen_pkts <= 2


def test_fused_and_classic_paths_deliver_identically():
    """Fusion (entry reuse + inline drain) is pure mechanics: arrival
    times, delivery order, and port counters must match the classic
    two-schedules-per-hop path exactly."""
    outcomes = []
    for fused in (True, False):
        env = EventLoop()
        port, sink = make_port(env)
        port.fused = fused
        for seq in range(8):
            port.send(data_pkt(1500 if seq % 2 else 700, seq=seq))
        env.schedule_at(2e-6, port.send, data_pkt(40, priority=0, seq=100))
        env.run()
        outcomes.append(
            (
                [p.seq for p in sink.received],
                sink.times,
                port.bytes_sent,
                port.pkts_sent,
                env.events_processed,
            )
        )
    assert outcomes[0] == outcomes[1]


def test_fused_drain_elides_heap_events_when_alone():
    """A lone busy port with queued packets and an empty heap drains
    inline: far fewer heap round-trips, same deliveries and same
    events_processed accounting."""
    env = EventLoop()
    port, sink = make_port(env, cap=200_000)  # hold all 50 packets
    for seq in range(50):
        port.send(data_pkt(1500, seq=seq))
    env.run()
    assert port.pkts_dropped == 0
    assert [p.seq for p in sink.received] == list(range(50))
    # 50 serializations + 50 arrivals, whether elided or dispatched.
    assert env.events_processed == 100


def test_pull_timing_unchanged_by_fusion():
    """The pull decision happens at serialization-done time on both
    paths (the receiver must not be able to influence it mid-hop)."""
    pull_times = []
    for fused in (True, False):
        env = EventLoop()
        port, sink = make_port(env)
        port.fused = fused
        budget = [3]

        def pull():
            if budget[0]:
                budget[0] -= 1
                pull_times.append((fused, round(env.now * 1e9)))
                return data_pkt(1500, seq=10 - budget[0])
            return None

        port.pull_source = pull
        port.kick()
        env.run()
    fused_t = [t for f, t in pull_times if f]
    classic_t = [t for f, t in pull_times if not f]
    assert fused_t == classic_t
