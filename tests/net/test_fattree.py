"""Tests for the k-ary fat-tree fabric."""

from __future__ import annotations

import pytest

from repro.experiments.runner import run_experiment
from repro.experiments.spec import ExperimentSpec
from repro.net.fattree import FAT_TREE_HOP_NAMES, FatTreeConfig, FatTreeFabric
from repro.net.packet import Flow, Packet, PacketType
from repro.sim.engine import EventLoop
from repro.sim.randoms import SeededRng


class Recorder:
    def __init__(self):
        self.packets = []
        self.nic_pull = None

    def on_packet(self, pkt):
        self.packets.append(pkt)


def build(k=4, seed=1, **cfg_kwargs):
    env = EventLoop()
    config = FatTreeConfig(k=k, **cfg_kwargs)
    fabric = FatTreeFabric(env, config, SeededRng(seed))
    recorders = []
    for host in fabric.hosts:
        rec = Recorder()
        host.install_agent(rec)
        recorders.append(rec)
    return env, fabric, recorders


def test_dimensions_k4():
    cfg = FatTreeConfig(k=4)
    assert cfg.n_hosts == 16
    assert cfg.n_pods == 4
    assert cfg.hosts_per_pod == 4
    assert cfg.n_cores == 4
    env, fabric, _ = build(k=4)
    assert len(fabric.edges) == 8
    assert len(fabric.aggs) == 8
    assert len(fabric.cores) == 4
    # port counts: edge = k/2 hosts + k/2 aggs; agg = k/2 + k/2; core = k
    assert all(len(e.ports) == 4 for e in fabric.edges)
    assert all(len(a.ports) == 4 for a in fabric.aggs)
    assert all(len(c.ports) == 4 for c in fabric.cores)


def test_config_validation():
    with pytest.raises(ValueError):
        FatTreeConfig(k=3)       # odd
    with pytest.raises(ValueError):
        FatTreeConfig(k=0)
    with pytest.raises(ValueError):
        FatTreeConfig(link_gbps=0)
    with pytest.raises(ValueError):
        FatTreeConfig(load_balancing="magic")


def test_hop_counts():
    env, fabric, _ = build(k=4)
    assert fabric.hop_count(0, 1) == 2     # same edge
    assert fabric.hop_count(0, 2) == 4     # same pod, different edge
    assert fabric.hop_count(0, 4) == 6     # different pod


def send_paced(env, fabric, src, dst, n):
    for seq in range(n):
        flow = Flow(seq, src, dst, 1460, 0.0)
        pkt = Packet(PacketType.DATA, flow, seq, src, dst, 1500, priority=1)
        env.schedule_at(seq * 1.3e-6, fabric.hosts[src].send, pkt)


def test_every_pair_deliverable():
    env, fabric, recorders = build(k=4)
    n = fabric.config.n_hosts
    t = 0.0
    for src in range(n):
        for dst in range(n):
            if src == dst:
                continue
            flow = Flow(src * n + dst, src, dst, 1460, 0.0)
            pkt = Packet(PacketType.DATA, flow, 0, src, dst, 1500, priority=1)
            env.schedule_at(t, fabric.hosts[src].send, pkt)
            t += 1.3e-6
    env.run()
    for dst, rec in enumerate(recorders):
        assert len(rec.packets) == n - 1
        assert all(p.dst == dst for p in rec.packets)


def test_cross_pod_traverses_six_ports():
    env, fabric, recorders = build(k=4)
    send_paced(env, fabric, 0, 4, 1)
    env.run()
    (pkt,) = recorders[4].packets
    assert pkt.hops == 5  # edge, agg, core, agg, edge forwarded it


def test_spraying_spreads_over_cores():
    env, fabric, _ = build(k=4, seed=3)
    send_paced(env, fabric, 0, 4, 200)  # cross-pod
    env.run()
    used = [c.pkts_forwarded for c in fabric.cores]
    # edge sprays over 2 aggs; agg j reaches cores 2j..2j+1 -> all 4 usable
    assert sum(used) == 200
    assert all(u > 10 for u in used)


def test_opt_fct_distances():
    env, fabric, _ = build(k=4)
    same_edge = fabric.opt_fct(10_000, 0, 1)
    same_pod = fabric.opt_fct(10_000, 0, 2)
    cross_pod = fabric.opt_fct(10_000, 0, 4)
    assert same_edge < same_pod < cross_pod


def test_hop_names_cover_drop_indices():
    env, fabric, _ = build(k=4)
    assert set(fabric.drops_by_hop) == set(FAT_TREE_HOP_NAMES)


@pytest.mark.parametrize("protocol", ["phost", "pfabric", "fastpass"])
def test_protocols_run_end_to_end_on_fat_tree(protocol):
    spec = ExperimentSpec(
        protocol=protocol,
        workload="imc10",
        load=0.6,
        n_flows=100,
        topology=FatTreeConfig(k=4),
        max_flow_bytes=120_000,
        seed=5,
    )
    result = run_experiment(spec)
    assert result.completion_rate == 1.0
    assert result.mean_slowdown() >= 1.0 - 1e-9


def test_fastpass_still_beaten_by_phost_on_fat_tree():
    """The paper's comparison is topology-robust given full bisection."""
    base = dict(workload="imc10", load=0.6, n_flows=150,
                topology=FatTreeConfig(k=4), max_flow_bytes=120_000, seed=6)
    phost = run_experiment(ExperimentSpec(protocol="phost", **base))
    fastpass = run_experiment(ExperimentSpec(protocol="fastpass", **base))
    assert fastpass.mean_slowdown() > 1.5 * phost.mean_slowdown()


def test_bigger_radix_builds():
    env, fabric, _ = build(k=6)
    assert fabric.config.n_hosts == 54
    assert len(fabric.cores) == 9
