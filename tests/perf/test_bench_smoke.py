"""Perf tier: the scripts/bench.py smoke instance as a pytest.

Two layers of protection, deliberately separated:

* **Correctness always runs.**  The fig3 smoke instance's digest must
  match the committed golden on every invocation — a benchmark of
  changed behaviour is meaningless, so this part is unconditional and
  cheap enough for the default tier.
* **Wall-clock gates only when asked.**  Timing asserts are flaky on
  shared CI runners, so the regression gate (committed baseline x
  :data:`bench.REGRESSION_FACTOR`) only arms when ``REPRO_PERF=1`` is
  exported — the CI ``bench-smoke`` job does, the default test job
  does not.

Run the tier directly with::

    REPRO_PERF=1 PYTHONPATH=src python -m pytest tests/perf -m perf
"""

from __future__ import annotations

import importlib.util
import json
import os
import sys
import time
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]

# scripts/ is not a package; load bench.py by path so the test and the
# CLI can never disagree about instance definitions.
_spec = importlib.util.spec_from_file_location(
    "repro_bench", REPO_ROOT / "scripts" / "bench.py"
)
bench = importlib.util.module_from_spec(_spec)
sys.modules.setdefault("repro_bench", bench)
_spec.loader.exec_module(bench)

pytestmark = pytest.mark.perf

WALL_GATE = os.environ.get("REPRO_PERF") == "1"


def _golden(key: str) -> str:
    data = json.loads((REPO_ROOT / "tests/validate/golden_digests.json").read_text())
    return data[key]


def _run_instance(name: str, repeats: int = 1):
    """Best-of-N wall (the committed baseline is best-of-N too — a
    single sample against it flakes on loaded runners)."""
    runner = bench._instances("small")[name]
    best = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        _, digest, events, pkts = runner()
        wall = time.perf_counter() - t0
        if best is None or wall < best:
            best = wall
    return best, digest, events, pkts


def test_fig3_smoke_instance_digest_and_wall():
    wall, digest, events, pkts = _run_instance(
        bench.SMOKE_INSTANCE, repeats=3 if WALL_GATE else 1
    )
    assert digest == _golden("fig3-tiny-phost-websearch-seed42")
    assert events and pkts  # throughput metrics are derivable
    if not WALL_GATE:
        return
    baseline = json.loads(bench.BASELINE_PATH.read_text())
    limit = (
        baseline["instances"][bench.SMOKE_INSTANCE]["wall_seconds"]
        * bench.REGRESSION_FACTOR
    )
    assert wall <= limit, (
        f"{bench.SMOKE_INSTANCE} took {wall:.3f}s, regression limit {limit:.3f}s "
        f"(baseline x {bench.REGRESSION_FACTOR})"
    )


def test_fig9c_smoke_instance_digest():
    _, digest, _, _ = _run_instance("fig9c-phost")
    assert digest == _golden("fig9c-tiny-phost-incast9-seed42")


def test_committed_baseline_covers_the_gated_instance():
    baseline = json.loads(bench.BASELINE_PATH.read_text())
    assert bench.SMOKE_INSTANCE in baseline["instances"]
    assert baseline["instances"][bench.SMOKE_INSTANCE]["wall_seconds"] > 0
