"""Mutation self-tests: each auditor must detect its injected fault.

A validator that has never seen a violation is untested code.  These
tests deliberately break one invariant per run — a double-counted
delivery, a token materialised out of thin air, an event smuggled into
the heap with a past timestamp — and assert that the matching auditor
fires, names the right invariant, and pins the first offending event.
"""

from __future__ import annotations

import heapq

import pytest

from repro.experiments.runner import build_simulation, run_flow_list
from repro.experiments.spec import ExperimentSpec
from repro.net.packet import Flow
from repro.net.topology import TopologyConfig
from repro.protocols.phost.tokens import Token
from repro.validate import (
    AuditReport,
    CausalityAuditor,
    ConservationAuditor,
    TokenLedgerAuditor,
    standard_auditors,
)


def run_phost(flows, instruments, mutate=None, seed=11):
    """Run an explicit flow list on pHost, optionally sabotaging the
    freshly built context before the clock starts."""
    spec = ExperimentSpec(
        protocol="phost",
        workload="fixed:1",  # ignored by run_flow_list
        n_flows=1,
        topology=TopologyConfig.small(),
        instruments=instruments,
        seed=seed,
    )
    ctx = build_simulation(spec)
    if mutate is not None:
        mutate(ctx)
    return run_flow_list(spec, flows, ctx)


def two_flows():
    return [
        Flow(0, 0, 5, 30_000, 0.0),
        Flow(1, 2, 7, 300_000, 0.0),
    ]


# ----------------------------------------------------------------------
# Clean baseline
# ----------------------------------------------------------------------

def test_clean_run_passes_every_auditor():
    result = run_phost(two_flows(), standard_auditors())
    assert result.n_completed == 2
    assert result.audit is not None
    assert result.audit.ok, result.audit.summary()
    assert result.audit.total_violations == 0
    assert result.audit.first_violation() is None


def test_no_instruments_means_no_report():
    result = run_phost(two_flows(), ())
    assert result.audit is None


def test_report_from_hooks_ignores_non_auditors():
    class NotAnAuditor:
        def bind(self, ctx):
            return self

    assert AuditReport.from_hooks([NotAnAuditor()]) is None


# ----------------------------------------------------------------------
# Mutation 1: double-counted delivery -> ConservationAuditor
# ----------------------------------------------------------------------

def test_conservation_detects_double_delivery():
    witnessed = {}

    def mutate(ctx):
        original = ctx.collector.data_delivered

        def double_once(pkt):
            original(pkt)
            if not witnessed:
                witnessed["fid"], witnessed["seq"] = pkt.flow.fid, pkt.seq
                original(pkt)  # the fault: the same packet counted twice

        ctx.collector.data_delivered = double_once

    result = run_phost(two_flows(), (ConservationAuditor(),), mutate=mutate)
    report = result.audit
    assert not report.ok
    check = report.auditors[0].checks["delivery-once"]
    assert check.violation_count >= 1
    first = report.first_violation()
    assert first.auditor == "conservation"
    assert first.invariant == "delivery-once"
    assert first.context["fid"] == witnessed["fid"]
    assert first.context["seq"] == witnessed["seq"]
    assert first.time > 0.0


# ----------------------------------------------------------------------
# Mutation 2: token materialised from nowhere -> TokenLedgerAuditor
# ----------------------------------------------------------------------

def test_token_ledger_detects_token_leak():
    def mutate(ctx):
        def leak():
            for host in ctx.fabric.hosts:
                for state in host.agent.source.flows.values():
                    if not state.done and not state.all_sent():
                        # The fault: a token the destination never minted.
                        state.add_token(Token(0, 1, ctx.env.now + 1.0))
                        return
            raise AssertionError("no live flow to leak a token into")

        ctx.env.schedule_at(50e-6, leak)

    result = run_phost(two_flows(), (TokenLedgerAuditor(),), mutate=mutate)
    report = result.audit
    assert not report.ok
    check = report.auditors[0].checks["global-ledger"]
    assert check.violation_count == 1
    first = report.first_violation()
    assert first.auditor == "token-ledger"
    assert first.invariant == "global-ledger"
    assert "leak" in first.message


def test_token_ledger_inert_for_non_phost():
    spec = ExperimentSpec(
        protocol="pfabric",
        workload="fixed:1",
        n_flows=1,
        topology=TopologyConfig.small(),
        instruments=(TokenLedgerAuditor(),),
        seed=3,
    )
    result = run_flow_list(spec, two_flows(), build_simulation(spec))
    assert result.audit.ok
    # Inert: nothing was even checked.
    assert result.audit.auditors[0].checks["token-range"].checked == 0


# ----------------------------------------------------------------------
# Mutation 3: event smuggled into the past -> CausalityAuditor
# ----------------------------------------------------------------------

def test_causality_detects_past_scheduled_event():
    def mutate(ctx):
        env = ctx.env

        def smuggle():
            # The fault: bypass schedule_at()'s past-time guard.
            entry = [env.now / 2, env._seq + 10**6, lambda: None, (), env]
            heapq.heappush(env._heap, entry)
            env._live += 1

        env.schedule_at(40e-6, smuggle)

    result = run_phost(two_flows(), (CausalityAuditor(),), mutate=mutate)
    report = result.audit
    assert not report.ok
    check = report.auditors[0].checks["no-past-event"]
    assert check.violation_count == 1
    first = report.first_violation()
    assert first.invariant == "no-past-event"
    assert first.context["scheduled"] == pytest.approx(20e-6)
    assert first.context["clock"] == pytest.approx(40e-6)


# ----------------------------------------------------------------------
# Report plumbing
# ----------------------------------------------------------------------

def test_report_to_dict_and_export(tmp_path):
    import json

    from repro.metrics.export import audit_report_to_json

    result = run_phost(two_flows(), standard_auditors())
    payload = result.audit.to_dict()
    assert payload["ok"] is True
    assert payload["total_violations"] == 0
    assert payload["first_violation"] is None
    assert set(payload["auditors"]) == {"conservation", "token-ledger", "causality"}
    for entry in payload["auditors"].values():
        assert entry["ok"] is True
        for inv in entry["invariants"].values():
            assert inv["violations"] == 0

    out = audit_report_to_json(result.audit, tmp_path / "audit.json")
    assert json.loads(out.read_text()) == json.loads(
        json.dumps(payload, sort_keys=True)
    )


def test_violation_context_survives_to_json(tmp_path):
    import json

    from repro.metrics.export import audit_report_to_json

    def mutate(ctx):
        original = ctx.collector.data_delivered
        fired = []

        def double_once(pkt):
            original(pkt)
            if not fired:
                fired.append(pkt)
                original(pkt)

        ctx.collector.data_delivered = double_once

    result = run_phost(two_flows(), (ConservationAuditor(),), mutate=mutate)
    out = audit_report_to_json(result.audit, tmp_path / "bad.json")
    payload = json.loads(out.read_text())
    assert payload["ok"] is False
    first = payload["first_violation"]
    assert first["invariant"] == "delivery-once"
    assert "fid" in first["context"] and "seq" in first["context"]


def test_cli_audit_flag(tmp_path, capsys):
    import json

    from repro.experiments.cli import main

    out = tmp_path / "audit.json"
    code = main([
        "--run", "phost", "websearch", "--scale", "tiny", "--flows", "20",
        "--audit", "--audit-json", str(out), "--json",
    ])
    assert code == 0
    stdout = capsys.readouterr().out
    assert json.loads(stdout)["audit"]["ok"] is True
    assert json.loads(out.read_text())["ok"] is True
